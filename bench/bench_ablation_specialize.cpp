// Ablation — query-in-registers (FabP) vs query-specialized hardware.
//
// FabP stores the encoded query in flip-flops so a new query is just a
// DRAM transfer (§III-C).  The alternative FPGA idiom bakes the query into
// the LUT INITs and lets constant propagation shrink the comparators —
// cheaper fabric, but every new query needs a recompile + reconfiguration
// (minutes to hours of Vivado, vs microseconds of transfer).  This bench
// quantifies the fabric the paper leaves on the table for that usability.

#include <iostream>

#include "fabp/bio/generate.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/core/instance.hpp"
#include "fabp/hw/optimize.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  util::Xoshiro256 rng{31337};

  util::banner(std::cout, "Alignment instance: runtime query (FabP) vs"
                          " query baked into LUTs");
  util::Table table{{"elements", "FabP LUTs", "specialized LUTs",
                     "reduction", "folded", "aliased"}};
  for (std::size_t residues : {12u, 50u, 150u, 250u}) {
    const std::size_t elements = residues * 3;
    const bio::ProteinSequence protein = bio::random_protein(residues, rng);
    const core::EncodedQuery query = core::encode_query(protein);

    core::InstanceConfig runtime_cfg;
    runtime_cfg.elements = elements;
    runtime_cfg.threshold = static_cast<std::uint32_t>(elements * 4 / 5);
    runtime_cfg.pipelined = false;

    hw::Netlist runtime_nl;
    core::build_alignment_instance(runtime_nl, runtime_cfg);
    const std::size_t runtime_luts = runtime_nl.stats().luts;

    core::InstanceConfig fixed_cfg = runtime_cfg;
    fixed_cfg.fixed_query = &query;
    hw::Netlist fixed_nl;
    const core::InstancePorts ports =
        core::build_alignment_instance(fixed_nl, fixed_cfg);
    std::vector<hw::NetId> keep = ports.score;
    keep.push_back(ports.hit);
    const auto optimized = hw::optimize(fixed_nl, keep);

    table.row()
        .cell(elements)
        .cell(runtime_luts)
        .cell(optimized.stats.luts_after)
        .cell(util::percent_text(
            1.0 - static_cast<double>(optimized.stats.luts_after) /
                      static_cast<double>(runtime_luts)))
        .cell(optimized.stats.folded_constants)
        .cell(optimized.stats.collapsed_aliases);
  }
  table.print(std::cout);

  std::cout << "\n  specialization reclaims a large share of the comparator"
               " LUTs — but changing\n  the query then means a full place &"
               " route instead of FabP's microsecond\n  DRAM transfer,"
               " which is why the paper keeps the query in FFs.\n";
  return 0;
}
