// E5 — §IV-A in-text: indel statistics and their (negligible) impact on
// FabP's substitution-only alignment accuracy.
//
// Three parts:
//   1. Reproduce the empirical indel-frequency distribution the paper
//      cites (Neininger et al. 2019): median 0, mean 0.09, stddev 0.36
//      indel events per kilobase — via a zero-inflated event model.
//   2. Count how many of 10,000 queries have an indel inside their
//      reference coding region under several coding-region indel rates
//      (the paper observed ~0.02%).
//   3. Measure detection accuracy (planted-gene recall) of FabP's
//      substitution-only matching vs gapped Smith-Waterman, separately
//      for indel-free and indel-containing regions.

#include <cmath>
#include <iostream>

#include "fabp/align/local.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/util/stats.hpp"
#include "fabp/util/table.hpp"

namespace {

using namespace fabp;

// Zero-inflated per-kilobase indel intensity calibrated to the cited
// moments: with P(active)=q and conditional Poisson rate m,
// mean = q*m = 0.09 and Var = q*m + q*(1-q)*m^2 = 0.36^2 gives
// m - 0.09 ~= 0.44  ->  m = 0.53, q = 0.17  (median stays 0).
constexpr double kActiveFraction = 0.17;
constexpr double kActiveRatePerKb = 0.53;

double draw_window_rate(util::Xoshiro256& rng) {
  return rng.chance(kActiveFraction) ? kActiveRatePerKb : 0.0;
}

}  // namespace

int main() {
  util::Xoshiro256 rng{20210201};

  util::banner(std::cout, "Indel statistics (paper cites Neininger et al.)");
  {
    // Part 1: distribution of indel events per kilobase over many windows.
    std::vector<double> per_kb;
    util::RunningStats stats;
    for (int w = 0; w < 200'000; ++w) {
      const double rate = draw_window_rate(rng);
      const double events = static_cast<double>(rng.poisson(rate));
      per_kb.push_back(events);
      stats.add(events);
    }
    util::Table t{{"statistic", "paper", "measured"}};
    t.row().cell("median (events/kb)").cell("0").cell(util::median(per_kb),
                                                      2);
    t.row().cell("mean (events/kb)").cell("0.09").cell(stats.mean(), 3);
    t.row().cell("stddev (events/kb)").cell("0.36").cell(stats.stddev(), 3);
    t.print(std::cout);
  }

  util::banner(std::cout, "Queries whose reference region contains an indel"
                          " (10,000 queries, 150 aa = 450 nt)");
  {
    // Part 2: the paper reports ~0.02% of queries involved indels.  The
    // genome-wide rate applied raw to 450-nt windows gives more; within
    // protein-coding regions purifying selection suppresses indels by
    // orders of magnitude — we report a rate sweep.
    util::Table t{{"coding indel rate (events/kb)", "affected queries",
                   "fraction", "paper"}};
    for (const double rate : {0.09, 0.009, 0.0009, 0.0004}) {
      std::size_t affected = 0;
      for (int q = 0; q < 10'000; ++q)
        if (rng.poisson(rate * 0.45) > 0) ++affected;
      t.row()
          .cell(rate, 4)
          .cell(affected)
          .cell(util::percent_text(static_cast<double>(affected) / 10'000.0,
                                   2))
          .cell(rate == 0.0004 ? "~0.02% (2 of 10,000)" : "");
    }
    t.print(std::cout);
  }

  util::banner(std::cout, "Detection accuracy: FabP (substitution-only) vs"
                          " gapped Smith-Waterman");
  {
    // Part 3: plant genes, mutate the reference copy with substitutions
    // plus (for one arm) a forced indel, and compare recall.
    constexpr std::size_t kQueries = 250;
    constexpr std::size_t kResidues = 50;  // 150 elements
    constexpr double kThresholdFraction = 0.8;

    struct Arm {
      const char* name;
      double indel_events_per_kb;
      std::size_t detected_fabp = 0;
      std::size_t detected_sw = 0;
      std::size_t total = 0;
    };
    Arm arms[] = {{"substitutions only (3%)", 0.0},
                  {"substitutions + forced indel", 25.0}};

    for (Arm& arm : arms) {
      for (std::size_t q = 0; q < kQueries; ++q) {
        const bio::ProteinSequence protein =
            bio::random_protein(kResidues, rng);
        const bio::NucleotideSequence coding =
            core::random_template_coding(protein, rng);

        bio::MutationParams params;
        params.substitution_rate = 0.03;
        params.indel_events_per_kb = arm.indel_events_per_kb;
        const bio::MutationResult mutated = bio::mutate(coding, params, rng);
        if (arm.indel_events_per_kb > 0 && !mutated.summary.has_indel())
          continue;  // this arm studies indel-containing regions only

        // Embed the mutated region in random context.
        bio::NucleotideSequence region = bio::random_dna(40, rng);
        region.append(mutated.sequence);
        region.append(bio::random_dna(40, rng));

        ++arm.total;

        // FabP: best substitution-only score over all offsets.
        const auto elements = core::back_translate(protein);
        std::uint32_t best = 0;
        if (region.size() >= elements.size()) {
          for (std::size_t p = 0; p + elements.size() <= region.size(); ++p)
            best = std::max(best,
                            core::golden_score_at(elements, region, p));
        }
        const auto threshold = static_cast<std::uint32_t>(std::llround(
            kThresholdFraction * static_cast<double>(elements.size())));
        if (best >= threshold) ++arm.detected_fabp;

        // Smith-Waterman (gap-tolerant) on the nucleotide level.
        const int sw = align::smith_waterman_score(
            coding, region, align::NucleotideScoring{2, -3},
            align::GapPenalties{5, 2});
        const int sw_threshold = static_cast<int>(std::llround(
            kThresholdFraction * 2.0 *
            static_cast<double>(elements.size())));
        if (sw >= sw_threshold) ++arm.detected_sw;
      }
    }

    util::Table t{{"reference regions", "n", "SW recall", "FabP recall",
                   "FabP vs SW"}};
    for (const Arm& arm : arms) {
      const double sw_recall =
          static_cast<double>(arm.detected_sw) / arm.total;
      const double fabp_recall =
          static_cast<double>(arm.detected_fabp) / arm.total;
      t.row()
          .cell(arm.name)
          .cell(arm.total)
          .cell(util::percent_text(sw_recall))
          .cell(util::percent_text(fabp_recall))
          .cell(util::percent_text(fabp_recall - sw_recall));
    }
    t.print(std::cout);
    std::cout << "\n  paper: \"not supporting indels has a minimal impact on"
                 " the alignment accuracy\n  since indels are infrequent\" —"
                 " weighting the arms by the indel frequencies above\n"
                 "  yields an overall accuracy drop well below 0.1%.\n";
  }
  return 0;
}
