// E9 — software scan engines: the scalar golden oracle vs the bit-sliced
// engine at every lane width the host can run (64-lane SWAR, 256-lane
// AVX2, 512-lane AVX-512), plus the thread-pool scan and a multi-query
// batch sweep (sequential per-query scans vs one batched pass that keeps
// each block of reference planes hot across the whole batch).  Every
// engine and every batch lane must produce identical hit lists (checked
// here, not just in the unit tests).  Alongside the console tables the
// harness writes BENCH_bitscan.json so CI and scripts can track the
// speedups without scraping text.
//
//   bench_bitscan [bases] [query_residues] [reps] [json_path]
//                 [batch_bases] [batch_residues] [tiled_bases]
//
// Defaults: 4,000,000 bases, 20 residues, best-of-3, BENCH_bitscan.json.
// The batch sweep defaults to its own 48 Mbp x 6 aa configuration: plane
// amortisation pays off in the memory-bound regime (reference planes much
// larger than L2, thin per-block compute), which a 4 Mbp reference on a
// big-L3 server never enters.  The tiled section defaults to a cold
// 256 Mbp reference — large enough that the precompiled path's
// whole-reference plane build and ~1.5 B/base re-stream are both far out
// of cache, the regime the tile-fused path exists for.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/core/host.hpp"
#include "fabp/util/benchenv.hpp"
#include "fabp/util/cpuid.hpp"
#include "fabp/util/table.hpp"
#include "fabp/util/thread_pool.hpp"
#include "fabp/util/timer.hpp"

namespace {

using namespace fabp;

struct EngineResult {
  std::string engine;
  std::size_t threads;
  double seconds;
  double bases_per_second;
  double speedup;
  std::size_t hits;
};

struct BatchResult {
  std::string kernel;
  std::size_t batch;
  double sequential_s;   // per-query scans, one after another
  double batched_s;      // one pass, all queries per cached block
  double batch_speedup;  // sequential_s / batched_s
};

struct ThreadSweepResult {
  std::size_t threads;  // actual pool width, not the request
  double seconds;
  double speedup_vs_1t;
};

struct TileSweepResult {
  std::size_t tile_positions;
  std::size_t scratch_bytes;
  double seconds;
};

struct FaultSection {
  // Zero-fault Session overhead: the recovery layer must cost one branch
  // when no faults are configured.  Both rows scan the same reference with
  // the same query; the session row goes through align() and its clean
  // fast-path gate.  The delta is align()'s query encode + accelerator
  // timing model (which predate the fault layer), so the recorded overhead
  // is an upper bound on what the recovery machinery adds.
  double direct_s = 0.0;   // TileScanner::hits, no session
  double session_s = 0.0;  // Session::align, all fault rates zero
  double overhead = 0.0;   // session_s / direct_s - 1
  bool hits_match = false;
};

struct TiledSection {
  std::size_t reference_bases = 0;
  std::size_t tile_positions = 0;
  std::size_t scratch_bytes = 0;
  double cold_tiled_s = 0.0;          // fused compile+scan, nothing reused
  double cold_planes_compile_s = 0.0; // BitScanReference build
  double cold_planes_scan_s = 0.0;    // scan of the prebuilt planes
  double fused_speedup = 0.0;         // (compile+scan) / tiled
  long tiled_rss_delta_kb = 0;        // peak-RSS growth during tiled scan
  long planes_rss_delta_kb = 0;       // peak-RSS growth during plane build
  std::vector<ThreadSweepResult> thread_sweep;
  std::vector<TileSweepResult> tile_sweep;
};

struct BandwidthRow {
  std::size_t threads;      // actual pool width
  double seconds;           // tiled scan wall time at that width
  double scan_gbps;         // model bytes streamed / seconds
  double frac_of_copy;      // scan_gbps / copy_gbps
  double frac_of_read;      // scan_gbps / read_gbps
};

// Measured DRAM-bandwidth ceiling: a STREAM-style copy and a read-only
// sweep over buffers far larger than any cache level give the machine's
// achievable peak; the tiled scan's bytes-moved (the EXPERIMENTS.md
// traffic model, reproduced tile-for-tile by scan_model_bytes below)
// divided by its wall time places the scan on that roofline.
struct BandwidthSection {
  std::size_t buffer_bytes = 0;       // per-buffer size of the probes
  double copy_gbps = 0.0;             // read+write, all pool threads
  double read_gbps = 0.0;             // read-only, all pool threads
  std::size_t reference_bases = 0;    // scan whose traffic is modelled
  std::size_t model_bytes = 0;        // packed bytes the scan streams
  std::size_t theoretical_bytes = 0;  // ceil(bases / 4): no tile overhang
  double cores_to_saturate = 0.0;     // copy_gbps / 1-thread scan_gbps
  std::vector<BandwidthRow> rows;
};

// Packed bytes a tiled scan actually streams: per tile the words
// [first_word, last_word] are read once (two packed words per plane
// word), with the inter-tile overhang re-read — exactly the walk
// TileScanner::range_batch performs.
std::size_t scan_model_bytes(std::size_t bases, std::size_t qlen,
                             std::size_t tile_positions) {
  if (bases < qlen || qlen == 0) return 0;
  const std::size_t positions = bases - qlen + 1;
  const std::size_t word_count = (bases + 63) / 64;
  std::size_t bytes = 0;
  std::size_t pos = 0;
  while (pos < positions) {
    const std::size_t tile_end =
        std::min(positions, (pos / tile_positions + 1) * tile_positions);
    const std::size_t first_word = pos >> 6;
    const std::size_t last_word =
        std::min(word_count - 1, (tile_end + qlen - 2) >> 6);
    bytes += (last_word - first_word + 1) * 2 * sizeof(std::uint64_t);
    pos = tile_end;
  }
  return bytes;
}

double measure_copy_gbps(util::ThreadPool& pool, std::size_t buffer_bytes,
                         int reps) {
  const std::size_t words = buffer_bytes / sizeof(std::uint64_t);
  std::vector<std::uint64_t> src(words, 0x5555555555555555ULL);
  std::vector<std::uint64_t> dst(words, 0);
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    pool.parallel_indexed_chunks(
        0, words,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          std::copy(src.begin() + static_cast<std::ptrdiff_t>(lo),
                    src.begin() + static_cast<std::ptrdiff_t>(hi),
                    dst.begin() + static_cast<std::ptrdiff_t>(lo));
        },
        64 * 1024);
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  // STREAM convention: count the read and the write.
  return 2.0 * static_cast<double>(words) * sizeof(std::uint64_t) / best /
         1e9;
}

double measure_read_gbps(util::ThreadPool& pool, std::size_t buffer_bytes,
                         int reps) {
  const std::size_t words = buffer_bytes / sizeof(std::uint64_t);
  std::vector<std::uint64_t> src(words, 0x3333333333333333ULL);
  std::atomic<std::uint64_t> sink{0};
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    pool.parallel_indexed_chunks(
        0, words,
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          std::uint64_t acc = 0;
          for (std::size_t i = lo; i < hi; ++i) acc += src[i];
          sink.fetch_add(acc, std::memory_order_relaxed);
        },
        64 * 1024);
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return static_cast<double>(words) * sizeof(std::uint64_t) / best / 1e9;
}

// Best-of-`reps` wall time; the result of the last repetition is kept so
// the harness can cross-check the engines against each other.
template <typename Out, typename Fn>
double best_of(int reps, Out& out, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    out = fn();
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

void write_json(const std::string& path, std::size_t bases,
                std::size_t residues, std::size_t elements,
                std::uint32_t threshold, int reps, std::size_t batch_bases,
                std::size_t batch_residues, const util::BenchEnv& env,
                const std::vector<EngineResult>& results,
                const std::vector<BatchResult>& batches,
                const FaultSection& fault, const TiledSection& tiled,
                const BandwidthSection& bw) {
  std::ofstream os{path};
  os << "{\n"
     << "  \"bench\": \"bitscan\",\n"
     << "  \"config\": {\n"
     << "    \"reference_bases\": " << bases << ",\n"
     << "    \"query_residues\": " << residues << ",\n"
     << "    \"query_elements\": " << elements << ",\n"
     << "    \"threshold\": " << threshold << ",\n"
     << "    \"repetitions\": " << reps << ",\n"
     << "    \"cpu_isa\": \"" << util::cpu_isa_summary() << "\",\n"
     << "    \"active_kernel\": \"" << core::active_scan_kernel().name
     << "\",\n"
     << "    \"environment\": {\n"
     << "      \"hardware_threads\": " << env.hardware_threads << ",\n"
     << "      \"affinity_cpus\": " << env.affinity_cpus << ",\n"
     << "      \"effective_cores\": "
     << std::min(env.hardware_threads, env.affinity_cpus) << ",\n"
     << "      \"governor\": \"" << env.governor << "\"\n"
     << "    }\n"
     << "  },\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"threads\": "
       << r.threads << ", \"seconds\": " << r.seconds
       << ", \"bases_per_second\": " << r.bases_per_second
       << ", \"speedup_vs_scalar\": " << r.speedup << ", \"hits\": "
       << r.hits << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"batch_config\": {\n"
     << "    \"reference_bases\": " << batch_bases << ",\n"
     << "    \"query_residues\": " << batch_residues << "\n"
     << "  },\n"
     << "  \"batch\": [\n";
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const BatchResult& b = batches[i];
    os << "    {\"kernel\": \"" << b.kernel << "\", \"batch_size\": "
       << b.batch << ", \"sequential_seconds\": " << b.sequential_s
       << ", \"batched_seconds\": " << b.batched_s
       << ", \"batch_speedup\": " << b.batch_speedup << "}"
       << (i + 1 < batches.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"fault\": {\n"
     << "    \"direct_tiled_seconds\": " << fault.direct_s << ",\n"
     << "    \"session_zero_fault_seconds\": " << fault.session_s << ",\n"
     << "    \"session_overhead_frac\": " << fault.overhead << ",\n"
     << "    \"hits_match\": " << (fault.hits_match ? "true" : "false")
     << "\n"
     << "  },\n"
     << "  \"tiled\": {\n"
     << "    \"reference_bases\": " << tiled.reference_bases << ",\n"
     << "    \"tile_positions\": " << tiled.tile_positions << ",\n"
     << "    \"scratch_bytes\": " << tiled.scratch_bytes << ",\n"
     << "    \"cold_tiled_seconds\": " << tiled.cold_tiled_s << ",\n"
     << "    \"cold_planes_compile_seconds\": "
     << tiled.cold_planes_compile_s << ",\n"
     << "    \"cold_planes_scan_seconds\": " << tiled.cold_planes_scan_s
     << ",\n"
     << "    \"fused_speedup_vs_planes\": " << tiled.fused_speedup << ",\n"
     << "    \"tiled_rss_delta_kb\": " << tiled.tiled_rss_delta_kb << ",\n"
     << "    \"planes_rss_delta_kb\": " << tiled.planes_rss_delta_kb
     << ",\n"
     << "    \"thread_sweep\": [\n";
  for (std::size_t i = 0; i < tiled.thread_sweep.size(); ++i) {
    const ThreadSweepResult& t = tiled.thread_sweep[i];
    os << "      {\"threads\": " << t.threads << ", \"seconds\": "
       << t.seconds << ", \"speedup_vs_1t\": " << t.speedup_vs_1t << "}"
       << (i + 1 < tiled.thread_sweep.size() ? "," : "") << "\n";
  }
  os << "    ],\n"
     << "    \"tile_sweep\": [\n";
  for (std::size_t i = 0; i < tiled.tile_sweep.size(); ++i) {
    const TileSweepResult& t = tiled.tile_sweep[i];
    os << "      {\"tile_positions\": " << t.tile_positions
       << ", \"scratch_bytes\": " << t.scratch_bytes << ", \"seconds\": "
       << t.seconds << "}"
       << (i + 1 < tiled.tile_sweep.size() ? "," : "") << "\n";
  }
  os << "    ]\n"
     << "  },\n"
     << "  \"bandwidth\": {\n"
     << "    \"buffer_bytes\": " << bw.buffer_bytes << ",\n"
     << "    \"copy_gbps\": " << bw.copy_gbps << ",\n"
     << "    \"read_gbps\": " << bw.read_gbps << ",\n"
     << "    \"reference_bases\": " << bw.reference_bases << ",\n"
     << "    \"scan_model_bytes\": " << bw.model_bytes << ",\n"
     << "    \"theoretical_min_bytes\": " << bw.theoretical_bytes << ",\n"
     << "    \"cores_to_saturate\": " << bw.cores_to_saturate << ",\n"
     << "    \"scan\": [\n";
  for (std::size_t i = 0; i < bw.rows.size(); ++i) {
    const BandwidthRow& r = bw.rows[i];
    os << "      {\"threads\": " << r.threads << ", \"seconds\": "
       << r.seconds << ", \"scan_gbps\": " << r.scan_gbps
       << ", \"frac_of_copy_peak\": " << r.frac_of_copy
       << ", \"frac_of_read_peak\": " << r.frac_of_read << "}"
       << (i + 1 < bw.rows.size() ? "," : "") << "\n";
  }
  os << "    ]\n"
     << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t bases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;
  const std::size_t residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  // At least one repetition, or the timings (and the JSON) degenerate to
  // inf/nan.
  const int reps = std::max(argc > 3 ? std::atoi(argv[3]) : 3, 1);
  const std::string json_path = argc > 4 ? argv[4] : "BENCH_bitscan.json";
  const std::size_t batch_bases =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 48'000'000;
  const std::size_t batch_residues =
      argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 6;
  const std::size_t tiled_bases =
      argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 256'000'000;

  util::Xoshiro256 rng{424242};
  const bio::ProteinSequence protein = bio::random_protein(residues, rng);
  bio::NucleotideSequence reference = bio::random_dna(bases, rng);
  const auto elements = core::back_translate(protein);
  // Plant a handful of template-compatible genes so the hit-extraction
  // path runs, not just the all-zero fast path of the compare.
  for (std::size_t g = 1; g <= 8 && reference.size() >= 3 * residues; ++g) {
    const auto coding = core::random_template_coding(protein, rng);
    const std::size_t at = g * (bases / 9);
    for (std::size_t i = 0; i < coding.size(); ++i)
      reference[at + i] = coding[i];
  }
  // High enough that random background rarely fires, low enough that the
  // hit-extraction path is still exercised.
  const auto threshold =
      static_cast<std::uint32_t>(elements.size() * 4 / 5);

  const util::BenchEnv env = util::probe_bench_env();
  util::banner(std::cout, "Software scan engines, " +
                              std::to_string(bases / 1'000'000) + " Mbp x " +
                              std::to_string(residues) + " aa query");
  std::cout << "  cpu: " << util::cpu_isa_summary()
            << ", dispatched kernel: " << core::active_scan_kernel().name
            << "\n  (set FABP_FORCE_ISA=scalar|swar64|avx2|avx512|"
               "avx512vpopcnt to pin)\n"
            << "  host: " << env.hardware_threads << " hw threads, "
            << env.affinity_cpus << " schedulable, governor "
            << env.governor << "\n\n";

  // Reference compilation is part of the bit-sliced engines' setup cost —
  // report it, but time the scans against a prebuilt BitScanReference
  // (the reuse model of Session::software_hits).
  util::Timer compile_timer;
  const core::BitScanReference compiled_ref{reference};
  const double compile_s = compile_timer.seconds();
  const core::BitScanQuery compiled_query{elements};

  const std::size_t hw_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  util::ThreadPool pool{hw_threads};

  std::vector<core::Hit> scalar_hits;
  const double scalar_s = best_of(reps, scalar_hits, [&] {
    return core::golden_hits(elements, reference, threshold);
  });
  std::vector<EngineResult> results{
      {"scalar_golden", 1, scalar_s, static_cast<double>(bases) / scalar_s,
       1.0, scalar_hits.size()}};

  // Lane-width sweep: one row per SIMD-width kernel the host can run.
  std::vector<const core::ScanKernel*> kernels;
  for (core::ScanIsa isa :
       {core::ScanIsa::Swar64, core::ScanIsa::Avx2, core::ScanIsa::Avx512,
        core::ScanIsa::Avx512Vpopcnt})
    if (const core::ScanKernel* kernel = core::scan_kernel_for(isa))
      kernels.push_back(kernel);

  bool mismatch = false;
  const std::size_t positions = bases - elements.size() + 1;
  for (const core::ScanKernel* kernel : kernels) {
    std::vector<core::Hit> hits;
    const double s = best_of(reps, hits, [&] {
      std::vector<core::Hit> out;
      kernel->range(compiled_query, compiled_ref, threshold, 0, positions,
                    out);
      return out;
    });
    mismatch |= hits != scalar_hits;
    results.push_back({kernel->name, 1, s,
                       static_cast<double>(bases) / s, scalar_s / s,
                       hits.size()});
  }

  // Thread-pool scan through whatever kernel the dispatcher picked.
  std::vector<core::Hit> threaded;
  const double threaded_s = best_of(reps, threaded, [&] {
    return core::bitscan_hits_parallel(compiled_query, compiled_ref,
                                       threshold, pool);
  });
  mismatch |= threaded != scalar_hits;
  results.push_back({std::string{core::active_scan_kernel().name} +
                         "_parallel",
                     hw_threads, threaded_s,
                     static_cast<double>(bases) / threaded_s,
                     scalar_s / threaded_s, threaded.size()});

  util::Table table{{"engine", "threads", "time", "Mbases/s", "speedup",
                     "hits"}};
  for (const EngineResult& r : results) {
    table.row()
        .cell(r.engine)
        .cell(r.threads)
        .cell(util::time_text(r.seconds))
        .cell(r.bases_per_second / 1e6, 1)
        .cell(util::ratio_text(r.speedup))
        .cell(r.hits);
  }
  table.print(std::cout);
  std::cout << "\n  reference compile (12 planes): "
            << util::time_text(compile_s) << " (amortised across queries)\n";

  // Zero-fault Session overhead: with every fault rate zero, align() must
  // take the clean fast path — its cost over a direct tiled scan is launch
  // accounting plus one `enabled()` branch, and the recovery layer is
  // perf-neutral (acceptance: under 2%).
  FaultSection fault;
  {
    const bio::PackedNucleotides packed{reference};
    const core::TileScanner scanner{packed};
    std::vector<core::Hit> direct_hits;
    fault.direct_s = best_of(reps, direct_hits, [&] {
      return scanner.hits(compiled_query, threshold);
    });
    core::Session session;
    session.upload_reference(packed);
    std::vector<core::Hit> session_hits;
    fault.session_s = best_of(reps, session_hits, [&] {
      return session.align(protein, threshold).hits;
    });
    fault.overhead = fault.session_s / fault.direct_s - 1.0;
    fault.hits_match = session_hits == direct_hits;
    mismatch |= !fault.hits_match;

    std::cout << "\n";
    util::Table fault_table{{"path", "time", "overhead"}};
    fault_table.row()
        .cell("tiled scan (direct)")
        .cell(util::time_text(fault.direct_s))
        .cell("-");
    fault_table.row()
        .cell("session align, zero-fault")
        .cell(util::time_text(fault.session_s))
        .cell(util::percent_text(fault.overhead, 2));
    fault_table.print(std::cout);
  }

  // Batch sweep: B distinct queries against one compiled reference,
  // sequential per-query scans vs one batched pass per kernel.  The
  // batched pass amortises reference-plane traffic: every cached block is
  // scored against all B queries before the scan moves on.  This pays in
  // the memory-bound regime — planes much larger than L2 with thin
  // per-block compute — so the sweep uses its own (large-reference,
  // short-query) configuration.
  const bio::NucleotideSequence batch_reference =
      bio::random_dna(batch_bases, rng);
  const core::BitScanReference batch_ref{batch_reference};
  std::vector<core::BitScanQuery> batch_queries;
  std::vector<std::vector<core::BackElement>> batch_elements;
  std::vector<std::uint32_t> batch_thresholds;
  std::size_t batch_positions = batch_bases;
  for (std::size_t q = 0; q < 32; ++q) {
    const bio::ProteinSequence p = bio::random_protein(batch_residues, rng);
    batch_elements.push_back(core::back_translate(p));
    batch_queries.emplace_back(batch_elements.back());
    batch_thresholds.push_back(static_cast<std::uint32_t>(
        batch_elements.back().size() * 4 / 5));
    batch_positions = std::min(batch_positions,
                               batch_bases - batch_elements.back().size() + 1);
  }

  std::cout << "\n  batch sweep: " << batch_bases / 1'000'000 << " Mbp x "
            << batch_residues << " aa queries\n\n";
  std::vector<BatchResult> batches;
  util::Table batch_table{{"kernel", "batch", "sequential", "batched",
                           "batch speedup"}};
  for (const core::ScanKernel* kernel : kernels) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{8},
                              std::size_t{32}}) {
      using HitLists = std::vector<std::vector<core::Hit>>;
      HitLists sequential;
      const double seq_s = best_of(reps, sequential, [&] {
        HitLists outs(batch);
        for (std::size_t q = 0; q < batch; ++q)
          kernel->range(batch_queries[q], batch_ref, batch_thresholds[q], 0,
                        batch_positions, outs[q]);
        return outs;
      });
      HitLists batched;
      const double bat_s = best_of(reps, batched, [&] {
        HitLists outs(batch);
        kernel->range_batch(batch_queries.data(), batch_thresholds.data(),
                            batch, batch_ref, 0, batch_positions,
                            outs.data());
        return outs;
      });
      mismatch |= batched != sequential;
      batches.push_back({kernel->name, batch, seq_s, bat_s, seq_s / bat_s});
      batch_table.row()
          .cell(kernel->name)
          .cell(batch)
          .cell(util::time_text(seq_s))
          .cell(util::time_text(bat_s))
          .cell(util::ratio_text(seq_s / bat_s));
    }
  }
  batch_table.print(std::cout);

  // ------------------------------------------------------------------
  // Tile-fused compile+scan vs the precompiled-plane path, cold: one
  // query arrives against a reference nothing has been built for yet.
  // The planes path must first compile 12 whole-reference planes
  // (~1.5 B/base written, then re-streamed by the scan); the tiled path
  // streams the 0.25 B/base packed words once, compiling and scoring one
  // L2-resident tile at a time.  Peak-RSS deltas make the footprint gap
  // visible: the tiled scan's working set is per-thread scratch only.
  TiledSection tiled;
  {
    bio::NucleotideSequence tiled_reference =
        bio::random_dna(tiled_bases, rng);
    for (std::size_t g = 1;
         g <= 8 && tiled_reference.size() >= 3 * residues; ++g) {
      const auto coding = core::random_template_coding(protein, rng);
      const std::size_t at = g * (tiled_bases / 9);
      for (std::size_t i = 0; i < coding.size(); ++i)
        tiled_reference[at + i] = coding[i];
    }
    const bio::PackedNucleotides tiled_packed{tiled_reference};
    tiled_reference = bio::NucleotideSequence{};  // keep only 0.25 B/base

    const core::TileScanner scanner{tiled_packed};
    tiled.reference_bases = tiled_bases;
    tiled.tile_positions = scanner.tile_positions();
    tiled.scratch_bytes = scanner.scratch_bytes(elements.size());

    std::cout << "\n  tile-fused vs precompiled planes, cold "
              << tiled_bases / 1'000'000 << " Mbp x " << residues
              << " aa (tile " << tiled.tile_positions << " positions, "
              << tiled.scratch_bytes / 1024 << " KiB scratch/thread)\n\n";

    const long rss_0 = peak_rss_kb();
    std::vector<core::Hit> tiled_hits;
    {
      util::Timer timer;
      tiled_hits = scanner.hits(compiled_query, threshold);
      tiled.cold_tiled_s = timer.seconds();
    }
    tiled.tiled_rss_delta_kb = peak_rss_kb() - rss_0;

    // Thread sweep over the tiled path (whole-tile chunks, deterministic
    // merge).  Records the pool's actual width; on a machine with fewer
    // cores the wider pools time-share, so the win saturates at the core
    // count — the row still proves pooling never costs throughput.
    for (std::size_t request : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      util::ThreadPool sweep_pool{request};
      std::vector<core::Hit> pooled;
      const double s = best_of(reps, pooled, [&] {
        return scanner.hits(compiled_query, threshold, &sweep_pool);
      });
      mismatch |= pooled != tiled_hits;
      tiled.thread_sweep.push_back(
          {sweep_pool.size(), s,
           tiled.thread_sweep.empty()
               ? 1.0
               : tiled.thread_sweep.front().seconds / s});
    }

    // Tile-size sweep: too small re-pays per-tile entry/exit overhead,
    // too large spills the compiled planes out of L2 and the fused path
    // degenerates toward the precompiled path's traffic pattern.
    for (std::size_t tile : {std::size_t{32} * 1024, std::size_t{128} * 1024,
                             std::size_t{512} * 1024,
                             std::size_t{2048} * 1024}) {
      const core::TileScanner swept{tiled_packed, {.tile_positions = tile}};
      std::vector<core::Hit> hits;
      const double s = best_of(reps, hits, [&] {
        return swept.hits(compiled_query, threshold);
      });
      mismatch |= hits != tiled_hits;
      tiled.tile_sweep.push_back(
          {swept.tile_positions(), swept.scratch_bytes(elements.size()), s});
    }

    // Cold precompiled path: whole-reference plane build, then the scan.
    const long rss_1 = peak_rss_kb();
    std::vector<core::Hit> plane_path_hits;
    {
      util::Timer compile;
      const core::BitScanReference planes{tiled_packed};
      tiled.cold_planes_compile_s = compile.seconds();
      tiled.planes_rss_delta_kb = peak_rss_kb() - rss_1;
      util::Timer scan;
      core::bitscan_range(compiled_query, planes, threshold, 0,
                          tiled_packed.size() - elements.size() + 1,
                          plane_path_hits);
      tiled.cold_planes_scan_s = scan.seconds();
    }
    mismatch |= plane_path_hits != tiled_hits;
    tiled.fused_speedup =
        (tiled.cold_planes_compile_s + tiled.cold_planes_scan_s) /
        tiled.cold_tiled_s;

    util::Table tiled_table{{"path", "compile", "scan", "total", "speedup",
                             "peak-RSS delta"}};
    tiled_table.row()
        .cell("planes (precompiled)")
        .cell(util::time_text(tiled.cold_planes_compile_s))
        .cell(util::time_text(tiled.cold_planes_scan_s))
        .cell(util::time_text(tiled.cold_planes_compile_s +
                              tiled.cold_planes_scan_s))
        .cell(util::ratio_text(1.0))
        .cell(std::to_string(tiled.planes_rss_delta_kb / 1024) + " MiB");
    tiled_table.row()
        .cell("tiled (fused)")
        .cell("-")
        .cell(util::time_text(tiled.cold_tiled_s))
        .cell(util::time_text(tiled.cold_tiled_s))
        .cell(util::ratio_text(tiled.fused_speedup))
        .cell(std::to_string(tiled.tiled_rss_delta_kb / 1024) + " MiB");
    tiled_table.print(std::cout);

    std::cout << "\n";
    util::Table sweep_table{{"tiled threads", "time", "speedup vs 1T"}};
    for (const ThreadSweepResult& t : tiled.thread_sweep)
      sweep_table.row()
          .cell(t.threads)
          .cell(util::time_text(t.seconds))
          .cell(util::ratio_text(t.speedup_vs_1t));
    sweep_table.print(std::cout);

    std::cout << "\n";
    util::Table tile_table{{"tile positions", "scratch/thread", "time"}};
    for (const TileSweepResult& t : tiled.tile_sweep)
      tile_table.row()
          .cell(t.tile_positions)
          .cell(std::to_string(t.scratch_bytes / 1024) + " KiB")
          .cell(util::time_text(t.seconds));
    tile_table.print(std::cout);
  }

  // ------------------------------------------------------------------
  // Measured DRAM-bandwidth ceiling.  The copy/read probes stream buffers
  // far larger than any cache level (512 MiB each — the build host's L3
  // is 260 MiB), so they measure memory, not cache.  The scan rows reuse
  // the tiled thread sweep's wall times: bytes-moved comes from the
  // traffic model (0.25 B/base plus the inter-tile overhang), so
  // scan_gbps is the packed-stream bandwidth the scan actually sustains,
  // and frac-of-peak places it on the machine's roofline.  A low
  // fraction at one thread means the scan is compute-bound there;
  // cores_to_saturate says how many such cores the measured ceiling
  // could feed before the scan turns memory-bound.
  BandwidthSection bw;
  {
    constexpr std::size_t kBwBufferBytes = 512ull * 1024 * 1024;
    bw.buffer_bytes = kBwBufferBytes;
    bw.copy_gbps = measure_copy_gbps(pool, kBwBufferBytes, reps);
    bw.read_gbps = measure_read_gbps(pool, kBwBufferBytes, reps);
    bw.reference_bases = tiled.reference_bases;
    bw.model_bytes = scan_model_bytes(tiled.reference_bases, elements.size(),
                                      tiled.tile_positions);
    bw.theoretical_bytes = (tiled.reference_bases + 3) / 4;
    for (const ThreadSweepResult& t : tiled.thread_sweep) {
      BandwidthRow row;
      row.threads = t.threads;
      row.seconds = t.seconds;
      row.scan_gbps = static_cast<double>(bw.model_bytes) / t.seconds / 1e9;
      row.frac_of_copy = bw.copy_gbps > 0 ? row.scan_gbps / bw.copy_gbps : 0;
      row.frac_of_read = bw.read_gbps > 0 ? row.scan_gbps / bw.read_gbps : 0;
      bw.rows.push_back(row);
    }
    if (!bw.rows.empty() && bw.rows.front().scan_gbps > 0)
      bw.cores_to_saturate = bw.copy_gbps / bw.rows.front().scan_gbps;

    std::cout << "\n  DRAM ceiling (" << kBwBufferBytes / (1024 * 1024)
              << " MiB buffers, " << pool.size() << " threads): copy "
              << bw.copy_gbps << " GB/s, read " << bw.read_gbps
              << " GB/s\n  scan streams "
              << static_cast<double>(bw.model_bytes) / 1e6 << " MB ("
              << static_cast<double>(bw.model_bytes) /
                     static_cast<double>(bw.theoretical_bytes)
              << "x the 0.25 B/base floor); ~" << bw.cores_to_saturate
              << " cores at 1-thread rate would saturate copy peak\n\n";
    util::Table bw_table{{"scan threads", "time", "GB/s", "of copy peak",
                          "of read peak"}};
    for (const BandwidthRow& r : bw.rows)
      bw_table.row()
          .cell(r.threads)
          .cell(util::time_text(r.seconds))
          .cell(r.scan_gbps, 2)
          .cell(util::percent_text(r.frac_of_copy, 1))
          .cell(util::percent_text(r.frac_of_read, 1));
    bw_table.print(std::cout);
  }

  if (mismatch) {
    std::cerr << "ENGINE MISMATCH: some kernel differs from the scalar"
                 " oracle\n";
    return 1;
  }
  std::cout << "\n  hit lists identical across all engines and batches.\n";

  write_json(json_path, bases, residues, elements.size(), threshold, reps,
             batch_bases, batch_residues, env, results, batches, fault, tiled,
             bw);
  std::cout << "  wrote " << json_path << "\n";
  return 0;
}
