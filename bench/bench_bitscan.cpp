// E9 — software scan engines: the scalar golden oracle vs the bit-sliced
// 64-lane engine, single-threaded and chunked over the thread pool, on a
// multi-megabase reference.  All three engines must produce identical hit
// lists (checked here, not just in the unit tests).  Alongside the console
// table the harness writes BENCH_bitscan.json so CI and scripts can track
// the speedup without scraping text.
//
//   bench_bitscan [bases] [query_residues] [reps] [json_path]
//
// Defaults: 4,000,000 bases, 20 residues, best-of-3, BENCH_bitscan.json.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/util/table.hpp"
#include "fabp/util/thread_pool.hpp"
#include "fabp/util/timer.hpp"

namespace {

using namespace fabp;

struct EngineResult {
  std::string engine;
  std::size_t threads;
  double seconds;
  double bases_per_second;
  double speedup;
  std::size_t hits;
};

// Best-of-`reps` wall time; the scan result of the last repetition is kept
// so the harness can cross-check the engines against each other.
template <typename Fn>
double best_of(int reps, std::vector<core::Hit>& out, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    out = fn();
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

void write_json(const std::string& path, std::size_t bases,
                std::size_t residues, std::size_t elements,
                std::uint32_t threshold, int reps,
                const std::vector<EngineResult>& results) {
  std::ofstream os{path};
  os << "{\n"
     << "  \"bench\": \"bitscan\",\n"
     << "  \"config\": {\n"
     << "    \"reference_bases\": " << bases << ",\n"
     << "    \"query_residues\": " << residues << ",\n"
     << "    \"query_elements\": " << elements << ",\n"
     << "    \"threshold\": " << threshold << ",\n"
     << "    \"repetitions\": " << reps << "\n"
     << "  },\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"threads\": "
       << r.threads << ", \"seconds\": " << r.seconds
       << ", \"bases_per_second\": " << r.bases_per_second
       << ", \"speedup_vs_scalar\": " << r.speedup << ", \"hits\": "
       << r.hits << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t bases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000;
  const std::size_t residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  // At least one repetition, or the timings (and the JSON) degenerate to
  // inf/nan.
  const int reps = std::max(argc > 3 ? std::atoi(argv[3]) : 3, 1);
  const std::string json_path = argc > 4 ? argv[4] : "BENCH_bitscan.json";

  util::Xoshiro256 rng{424242};
  const bio::ProteinSequence protein = bio::random_protein(residues, rng);
  bio::NucleotideSequence reference = bio::random_dna(bases, rng);
  const auto elements = core::back_translate(protein);
  // Plant a handful of template-compatible genes so the hit-extraction
  // path runs, not just the all-zero fast path of the compare.
  for (std::size_t g = 1; g <= 8 && reference.size() >= 3 * residues; ++g) {
    const auto coding = core::random_template_coding(protein, rng);
    const std::size_t at = g * (bases / 9);
    for (std::size_t i = 0; i < coding.size(); ++i)
      reference[at + i] = coding[i];
  }
  // High enough that random background rarely fires, low enough that the
  // hit-extraction path is still exercised.
  const auto threshold =
      static_cast<std::uint32_t>(elements.size() * 4 / 5);

  util::banner(std::cout, "Software scan engines, " +
                              std::to_string(bases / 1'000'000) + " Mbp x " +
                              std::to_string(residues) + " aa query");

  // Reference compilation is part of the bit-sliced engines' setup cost —
  // report it, but time the scans against a prebuilt BitScanReference
  // (the reuse model of Session::software_hits).
  util::Timer compile_timer;
  const core::BitScanReference compiled_ref{reference};
  const double compile_s = compile_timer.seconds();
  const core::BitScanQuery compiled_query{elements};

  const std::size_t hw_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  util::ThreadPool pool{hw_threads};

  std::vector<core::Hit> scalar_hits, bitscan, threaded;
  const double scalar_s = best_of(reps, scalar_hits, [&] {
    return core::golden_hits(elements, reference, threshold);
  });
  const double bitscan_s = best_of(reps, bitscan, [&] {
    return core::bitscan_hits(compiled_query, compiled_ref, threshold);
  });
  const double threaded_s = best_of(reps, threaded, [&] {
    return core::bitscan_hits_parallel(compiled_query, compiled_ref,
                                       threshold, pool);
  });

  if (bitscan != scalar_hits || threaded != scalar_hits) {
    std::cerr << "ENGINE MISMATCH: bit-sliced output differs from the"
                 " scalar oracle\n";
    return 1;
  }

  const std::vector<EngineResult> results{
      {"scalar_golden", 1, scalar_s, static_cast<double>(bases) / scalar_s,
       1.0, scalar_hits.size()},
      {"bitscan", 1, bitscan_s, static_cast<double>(bases) / bitscan_s,
       scalar_s / bitscan_s, bitscan.size()},
      {"bitscan_parallel", hw_threads, threaded_s,
       static_cast<double>(bases) / threaded_s, scalar_s / threaded_s,
       threaded.size()},
  };

  util::Table table{{"engine", "threads", "time", "Mbases/s", "speedup",
                     "hits"}};
  for (const EngineResult& r : results) {
    table.row()
        .cell(r.engine)
        .cell(r.threads)
        .cell(util::time_text(r.seconds))
        .cell(r.bases_per_second / 1e6, 1)
        .cell(util::ratio_text(r.speedup))
        .cell(r.hits);
  }
  table.print(std::cout);
  std::cout << "\n  reference compile (12 planes): "
            << util::time_text(compile_s) << " (amortised across queries)\n"
            << "  hit lists identical across all engines.\n";

  write_json(json_path, bases, residues, elements.size(), threshold, reps,
             results);
  std::cout << "  wrote " << json_path << "\n";
  return 0;
}
