// Ablation — memory channels (§III-C / §IV-B): "For the sequence length of
// 50, the memory bandwidth bounds the maximum performance/parallelism.
// Therefore, more memory channels will further accelerate alignment."
//
// Sweeps the number of available channels on a Kintex-7-class device
// (holding the fabric constant) and on the larger VU9P-class part, and
// reports the mapper's channel choice, effective bandwidth and the 1 GB
// scan time per query length.

#include <iostream>

#include "fabp/core/mapper.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  for (const bool big : {false, true}) {
    hw::FpgaDevice base = big ? hw::virtex_ultrascale_plus() : hw::kintex7();
    util::banner(std::cout, "Channel scaling on " + base.name +
                                "-class fabric");
    util::Table table{{"channels avail", "query(aa)", "channels used",
                       "segments", "LUT", "eff. BW", "1GB scan(s)"}};
    for (std::size_t avail : {1u, 2u, 4u}) {
      hw::FpgaDevice device = base;
      device.memory_channels = avail;
      for (std::size_t residues : {50u, 250u}) {
        const core::FabpMapping m = core::map_design(device, residues * 3);
        if (!m.feasible) {
          table.row().cell(avail).cell(residues).cell("-").cell("-")
              .cell("does not fit").cell("-").cell("-");
          continue;
        }
        table.row()
            .cell(avail)
            .cell(residues)
            .cell(m.channels)
            .cell(m.segments)
            .cell(util::percent_text(m.lut_util, 0))
            .cell(util::bandwidth_text(m.effective_bandwidth_bps))
            .cell(1e9 / m.effective_bandwidth_bps, 3);
      }
    }
    table.print(std::cout);
  }
  std::cout << "\n  reading: the Kintex-7 fabric has no LUT headroom for a"
               " second channel's 256\n  instances, so extra channels only"
               " help on larger fabrics — and only for\n  queries that were"
               " bandwidth-bound (short ones), exactly as §IV-B argues.\n";
  return 0;
}
