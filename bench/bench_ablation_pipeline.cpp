// Ablation — pipelining and clock closure (§III-C "multi-stage pipelined
// architecture", §III-D "pipelined Pop-Counter").
//
// Builds real alignment-instance netlists (comparator column + Pop-Counter
// + threshold compare) flat and pipelined, runs static timing on the
// Kintex-7-class delay model, and reports Fmax against the 200 MHz kernel
// clock that the paper's 12.8 GB/s AXI figure implies.  Also quantifies
// the register cost of pipelining.

#include <iostream>

#include "fabp/core/instance.hpp"
#include "fabp/hw/timing.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  util::banner(std::cout, "Alignment-instance timing: flat vs pipelined"
                          " (target 200 MHz)");

  util::Table table{{"elements", "variant", "LUTs", "FFs", "levels",
                     "path(ns)", "Fmax(MHz)", "meets 200MHz"}};
  for (std::size_t elements : {36u, 150u, 450u, 750u}) {
    for (const bool pipelined : {false, true}) {
      core::InstanceConfig config;
      config.elements = elements;
      config.threshold = static_cast<std::uint32_t>(elements * 4 / 5);
      config.pipelined = pipelined;

      hw::Netlist nl;
      core::build_alignment_instance(nl, config);
      const hw::NetlistStats stats = nl.stats();
      const hw::TimingReport timing = hw::analyze_timing(nl);

      table.row()
          .cell(elements)
          .cell(pipelined ? "pipelined" : "flat")
          .cell(stats.luts)
          .cell(stats.ffs)
          .cell(timing.logic_levels)
          .cell(timing.critical_path_ns, 2)
          .cell(timing.fmax_hz / 1e6, 0)
          .cell(timing.meets(200e6) ? "yes" : "NO");
    }
  }
  table.print(std::cout);

  std::cout << "\n  the flat datapath misses the kernel clock beyond one"
               " Pop36 stage; the\n  3-stage pipeline (comparators ->"
               " Pop36 -> reduction) restores it at the\n  cost of the FF"
               " column — which is why Table I shows heavy FF use.\n";
  return 0;
}
