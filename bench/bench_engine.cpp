// E15 — serving engine: what queue-depth coalescing buys.  A closed-loop
// client pool offers load to the Engine at increasing concurrency; the
// harness records sustained queries/second, p50/p99 request latency and
// the coalesced-batch occupancy the scheduler achieved, for the tiled
// software backend and the full hw-sim card model.  The 1-client
// sequential row (Session-facade path, no queue) is the baseline every
// sweep point is compared against, and every completed request's hit
// list is checked against that baseline — a throughput number from a
// wrong answer is worthless.  Alongside the console tables the harness
// writes BENCH_engine.json.
//
//   bench_engine [bases] [query_residues] [requests] [json_path]
//
// Defaults: 8,000,000 bases, 20 residues, 160 requests per sweep point,
// BENCH_engine.json.  The reference defaults cache-cold-ish (2 MB packed)
// so the tile-compile amortisation that coalescing buys is visible; tiny
// references that live in L2 flatten the effect.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/core/engine.hpp"
#include "fabp/net/loadgen.hpp"
#include "fabp/net/server.hpp"
#include "fabp/util/benchenv.hpp"
#include "fabp/util/cpuid.hpp"
#include "fabp/util/rng.hpp"
#include "fabp/util/table.hpp"
#include "fabp/util/timer.hpp"

namespace {

using namespace fabp;
using core::BackendKind;
using core::Engine;
using core::EngineConfig;
using core::EngineStats;
using core::Hit;
using Clock = std::chrono::steady_clock;

struct LoadPoint {
  std::size_t clients = 0;  // 0 = sequential align_sync baseline
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double speedup = 1.0;  // qps / sequential qps
  double occupancy = 0.0;
  std::size_t batches = 0;
  std::size_t largest_batch = 0;
};

struct BackendSection {
  BackendKind kind = BackendKind::Tiled;
  std::vector<LoadPoint> points;  // points[0] is the sequential baseline
  bool hits_match = true;
};

// One device batch scheduler configuration of the hw-sim card model
// (DESIGN.md §4d): modeled sustained throughput of packed invocations at
// a given PE count and DMA buffer depth, checked hit-for-hit against the
// serial hw-sim path.
struct PipelinePoint {
  std::size_t pe_count = 1;
  std::size_t buffer_depth = 1;
  core::DevicePipelineStats stats;
  double speedup = 1.0;  // modeled qps vs the (pe=1, depth=1) baseline
  bool hits_match = true;
};

double percentile_ms(std::vector<double>& latencies_s, double fraction) {
  if (latencies_s.empty()) return 0.0;
  std::sort(latencies_s.begin(), latencies_s.end());
  const std::size_t last = latencies_s.size() - 1;
  const std::size_t index = static_cast<std::size_t>(
      static_cast<double>(last) * fraction + 0.5);
  return latencies_s[std::min(index, last)] * 1e3;
}

EngineConfig engine_config(BackendKind kind, std::size_t requests) {
  EngineConfig config;
  config.backend = kind;
  config.workers = 2;
  config.queue_capacity = std::max<std::size_t>(requests, 256);
  return config;
}

// Sequential baseline: the Session-facade path, one align_sync at a time
// on a single thread.  No queue, no coalescing — per-request latency is
// exactly one full scan.
LoadPoint run_sequential(Engine& engine,
                         const std::vector<bio::ProteinSequence>& queries,
                         const std::vector<std::uint32_t>& thresholds,
                         std::size_t requests,
                         std::vector<std::vector<Hit>>& expected_out) {
  expected_out.clear();
  for (std::size_t q = 0; q < queries.size(); ++q)
    expected_out.push_back(
        engine.align_sync(queries[q], thresholds[q])->hits);

  std::vector<double> latencies;
  latencies.reserve(requests);
  util::Timer timer;
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t q = i % queries.size();
    const Clock::time_point start = Clock::now();
    const auto report = engine.align_sync(queries[q], thresholds[q]);
    if (!report.has_value() || report->hits != expected_out[q])
      std::abort();  // the baseline itself must be self-consistent
    latencies.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  LoadPoint point;
  point.clients = 0;
  point.seconds = timer.seconds();
  point.qps = static_cast<double>(requests) / point.seconds;
  point.p50_ms = percentile_ms(latencies, 0.50);
  point.p99_ms = percentile_ms(latencies, 0.99);
  return point;
}

// Closed loop against an existing engine: `clients` threads, each
// submitting and waiting one request at a time, so the offered
// concurrency equals the client count and the queue depth the scheduler
// sees is organic.
LoadPoint closed_loop(Engine& engine,
                      const std::vector<bio::ProteinSequence>& queries,
                      const std::vector<std::uint32_t>& thresholds,
                      const std::vector<std::vector<Hit>>& expected,
                      std::size_t clients, std::size_t requests,
                      bool& hits_match) {
  const std::size_t per_client = requests / clients;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> mismatches{0};

  std::vector<std::thread> pool;
  pool.reserve(clients);
  util::Timer timer;
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t q = (c * per_client + i) % queries.size();
        const Clock::time_point start = Clock::now();
        core::Ticket ticket = engine.submit(queries[q], thresholds[q]);
        const auto report = ticket.wait();
        latencies[c].push_back(
            std::chrono::duration<double>(Clock::now() - start).count());
        if (!report.has_value() || report->hits != expected[q]) ++mismatches;
      }
    });
  }
  for (std::thread& client : pool) client.join();
  const double elapsed = timer.seconds();
  if (mismatches.load() != 0) hits_match = false;

  std::vector<double> all;
  for (const std::vector<double>& client : latencies)
    all.insert(all.end(), client.begin(), client.end());

  const EngineStats stats = engine.stats();
  LoadPoint point;
  point.clients = clients;
  point.seconds = elapsed;
  point.qps = static_cast<double>(per_client * clients) / elapsed;
  point.p50_ms = percentile_ms(all, 0.50);
  point.p99_ms = percentile_ms(all, 0.99);
  point.occupancy = stats.batch_occupancy();
  point.batches = stats.coalesced_batches;
  point.largest_batch = stats.largest_batch;
  return point;
}

// One sweep point over a fresh engine of the given backend kind.
LoadPoint run_load_point(BackendKind kind, const bio::NucleotideSequence& ref,
                         const std::vector<bio::ProteinSequence>& queries,
                         const std::vector<std::uint32_t>& thresholds,
                         const std::vector<std::vector<Hit>>& expected,
                         std::size_t clients, std::size_t requests,
                         bool& hits_match) {
  Engine engine{engine_config(kind, requests)};
  engine.upload_reference(bio::NucleotideSequence{ref});
  return closed_loop(engine, queries, thresholds, expected, clients, requests,
                     hits_match);
}

BackendSection run_backend(BackendKind kind, const bio::NucleotideSequence& ref,
                           const std::vector<bio::ProteinSequence>& queries,
                           const std::vector<std::uint32_t>& thresholds,
                           std::size_t requests) {
  BackendSection section;
  section.kind = kind;

  Engine baseline{engine_config(kind, requests)};
  baseline.upload_reference(bio::NucleotideSequence{ref});
  std::vector<std::vector<Hit>> expected;
  section.points.push_back(
      run_sequential(baseline, queries, thresholds, requests, expected));
  const double sequential_qps = section.points.front().qps;

  for (const std::size_t clients : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}, std::size_t{16}}) {
    LoadPoint point =
        run_load_point(kind, ref, queries, thresholds, expected, clients,
                       requests, section.hits_match);
    point.speedup = point.qps / sequential_qps;
    section.points.push_back(point);
  }
  return section;
}

// Modeled device pipeline sweep: 64 requests packed 8-to-an-invocation
// (8 invocations — deep enough for the ping/pong pipe to reach steady
// state) through the hw-sim backend's run_many at each (PE count, buffer
// depth) shape.  Throughput is the *model's* sustained rate
// (tasks / pipelined makespan), so the sweep isolates what double
// buffering and reference slicing buy in modeled time, independent of
// host wall-clock noise.
std::vector<PipelinePoint> run_hwsim_pipeline(
    const bio::NucleotideSequence& ref,
    const std::vector<bio::ProteinSequence>& queries,
    const std::vector<std::uint32_t>& thresholds) {
  constexpr std::size_t kRequests = 64;
  core::ReferenceStore store;
  store.upload(bio::PackedNucleotides{ref}, false);

  std::vector<core::CompiledQueryPtr> compiled;
  for (const bio::ProteinSequence& query : queries)
    compiled.push_back(core::compile_query(query));
  std::vector<core::BackendRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i) {
    core::BackendRequest request;
    request.query = compiled[i % compiled.size()].get();
    request.threshold = thresholds[i % thresholds.size()];
    requests.push_back(request);
  }

  // Serial hw-sim truth: one run() per request.
  const core::HostConfig serial_config;
  const auto serial =
      core::make_backend(BackendKind::HwSim, serial_config, store);
  std::vector<std::vector<Hit>> expected;
  for (const core::BackendRequest& request : requests) {
    auto run = serial->run(request);
    if (!run.has_value()) std::abort();
    expected.push_back(std::move(run->hits));
  }

  std::vector<PipelinePoint> points;
  const std::size_t shapes[][2] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}, {4, 2}};
  for (const auto& shape : shapes) {
    core::HostConfig config;
    config.device_batch.invocation_tasks = 8;
    config.device_batch.pe_count = shape[0];
    config.device_batch.buffer_depth = shape[1];
    const auto backend = core::make_backend(BackendKind::HwSim, config, store);
    const auto results = backend->run_many(requests);

    PipelinePoint point;
    point.pe_count = shape[0];
    point.buffer_depth = shape[1];
    for (std::size_t q = 0; q < results.size(); ++q)
      if (!results[q].has_value() || results[q]->hits != expected[q])
        point.hits_match = false;
    point.stats = backend->pipeline_stats();
    if (!points.empty() && points.front().stats.modeled_qps() > 0.0)
      point.speedup =
          point.stats.modeled_qps() / points.front().stats.modeled_qps();
    points.push_back(point);
  }
  return points;
}

// One (shard count, client count) point of the scatter/gather router
// sweep (DESIGN.md §4e): the engine routes every batch through N modeled
// cards, each holding 1/N of the reference (+ halo).  Wall QPS on this
// host is bounded by the software simulation of all N cards sharing the
// CPU, so the headline scaling number is the *merged modeled* throughput
// (tasks / slowest-card pipelined makespan) — the same modeled-time
// methodology as the device batch pipeline sweep above.
struct ShardPoint {
  std::size_t shards = 1;
  std::size_t clients = 1;
  double seconds = 0.0;
  double qps = 0.0;             // host wall clock
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double modeled_qps = 0.0;     // merged cross-card pipeline view
  double modeled_speedup = 1.0; // vs the 1-shard point at same clients
  double scatter_gather_s = 0.0;
  bool hits_match = true;
};

std::vector<ShardPoint> run_shard_sweep(
    const bio::NucleotideSequence& ref,
    const std::vector<bio::ProteinSequence>& queries,
    const std::vector<std::uint32_t>& thresholds, std::size_t requests) {
  // Unsharded truth: every sweep point's hits must match these.
  Engine baseline{engine_config(BackendKind::HwSim, requests)};
  baseline.upload_reference(bio::NucleotideSequence{ref});
  std::vector<std::vector<Hit>> expected;
  for (std::size_t q = 0; q < queries.size(); ++q)
    expected.push_back(baseline.align_sync(queries[q], thresholds[q])->hits);

  std::vector<ShardPoint> points;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t clients :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      EngineConfig config = engine_config(BackendKind::HwSim, requests);
      config.shard.shard_count = shards;
      Engine engine{config};
      engine.upload_reference(bio::NucleotideSequence{ref});

      ShardPoint point;
      point.shards = shards;
      point.clients = clients;
      const LoadPoint load = closed_loop(engine, queries, thresholds,
                                         expected, clients, requests,
                                         point.hits_match);
      point.seconds = load.seconds;
      point.qps = load.qps;
      point.p50_ms = load.p50_ms;
      point.p99_ms = load.p99_ms;
      point.modeled_qps = engine.pipeline_stats().modeled_qps();
      point.scatter_gather_s = engine.shard_overhead_seconds();
      points.push_back(point);
    }
  }
  for (ShardPoint& point : points)
    for (const ShardPoint& base : points)
      if (base.shards == 1 && base.clients == point.clients &&
          base.modeled_qps > 0.0)
        point.modeled_speedup = point.modeled_qps / base.modeled_qps;
  return points;
}

void print_shard_sweep(const std::vector<ShardPoint>& points) {
  util::banner(std::cout,
               "engine: shard router sweep (hw-sim, N modeled cards)");
  util::Table table{{"shards", "clients", "wall q/s", "p50", "p99",
                     "modeled q/s", "vs 1 shard", "scatter+gather"}};
  for (const ShardPoint& p : points) {
    table.row();
    table.cell(p.shards)
        .cell(p.clients)
        .cell(p.qps, 1)
        .cell(util::time_text(p.p50_ms * 1e-3))
        .cell(util::time_text(p.p99_ms * 1e-3))
        .cell(p.modeled_qps, 1)
        .cell(util::ratio_text(p.modeled_speedup, 2))
        .cell(util::time_text(p.scatter_gather_s));
  }
  table.print(std::cout);
  bool all_match = true;
  for (const ShardPoint& p : points) all_match &= p.hits_match;
  std::cout << "  hits identical to unsharded baseline: "
            << (all_match ? "yes" : "NO — BUG") << "\n";
}

// End-to-end TCP measurement: a real WireServer over a sharded engine,
// hit by the closed-loop loadgen client over localhost.  This prices the
// whole serving stack — framing, sockets, engine queue, scatter/gather —
// not just the engine core.
struct TcpPoint {
  std::size_t shards = 1;
  std::size_t clients = 1;
  net::LoadgenReport report;
};

std::vector<TcpPoint> run_tcp_sweep(const bio::NucleotideSequence& ref,
                                    std::size_t residues,
                                    std::size_t requests) {
  std::vector<TcpPoint> points;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    EngineConfig config = engine_config(BackendKind::HwSim, requests);
    config.shard.shard_count = shards;
    Engine engine{config};
    engine.upload_reference(bio::NucleotideSequence{ref});
    net::WireServer server{engine, {}};
    std::thread accept_thread{[&server] { server.serve(); }};
    for (const std::size_t clients :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      net::LoadgenConfig load;
      load.port = server.port();
      load.clients = clients;
      load.requests = requests;
      load.query_residues = residues;
      TcpPoint point;
      point.shards = shards;
      point.clients = clients;
      point.report = net::run_loadgen(load);
      points.push_back(point);
    }
    server.shutdown();
    accept_thread.join();
  }
  return points;
}

// Resilience sweep (DESIGN.md §4f): offered load pushed past capacity —
// one engine worker, client counts far above it — with edge shedding off
// vs on.  Every request carries a deadline and rides the retrying
// net::Client, so the sweep prices exactly what a saturated deployment
// sees: completed-QPS and p50/p99 of the *successful* calls, the typed
// refusal/expiry counts, and the retry-amplification factor (mean wire
// attempts per request) the client pool pays to get its work through.
struct ResiliencePoint {
  bool shedding = false;
  std::size_t clients = 1;
  net::LoadgenReport report;
};

std::vector<ResiliencePoint> run_resilience_sweep(
    const bio::NucleotideSequence& ref, std::size_t residues,
    std::size_t requests) {
  std::vector<ResiliencePoint> points;
  for (const bool shedding : {false, true}) {
    EngineConfig config = engine_config(BackendKind::HwSim, requests);
    config.workers = 1;  // capacity ~1 coalesced batch at a time
    Engine engine{config};
    engine.upload_reference(bio::NucleotideSequence{ref});
    net::ServerConfig server_config;
    if (shedding) server_config.shed_queue_depth = 4;
    net::WireServer server{engine, server_config};
    std::thread accept_thread{[&server] { server.serve(); }};
    for (const std::size_t clients :
         {std::size_t{4}, std::size_t{8}, std::size_t{16}}) {
      net::LoadgenConfig load;
      load.port = server.port();
      load.clients = clients;
      load.requests = requests;
      load.query_residues = residues;
      load.deadline_s = 2.0;
      load.retry.max_attempts = 4;
      ResiliencePoint point;
      point.shedding = shedding;
      point.clients = clients;
      point.report = net::run_loadgen(load);
      points.push_back(point);
    }
    server.shutdown();
    accept_thread.join();
  }
  return points;
}

// Two-tenant fairness sweep (DESIGN.md §4g): tenants "heavy" (weight 4)
// and "light" (weight 1) each keep a closed-loop client pool saturating
// their queue; the stride scheduler must hand heavy 4x light's
// throughput — within 10% — while both stay backlogged.  Run once with
// quotas off and once with a tight queue quota on light, which converts
// light's excess offered load into typed TenantQuotaExceeded refusals
// without disturbing the 4:1 split of executed work.
struct FairnessPoint {
  bool quota_on = false;
  double window_s = 0.0;
  std::size_t heavy_completed = 0;  // inside the measurement window
  std::size_t light_completed = 0;
  double heavy_qps = 0.0;
  double light_qps = 0.0;
  double ratio = 0.0;  // heavy_qps / light_qps; ideal = 4.0
  double heavy_p50_ms = 0.0;
  double light_p50_ms = 0.0;
  std::size_t quota_rejections = 0;
  bool hits_match = true;
};

std::vector<FairnessPoint> run_fairness_sweep(
    const bio::NucleotideSequence& ref,
    const std::vector<bio::ProteinSequence>& queries,
    const std::vector<std::uint32_t>& thresholds) {
  // Truth hits once, against the same backend kind.
  std::vector<std::vector<Hit>> expected;
  {
    Engine truth{engine_config(BackendKind::HwSim, 16)};
    truth.upload_reference(bio::NucleotideSequence{ref});
    for (std::size_t q = 0; q < queries.size(); ++q)
      expected.push_back(truth.align_sync(queries[q], thresholds[q])->hits);
  }

  std::vector<FairnessPoint> points;
  for (const bool quota_on : {false, true}) {
    EngineConfig config = engine_config(BackendKind::HwSim, 16);
    config.workers = 1;       // one modeled card: tenants truly compete
    config.max_coalesce = 1;  // one dequeue per pick: exact stride shares
    config.tenants = {{"heavy", 4.0, 0},
                      {"light", 1.0, quota_on ? std::size_t{2} : 0}};
    Engine engine{config};
    engine.upload_reference(bio::NucleotideSequence{ref});

    constexpr std::size_t kClientsPerTenant = 6;
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> mismatches{0};
    std::atomic<std::size_t> quota_rejections{0};
    std::vector<std::thread> pool;
    for (const char* tenant : {"heavy", "light"}) {
      for (std::size_t c = 0; c < kClientsPerTenant; ++c) {
        pool.emplace_back([&, tenant, c] {
          core::RequestOptions options;
          options.tenant = tenant;
          std::size_t i = c;
          while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t q = i++ % queries.size();
            core::Ticket ticket =
                engine.submit(queries[q], thresholds[q], options);
            const auto report = ticket.wait();
            if (report.has_value()) {
              if (report->hits != expected[q]) ++mismatches;
            } else if (report.error().code ==
                       core::ErrorCode::TenantQuotaExceeded) {
              ++quota_rejections;
              std::this_thread::sleep_for(std::chrono::microseconds{200});
            }
          }
        });
      }
    }

    const auto snapshot = [&engine](const std::string& name) {
      for (const core::TenantStatus& tenant : engine.tenant_status())
        if (tenant.name == name) return tenant;
      return core::TenantStatus{};
    };
    // Warm up until both pools are saturated, then measure a fixed window
    // of the backlogged steady state.
    std::this_thread::sleep_for(std::chrono::milliseconds{250});
    const core::TenantStatus heavy0 = snapshot("heavy");
    const core::TenantStatus light0 = snapshot("light");
    const Clock::time_point t0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds{1000});
    const core::TenantStatus heavy1 = snapshot("heavy");
    const core::TenantStatus light1 = snapshot("light");
    const double window =
        std::chrono::duration<double>(Clock::now() - t0).count();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& client : pool) client.join();

    FairnessPoint point;
    point.quota_on = quota_on;
    point.window_s = window;
    point.heavy_completed = heavy1.completed - heavy0.completed;
    point.light_completed = light1.completed - light0.completed;
    point.heavy_qps = static_cast<double>(point.heavy_completed) / window;
    point.light_qps = static_cast<double>(point.light_completed) / window;
    if (point.light_qps > 0.0) point.ratio = point.heavy_qps / point.light_qps;
    point.heavy_p50_ms = heavy1.p50_ms;
    point.light_p50_ms = light1.p50_ms;
    point.quota_rejections = quota_rejections.load();
    point.hits_match = mismatches.load() == 0;
    points.push_back(point);
  }
  return points;
}

void print_fairness_sweep(const std::vector<FairnessPoint>& points) {
  util::banner(std::cout,
               "engine: two-tenant fairness, weights 4:1 (1 worker)");
  util::Table table{{"quota", "heavy q/s", "light q/s", "ratio",
                     "heavy p50", "light p50", "quota-rejections"}};
  for (const FairnessPoint& p : points) {
    table.row();
    table.cell(p.quota_on ? "light<=2" : "off")
        .cell(p.heavy_qps, 1)
        .cell(p.light_qps, 1)
        .cell(util::ratio_text(p.ratio, 2))
        .cell(util::time_text(p.heavy_p50_ms * 1e-3))
        .cell(util::time_text(p.light_p50_ms * 1e-3))
        .cell(p.quota_rejections);
  }
  table.print(std::cout);
  bool within = true;
  for (const FairnessPoint& p : points)
    within &= p.ratio >= 3.6 && p.ratio <= 4.4;
  std::cout << "  throughput split within 10% of 4:1: "
            << (within ? "yes" : "NO — BUG") << "\n";
}

void print_resilience_sweep(const std::vector<ResiliencePoint>& points) {
  util::banner(std::cout,
               "engine: overload resilience (1 worker, 2 s deadlines)");
  util::Table table{{"shedding", "clients", "ok q/s", "p50", "p99",
                     "refused", "expired", "timeouts", "amplification"}};
  for (const ResiliencePoint& p : points) {
    table.row();
    table.cell(p.shedding ? "on" : "off")
        .cell(p.clients)
        .cell(p.report.qps, 1)
        .cell(util::time_text(p.report.p50_ms * 1e-3))
        .cell(util::time_text(p.report.p99_ms * 1e-3))
        .cell(p.report.refused)
        .cell(p.report.expired)
        .cell(p.report.timeouts)
        .cell(util::ratio_text(p.report.retry_amplification(), 2));
  }
  table.print(std::cout);
  bool all_terminal = true;
  for (const ResiliencePoint& p : points)
    all_terminal &= p.report.all_terminal();
  std::cout << "  every request reached a typed terminal outcome: "
            << (all_terminal ? "yes" : "NO — BUG") << "\n";
}

void print_tcp_sweep(const std::vector<TcpPoint>& points) {
  util::banner(std::cout, "engine: TCP serve/loadgen over localhost");
  util::Table table{{"shards", "clients", "q/s", "p50", "p99",
                     "errors"}};
  for (const TcpPoint& p : points) {
    table.row();
    table.cell(p.shards)
        .cell(p.clients)
        .cell(p.report.qps, 1)
        .cell(util::time_text(p.report.p50_ms * 1e-3))
        .cell(util::time_text(p.report.p99_ms * 1e-3))
        .cell(p.report.errors + p.report.transport_failures);
  }
  table.print(std::cout);
}

void print_pipeline(const std::vector<PipelinePoint>& points) {
  util::banner(std::cout, "engine: hw-sim device batch pipeline (modeled)");
  util::Table table{{"PEs", "depth", "invocations", "modeled q/s",
                     "occupancy", "overlap", "PE util", "vs single-buffer"}};
  for (const PipelinePoint& p : points) {
    table.row();
    table.cell(p.pe_count)
        .cell(p.buffer_depth)
        .cell(p.stats.invocations)
        .cell(p.stats.modeled_qps(), 1)
        .cell(p.stats.occupancy(), 2)
        .cell(p.stats.overlap_efficiency(), 2)
        .cell(p.stats.pe_utilization(), 2)
        .cell(util::ratio_text(p.speedup, 2));
  }
  table.print(std::cout);
  bool all_match = true;
  for (const PipelinePoint& p : points) all_match &= p.hits_match;
  std::cout << "  hits identical to serial hw-sim: "
            << (all_match ? "yes" : "NO — BUG") << "\n";
}

void print_section(const BackendSection& section) {
  util::banner(std::cout, std::string{"engine: "} + to_string(section.kind) +
                              " backend");
  util::Table table{{"clients", "time", "queries/s", "p50", "p99",
                     "vs sequential", "occupancy", "batches"}};
  for (const LoadPoint& p : section.points) {
    table.row();
    if (p.clients == 0)
      table.cell("sequential");
    else
      table.cell(p.clients);
    table.cell(util::time_text(p.seconds))
        .cell(p.qps, 1)
        .cell(util::time_text(p.p50_ms * 1e-3))
        .cell(util::time_text(p.p99_ms * 1e-3))
        .cell(util::ratio_text(p.speedup, 2))
        .cell(p.occupancy, 2)
        .cell(p.batches);
  }
  table.print(std::cout);
  std::cout << "  hits identical to sequential baseline: "
            << (section.hits_match ? "yes" : "NO — BUG") << "\n";
}

void write_json(const std::string& path, std::size_t bases,
                std::size_t residues, std::size_t requests,
                const util::BenchEnv& env,
                const std::vector<BackendSection>& sections,
                const std::vector<PipelinePoint>& pipeline,
                const std::vector<ShardPoint>& sharded,
                const std::vector<TcpPoint>& tcp,
                const std::vector<ResiliencePoint>& resilience,
                const std::vector<FairnessPoint>& fairness) {
  std::ofstream os{path};
  os << "{\n"
     << "  \"bench\": \"engine\",\n"
     << "  \"config\": {\n"
     << "    \"reference_bases\": " << bases << ",\n"
     << "    \"query_residues\": " << residues << ",\n"
     << "    \"requests_per_point\": " << requests << ",\n"
     << "    \"workers\": 2,\n"
     << "    \"max_coalesce\": " << EngineConfig{}.max_coalesce << ",\n"
     << "    \"cpu_isa\": \"" << util::cpu_isa_summary() << "\",\n"
     << "    \"environment\": {\n"
     << "      \"hardware_threads\": " << env.hardware_threads << ",\n"
     << "      \"affinity_cpus\": " << env.affinity_cpus << ",\n"
     << "      \"effective_cores\": "
     << std::min(env.hardware_threads, env.affinity_cpus) << ",\n"
     << "      \"governor\": \"" << env.governor << "\"\n"
     << "    }\n"
     << "  },\n"
     << "  \"backends\": [\n";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const BackendSection& section = sections[s];
    os << "    {\"backend\": \"" << to_string(section.kind) << "\", "
       << "\"hits_match_sequential\": "
       << (section.hits_match ? "true" : "false") << ", \"points\": [\n";
    for (std::size_t i = 0; i < section.points.size(); ++i) {
      const LoadPoint& p = section.points[i];
      os << "      {\"mode\": \""
         << (p.clients == 0 ? "sequential" : "engine")
         << "\", \"clients\": " << p.clients << ", \"seconds\": " << p.seconds
         << ", \"queries_per_second\": " << p.qps
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"speedup_vs_sequential\": " << p.speedup
         << ", \"batch_occupancy\": " << p.occupancy
         << ", \"coalesced_batches\": " << p.batches
         << ", \"largest_batch\": " << p.largest_batch << "}"
         << (i + 1 < section.points.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (s + 1 < sections.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"hwsim_pipeline\": [\n";
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    const PipelinePoint& p = pipeline[i];
    os << "    {\"pe_count\": " << p.pe_count
       << ", \"buffer_depth\": " << p.buffer_depth
       << ", \"invocations\": " << p.stats.invocations
       << ", \"tasks\": " << p.stats.tasks
       << ", \"transfer_s\": " << p.stats.transfer_s
       << ", \"compute_s\": " << p.stats.compute_s
       << ", \"serial_s\": " << p.stats.serial_s
       << ", \"pipelined_s\": " << p.stats.pipelined_s
       << ", \"modeled_qps\": " << p.stats.modeled_qps()
       << ", \"occupancy\": " << p.stats.occupancy()
       << ", \"overlap_efficiency\": " << p.stats.overlap_efficiency()
       << ", \"pe_utilization\": " << p.stats.pe_utilization()
       << ", \"speedup_vs_single_buffer\": " << p.speedup
       << ", \"hits_match_serial\": " << (p.hits_match ? "true" : "false")
       << "}" << (i + 1 < pipeline.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"sharded\": [\n";
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const ShardPoint& p = sharded[i];
    os << "    {\"shards\": " << p.shards << ", \"clients\": " << p.clients
       << ", \"seconds\": " << p.seconds
       << ", \"wall_queries_per_second\": " << p.qps
       << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
       << ", \"modeled_qps\": " << p.modeled_qps
       << ", \"modeled_speedup_vs_1_shard\": " << p.modeled_speedup
       << ", \"scatter_gather_s\": " << p.scatter_gather_s
       << ", \"hits_match_unsharded\": " << (p.hits_match ? "true" : "false")
       << "}" << (i + 1 < sharded.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"tcp\": [\n";
  for (std::size_t i = 0; i < tcp.size(); ++i) {
    const TcpPoint& p = tcp[i];
    os << "    {\"shards\": " << p.shards << ", \"clients\": " << p.clients
       << ", \"requests\": " << p.report.sent
       << ", \"completed\": " << p.report.completed
       << ", \"errors\": " << p.report.errors
       << ", \"transport_failures\": " << p.report.transport_failures
       << ", \"wall_s\": " << p.report.wall_s
       << ", \"queries_per_second\": " << p.report.qps
       << ", \"p50_ms\": " << p.report.p50_ms
       << ", \"p99_ms\": " << p.report.p99_ms << "}"
       << (i + 1 < tcp.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"resilience\": [\n";
  for (std::size_t i = 0; i < resilience.size(); ++i) {
    const ResiliencePoint& p = resilience[i];
    os << "    {\"shedding\": " << (p.shedding ? "true" : "false")
       << ", \"clients\": " << p.clients
       << ", \"deadline_s\": 2.0"
       << ", \"sent\": " << p.report.sent
       << ", \"completed\": " << p.report.completed
       << ", \"refused\": " << p.report.refused
       << ", \"expired\": " << p.report.expired
       << ", \"resets\": " << p.report.resets
       << ", \"timeouts\": " << p.report.timeouts
       << ", \"attempts\": " << p.report.attempts
       << ", \"retries\": " << p.report.retries
       << ", \"retry_amplification\": " << p.report.retry_amplification()
       << ", \"wall_s\": " << p.report.wall_s
       << ", \"completed_queries_per_second\": " << p.report.qps
       << ", \"p50_ms\": " << p.report.p50_ms
       << ", \"p99_ms\": " << p.report.p99_ms
       << ", \"all_terminal\": "
       << (p.report.all_terminal() ? "true" : "false") << "}"
       << (i + 1 < resilience.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"fairness\": [\n";
  for (std::size_t i = 0; i < fairness.size(); ++i) {
    const FairnessPoint& p = fairness[i];
    os << "    {\"weights\": \"4:1\", \"light_quota\": "
       << (p.quota_on ? 2 : 0)
       << ", \"window_s\": " << p.window_s
       << ", \"heavy_completed\": " << p.heavy_completed
       << ", \"light_completed\": " << p.light_completed
       << ", \"heavy_queries_per_second\": " << p.heavy_qps
       << ", \"light_queries_per_second\": " << p.light_qps
       << ", \"throughput_ratio\": " << p.ratio
       << ", \"heavy_p50_ms\": " << p.heavy_p50_ms
       << ", \"light_p50_ms\": " << p.light_p50_ms
       << ", \"quota_rejections\": " << p.quota_rejections
       << ", \"hits_match\": " << (p.hits_match ? "true" : "false") << "}"
       << (i + 1 < fairness.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t bases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8'000'000;
  const std::size_t residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
  std::size_t requests =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 160;
  const std::string json_path = argc > 4 ? argv[4] : "BENCH_engine.json";
  requests = std::max<std::size_t>(requests - requests % 16, 16);

  util::Xoshiro256 rng{0xE10};
  const bio::NucleotideSequence ref = bio::random_dna(bases, rng);
  std::vector<bio::ProteinSequence> queries;
  std::vector<std::uint32_t> thresholds;
  for (std::size_t q = 0; q < 8; ++q) {
    queries.push_back(bio::random_protein(residues, rng));
    // 65% of elements: selective on random DNA (median random score is
    // ~45%), so latency measures scan cost, not hit-list copying.
    thresholds.push_back(
        static_cast<std::uint32_t>(queries.back().size() * 3 * 65 / 100));
  }

  std::cout << "bench_engine: " << bases << " bases, " << residues
            << " aa queries, " << requests << " requests per point ("
            << util::cpu_isa_summary() << ")\n";

  std::vector<BackendSection> sections;
  for (const BackendKind kind : {BackendKind::Tiled, BackendKind::HwSim}) {
    sections.push_back(run_backend(kind, ref, queries, thresholds, requests));
    print_section(sections.back());
  }

  const std::vector<PipelinePoint> pipeline =
      run_hwsim_pipeline(ref, queries, thresholds);
  print_pipeline(pipeline);

  const std::vector<ShardPoint> sharded =
      run_shard_sweep(ref, queries, thresholds, requests);
  print_shard_sweep(sharded);

  const std::vector<TcpPoint> tcp = run_tcp_sweep(ref, residues, requests);
  print_tcp_sweep(tcp);

  const std::vector<ResiliencePoint> resilience =
      run_resilience_sweep(ref, residues, requests);
  print_resilience_sweep(resilience);

  const std::vector<FairnessPoint> fairness =
      run_fairness_sweep(ref, queries, thresholds);
  print_fairness_sweep(fairness);

  write_json(json_path, bases, residues, requests, util::probe_bench_env(),
             sections, pipeline, sharded, tcp, resilience, fairness);
  std::cout << "  wrote " << json_path << "\n";

  for (const BackendSection& section : sections)
    if (!section.hits_match) return 1;
  for (const PipelinePoint& point : pipeline)
    if (!point.hits_match) return 1;
  for (const ShardPoint& point : sharded)
    if (!point.hits_match) return 1;
  for (const TcpPoint& point : tcp)
    if (!point.report.clean()) return 1;
  for (const ResiliencePoint& point : resilience)
    if (!point.report.all_terminal()) return 1;
  for (const FairnessPoint& point : fairness)
    if (!point.hits_match) return 1;
  return 0;
}
