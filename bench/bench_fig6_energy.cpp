// E2 — Figure 6(b): energy efficiency of the four platforms across query
// lengths, normalized to CPU-1T.  Paper headline: FabP 23.2x over GPU and
// 266.8x over CPU-12T.

#include <iostream>

#include "fabp/perf/figure6.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  perf::Figure6Config cfg;
  cfg.cpu_sample_bases = 2 << 20;
  cfg.db_bases = std::size_t{1} << 30;

  util::banner(std::cout,
               "Figure 6(b): energy per query vs protein query length");

  const auto rows = perf::run_figure6(cfg);

  util::Table table{{"query(aa)", "CPU-1T(J)", "CPU-12T(J)", "GPU(J)",
                     "FabP(J)", "FabP power(W)", "eff. vs CPU-12T",
                     "eff. vs GPU"}};
  for (const auto& row : rows) {
    table.row()
        .cell(row.query_length)
        .cell(row.cpu1.joules, 1)
        .cell(row.cpu12.joules, 1)
        .cell(row.gpu.joules, 3)
        .cell(row.fabp.joules, 4)
        .cell(row.fabp.watts, 1)
        .cell(util::ratio_text(row.cpu12.joules / row.fabp.joules))
        .cell(util::ratio_text(row.gpu.joules / row.fabp.joules));
  }
  table.print(std::cout);

  const perf::Figure6Summary s = perf::summarize(rows);
  util::Table summary{{"headline", "paper", "measured"}};
  summary.row()
      .cell("FabP energy efficiency over GPU")
      .cell("23.2x")
      .cell(util::ratio_text(s.fabp_over_gpu_energy));
  summary.row()
      .cell("FabP energy efficiency over CPU-12T")
      .cell("266.8x")
      .cell(util::ratio_text(s.fabp_over_cpu12_energy));
  std::cout << '\n';
  summary.print(std::cout);
  std::cout << "\n  platform power: CPU-1T " << cfg.cpu.watts_single_thread
            << " W, CPU-12T " << cfg.cpu.watts_all_threads << " W, GPU "
            << cfg.gpu.watts << " W; FabP from the utilization-driven FPGA"
               " power model.\n";
  return 0;
}
