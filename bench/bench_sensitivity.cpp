// Sensitivity analysis — how robust is the "FabP ≈ GPU, slightly ahead"
// headline (E7) to the GPU model's calibration constants?  The GPU numbers
// come from a throughput model (no 1080Ti in this environment), so this
// harness sweeps the two fitted constants — achieved occupancy and
// instructions per packed word — across generous ranges and reports the
// FabP/GPU speedup averaged over the Fig. 6 query lengths.  The claim
// survives everywhere in the neighborhood; only implausibly efficient GPU
// settings flip the sign, and then only to ~2x, never the orders of
// magnitude separating both from the CPU.

#include <iostream>

#include "fabp/core/mapper.hpp"
#include "fabp/perf/models.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  const std::size_t db_elements = std::size_t{1} << 32;  // 1 GB of bases
  const std::vector<std::size_t> lengths{50, 100, 150, 200, 250};

  // FabP time per length from the mapper's effective bandwidth (kernel
  // dominated; host overheads are microseconds).
  std::vector<double> fabp_seconds;
  for (std::size_t residues : lengths) {
    const core::FabpMapping m =
        core::map_design(hw::kintex7(), residues * 3);
    fabp_seconds.push_back(static_cast<double>(db_elements) / 4.0 /
                           m.effective_bandwidth_bps);
  }

  util::banner(std::cout, "FabP/GPU speedup vs GPU-model calibration"
                          " (paper headline: 1.081x)");
  util::Table table{{"occupancy \\ instr/word", "5", "7 (default)", "9",
                     "12"}};
  for (const double occupancy : {0.5, 0.65, 0.8}) {
    auto row_label = "occupancy " + std::to_string(occupancy).substr(0, 4) +
                     (occupancy == 0.65 ? " (default)" : "");
    auto& row = table.row().cell(row_label);
    for (const double instr : {5.0, 7.0, 9.0, 12.0}) {
      perf::GpuSpec gpu = perf::gtx_1080ti();
      gpu.achieved_occupancy = occupancy;
      gpu.instructions_per_word = instr;
      double ratio_sum = 0;
      for (std::size_t i = 0; i < lengths.size(); ++i) {
        const perf::PlatformResult g =
            perf::gpu_result(gpu, db_elements, lengths[i] * 3);
        ratio_sum += g.seconds / fabp_seconds[i];
      }
      row.cell(util::ratio_text(ratio_sum / lengths.size(), 2));
    }
  }
  table.print(std::cout);

  util::banner(std::cout, "FabP/CPU-12T speedup vs CPU-model calibration");
  // The CPU side scales linearly in two modeled constants; report the
  // resulting headline range around a nominal measured rate.
  const double nominal_rate_mbps = 23.0;  // this host, TBLASTN-lite
  util::Table cpu{{"host->target scale", "parallel eff.", "CPU-12T (s)",
                   "FabP (s, 50aa)", "speedup"}};
  for (const double scale : {1.0, 1.6, 2.5}) {
    for (const double eff : {0.6, 0.8, 1.0}) {
      const double t1 = static_cast<double>(db_elements) /
                        (nominal_rate_mbps * 1e6 * scale);
      const double t12 = t1 / (12.0 * eff);
      cpu.row()
          .cell(scale, 1)
          .cell(eff, 1)
          .cell(t12, 2)
          .cell(fabp_seconds[0], 3)
          .cell(util::ratio_text(t12 / fabp_seconds[0]));
    }
  }
  cpu.print(std::cout);
  std::cout << "\n  even the most charitable CPU setting (2.5x faster core,"
               " perfect scaling)\n  leaves FabP >20x ahead — the paper's"
               " 24.8x sits inside this envelope; our\n  default"
               " calibration lands higher because our TBLASTN-lite baseline"
               " is leaner\n  than NCBI's (EXPERIMENTS.md, D1).\n";
  return 0;
}
