// E3 — Table I: resource utilization of FabP for maximum protein query
// lengths 50 and 250 on the mid-range Kintex-7, plus achieved DRAM
// bandwidth.  Paper row "FabP-30" is read as FabP-50 (typo; see DESIGN.md).

#include <iostream>

#include "fabp/core/mapper.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  const hw::FpgaDevice device = hw::kintex7();

  util::banner(std::cout, "Table I: FabP resource utilization on " +
                              device.name);

  util::Table avail{{"resources", "LUT", "FF", "BRAM", "DSP", "DRAM BW"}};
  avail.row()
      .cell("available")
      .cell("326k")
      .cell("407k")
      .cell("16Mb")
      .cell(std::size_t{840})
      .cell(util::bandwidth_text(device.channel_bandwidth_bps));
  avail.print(std::cout);
  std::cout << '\n';

  struct PaperRow {
    std::size_t residues;
    const char *lut, *ff, *bram, *dsp, *bw;
  };
  const PaperRow paper[] = {
      {50, "58%", "16%", "19%", "31%", "12.2 GB/s"},
      {250, "98%", "40%", "15%", "68%", "3.4 GB/s"},
  };

  util::Table table{{"design", "LUT", "FF", "BRAM", "DSP", "DRAM BW",
                     "segments", "bottleneck"}};
  for (const PaperRow& ref : paper) {
    const core::FabpMapping m = core::map_design(device, ref.residues * 3);
    table.row()
        .cell("FabP-" + std::to_string(ref.residues) + " (paper)")
        .cell(ref.lut)
        .cell(ref.ff)
        .cell(ref.bram)
        .cell(ref.dsp)
        .cell(ref.bw)
        .cell("-")
        .cell("-");
    table.row()
        .cell("FabP-" + std::to_string(ref.residues) + " (model)")
        .cell(util::percent_text(m.lut_util, 0))
        .cell(util::percent_text(m.ff_util, 0))
        .cell(util::percent_text(m.bram_util, 0))
        .cell(util::percent_text(m.dsp_util, 0))
        .cell(util::bandwidth_text(m.effective_bandwidth_bps))
        .cell(m.segments)
        .cell(m.bottleneck == core::Bottleneck::Resources ? "resources"
                                                          : "bandwidth");
  }
  table.print(std::cout);

  // LUT breakdown for the two designs (the paper attributes the footprint
  // to the custom comparators and the Pop-Counters).
  std::cout << '\n';
  util::Table breakdown{{"design", "comparators", "pop-counters",
                         "muxes/datapath", "accumulators", "fixed",
                         "total used"}};
  for (const PaperRow& ref : paper) {
    const core::FabpMapping m = core::map_design(device, ref.residues * 3);
    breakdown.row()
        .cell("FabP-" + std::to_string(ref.residues))
        .cell(m.comparator_luts)
        .cell(m.popcounter_luts)
        .cell(m.mux_luts)
        .cell(m.accumulator_luts)
        .cell(m.fixed_luts)
        .cell(m.used.luts);
  }
  breakdown.print(std::cout);

  // §IV-B design-choice ablation: buffers in FFs (the paper's choice) vs
  // BRAM ("to avoid the routing congestion that may happen due to high
  // fanout of the memory blocks").
  std::cout << '\n';
  util::Table buffers{{"design", "buffers", "LUT", "FF", "BRAM",
                       "eff. BW"}};
  for (const PaperRow& ref : paper) {
    for (const bool in_bram : {false, true}) {
      core::MapperConstants constants;
      constants.buffers_in_bram = in_bram;
      const core::FabpMapping m =
          core::map_design(device, ref.residues * 3, constants);
      buffers.row()
          .cell("FabP-" + std::to_string(ref.residues))
          .cell(in_bram ? "BRAM" : "FFs (paper)")
          .cell(util::percent_text(m.lut_util, 0))
          .cell(util::percent_text(m.ff_util, 0))
          .cell(util::percent_text(m.bram_util, 0))
          .cell(util::bandwidth_text(m.effective_bandwidth_bps));
    }
  }
  buffers.print(std::cout);
  return 0;
}
