// E6 — §IV-B in-text: "for sequences longer than ~70 [residues], the
// resource utilization is the bottleneck of computation; while for shorter
// sequences the bandwidth is the limiting factor."  Sweeps the query
// length, maps each design and reports the limiting factor, plus the
// larger-device observation ("an FPGA with more LUTs can outperform the
// GPU-based implementation").

#include <iostream>

#include "fabp/core/mapper.hpp"
#include "fabp/perf/models.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  const hw::FpgaDevice k7 = hw::kintex7();

  util::banner(std::cout,
               "Bandwidth vs resource bottleneck across query lengths");

  util::Table table{{"query(aa)", "elements", "segments", "LUT util",
                     "eff. BW", "bottleneck"}};
  std::size_t crossover = 0;
  for (std::size_t residues = 10; residues <= 250; residues += 10) {
    const core::FabpMapping m = core::map_design(k7, residues * 3);
    const bool resources = m.bottleneck == core::Bottleneck::Resources;
    if (resources && crossover == 0) crossover = residues;
    table.row()
        .cell(residues)
        .cell(m.query_elements)
        .cell(m.segments)
        .cell(util::percent_text(m.lut_util, 0))
        .cell(util::bandwidth_text(m.effective_bandwidth_bps))
        .cell(resources ? "resources" : "bandwidth");
  }
  table.print(std::cout);
  std::cout << "\n  crossover: measured ~" << crossover
            << " aa, paper reports ~70 aa.\n";

  util::banner(std::cout, "Larger device (VU9P-class) vs Kintex-7 vs GPU"
                          " model at long queries");
  const perf::GpuSpec gpu = perf::gtx_1080ti();
  util::Table big{{"query(aa)", "K7 eff. BW", "K7 time(s/GB)",
                   "VU9P eff. BW", "VU9P time(s/GB)", "GPU time(s/GB)"}};
  for (std::size_t residues : {100u, 150u, 200u, 250u}) {
    const core::FabpMapping k7m = core::map_design(k7, residues * 3);
    const core::FabpMapping vum =
        core::map_design(hw::virtex_ultrascale_plus(), residues * 3);
    const double gb = 1e9;
    const double k7_time = gb / k7m.effective_bandwidth_bps;
    const double vu_time = gb / vum.effective_bandwidth_bps;
    // GPU over the same 1 GB (4e9 elements) workload.
    const perf::PlatformResult g =
        perf::gpu_result(gpu, 4'000'000'000ULL, residues * 3);
    big.row()
        .cell(residues)
        .cell(util::bandwidth_text(k7m.effective_bandwidth_bps))
        .cell(k7_time, 3)
        .cell(util::bandwidth_text(vum.effective_bandwidth_bps))
        .cell(vu_time, 3)
        .cell(g.seconds, 3);
  }
  big.print(std::cout);
  std::cout << "\n  paper: \"an FPGA with more LUTs can outperform the"
               " GPU-based implementation\"\n  — the VU9P-class rows stay"
               " below the GPU times where the Kintex-7 does not.\n";
  return 0;
}
