// E4 — §III-D in-text ablation: "FabP LUT-level optimized Pop-Counter shows
// 20% area reduction as compared to the simple HDL description of a
// tree-adder-style Pop-Counter."
//
// Both designs are generated as real LUT netlists (verified bit-exact
// against std::popcount in the test suite) and their LUT counts compared
// at the query widths FabP instantiates.  Our tree-adder baseline maps
// adders at one LUT per sum bit with free carry chains; Vivado's adder
// synthesis packs harder than that, which is why our measured reduction is
// larger than the paper's 20% (see EXPERIMENTS.md).

#include <iostream>

#include "fabp/hw/popcount.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  util::banner(std::cout,
               "Pop-Counter ablation: handcrafted (Fig. 4) vs tree adder");

  util::Table table{{"width(bits)", "handcrafted LUTs", "tree-adder LUTs",
                     "reduction", "paper"}};
  for (std::size_t width : {36u, 150u, 300u, 450u, 600u, 750u}) {
    const std::size_t hand = hw::popcounter_luts_handcrafted(width);
    const std::size_t tree = hw::popcounter_luts_tree(width);
    const double reduction =
        1.0 - static_cast<double>(hand) / static_cast<double>(tree);
    table.row()
        .cell(width)
        .cell(hand)
        .cell(tree)
        .cell(util::percent_text(reduction))
        .cell(width == 36 ? "~20% (vs synthesized HDL)" : "");
  }
  table.print(std::cout);

  std::cout << "\n  per-instance impact: at 750 elements (FabP-250), each of"
               " the 256 alignment\n  instances saves "
            << hw::popcounter_luts_tree(750) -
                   hw::popcounter_luts_handcrafted(750)
            << " LUTs ("
            << (hw::popcounter_luts_tree(750) -
                hw::popcounter_luts_handcrafted(750)) *
                   256
            << " device-wide).\n";
  return 0;
}
