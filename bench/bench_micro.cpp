// E8 — microbenchmarks (google-benchmark): per-component throughput of the
// encoding, comparator, golden scan, pop-counter netlist, DP aligners and
// the TBLASTN stages.  These attribute where time goes in the software
// models; the paper-level numbers live in the bench_fig6_*/bench_table1
// harnesses.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "fabp/align/local.hpp"
#include "fabp/align/sliding.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/blast/tblastn.hpp"
#include "fabp/core/accelerator.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/blast/seg.hpp"
#include "fabp/core/comparator.hpp"
#include "fabp/core/instance.hpp"
#include "fabp/hw/optimize.hpp"
#include "fabp/hw/popcount.hpp"

namespace {

using namespace fabp;

util::Xoshiro256& rng() {
  static util::Xoshiro256 instance{8675309};
  return instance;
}

void BM_EncodeQuery(benchmark::State& state) {
  const auto protein =
      bio::random_protein(static_cast<std::size_t>(state.range(0)), rng());
  for (auto _ : state)
    benchmark::DoNotOptimize(core::encode_query(protein));
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(BM_EncodeQuery)->Arg(50)->Arg(250);

void BM_ComparatorEval(benchmark::State& state) {
  const auto q = core::encode_query(bio::random_protein(50, rng()));
  const auto ref = bio::random_dna(4096, rng());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = ref[i & 4095];
    const auto im1 = ref[(i + 1) & 4095];
    const auto im2 = ref[(i + 2) & 4095];
    benchmark::DoNotOptimize(
        core::comparator_eval(q[i % q.size()], r, im1, im2));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ComparatorEval);

void BM_GoldenScoreAt(benchmark::State& state) {
  const auto elements = core::back_translate(
      bio::random_protein(static_cast<std::size_t>(state.range(0)), rng()));
  const auto ref = bio::random_dna(8192, rng());
  std::size_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::golden_score_at(elements, ref, p));
    p = (p + 31) % (ref.size() - elements.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(elements.size()));
}
BENCHMARK(BM_GoldenScoreAt)->Arg(50)->Arg(250);

void BM_GoldenScan(benchmark::State& state) {
  const auto elements = core::back_translate(bio::random_protein(50, rng()));
  const auto ref = bio::random_dna(1 << 16, rng());
  for (auto _ : state)
    benchmark::DoNotOptimize(core::golden_hits(elements, ref, 140));
  state.SetBytesProcessed(state.iterations() * (1 << 16) / 4);
}
BENCHMARK(BM_GoldenScan);

void BM_BitScanScan(benchmark::State& state) {
  // Same workload as BM_GoldenScan through the bit-sliced engine, scanning
  // a prebuilt BitScanReference (the Session reuse model).
  const auto elements = core::back_translate(bio::random_protein(50, rng()));
  const core::BitScanQuery query{elements};
  const core::BitScanReference ref{bio::random_dna(1 << 16, rng())};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::bitscan_hits(query, ref, 140));
  state.SetBytesProcessed(state.iterations() * (1 << 16) / 4);
}
BENCHMARK(BM_BitScanScan);

void BM_BitScanCompileReference(benchmark::State& state) {
  const bio::PackedNucleotides packed{bio::random_dna(1 << 16, rng())};
  for (auto _ : state)
    benchmark::DoNotOptimize(core::BitScanReference{packed});
  state.SetBytesProcessed(state.iterations() * (1 << 16) / 4);
}
BENCHMARK(BM_BitScanCompileReference);

void BM_Pop36Netlist(benchmark::State& state) {
  hw::Netlist nl;
  hw::Bus inputs;
  for (int i = 0; i < 36; ++i) inputs.push_back(nl.add_input());
  const hw::Bus out = hw::build_pop36(nl, inputs);
  std::uint64_t v = 0xdeadbeef;
  for (auto _ : state) {
    hw::drive_bus(nl, inputs, v);
    nl.settle();
    benchmark::DoNotOptimize(hw::read_bus(nl, out));
    v = v * 6364136223846793005ULL + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pop36Netlist);

void BM_SmithWatermanCells(benchmark::State& state) {
  const auto q = bio::random_protein(64, rng());
  const auto r = bio::random_protein(256, rng());
  const auto& m = align::SubstitutionMatrix::blosum62();
  for (auto _ : state)
    benchmark::DoNotOptimize(align::smith_waterman_score(q, r, m));
  state.SetItemsProcessed(state.iterations() * 64 * 256);
}
BENCHMARK(BM_SmithWatermanCells);

void BM_SlidingHits(benchmark::State& state) {
  const auto q = bio::random_dna(150, rng());
  const auto ref = bio::random_dna(1 << 16, rng());
  for (auto _ : state)
    benchmark::DoNotOptimize(align::sliding_hits(q, ref, 120));
  state.SetBytesProcessed(state.iterations() * (1 << 16) / 4);
}
BENCHMARK(BM_SlidingHits);

void BM_KmerIndexBuild(benchmark::State& state) {
  const auto protein =
      bio::random_protein(static_cast<std::size_t>(state.range(0)), rng());
  const auto& m = align::SubstitutionMatrix::blosum62();
  for (auto _ : state) {
    blast::KmerIndex index{protein, blast::KmerIndexConfig{}, m};
    benchmark::DoNotOptimize(index.entry_count());
  }
}
BENCHMARK(BM_KmerIndexBuild)->Arg(50)->Arg(250);

void BM_TblastnScan(benchmark::State& state) {
  const auto protein = bio::random_protein(50, rng());
  const auto ref = bio::random_dna(1 << 17, rng());
  const blast::Tblastn engine{protein, blast::TblastnConfig{}};
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.search(ref));
  state.SetBytesProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_TblastnScan);

void BM_AcceleratorRun(benchmark::State& state) {
  core::AcceleratorConfig cfg;
  cfg.threshold = 130;
  core::Accelerator acc{cfg};
  acc.load_query(bio::random_protein(50, rng()));
  const bio::PackedNucleotides packed{bio::random_dna(1 << 16, rng())};
  for (auto _ : state)
    benchmark::DoNotOptimize(acc.run(packed));
  state.SetBytesProcessed(state.iterations() * (1 << 16) / 4);
}
BENCHMARK(BM_AcceleratorRun);

void BM_InstanceNetlistSettle(benchmark::State& state) {
  core::InstanceConfig cfg;
  cfg.elements = 36;
  cfg.threshold = 20;
  cfg.pipelined = false;
  hw::Netlist nl;
  const core::InstancePorts ports = core::build_alignment_instance(nl, cfg);
  const auto query = core::encode_query(bio::random_protein(12, rng()));
  const auto ref = bio::random_dna(100, rng());
  std::size_t pos = 2;
  for (auto _ : state) {
    std::vector<bio::Nucleotide> window;
    window.push_back(ref[pos - 2]);
    window.push_back(ref[pos - 1]);
    for (std::size_t i = 0; i < 36; ++i) window.push_back(ref[pos + i]);
    benchmark::DoNotOptimize(
        core::simulate_instance(nl, ports, cfg, query, window));
    pos = 2 + (pos + 1) % 60;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstanceNetlistSettle);

void BM_OptimizePass(benchmark::State& state) {
  const auto query = core::encode_query(bio::random_protein(12, rng()));
  core::InstanceConfig cfg;
  cfg.elements = 36;
  cfg.threshold = 20;
  cfg.pipelined = false;
  cfg.fixed_query = &query;
  hw::Netlist nl;
  const core::InstancePorts ports = core::build_alignment_instance(nl, cfg);
  std::vector<hw::NetId> keep = ports.score;
  keep.push_back(ports.hit);
  for (auto _ : state)
    benchmark::DoNotOptimize(hw::optimize(nl, keep).stats.luts_after);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.cell_count()));
}
BENCHMARK(BM_OptimizePass);

void BM_SegMask(benchmark::State& state) {
  const auto protein = bio::random_protein(250, rng());
  for (auto _ : state)
    benchmark::DoNotOptimize(blast::seg_mask(protein));
  state.SetItemsProcessed(state.iterations() * 250);
}
BENCHMARK(BM_SegMask);

void BM_BackTranslate(benchmark::State& state) {
  const auto protein = bio::random_protein(250, rng());
  for (auto _ : state)
    benchmark::DoNotOptimize(core::back_translate(protein));
  state.SetItemsProcessed(state.iterations() * 250);
}
BENCHMARK(BM_BackTranslate);

}  // namespace

// Like BENCHMARK_MAIN(), but defaulting to a JSON dump next to the console
// reporter so scripts get machine-readable output without extra flags.
// Any explicit --benchmark_out= on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args{argv, argv + argc};
  std::string out = "--benchmark_out=BENCH_micro.json";
  std::string fmt = "--benchmark_out_format=json";
  bool user_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string_view{argv[i]}.starts_with("--benchmark_out="))
      user_out = true;
  if (!user_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
