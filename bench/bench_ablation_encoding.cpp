// Ablation — why the 6-bit instruction / Type III machinery exists.
//
// Baseline: a 4-bit per-element nucleotide mask (one LUT6 per comparator,
// half FabP's cost) which cannot express the cross-position dependencies
// of Leu, Arg and Stop.  This harness quantifies what that costs:
//   1. per-amino-acid codon specificity (accepted codons: biological vs
//      FabP template vs mask-only),
//   2. false-hit inflation on random DNA at a realistic threshold,
//   3. the LUT trade-off per element.

#include <array>
#include <iostream>

#include "fabp/bio/generate.hpp"
#include "fabp/core/maskonly.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;
  using bio::AminoAcid;

  util::banner(std::cout, "Codon specificity: biological vs FabP template"
                          " vs 4-bit mask");
  util::Table spec{{"amino acid", "biological codons", "template accepts",
                    "mask accepts", "mask false codons"}};
  std::size_t total_false = 0;
  for (AminoAcid aa : bio::kAllAminoAcids) {
    const std::size_t biological = bio::degeneracy(aa);
    const std::size_t tmpl = core::template_accepted_codons(aa);
    const std::size_t mask = core::mask_accepted_codons(aa);
    if (mask <= tmpl) continue;  // only print the interesting rows
    total_false += mask - tmpl;
    spec.row()
        .cell(std::string(bio::to_three_letter(aa)))
        .cell(biological)
        .cell(tmpl)
        .cell(mask)
        .cell(mask - tmpl);
  }
  spec.print(std::cout);
  std::cout << "  (all other amino acids: template == mask)\n"
            << "  total falsely-accepted codons with mask-only encoding: "
            << total_false << "\n";

  util::banner(std::cout,
               "False-hit inflation on random DNA (25 aa queries rich in"
               " Leu/Arg/Ser)");
  util::Xoshiro256 rng{424242};
  // Queries with 50% dependent residues — the worst case the codon table
  // allows, and common in real proteins (Leu+Ser+Arg ~ 22% of Swiss-Prot).
  const auto rich_protein = [&rng](std::size_t residues) {
    bio::ProteinSequence p;
    for (std::size_t i = 0; i < residues; ++i) {
      if (i % 2 == 0) {
        constexpr std::array<AminoAcid, 3> dependent{
            AminoAcid::Leu, AminoAcid::Arg, AminoAcid::Ser};
        p.push_back(dependent[rng.bounded(3)]);
      } else {
        p.push_back(bio::random_protein(1, rng)[0]);
      }
    }
    return p;
  };

  util::Table hits_table{{"threshold", "FabP hits", "mask-only hits",
                          "inflation"}};
  for (const double fraction : {0.55, 0.60, 0.65, 0.70}) {
    std::size_t fabp_total = 0, mask_total = 0;
    for (int trial = 0; trial < 4; ++trial) {
      const bio::ProteinSequence protein = rich_protein(25);
      const bio::NucleotideSequence ref = bio::random_dna(100'000, rng);
      const auto threshold =
          static_cast<std::uint32_t>(75.0 * fraction);
      fabp_total +=
          core::golden_hits(core::back_translate(protein), ref, threshold)
              .size();
      mask_total +=
          core::mask_hits(core::mask_encode(protein), ref, threshold).size();
    }
    hits_table.row()
        .cell(util::percent_text(fraction, 0))
        .cell(fabp_total)
        .cell(mask_total)
        .cell(fabp_total == 0
                  ? std::string(mask_total == 0 ? "1.0x" : "inf")
                  : util::ratio_text(static_cast<double>(mask_total) /
                                         static_cast<double>(fabp_total),
                                     2));
  }
  hits_table.print(std::cout);

  util::banner(std::cout, "Concrete cross-talk: a Ser(AGC) gene under an"
                          " Arg-rich probe");
  {
    // Plant a poly-Ser coding region using only AGY codons; probe with a
    // poly-Arg query.  Mask-only matches it at full score; FabP rejects.
    bio::ProteinSequence arg_query;
    for (int i = 0; i < 15; ++i) arg_query.push_back(AminoAcid::Arg);
    bio::NucleotideSequence agy{bio::SeqKind::Rna};
    for (int i = 0; i < 15; ++i) {
      agy.push_back(bio::Nucleotide::A);
      agy.push_back(bio::Nucleotide::G);
      agy.push_back(bio::Nucleotide::C);
    }
    const auto fabp_score =
        core::golden_score_at(core::back_translate(arg_query), agy, 0);
    const auto mask_score =
        core::mask_score_at(core::mask_encode(arg_query), agy, 0);
    std::cout << "  poly-Arg query vs AGC-serine region (45 elements):"
                 " FabP score " << fabp_score << ", mask-only score "
              << mask_score << "\n";
  }

  util::banner(std::cout, "Cost per comparator element");
  util::Table cost{{"encoding", "bits/element", "LUT6/element",
                    "dependent codons"}};
  cost.row().cell("FabP 6-bit instruction").cell(6).cell(2).cell("exact");
  cost.row().cell("4-bit nucleotide mask").cell(4).cell(1).cell(
      "over-accepts (see above)");
  cost.print(std::cout);

  std::cout << "\n  the mask baseline halves comparator LUTs but accepts"
               " codons of *other*\n  amino acids at every Leu/Arg/Stop"
               " position (e.g. Arg's mask accepts AGU =\n  Ser), which"
               " inflates hit counts and write-back traffic; FabP's second\n"
               "  LUT buys exact degenerate matching.\n";
  return 0;
}
