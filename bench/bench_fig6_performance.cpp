// E1 — Figure 6(a): execution time of CPU-1T / CPU-12T (TBLASTN), GPU and
// FabP across protein query lengths 50..250, normalized to CPU-1T, plus the
// paper's headline averages (E7): FabP 8.1% over GPU, 24.8x over CPU-12T.
//
// CPU rows are measured (our TBLASTN pipeline on a synthetic sample, then
// rescaled/extrapolated per perf/platform.hpp); GPU rows use the datasheet
// throughput model; FabP rows come from the cycle-level simulator timing.

#include <cstdio>
#include <iostream>

#include "fabp/perf/figure6.hpp"
#include "fabp/util/table.hpp"

int main() {
  using namespace fabp;

  perf::Figure6Config cfg;
  cfg.cpu_sample_bases = 2 << 20;          // measured TBLASTN sample
  cfg.db_bases = std::size_t{1} << 30;     // nominal 1 GB database (paper)

  util::banner(std::cout, "Figure 6(a): performance vs protein query length"
                          " (normalized to CPU-1T TBLASTN)");
  std::cout << "  database: 1 GB nominal; CPU measured on "
            << (cfg.cpu_sample_bases >> 20) << " MiB sample, then scaled\n";

  const auto rows = perf::run_figure6(cfg);

  util::Table table{{"query(aa)", "elements", "CPU-1T(s)", "CPU-12T(s)",
                     "GPU(s)", "FabP(s)", "speedup CPU-12T", "speedup GPU",
                     "speedup FabP"}};
  for (const auto& row : rows) {
    table.row()
        .cell(row.query_length)
        .cell(row.query_elements)
        .cell(row.cpu1.seconds, 3)
        .cell(row.cpu12.seconds, 3)
        .cell(row.gpu.seconds, 4)
        .cell(row.fabp.seconds, 4)
        .cell(util::ratio_text(row.speedup_cpu12))
        .cell(util::ratio_text(row.speedup_gpu))
        .cell(util::ratio_text(row.speedup_fabp));
  }
  table.print(std::cout);

  const perf::Figure6Summary s = perf::summarize(rows);
  util::Table summary{{"headline", "paper", "measured"}};
  summary.row()
      .cell("FabP speedup over GPU")
      .cell("1.081x (8.1%)")
      .cell(util::ratio_text(s.fabp_over_gpu_speedup, 3));
  summary.row()
      .cell("FabP speedup over CPU-12T")
      .cell("24.8x")
      .cell(util::ratio_text(s.fabp_over_cpu12_speedup));
  std::cout << '\n';
  summary.print(std::cout);
  std::cout << "\n  note: CPU rows extrapolate a measured 1-thread rate to"
               " the i7-8700K\n  (x" << cfg.cpu.host_to_target_speed
            << " clock/IPC) and model 12T as 12 x "
            << cfg.cpu.parallel_efficiency << " efficiency.\n";
  return 0;
}
