// rtl_export: writes the generated structural Verilog for the paper's
// hand-instantiated blocks — the custom comparator (2x LUT6), the Pop36
// Pop-Counter (Fig. 4), full pop-counters, and a complete pipelined
// alignment instance — into an output directory, together with a summary
// of primitive counts and timing.  These files are the bridge from this
// model back to a real Vivado flow.
//
// Usage: rtl_export [out_dir] [instance_elements]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "fabp/fabp.hpp"

namespace {

void write_module(const std::filesystem::path& dir,
                  const fabp::hw::VerilogModule& module) {
  const auto path = dir / (module.name + ".v");
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot write " + path.string()};
  out << module.source;
  std::cout << "  wrote " << path.string() << " (" << module.source.size()
            << " bytes, " << module.instance_count("LUT6") << " LUT6, "
            << module.instance_count("FDRE") << " FDRE)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fabp;

  const std::filesystem::path dir = argc > 1 ? argv[1] : "rtl_out";
  const std::size_t elements =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 36;
  std::filesystem::create_directories(dir);

  std::cout << "exporting structural Verilog to " << dir << ":\n";
  write_module(dir, core::emit_comparator_module());
  write_module(dir, hw::emit_pop36_module());
  write_module(dir, hw::emit_popcounter_module(150, /*handcrafted=*/true));
  write_module(dir, hw::emit_popcounter_module(150, /*handcrafted=*/false));

  core::InstanceConfig config;
  config.elements = elements;
  config.threshold = static_cast<std::uint32_t>(elements * 4 / 5);
  config.pipelined = true;
  write_module(dir, core::emit_instance_module(config));

  // Timing summary for the exported instance.
  hw::Netlist nl;
  core::build_alignment_instance(nl, config);
  const hw::TimingReport t = hw::analyze_timing(nl);
  std::cout << "\ninstance (" << elements << " elements): "
            << nl.stats().luts << " LUT6 / " << nl.stats().ffs
            << " FDRE, critical path " << t.critical_path_ns << " ns ("
            << t.logic_levels << " levels), Fmax " << t.fmax_hz / 1e6
            << " MHz\n";
  std::cout << "comparator LUT INITs: mux "
            << core::comparator_mux_lut().init_string() << ", cmp "
            << core::comparator_cmp_lut().init_string() << '\n';

  // Waveform demo: stream a few reference windows through a small
  // pipelined instance and dump score/hit to VCD (open in GTKWave).
  {
    fabp::util::Xoshiro256 rng{99};
    const auto protein = bio::random_protein(4, rng);
    const auto query = core::encode_query(protein);
    core::InstanceConfig wave_cfg;
    wave_cfg.elements = query.size();
    wave_cfg.threshold = 9;
    wave_cfg.pipelined = true;

    hw::Netlist wave_nl;
    const core::InstancePorts ports =
        core::build_alignment_instance(wave_nl, wave_cfg);
    for (std::size_t i = 0; i < query.size(); ++i)
      for (unsigned b = 0; b < 6; ++b)
        wave_nl.set_input(ports.query[i][b], query[i].bit(b));

    hw::VcdTrace trace{"fabp_instance"};
    trace.watch_bus(ports.score, "score");
    trace.watch(ports.hit, "hit");

    const auto ref = bio::random_dna(60, rng);
    for (std::size_t cycle = 0; cycle + query.size() + 2 < ref.size();
         ++cycle) {
      for (std::size_t i = 0; i < query.size() + 2; ++i) {
        const auto code = bio::code(ref[cycle + i]);
        wave_nl.set_input(ports.ref[i][0], (code & 1) != 0);
        wave_nl.set_input(ports.ref[i][1], (code & 2) != 0);
      }
      wave_nl.settle();
      wave_nl.clock();
      trace.sample(wave_nl);
    }
    const auto vcd_path = (dir / "fabp_instance.vcd").string();
    trace.write_file(vcd_path);
    std::cout << "waveform: " << vcd_path << " (" << trace.samples()
              << " cycles)\n";
  }
  return 0;
}
