// protein_search: the paper's motivating workload (Fig. 1) end to end —
// search unknown protein queries against a nucleotide database to predict
// their function, comparing three engines on the same workload:
//   * FabP (cycle-level accelerator model),
//   * TBLASTN-like CPU pipeline,
//   * gapped Smith-Waterman spot checks on FabP's hits.
//
// Usage: protein_search [db_kbases] [n_queries] [query_len] [seed]

#include <cstdlib>
#include <iostream>

#include "fabp/fabp.hpp"
#include "fabp/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fabp;

  const std::size_t db_kbases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  const std::size_t n_queries =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::size_t query_len =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 50;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 99;

  // Synthetic database with planted genes ("proteins with known function").
  bio::DatabaseSpec spec;
  spec.total_bases = db_kbases * 1000;
  spec.gene_count = 24;
  spec.gene_length = query_len + 20;
  spec.seed = seed;
  const bio::SyntheticDatabase db = bio::SyntheticDatabase::build(spec);
  std::cout << "database: " << spec.total_bases << " bases, "
            << spec.gene_count << " planted genes\n";

  // Queries: mildly diverged fragments of planted genes (homologs whose
  // function we pretend not to know).
  bio::QuerySpec qspec;
  qspec.length = query_len;
  qspec.substitution_rate = 0.03;
  qspec.seed = seed + 1;
  const bio::QuerySet queries = bio::sample_queries(db, n_queries, qspec);

  core::Session session;
  session.upload_reference(db.dna);

  blast::TblastnConfig blast_cfg;
  blast_cfg.evalue_cutoff = 1e-6;

  std::size_t fabp_correct = 0, blast_correct = 0;
  double fabp_model_s = 0, blast_wall_s = 0;

  for (std::size_t q = 0; q < queries.queries.size(); ++q) {
    const bio::ProteinSequence& query = queries.queries[q];
    const auto& gene =
        db.genes[static_cast<std::size_t>(queries.source_gene[q])];

    // FabP: threshold at 85% of the elements (tolerates the divergence).
    const auto threshold =
        static_cast<std::uint32_t>(query.size() * 3 * 85 / 100);
    const core::HostRunReport fabp = session.align(query, threshold);
    fabp_model_s += fabp.total_s;

    bool fabp_found = false;
    for (const core::Hit& hit : fabp.hits)
      if (hit.position >= gene.dna_position &&
          hit.position < gene.dna_position + gene.protein.size() * 3)
        fabp_found = true;
    if (fabp_found) ++fabp_correct;

    // TBLASTN on the same query.
    util::Timer timer;
    blast::Tblastn engine{query, blast_cfg};
    const blast::TblastnResult tr = engine.search(db.dna);
    blast_wall_s += timer.seconds();
    bool blast_found = false;
    for (const auto& hit : tr.hits)
      if (hit.dna_position >= gene.dna_position &&
          hit.dna_position < gene.dna_position + gene.protein.size() * 3)
        blast_found = true;
    if (blast_found) ++blast_correct;

    // Smith-Waterman confirmation of FabP's best hit.
    std::string sw_note = "no hit";
    if (!fabp.hits.empty()) {
      const core::Hit best = *std::max_element(
          fabp.hits.begin(), fabp.hits.end(),
          [](const core::Hit& a, const core::Hit& b) {
            return a.score < b.score;
          });
      const auto window =
          db.dna.subsequence(best.position, query.size() * 3);
      const auto frames = bio::six_frame_translate(window);
      const int sw = align::smith_waterman_score(
          query, frames[0].protein, align::SubstitutionMatrix::blosum62());
      sw_note = "SW(blosum62)=" + std::to_string(sw);
    }

    std::cout << "query " << q << " (" << query.size() << " aa): FabP "
              << (fabp_found ? "found" : "MISSED") << " ("
              << fabp.hits.size() << " hits), TBLASTN "
              << (blast_found ? "found" : "MISSED") << " (" << tr.hits.size()
              << " HSPs), " << sw_note << '\n';
  }

  std::cout << "\nrecall: FabP " << fabp_correct << "/" << n_queries
            << ", TBLASTN " << blast_correct << "/" << n_queries << '\n';
  std::cout << "modeled FabP card time " << util::time_text(fabp_model_s)
            << " vs measured TBLASTN wall time "
            << util::time_text(blast_wall_s) << " (single host thread)\n";
  return 0;
}
