// Quickstart: align one protein query against a small DNA reference with
// the FabP host session, print the hits, and show what the encoding looks
// like.  Mirrors the flow of Fig. 1: back-translate -> encode -> align.

#include <iostream>

#include "fabp/fabp.hpp"

int main() {
  using namespace fabp;

  // A toy reference: random DNA with the query's coding sequence planted
  // at position 100.
  util::Xoshiro256 rng{2021};
  const bio::ProteinSequence query = bio::ProteinSequence::parse("MKWVTFISLLFLFSSAYS");
  bio::NucleotideSequence reference = bio::random_dna(400, rng);
  const bio::NucleotideSequence coding = core::random_template_coding(query, rng);
  for (std::size_t i = 0; i < coding.size(); ++i)
    reference[100 + i] = coding[i];

  std::cout << "query protein : " << query.to_string() << '\n';
  std::cout << "coding (one of many back-translations): "
            << coding.to_string() << "\n\n";

  // The FabP view of the query: degenerate elements and 6-bit instructions.
  const auto elements = core::back_translate(query);
  const auto instructions = core::encode_query(query);
  std::cout << "back-translated elements (first codons):\n  ";
  for (std::size_t i = 0; i < 9; ++i)
    std::cout << core::to_string(elements[i]) << ' ';
  std::cout << "...\nencoded instructions:\n  ";
  for (std::size_t i = 0; i < 9; ++i)
    std::cout << instructions[i].to_binary_string() << ' ';
  std::cout << "...\n\n";

  // Align on the modeled Kintex-7 card.  Threshold: at least 90% of the
  // 3 * |query| elements must match.
  core::Session session;
  session.upload_reference(reference);
  const auto threshold =
      static_cast<std::uint32_t>(elements.size() * 9 / 10);
  const core::HostRunReport report = session.align(query, threshold);

  std::cout << "hits (threshold " << threshold << "/" << elements.size()
            << "):\n";
  for (const core::Hit& hit : report.hits)
    std::cout << "  position " << hit.position << "  score " << hit.score
              << '\n';

  std::cout << "\nkernel time " << util::time_text(report.kernel_s)
            << ", end-to-end " << util::time_text(report.total_s)
            << ", FPGA power " << report.watts << " W\n";
  std::cout << "device mapping: " << report.mapping.segments
            << " segment(s), LUT utilization "
            << util::percent_text(report.mapping.lut_util) << '\n';
  return 0;
}
