// resource_explorer: what-if tool for the resource mapper (§III-C/IV-B).
// Sweeps query lengths on a chosen device and prints the placement: number
// of segments, per-category utilization, effective bandwidth, projected
// throughput and power.  Useful for sizing a deployment before committing
// to a card.
//
// Usage: resource_explorer [kintex7|vu9p] [max_residues]

#include <cstdlib>
#include <iostream>
#include <string>

#include "fabp/core/mapper.hpp"
#include "fabp/hw/power.hpp"
#include "fabp/util/table.hpp"

int main(int argc, char** argv) {
  using namespace fabp;

  const std::string device_name = argc > 1 ? argv[1] : "kintex7";
  const std::size_t max_residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 250;

  hw::FpgaDevice device;
  if (device_name == "vu9p") {
    device = hw::virtex_ultrascale_plus();
  } else if (device_name == "kintex7") {
    device = hw::kintex7();
  } else {
    std::cerr << "unknown device '" << device_name
              << "' (expected kintex7 or vu9p)\n";
    return 1;
  }

  std::cout << "device " << device.name << ": "
            << device.capacity.luts / 1000 << "k LUTs, "
            << device.capacity.ffs / 1000 << "k FFs, "
            << device.capacity.dsps << " DSPs, " << device.memory_channels
            << " channel(s) x "
            << util::bandwidth_text(device.channel_bandwidth_bps) << " @ "
            << device.clock_hz / 1e6 << " MHz\n\n";

  const hw::FpgaPowerModel power;
  util::Table table{{"query(aa)", "segments", "LUT", "FF", "BRAM", "DSP",
                     "eff. BW", "GB scan(s)", "power(W)", "bottleneck"}};
  for (std::size_t residues = 25; residues <= max_residues; residues += 25) {
    const core::FabpMapping m = core::map_design(device, residues * 3);
    if (!m.feasible) {
      table.row().cell(residues).cell("does not fit").cell("-").cell("-")
          .cell("-").cell("-").cell("-").cell("-").cell("-").cell("-");
      continue;
    }
    table.row()
        .cell(residues)
        .cell(m.segments)
        .cell(util::percent_text(m.lut_util, 0))
        .cell(util::percent_text(m.ff_util, 0))
        .cell(util::percent_text(m.bram_util, 0))
        .cell(util::percent_text(m.dsp_util, 0))
        .cell(util::bandwidth_text(m.effective_bandwidth_bps))
        .cell(1e9 / m.effective_bandwidth_bps, 3)
        .cell(power.watts(device, m.used, device.memory_channels), 1)
        .cell(m.bottleneck == core::Bottleneck::Resources ? "resources"
                                                          : "bandwidth");
  }
  table.print(std::cout);

  std::cout << "\n'GB scan' is the kernel time to stream 1 GB of 2-bit"
               " packed reference\nthrough the aligner at the effective"
               " bandwidth.\n";
  return 0;
}
