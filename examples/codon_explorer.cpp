// codon_explorer: interactive view of the paper's §III-A/III-B machinery.
// For a protein given on the command line (default: the paper's worked
// example Met-Phe-Ser-Arg-Stop), prints per amino acid:
//   * the biological codon set,
//   * the degenerate template with element types,
//   * the 6-bit FabP instructions with field breakdown,
//   * the generated comparator LUT INIT vectors.
//
// Usage: codon_explorer [protein]   (one-letter codes, '*' for stop)

#include <iostream>

#include "fabp/fabp.hpp"

int main(int argc, char** argv) {
  using namespace fabp;
  using bio::AminoAcid;

  bio::ProteinSequence protein;
  if (argc > 1) {
    try {
      protein = bio::ProteinSequence::parse(argv[1]);
    } catch (const std::exception& e) {
      std::cerr << "bad protein string: " << e.what() << '\n';
      return 1;
    }
  } else {
    protein = bio::ProteinSequence::parse("MFSR*");
  }

  std::cout << "protein: " << protein.to_string() << "\n\n";

  util::Table table{{"residue", "codons", "template", "types",
                     "instructions"}};
  for (AminoAcid aa : protein) {
    std::string codons;
    for (const bio::Codon& c : bio::codons_for(aa)) {
      if (!codons.empty()) codons += ",";
      codons += c.to_string();
    }
    const core::CodonTemplate& t = core::codon_template(aa);
    std::string tmpl, types, instrs;
    for (std::size_t i = 0; i < 3; ++i) {
      if (i) {
        tmpl += " ";
        types += " ";
        instrs += " ";
      }
      tmpl += core::to_string(t[i]);
      switch (t[i].type) {
        case core::ElementType::ExactI: types += "I"; break;
        case core::ElementType::ConditionalII: types += "II"; break;
        case core::ElementType::DependentIII: types += "III"; break;
      }
      instrs += core::Instruction::encode(t[i]).to_binary_string();
    }
    table.row()
        .cell(std::string(bio::to_three_letter(aa)))
        .cell(codons)
        .cell(tmpl)
        .cell(types)
        .cell(instrs);
  }
  table.print(std::cout);

  std::cout << "\ninstruction layout: [b5 b4 | b3 b2 | b1 b0] ="
               " opcode | payload | config\n"
               "  Type I  : 00 | nucleotide | 00\n"
               "  Type II : 01 | condition  | 00   (U/C, A/G, G-bar, A/C)\n"
               "  Type III: 1F | F 0        | mux  (Stop3, Leu3, Arg3, D)\n";

  std::cout << "\ncomparator LUT INITs (directly instantiable as LUT6"
               " primitives):\n";
  std::cout << "  history mux LUT : "
            << core::comparator_mux_lut().init_string() << '\n';
  std::cout << "  compare LUT     : "
            << core::comparator_cmp_lut().init_string() << '\n';

  // Show the full Fig. 5(b)-style truth table of one interesting column.
  std::cout << "\nFig. 5(b) column for the encoded Stop third element"
               " (S = MSB of ref[i-1]):\n";
  const core::Instruction stop3 = core::Instruction::encode(
      core::BackElement::make_dependent(core::Function::Stop3));
  for (int s = 0; s < 2; ++s) {
    for (bio::Nucleotide ref : bio::kAllNucleotides) {
      const bool match = core::comparator_eval(
          stop3, bio::code(ref), s != 0, false, false);
      std::cout << "  1-00-" << s << "-" << bio::to_char_rna(ref) << " -> "
                << (match ? 1 : 0) << '\n';
    }
  }
  return 0;
}
