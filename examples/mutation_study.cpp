// mutation_study: how sequence divergence affects FabP's substitution-only
// scores (§IV-A).  Sweeps protein-level substitution rates and
// reference-level indel rates, reporting the planted-gene score
// distribution and the detection rate at the default threshold — the
// quantitative backing for "FabP only counts the differences".
//
// Usage: mutation_study [n_trials] [residues] [seed]

#include <cstdlib>
#include <iostream>

#include "fabp/fabp.hpp"
#include "fabp/util/stats.hpp"

int main(int argc, char** argv) {
  using namespace fabp;

  const std::size_t n_trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const std::size_t residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4242;

  util::Xoshiro256 rng{seed};
  const std::size_t elements = residues * 3;
  const auto threshold = static_cast<std::uint32_t>(elements * 8 / 10);

  std::cout << "query " << residues << " aa (" << elements
            << " elements), threshold " << threshold << " (80%), "
            << n_trials << " trials per cell\n\n";

  util::Table table{{"protein subs", "ref indels/kb", "mean score",
                     "min", "p10", "detected"}};
  for (const double sub_rate : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    for (const double indel_rate : {0.0, 0.09}) {
      util::RunningStats scores;
      std::vector<double> raw;
      std::size_t detected = 0;
      for (std::size_t t = 0; t < n_trials; ++t) {
        const bio::ProteinSequence gene = bio::random_protein(residues, rng);
        const bio::ProteinSequence query =
            bio::mutate_protein(gene, sub_rate, rng);

        bio::NucleotideSequence coding =
            core::random_template_coding(gene, rng);
        if (indel_rate > 0.0) {
          bio::MutationParams params;
          params.substitution_rate = 0.0;
          params.indel_events_per_kb = indel_rate;
          coding = bio::mutate(coding, params, rng).sequence;
        }
        // Pad so short (deletion-shortened) regions still align.
        coding.append(bio::random_dna(12, rng));

        const auto q = core::back_translate(query);
        std::uint32_t best = 0;
        if (coding.size() >= q.size())
          for (std::size_t p = 0; p + q.size() <= coding.size(); ++p)
            best = std::max(best, core::golden_score_at(q, coding, p));
        scores.add(best);
        raw.push_back(best);
        if (best >= threshold) ++detected;
      }
      table.row()
          .cell(util::percent_text(sub_rate, 0))
          .cell(indel_rate, 2)
          .cell(scores.mean(), 1)
          .cell(scores.min(), 0)
          .cell(util::percentile(raw, 10.0), 1)
          .cell(util::percent_text(
              static_cast<double>(detected) / n_trials, 1));
    }
  }
  table.print(std::cout);

  std::cout << "\nreading the table: each protein substitution costs at"
               " most 3 elements, so\nthe 80% threshold tolerates ~6-7%"
               " divergence; the biological indel rate\n(0.09 events/kb)"
               " almost never produces an indel inside a " << elements
            << "-element\nregion, which is the paper's argument for"
               " dropping indel support.\n";
  return 0;
}
