// database_search: the full downstream-user path on a multi-record
// database — build a ReferenceDatabase (optionally from FASTA), stream a
// batch of protein queries through the modeled card, and print annotated,
// Smith-Waterman-confirmed reports per query (Fig. 1's "predict the
// functionality" output).
//
// Usage: database_search [records] [bases_per_record] [queries] [seed]
//        database_search --fasta ref.fa queries.fa

#include <cstdlib>
#include <iostream>

#include "fabp/fabp.hpp"

namespace {

using namespace fabp;

int run_fasta(const char* ref_path, const char* query_path) {
  const auto db =
      bio::ReferenceDatabase::from_fasta(bio::read_fasta_file(ref_path));
  std::vector<bio::ProteinSequence> queries;
  for (const auto& record : bio::read_fasta_file(query_path))
    queries.push_back(bio::ProteinSequence::parse(record.sequence));

  core::Session session;
  session.upload_reference(db.packed());
  const auto batch = session.align_batch(queries, 0.85);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto annotated =
        core::annotate_hits(batch.per_query[q].hits, db, queries[q]);
    std::cout << "query " << q << ": " << annotated.size() << " hits\n";
    for (const auto& hit : annotated)
      std::cout << "  " << core::to_string(hit, db) << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string_view{argv[1]} == "--fasta")
    return run_fasta(argv[2], argv[3]);

  const std::size_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::size_t bases =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000;
  const std::size_t n_queries =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 77;

  // Build a database of `records` "chromosomes", each with one planted
  // gene; queries are diverged fragments of random genes.
  util::Xoshiro256 rng{seed};
  bio::ReferenceDatabase db;
  std::vector<bio::ProteinSequence> genes;
  for (std::size_t r = 0; r < records; ++r) {
    bio::NucleotideSequence chromosome = bio::random_dna(bases, rng);
    const bio::ProteinSequence gene = bio::random_protein(60, rng);
    const auto coding = core::random_template_coding(gene, rng);
    const std::size_t pos = bases / 3 + rng.bounded(bases / 3);
    for (std::size_t i = 0; i < coding.size(); ++i)
      chromosome[pos + i] = coding[i];
    db.add("chr" + std::to_string(r), chromosome);
    genes.push_back(gene);
  }
  std::cout << "database: " << db.record_count() << " records, "
            << db.total_bases() << " bases ("
            << db.packed().byte_size() / 1024 << " KiB packed)\n";

  std::vector<bio::ProteinSequence> queries;
  std::vector<std::size_t> truth;
  for (std::size_t q = 0; q < n_queries; ++q) {
    const std::size_t g = rng.bounded(genes.size());
    bio::ProteinSequence fragment = genes[g].subsequence(5, 40);
    fragment = bio::mutate_protein(fragment, 0.02, rng);
    queries.push_back(std::move(fragment));
    truth.push_back(g);
  }

  core::Session session;
  session.upload_reference(db.packed());
  const auto batch = session.align_batch(queries, 0.85);

  std::size_t correct = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    core::AnnotateOptions opts;
    opts.min_sw_fraction = 0.5;
    const auto annotated =
        core::annotate_hits(batch.per_query[q].hits, db, queries[q], opts);
    std::cout << "\nquery " << q << " (" << queries[q].size()
              << " aa, from chr" << truth[q] << "): " << annotated.size()
              << " confirmed hits\n";
    for (const auto& hit : annotated)
      std::cout << "  " << core::to_string(hit, db) << '\n';
    if (!annotated.empty() && annotated.front().record == truth[q])
      ++correct;
  }

  std::cout << "\ntop-hit accuracy: " << correct << "/" << queries.size()
            << "; modeled card time " << util::time_text(batch.total_s)
            << " (" << batch.queries_per_second << " queries/s), energy "
            << batch.total_joules << " J\n";
  return correct == queries.size() ? 0 : 1;
}
