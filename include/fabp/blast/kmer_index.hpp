#pragma once
// Protein k-mer neighborhood index — BLAST stage 1 (paper §II: "All the
// k-mers of the query sequence in a hash-table ... use k-mers of the
// reference sequence to find the similar subsequences").
//
// For every k-length window of the query we enumerate the *neighborhood*:
// all k-letter words whose BLOSUM62 score against the window is at least T
// (NCBI default T=11, k=3).  The index maps packed words to the query
// positions whose neighborhood contains them; scanning a translated
// reference is then one table probe per residue — the randomly-scattered
// memory access pattern the paper identifies as the CPU bottleneck.

#include <cstdint>
#include <span>
#include <vector>

#include "fabp/align/scoring.hpp"
#include "fabp/bio/sequence.hpp"

namespace fabp::blast {

/// Packs k residues at 5 bits each (supports k <= 5).
std::uint32_t pack_kmer(std::span<const bio::AminoAcid> residues);

struct KmerIndexConfig {
  std::size_t k = 3;
  int neighbor_threshold = 11;  // BLAST's T parameter
};

class KmerIndex {
 public:
  /// Builds the neighborhood index of `query`.  Stop residues never seed;
  /// if `query_mask` is given (e.g. from blast::seg_mask), windows that
  /// touch a masked residue are excluded too.
  KmerIndex(const bio::ProteinSequence& query, const KmerIndexConfig& config,
            const align::SubstitutionMatrix& matrix,
            const std::vector<bool>* query_mask = nullptr);

  /// Query positions whose neighborhood contains the word starting at
  /// `ref_residues[pos]`; empty span if none (or window overruns the end).
  std::span<const std::uint32_t> lookup(
      std::span<const bio::AminoAcid> ref_residues, std::size_t pos) const;

  std::span<const std::uint32_t> lookup_packed(std::uint32_t word) const;

  std::size_t k() const noexcept { return config_.k; }
  std::size_t query_length() const noexcept { return query_length_; }

  /// Total (word, query position) pairs stored — a proxy for hash-table
  /// size and for the random-access traffic per reference residue.
  std::size_t entry_count() const noexcept { return entries_.size(); }

 private:
  KmerIndexConfig config_;
  std::size_t query_length_ = 0;
  // CSR layout over the 2^(5k) word space: offsets_[w]..offsets_[w+1] give
  // the query positions for word w.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> entries_;
};

}  // namespace fabp::blast
