#pragma once
// SEG-style low-complexity masking (Wootton & Federhen 1993) — the query
// filter NCBI's translated searches apply before seeding.  Low-complexity
// stretches (homopolymers, short repeats) otherwise flood the k-mer
// neighborhood with spurious hits.
//
// This is the classic two-threshold scheme on windowed Shannon entropy:
// a window whose residue-composition entropy falls below `locut` triggers
// a masked region, which extends in both directions while the entropy
// stays below `hicut`.

#include <span>
#include <vector>

#include "fabp/bio/sequence.hpp"

namespace fabp::blast {

struct SegConfig {
  std::size_t window = 12;
  double locut = 2.2;  // bits; trigger threshold
  double hicut = 2.5;  // bits; extension threshold
};

/// Shannon entropy (bits) of the residue composition of `span`.
double composition_entropy(std::span<const bio::AminoAcid> residues);

/// Per-residue mask: true = low complexity (exclude from seeding).
/// Sequences shorter than the window are never masked.
std::vector<bool> seg_mask(const bio::ProteinSequence& protein,
                           const SegConfig& config = {});

/// Fraction of masked residues (convenience for reporting).
double masked_fraction(const std::vector<bool>& mask);

}  // namespace fabp::blast
