#pragma once
// TBLASTN-like pipeline — the paper's CPU baseline (§IV: "state-of-the-art
// protein alignment tool (TBLASTN)").
//
// Stages, per reference sequence:
//   1. six-frame translate the nucleotide reference,
//   2. probe every translated word in the query's k-mer neighborhood index
//      (random memory accesses — the CPU bottleneck the paper calls out),
//   3. two-hit filter per diagonal,
//   4. ungapped X-drop extension,
//   5. banded gapped extension for promising segments,
//   6. Karlin-Altschul E-value filtering.
//
// The driver runs single-threaded or across a thread pool (the paper's
// "TBLASTN-12" configuration partitions reference chunks over 12 threads).

#include <cstdint>
#include <optional>
#include <vector>

#include "fabp/align/extension.hpp"
#include "fabp/align/local.hpp"
#include "fabp/blast/evalue.hpp"
#include "fabp/blast/kmer_index.hpp"
#include "fabp/blast/seg.hpp"
#include "fabp/bio/translation.hpp"
#include "fabp/util/thread_pool.hpp"

namespace fabp::blast {

struct TblastnConfig {
  KmerIndexConfig index;             // k and neighborhood threshold T
  bool mask_query = true;            // SEG low-complexity filtering
  SegConfig seg{};
  bool two_hit = true;
  std::size_t two_hit_window = 40;   // BLAST's A parameter (diagonal gap)
  int ungapped_x_drop = 16;
  int gapped_trigger = 22;           // raw score to attempt gapped extension
  std::size_t band = 16;             // gapped extension bandwidth
  double evalue_cutoff = 10.0;
  KarlinAltschulParams stats = KarlinAltschulParams::blosum62_gapped_11_1();
  align::GapPenalties gaps{};        // 11 / 1

  /// Bit-sliced seeding prefilter: back-translate the query under the
  /// FabP template semantics, scan both strands of the reference with the
  /// bit-sliced engine, and run the (hash-probe-bound) seeding scan only
  /// inside padded windows around high-scoring positions.  Large speedup
  /// when matches are coding-near-exact; trades sensitivity for distant
  /// homology (the windowing can miss weak HSPs), so off by default.
  bool bitscan_prefilter = false;
  double prefilter_fraction = 0.6;   // threshold / (3 * query residues)
  std::size_t prefilter_pad = 96;    // reference bases kept around a hit
};

struct TblastnHit {
  int frame = 0;                 // 0..5 (see bio::FrameId)
  std::size_t query_begin = 0;   // residues, half-open
  std::size_t query_end = 0;
  std::size_t subject_begin = 0;  // residues in the translated frame
  std::size_t subject_end = 0;
  std::size_t dna_position = 0;   // forward-strand base of subject_begin
  int score = 0;                  // raw (gapped if attempted, else ungapped)
  double bits = 0.0;
  double evalue = 0.0;

  bool operator==(const TblastnHit&) const = default;
};

/// Pipeline stage counters — used to attribute runtime and to reproduce
/// the paper's argument about hash-probe-bound behavior.
struct TblastnStats {
  std::size_t residues_scanned = 0;
  std::size_t word_probes = 0;
  std::size_t seed_hits = 0;
  std::size_t two_hit_pairs = 0;
  std::size_t ungapped_extensions = 0;
  std::size_t gapped_extensions = 0;
  std::size_t hsps_reported = 0;

  TblastnStats& operator+=(const TblastnStats& o) noexcept;
};

struct TblastnResult {
  std::vector<TblastnHit> hits;  // sorted by (frame, subject_begin)
  TblastnStats stats;
};

class Tblastn {
 public:
  Tblastn(bio::ProteinSequence query, TblastnConfig config,
          const align::SubstitutionMatrix& matrix =
              align::SubstitutionMatrix::blosum62());

  /// Searches one nucleotide reference (all six frames), single-threaded.
  /// Routes through the bit-sliced prefilter when
  /// config().bitscan_prefilter is set.
  TblastnResult search(const bio::NucleotideSequence& reference) const;

  /// Prefiltered search (see TblastnConfig::bitscan_prefilter): seeds only
  /// inside reference windows the bit-sliced back-translation scan marks
  /// as candidates.  Exposed directly so callers can compare against the
  /// full scan regardless of the config flag.
  TblastnResult search_prefiltered(
      const bio::NucleotideSequence& reference) const;

  /// Multi-threaded search: the reference is cut into overlapping chunks
  /// distributed over the pool.  Hits are de-duplicated at chunk seams.
  TblastnResult search_parallel(const bio::NucleotideSequence& reference,
                                util::ThreadPool& pool,
                                std::size_t chunk_bases = 1 << 20) const;

  /// Full Smith-Waterman traceback for one reported hit: re-translates
  /// the hit's frame around the HSP (with `context` residues of slack on
  /// each side) and aligns the query against it, yielding the
  /// BLAST-report-shaped aligned region and CIGAR.
  align::Alignment align_hit(const TblastnHit& hit,
                             const bio::NucleotideSequence& reference,
                             std::size_t context = 16) const;

  const bio::ProteinSequence& query() const noexcept { return query_; }
  const KmerIndex& index() const noexcept { return index_; }
  const TblastnConfig& config() const noexcept { return config_; }

 private:
  TblastnResult search_frames(const bio::NucleotideSequence& reference,
                              std::size_t dna_offset,
                              std::size_t total_db_residues) const;

  bio::ProteinSequence query_;
  TblastnConfig config_;
  const align::SubstitutionMatrix& matrix_;
  std::vector<bool> query_mask_;  // SEG mask (all-false when disabled)
  KmerIndex index_;
};

}  // namespace fabp::blast
