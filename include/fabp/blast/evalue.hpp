#pragma once
// Karlin-Altschul statistics for BLAST-style searches: converts raw
// alignment scores into bit scores and expect values (E-values) given the
// search space size.  Parameters follow NCBI's published values for
// BLOSUM62 (ungapped: lambda 0.3176, K 0.134; gapped 11/1: lambda 0.267,
// K 0.041, H 0.14).

#include <cstddef>

namespace fabp::blast {

struct KarlinAltschulParams {
  double lambda = 0.267;
  double k = 0.041;
  double h = 0.14;

  /// NCBI values for ungapped BLOSUM62 statistics.
  static KarlinAltschulParams blosum62_ungapped() {
    return KarlinAltschulParams{0.3176, 0.134, 0.40};
  }
  /// NCBI values for gapped BLOSUM62 with open 11 / extend 1.
  static KarlinAltschulParams blosum62_gapped_11_1() {
    return KarlinAltschulParams{0.267, 0.041, 0.14};
  }
};

/// Normalized bit score: (lambda*S - ln K) / ln 2.
double bit_score(int raw_score, const KarlinAltschulParams& params);

/// Effective search-space-corrected lengths (BLAST's edge-effect
/// correction): length - lambda-expected HSP length, floored at 1.
struct SearchSpace {
  std::size_t query_length = 0;
  std::size_t db_length = 0;  // total residues searched (all frames)

  double effective(const KarlinAltschulParams& params) const;
};

/// Expect value: K * m' * n' * exp(-lambda * S).
double evalue(int raw_score, const SearchSpace& space,
              const KarlinAltschulParams& params);

/// Raw score needed for an E-value <= `target` in the given space.
int score_for_evalue(double target, const SearchSpace& space,
                     const KarlinAltschulParams& params);

}  // namespace fabp::blast
