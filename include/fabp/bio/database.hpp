#pragma once
// Multi-record reference database — the shape of the paper's workload
// (NCBI nt is millions of records, not one sequence).
//
// Records are concatenated into a single 2-bit packed store, separated by
// `kGuardElements` guard bases so no alignment window can span two
// records undetected; a sorted boundary table maps global element
// positions back to (record, local offset).  The FabP accelerator streams
// the concatenated store exactly as it would stream one long sequence.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fabp/bio/fasta.hpp"
#include "fabp/bio/packed.hpp"
#include "fabp/bio/sequence.hpp"

namespace fabp::bio {

class ReferenceDatabase {
 public:
  /// Guard bases inserted between records (and after the last one) so a
  /// query of up to kGuardElements elements cannot bridge records with a
  /// full-score match.  Guards decode as 'A'.
  static constexpr std::size_t kGuardElements = 768;  // 256 aa query max

  ReferenceDatabase() = default;

  /// Appends a record; returns its index.
  std::size_t add(std::string name, const NucleotideSequence& sequence);

  /// Builds from FASTA records (nucleotide alphabet required; throws
  /// std::invalid_argument on other letters).  With `lenient`, IUPAC
  /// ambiguity codes are substituted (NucleotideSequence::parse_lenient) —
  /// note that many amino-acid letters are *also* IUPAC nucleotide codes,
  /// so lenient mode happily packs a protein FASTA; keep it off unless the
  /// input is known nucleotide data.
  static ReferenceDatabase from_fasta(const std::vector<FastaRecord>& records,
                                      bool lenient = false);

  /// IUPAC substitutions performed while building (lenient mode only).
  std::size_t ambiguous_bases() const noexcept { return ambiguous_; }

  std::size_t record_count() const noexcept { return records_.size(); }
  const std::string& name(std::size_t record) const {
    return records_.at(record).name;
  }
  std::size_t record_length(std::size_t record) const {
    return records_.at(record).length;
  }
  /// Total bases across records (without guards).
  std::size_t total_bases() const noexcept { return total_bases_; }

  /// The concatenated 2-bit packed store the accelerator streams.
  const PackedNucleotides& packed() const noexcept { return packed_; }

  /// Concatenated store as a sequence (tests / software baselines).
  NucleotideSequence concatenated(SeqKind kind = SeqKind::Dna) const {
    return packed_.unpack(kind);
  }

  /// Binary serialization (little-endian, versioned header "FABPDB1\n"):
  /// the packed store is written verbatim, so save/load of a multi-GB
  /// database costs one sequential pass — the same property the paper
  /// exploits for DRAM streaming.
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static ReferenceDatabase load(std::istream& in);
  static ReferenceDatabase load_file(const std::string& path);

  struct Location {
    std::size_t record = 0;
    std::size_t offset = 0;  // element offset within the record
  };

  /// Maps a global element position to its record; nullopt inside guards.
  std::optional<Location> locate(std::size_t global_position) const;

  /// True when an alignment window [pos, pos+len) stays inside one record.
  bool window_within_record(std::size_t pos, std::size_t len) const;

 private:
  struct Record {
    std::string name;
    std::size_t begin = 0;   // global element index of the first base
    std::size_t length = 0;  // bases
  };

  std::vector<Record> records_;
  PackedNucleotides packed_;
  std::size_t total_bases_ = 0;
  std::size_t ambiguous_ = 0;
};

}  // namespace fabp::bio
