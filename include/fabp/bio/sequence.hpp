#pragma once
// Owning sequence types.  A NucleotideSequence carries a Kind tag (DNA vs
// RNA) that only affects text rendering (T vs U); the in-memory 2-bit
// representation is shared, mirroring the paper's treatment of the reference
// database as "DNA/RNA sequences".

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "fabp/bio/alphabet.hpp"

namespace fabp::bio {

enum class SeqKind : std::uint8_t { Dna, Rna };

struct LenientParseResult;  // defined below (needs NucleotideSequence)

class NucleotideSequence {
 public:
  NucleotideSequence() = default;
  explicit NucleotideSequence(SeqKind kind) : kind_{kind} {}
  NucleotideSequence(SeqKind kind, std::vector<Nucleotide> bases)
      : kind_{kind}, bases_{std::move(bases)} {}
  NucleotideSequence(SeqKind kind, std::initializer_list<Nucleotide> bases)
      : kind_{kind}, bases_{bases} {}

  /// Parses letters (whitespace skipped; throws std::invalid_argument on
  /// anything that is not ACGTU, case-insensitive).
  static NucleotideSequence parse(SeqKind kind, std::string_view text);

  /// Parses real-world FASTA content: IUPAC ambiguity codes (N, R, Y, S,
  /// W, K, M, B, D, H, V) are substituted with their first compatible
  /// base (deterministic), and the substitution count is reported.  This
  /// is how the 2-bit packed DRAM format of the paper has to treat the
  /// N-runs that NCBI nt is full of.  Still throws on non-IUPAC letters.
  static LenientParseResult parse_lenient(SeqKind kind,
                                          std::string_view text);

  SeqKind kind() const noexcept { return kind_; }
  std::size_t size() const noexcept { return bases_.size(); }
  bool empty() const noexcept { return bases_.empty(); }

  Nucleotide operator[](std::size_t i) const noexcept { return bases_[i]; }
  Nucleotide& operator[](std::size_t i) noexcept { return bases_[i]; }

  const std::vector<Nucleotide>& bases() const noexcept { return bases_; }
  std::vector<Nucleotide>& bases() noexcept { return bases_; }

  void push_back(Nucleotide n) { bases_.push_back(n); }
  void append(const NucleotideSequence& other);

  /// Sub-sequence [pos, pos+len) (clamped to the end).
  NucleotideSequence subsequence(std::size_t pos, std::size_t len) const;

  /// Renders with T (DNA) or U (RNA) depending on kind().
  std::string to_string() const;

  /// Same bases re-tagged as RNA (DNA transcription, coding-strand view).
  NucleotideSequence transcribed() const;

  /// Reverse complement (kind preserved).
  NucleotideSequence reverse_complement() const;

  auto begin() const noexcept { return bases_.begin(); }
  auto end() const noexcept { return bases_.end(); }

  bool operator==(const NucleotideSequence&) const = default;

 private:
  SeqKind kind_ = SeqKind::Dna;
  std::vector<Nucleotide> bases_;
};

struct LenientParseResult {
  NucleotideSequence sequence;
  std::size_t ambiguous = 0;  // IUPAC ambiguity letters substituted
};

class ProteinSequence {
 public:
  ProteinSequence() = default;
  explicit ProteinSequence(std::vector<AminoAcid> residues)
      : residues_{std::move(residues)} {}
  ProteinSequence(std::initializer_list<AminoAcid> residues)
      : residues_{residues} {}

  /// Parses one-letter codes ('*' allowed; whitespace skipped; throws
  /// std::invalid_argument on unknown letters).
  static ProteinSequence parse(std::string_view text);

  std::size_t size() const noexcept { return residues_.size(); }
  bool empty() const noexcept { return residues_.empty(); }

  AminoAcid operator[](std::size_t i) const noexcept { return residues_[i]; }
  AminoAcid& operator[](std::size_t i) noexcept { return residues_[i]; }

  const std::vector<AminoAcid>& residues() const noexcept { return residues_; }

  void push_back(AminoAcid aa) { residues_.push_back(aa); }

  ProteinSequence subsequence(std::size_t pos, std::size_t len) const;

  std::string to_string() const;

  auto begin() const noexcept { return residues_.begin(); }
  auto end() const noexcept { return residues_.end(); }

  bool operator==(const ProteinSequence&) const = default;

 private:
  std::vector<AminoAcid> residues_;
};

}  // namespace fabp::bio
