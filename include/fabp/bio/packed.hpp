#pragma once
// 2-bit packed nucleotide storage — the in-DRAM representation of the
// reference database (paper §III-B: "A, C, G, U ... encoded into 2-bit
// numbers").  Elements are packed LSB-first into 64-bit words; a 512-bit
// AXI beat is exactly eight consecutive words = 256 elements (§III-C).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fabp/bio/sequence.hpp"

namespace fabp::bio {

inline constexpr std::size_t kElementsPerWord = 32;   // 64 / 2
inline constexpr std::size_t kAxiBeatBits = 512;
inline constexpr std::size_t kElementsPerBeat = kAxiBeatBits / 2;  // 256

class PackedNucleotides {
 public:
  PackedNucleotides() = default;
  explicit PackedNucleotides(const NucleotideSequence& seq);

  /// Packs from raw bases.
  explicit PackedNucleotides(std::span<const Nucleotide> bases);

  /// Adopts already-packed words (`elements` 2-bit elements, LSB-first):
  /// the store exactly as it sits in DRAM.  Extra words beyond the element
  /// count are dropped; bits past `elements` in the last kept word are
  /// preserved as given.  Used by the fault layer to scan a corrupted copy
  /// of a reference without a decode/re-encode round trip.
  static PackedNucleotides from_words(std::vector<std::uint64_t> words,
                                      std::size_t elements);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Size in bytes as stored in DRAM (2 bits/element, zero padded).
  std::size_t byte_size() const noexcept { return words_.size() * 8; }

  Nucleotide get(std::size_t i) const noexcept {
    const std::uint64_t word = words_[i / kElementsPerWord];
    const unsigned shift = 2 * static_cast<unsigned>(i % kElementsPerWord);
    return nucleotide_from_code(static_cast<std::uint8_t>((word >> shift) & 3));
  }

  void set(std::size_t i, Nucleotide n) noexcept;

  void push_back(Nucleotide n);

  /// Number of complete-or-partial 512-bit beats covering the data.
  std::size_t beat_count() const noexcept;

  /// The 512-bit beat at `beat` as eight words; elements past size() are 0
  /// (decode as A — callers mask by element count).
  std::array<std::uint64_t, 8> beat(std::size_t beat) const noexcept;

  /// Number of valid elements in beat `beat` (256 except possibly the last).
  std::size_t beat_elements(std::size_t beat) const noexcept;

  /// Unpacks the whole store back into a sequence of the given kind.
  NucleotideSequence unpack(SeqKind kind) const;

  /// The contiguous sub-range [begin, begin + count) as its own packed
  /// store — a shard's slice of "card DRAM".  Pure word-level extraction
  /// (cross-word 2-bit shift, trailing bits of the last word zeroed), no
  /// decode/re-encode round trip.  Throws std::out_of_range when the range
  /// exceeds size().
  PackedNucleotides slice(std::size_t begin, std::size_t count) const;

  std::span<const std::uint64_t> words() const noexcept { return words_; }

  bool operator==(const PackedNucleotides&) const = default;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fabp::bio
