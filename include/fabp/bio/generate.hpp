#pragma once
// Synthetic workload generation — the stand-in for the paper's NCBI nr
// (protein queries) and nt (1 GB nucleotide reference) datasets.
//
// A SyntheticDatabase is random DNA with *planted genes*: proteins whose
// codon-randomized coding sequences are embedded at known positions.  Query
// proteins sampled from planted genes are guaranteed true positives, which
// lets every experiment check that an aligner actually finds what is there,
// not just that it runs.

#include <cstdint>
#include <string>
#include <vector>

#include "fabp/bio/mutation.hpp"
#include "fabp/bio/sequence.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::bio {

/// Uniform random DNA of the given length and GC content.
NucleotideSequence random_dna(std::size_t length, util::Xoshiro256& rng,
                              double gc_content = 0.5);

/// Random protein using the approximate natural amino-acid frequency
/// distribution (Swiss-Prot composition); never contains Stop.
ProteinSequence random_protein(std::size_t length, util::Xoshiro256& rng);

/// Uniform-random back-translation: picks a random synonymous codon for
/// each residue, so degenerate positions are exercised.
NucleotideSequence random_coding_sequence(const ProteinSequence& protein,
                                          util::Xoshiro256& rng);

struct PlantedGene {
  std::size_t dna_position = 0;  // first base of the coding sequence
  ProteinSequence protein;
};

struct DatabaseSpec {
  std::size_t total_bases = 1 << 20;
  std::size_t gene_count = 16;
  std::size_t gene_length = 120;  // residues per planted gene
  double gc_content = 0.5;
  std::uint64_t seed = 42;
};

struct SyntheticDatabase {
  NucleotideSequence dna;          // SeqKind::Dna
  std::vector<PlantedGene> genes;  // sorted by dna_position

  /// Builds random DNA of spec.total_bases with spec.gene_count planted,
  /// non-overlapping coding sequences at deterministic pseudo-random
  /// positions.  Throws std::invalid_argument if the genes cannot fit.
  static SyntheticDatabase build(const DatabaseSpec& spec);
};

struct QuerySpec {
  std::size_t length = 50;           // residues
  double substitution_rate = 0.0;    // protein-level divergence vs the gene
  std::uint64_t seed = 7;
};

struct QuerySet {
  std::vector<ProteinSequence> queries;
  /// For each query: index into db.genes it was sampled from, or -1 if the
  /// query is random background (no planted match).
  std::vector<int> source_gene;
};

/// Samples `count` queries; `planted_fraction` of them are substrings of
/// planted genes (possibly mutated per spec), the rest random background.
QuerySet sample_queries(const SyntheticDatabase& db, std::size_t count,
                        const QuerySpec& spec, double planted_fraction = 1.0);

}  // namespace fabp::bio
