#pragma once
// Codon-usage tables: organisms do not pick synonymous codons uniformly,
// and reference databases inherit that bias.  Planting genes with a
// realistic usage profile matters for any experiment whose statistics
// depend on *which* codons appear (e.g. how often Ser is encoded by the
// AGY codons FabP's template drops — ~30% in human, not the 1/3 a uniform
// draw gives).

#include <array>
#include <span>
#include <string_view>

#include "fabp/bio/codon.hpp"
#include "fabp/bio/sequence.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::bio {

/// Relative usage per codon (dense index), normalized per amino acid so
/// the weights of one residue's synonymous codons sum to ~1.
class CodonUsage {
 public:
  struct Fraction {
    std::string_view codon;  // RNA text, e.g. "GCU"
    double fraction;         // within its amino acid
  };

  /// Uniform over each amino acid's codon set.
  static CodonUsage uniform();
  /// Builds from per-codon fractions; codons not listed get weight 0.
  /// Throws std::invalid_argument on unparseable codon text.
  static CodonUsage from_fractions(std::span<const Fraction> fractions);
  /// Human (Homo sapiens) codon usage (Kazusa frequencies).
  static const CodonUsage& human();
  /// E. coli K-12 codon usage.
  static const CodonUsage& ecoli();

  double weight(const Codon& codon) const noexcept {
    return weights_[codon.dense_index()];
  }

  /// Draws a codon for `aa` proportionally to the usage weights.
  Codon sample(AminoAcid aa, util::Xoshiro256& rng) const;

  /// Relative synonymous codon usage of `codon` within its amino acid
  /// (1.0 = used exactly at the uniform rate).
  double rscu(const Codon& codon) const;

 private:
  std::array<double, kCodonCount> weights_{};
};

/// Codon-bias-aware coding sequence (generalizes random_coding_sequence).
NucleotideSequence biased_coding_sequence(const ProteinSequence& protein,
                                          const CodonUsage& usage,
                                          util::Xoshiro256& rng);

}  // namespace fabp::bio
