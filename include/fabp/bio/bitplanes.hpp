#pragma once
// Per-nucleotide occurrence bitplanes over a 2-bit packed reference — the
// transposed ("bit-sliced") view the software scan engine consumes: bit j
// of a plane describes reference element j.  Planes are derived straight
// from the packed words (two packed 64-bit words yield one 64-bit plane
// word), so building them is a linear pass of cheap SWAR bit-compaction.
//
// Besides the four occurrence planes the class carries the raw code
// bitplanes (lsb/msb of each element's 2-bit code) and the *preceding
// element* history planes (msb of element j-1, msb/lsb of element j-2)
// that Type III dependent comparisons consult.  All planes are tail-masked:
// bits at positions >= size() are zero even though the packed store pads
// its last word with A (code 00), and every plane carries one extra zero
// guard word so 64-bit fetches at any bit offset < size() stay in bounds.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fabp/bio/packed.hpp"

namespace fabp::bio {

class NucleotideBitplanes {
 public:
  NucleotideBitplanes() = default;
  explicit NucleotideBitplanes(const PackedNucleotides& packed);
  explicit NucleotideBitplanes(const NucleotideSequence& seq);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Words covering size() positions: ceil(size / 64).
  std::size_t word_count() const noexcept { return word_count_; }

  /// Words actually stored per plane: word_count() + 1 zero guard word
  /// (also at least 1 for the empty sequence, so spans are never empty).
  std::size_t padded_word_count() const noexcept { return word_count_ + 1; }

  /// Bit j set iff ref[j] == n.
  std::span<const std::uint64_t> occurrence(Nucleotide n) const noexcept {
    return occurrence_[code(n)];
  }
  /// Bit j = LSB of ref[j]'s 2-bit code (set for C and U).
  std::span<const std::uint64_t> lsb() const noexcept { return lsb_; }
  /// Bit j = MSB of ref[j]'s 2-bit code (set for G and U).
  std::span<const std::uint64_t> msb() const noexcept { return msb_; }

  /// Bit j = MSB of ref[j-1]'s code; bit 0 is 0 (no predecessor).
  std::span<const std::uint64_t> prev1_msb() const noexcept {
    return prev1_msb_;
  }
  /// Bit j = MSB of ref[j-2]'s code; bits 0..1 are 0.
  std::span<const std::uint64_t> prev2_msb() const noexcept {
    return prev2_msb_;
  }
  /// Bit j = LSB of ref[j-2]'s code; bits 0..1 are 0.
  std::span<const std::uint64_t> prev2_lsb() const noexcept {
    return prev2_lsb_;
  }

  /// Bit j set iff j < size() — the tail mask complement-style planes
  /// (e.g. "not G") must be intersected with.
  std::span<const std::uint64_t> valid() const noexcept { return valid_; }

 private:
  using Plane = std::vector<std::uint64_t>;

  std::size_t size_ = 0;
  std::size_t word_count_ = 0;
  std::array<Plane, 4> occurrence_;
  Plane lsb_, msb_;
  Plane prev1_msb_, prev2_msb_, prev2_lsb_;
  Plane valid_;
};

}  // namespace fabp::bio
