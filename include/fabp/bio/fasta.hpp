#pragma once
// Minimal FASTA reader/writer.  Used by the examples and by the synthetic
// database generator to persist workloads; supports both nucleotide and
// protein records (records are kept as raw text; typed parsing happens at
// the call site so one file can mix alphabets, like NCBI dumps do).

#include <iosfwd>
#include <string>
#include <vector>

namespace fabp::bio {

struct FastaRecord {
  std::string id;           // token after '>' up to first whitespace
  std::string description;  // remainder of the header line (may be empty)
  std::string sequence;     // concatenated sequence lines, whitespace removed

  bool operator==(const FastaRecord&) const = default;
};

/// Input-hardening policy for read_fasta.  The default is bit-compatible
/// with the historical reader (raw bytes pass through untouched); lenient
/// real-world dumps set fold_case, and anything fed untrusted files should
/// set reject_control so binary garbage fails here with a line number
/// instead of exploding later inside the typed sequence parsers.  (The
/// N/ambiguity-code policy lives one layer down: parse the record text
/// with bio::NucleotideSequence::parse_lenient, which folds IUPAC codes.)
struct FastaReadOptions {
  bool fold_case = false;      ///< fold sequence bytes to uppercase
  bool reject_control = false; ///< throw on non-printable sequence bytes
};

/// Reads every record from a stream.  Throws std::runtime_error on content
/// before the first header (and, per options, on non-printable sequence
/// bytes).  An empty stream yields an empty vector; CRLF line endings and
/// blank lines are tolerated, header-only records yield empty sequences.
std::vector<FastaRecord> read_fasta(std::istream& in,
                                    const FastaReadOptions& options);
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Reads a FASTA file from disk; throws std::runtime_error if unreadable.
std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         const FastaReadOptions& options);
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records, wrapping sequence lines at `width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width = 70);

/// Writes a FASTA file to disk; throws std::runtime_error if unwritable.
void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t width = 70);

}  // namespace fabp::bio
