#pragma once
// Minimal FASTA reader/writer.  Used by the examples and by the synthetic
// database generator to persist workloads; supports both nucleotide and
// protein records (records are kept as raw text; typed parsing happens at
// the call site so one file can mix alphabets, like NCBI dumps do).

#include <iosfwd>
#include <string>
#include <vector>

namespace fabp::bio {

struct FastaRecord {
  std::string id;           // token after '>' up to first whitespace
  std::string description;  // remainder of the header line (may be empty)
  std::string sequence;     // concatenated sequence lines, whitespace removed

  bool operator==(const FastaRecord&) const = default;
};

/// Reads every record from a stream.  Throws std::runtime_error on content
/// before the first header.  An empty stream yields an empty vector.
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Reads a FASTA file from disk; throws std::runtime_error if unreadable.
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records, wrapping sequence lines at `width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width = 70);

/// Writes a FASTA file to disk; throws std::runtime_error if unwritable.
void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t width = 70);

}  // namespace fabp::bio
