#pragma once
// The standard genetic code (Fig. 2 of the paper).
//
// A Codon is three nucleotides; its dense index is
//   16*code(first) + 4*code(second) + code(third)  in [0, 64).
// The table is built once at static-initialization time from the canonical
// RNA codon assignments and exposes both directions:
//   codon -> amino acid           (translation)
//   amino acid -> codon list      (back-translation)

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fabp/bio/alphabet.hpp"

namespace fabp::bio {

struct Codon {
  Nucleotide first;
  Nucleotide second;
  Nucleotide third;

  constexpr std::uint8_t dense_index() const noexcept {
    return static_cast<std::uint8_t>(16 * code(first) + 4 * code(second) +
                                     code(third));
  }

  static constexpr Codon from_dense_index(std::uint8_t i) noexcept {
    return Codon{nucleotide_from_code(static_cast<std::uint8_t>(i >> 4)),
                 nucleotide_from_code(static_cast<std::uint8_t>((i >> 2) & 3)),
                 nucleotide_from_code(static_cast<std::uint8_t>(i & 3))};
  }

  Nucleotide operator[](std::size_t pos) const noexcept {
    return pos == 0 ? first : pos == 1 ? second : third;
  }

  /// RNA rendering, e.g. "AUG".
  std::string to_string() const;

  bool operator==(const Codon&) const = default;
};

inline constexpr std::size_t kCodonCount = 64;

/// Translates one codon under the standard genetic code.
AminoAcid translate(const Codon& codon) noexcept;

/// All codons that encode `aa`, in dense-index order.
/// (Stop -> {UAA, UAG, UGA}; Ser -> 6 codons including AGU/AGC.)
std::span<const Codon> codons_for(AminoAcid aa) noexcept;

/// Number of codons encoding `aa` (its degeneracy).
std::size_t degeneracy(AminoAcid aa) noexcept;

/// True iff the codon is one of UAA/UAG/UGA.
bool is_stop(const Codon& codon) noexcept;

/// True iff the codon is AUG.
bool is_start(const Codon& codon) noexcept;

}  // namespace fabp::bio
