#pragma once
// Nucleotide and amino-acid alphabets.
//
// The nucleotide 2-bit codes follow the paper's encoding exactly
// (Fig. 5(b) legend): A=00, C=01, G=10, U=11.  DNA thymine maps onto the
// same code as uracil, so a packed reference can hold either DNA or RNA.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fabp::bio {

/// RNA/DNA base with the paper's 2-bit code as the underlying value.
enum class Nucleotide : std::uint8_t { A = 0b00, C = 0b01, G = 0b10, U = 0b11 };

inline constexpr std::array<Nucleotide, 4> kAllNucleotides{
    Nucleotide::A, Nucleotide::C, Nucleotide::G, Nucleotide::U};

/// 2-bit code of a nucleotide (A=0, C=1, G=2, U/T=3).
constexpr std::uint8_t code(Nucleotide n) noexcept {
  return static_cast<std::uint8_t>(n);
}

/// Inverse of code(); precondition: bits < 4.
constexpr Nucleotide nucleotide_from_code(std::uint8_t bits) noexcept {
  return static_cast<Nucleotide>(bits & 0b11);
}

/// Upper-case RNA letter (U for the T/U slot).
char to_char_rna(Nucleotide n) noexcept;
/// Upper-case DNA letter (T for the T/U slot).
char to_char_dna(Nucleotide n) noexcept;

/// Parses one letter (case-insensitive; accepts both T and U).
std::optional<Nucleotide> nucleotide_from_char(char c) noexcept;

/// Watson-Crick complement (A<->U/T, C<->G).
constexpr Nucleotide complement(Nucleotide n) noexcept {
  // The 2-bit code is chosen so that complement == bitwise NOT.
  return static_cast<Nucleotide>(~static_cast<std::uint8_t>(n) & 0b11);
}

/// The 20 standard amino acids plus the stop signal.
/// Underlying values are contiguous and stable (used as array indices).
enum class AminoAcid : std::uint8_t {
  Ala, Arg, Asn, Asp, Cys, Gln, Glu, Gly, His, Ile,
  Leu, Lys, Met, Phe, Pro, Ser, Thr, Trp, Tyr, Val,
  Stop,  // translation terminator '*'
};

inline constexpr std::size_t kAminoAcidCount = 21;  // 20 + Stop

inline constexpr std::array<AminoAcid, kAminoAcidCount> kAllAminoAcids{
    AminoAcid::Ala, AminoAcid::Arg, AminoAcid::Asn, AminoAcid::Asp,
    AminoAcid::Cys, AminoAcid::Gln, AminoAcid::Glu, AminoAcid::Gly,
    AminoAcid::His, AminoAcid::Ile, AminoAcid::Leu, AminoAcid::Lys,
    AminoAcid::Met, AminoAcid::Phe, AminoAcid::Pro, AminoAcid::Ser,
    AminoAcid::Thr, AminoAcid::Trp, AminoAcid::Tyr, AminoAcid::Val,
    AminoAcid::Stop};

/// Index usable for dense lookup tables.
constexpr std::size_t index(AminoAcid aa) noexcept {
  return static_cast<std::size_t>(aa);
}

/// One-letter IUPAC code ('*' for Stop).
char to_char(AminoAcid aa) noexcept;

/// Three-letter code ("Ala", ..., "Ter" for Stop).
std::string_view to_three_letter(AminoAcid aa) noexcept;

/// Parses a one-letter code (case-insensitive; '*' = Stop).
std::optional<AminoAcid> amino_acid_from_char(char c) noexcept;

}  // namespace fabp::bio
