#pragma once
// Translation of nucleotide sequences to proteins, including the six-frame
// translation used by the TBLASTN baseline (three reading frames on each
// strand).

#include <array>
#include <cstddef>
#include <vector>

#include "fabp/bio/sequence.hpp"

namespace fabp::bio {

/// Translates in-frame starting at `offset`; trailing 1-2 bases are ignored.
/// Stop codons become AminoAcid::Stop residues (no truncation) so callers
/// can segment on them, exactly as BLAST's translated searches do.
ProteinSequence translate(const NucleotideSequence& nucleotides,
                          std::size_t offset = 0);

/// Identifies one of the six reading frames of a double-stranded sequence.
/// Frames 0..2 are the forward strand at offsets 0..2; frames 3..5 are the
/// reverse-complement strand at offsets 0..2.
struct FrameId {
  int frame;  // 0..5

  bool reverse() const noexcept { return frame >= 3; }
  std::size_t offset() const noexcept {
    return static_cast<std::size_t>(frame % 3);
  }
};

struct TranslatedFrame {
  FrameId id{};
  ProteinSequence protein;

  /// Maps a protein position in this frame back to the 0-based nucleotide
  /// position (on the forward strand) of the codon's first base.
  std::size_t nucleotide_position(std::size_t protein_pos,
                                  std::size_t dna_length) const noexcept;
};

/// All six reading frames of `dna`.
std::array<TranslatedFrame, 6> six_frame_translate(
    const NucleotideSequence& dna);

/// Finds open reading frames (start codon .. stop codon, inclusive bounds in
/// nucleotides on the given sequence/frame) of at least `min_codons` codons.
struct OpenReadingFrame {
  std::size_t begin;  // nucleotide index of the AUG
  std::size_t end;    // one past the stop codon's last nucleotide
  ProteinSequence protein;  // without the stop residue
};

std::vector<OpenReadingFrame> find_orfs(const NucleotideSequence& rna,
                                        std::size_t min_codons);

}  // namespace fabp::bio
