#pragma once
// Mutation models for workload generation and for the indel-frequency
// experiment (paper §IV-A, citing Neininger et al. 2019: indels in
// protein-coding regions have median 0, mean 0.09 and stddev 0.36 events
// per kilobase; substitutions are far more common).

#include <cstdint>

#include "fabp/bio/sequence.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::bio {

struct MutationParams {
  /// Per-base probability of a point substitution.
  double substitution_rate = 0.01;
  /// Expected indel *events* per kilobase (paper's empirical mean: 0.09).
  double indel_events_per_kb = 0.0;
  /// Geometric length distribution parameter for each indel event; mean
  /// event length = 1 / indel_length_p.
  double indel_length_p = 0.55;
  /// Probability an indel event is an insertion (else deletion).
  double insertion_fraction = 0.5;
};

struct MutationSummary {
  std::size_t substitutions = 0;
  std::size_t indel_events = 0;
  std::size_t inserted_bases = 0;
  std::size_t deleted_bases = 0;

  bool has_indel() const noexcept { return indel_events > 0; }
};

struct MutationResult {
  NucleotideSequence sequence;
  MutationSummary summary;
};

/// Applies the model to a nucleotide sequence.  Substitutions replace a base
/// with a uniformly-chosen *different* base.  Indel events are drawn
/// Poisson(indel_events_per_kb * len/1000) and placed uniformly; each event
/// inserts or deletes a geometric-length run.  Deterministic given `rng`.
MutationResult mutate(const NucleotideSequence& seq, const MutationParams& p,
                      util::Xoshiro256& rng);

/// Applies per-residue substitutions to a protein (used to model divergent
/// homologs for the TBLASTN sensitivity tests).  Each substituted residue is
/// replaced with a uniformly-chosen different amino acid (never Stop).
ProteinSequence mutate_protein(const ProteinSequence& seq,
                               double substitution_rate,
                               util::Xoshiro256& rng);

}  // namespace fabp::bio
