#pragma once
// Console table / CSV printer used by every bench harness so the
// paper-vs-measured output has one consistent, parseable format.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fabp::util {

/// A simple column-aligned text table.  Cells are strings; the `cell`
/// overloads format numerics with sensible defaults.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(std::string text);
  Table& cell(const char* text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule and right-padded columns.
  void print(std::ostream& os) const;

  /// Comma-separated dump (no quoting beyond replacing ',' with ';').
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double as "12.3x" style ratio text.
std::string ratio_text(double value, int precision = 1);

/// Formats bytes as "12.8 GB/s"-style text given bytes per second.
std::string bandwidth_text(double bytes_per_second);

/// Formats seconds with an auto-selected unit (ns/us/ms/s).
std::string time_text(double seconds);

/// Formats a fraction in [0,1] as a percentage string.
std::string percent_text(double fraction, int precision = 1);

/// Prints a section banner used by the bench harnesses.
void banner(std::ostream& os, const std::string& title);

}  // namespace fabp::util
