#pragma once
// Streaming and batch statistics used by the mutation-frequency experiment
// (E5) and the benchmark harnesses.

#include <cstddef>
#include <span>
#include <vector>

namespace fabp::util {

/// Welford-style streaming accumulator: numerically stable mean/variance,
/// plus min/max, usable incrementally from any experiment loop.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Median of a sample (copies; does not reorder the input).
double median(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation between closest ranks.
double percentile(std::span<const double> xs, double p);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

/// Convenience: arithmetic mean of a span (0 if empty).
double mean(std::span<const double> xs);

}  // namespace fabp::util
