#pragma once
// Small bit-manipulation helpers shared by the packed sequence store and the
// hardware (LUT/netlist) model.

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace fabp::util {

/// Extract `width` bits of `value` starting at `pos` (LSB-first).
constexpr std::uint64_t bits(std::uint64_t value, unsigned pos,
                             unsigned width) noexcept {
  return (value >> pos) & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
}

/// Single bit of `value` at position `pos` (LSB-first).
constexpr bool bit(std::uint64_t value, unsigned pos) noexcept {
  return ((value >> pos) & 1ULL) != 0;
}

/// Set or clear bit `pos` of `value`.
constexpr std::uint64_t with_bit(std::uint64_t value, unsigned pos,
                                 bool on) noexcept {
  return on ? (value | (1ULL << pos)) : (value & ~(1ULL << pos));
}

/// Number of set bits across a span of words.
inline std::size_t popcount(std::span<const std::uint64_t> words) noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Compacts the 32 even-indexed bits of `x` into the low half of the result
/// (the classic Morton-decode half-shuffle).  Two of these turn a pair of
/// 2-bit packed words into one 64-element code bitplane word — the SWAR
/// bit-compaction step shared by the whole-reference bitplane builder and
/// the tile-fused scan compiler.
constexpr std::uint64_t compress_even_bits(std::uint64_t x) noexcept {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return x;
}

/// A growable LSB-first bit vector with word-level access; used for match
/// masks and reference bit-streams.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits, bool value = false)
      : size_{nbits},
        words_(ceil_div(nbits, 64), value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const noexcept {
    return bit(words_[i >> 6], static_cast<unsigned>(i & 63));
  }

  void set(std::size_t i, bool v) noexcept {
    words_[i >> 6] = with_bit(words_[i >> 6], static_cast<unsigned>(i & 63), v);
  }

  void push_back(bool v) {
    if ((size_ & 63) == 0) words_.push_back(0);
    set_raw(size_, v);
    ++size_;
  }

  /// Population count over the whole vector.
  std::size_t count() const noexcept { return popcount(words_); }

  /// Population count over [begin, end).
  std::size_t count_range(std::size_t begin, std::size_t end) const noexcept;

  std::span<const std::uint64_t> words() const noexcept { return words_; }

  bool operator==(const BitVector&) const = default;

 private:
  void set_raw(std::size_t i, bool v) noexcept {
    words_[i >> 6] = with_bit(words_[i >> 6], static_cast<unsigned>(i & 63), v);
  }
  void trim() noexcept {
    const unsigned tail = size_ & 63;
    if (tail != 0 && !words_.empty()) words_.back() &= (1ULL << tail) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fabp::util
