#pragma once
// Host-environment snapshot for benchmark provenance.
//
// A benchmark JSON without the machine it ran on is unreproducible: the
// thread-sweep and bandwidth numbers in BENCH_*.json only mean something
// relative to the core count, the CPU affinity mask the process was
// launched under (taskset/cgroups routinely shrink it below the nominal
// core count) and the cpufreq governor (a "powersave" governor can halve
// single-thread throughput and wreck run-to-run stability).  BenchEnv
// captures all three once at startup so every bench embeds them in its
// config block.

#include <cstddef>
#include <string>

namespace fabp::util {

struct BenchEnv {
  /// std::thread::hardware_concurrency() — the nominal core/SMT count.
  std::size_t hardware_threads = 0;
  /// CPUs actually schedulable for this process (sched_getaffinity mask
  /// population); equals hardware_threads unless pinned/containerised.
  /// Falls back to hardware_threads where the probe is unavailable.
  std::size_t affinity_cpus = 0;
  /// cpufreq scaling governor of cpu0 ("performance", "powersave", ...)
  /// or "unknown" when sysfs does not expose one (VMs, containers,
  /// non-Linux hosts).
  std::string governor = "unknown";
};

/// Probes the host once per call; cheap enough to call per bench run.
BenchEnv probe_bench_env();

}  // namespace fabp::util
