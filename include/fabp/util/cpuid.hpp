#pragma once
// Runtime x86 feature detection for the SIMD scan kernels.  The binary is
// compiled for baseline x86-64; the AVX2/AVX-512 kernel TUs carry wider
// instructions, so the dispatcher must prove — once, at startup — that the
// CPU *and* the OS (XSAVE state for ymm/zmm registers) support them before
// any such code runs.  On non-x86 targets every probe reports false and
// the portable SWAR kernel is chosen.

namespace fabp::util {

/// CPU + OS support for AVX2 (256-bit ymm state enabled in XCR0).
bool cpu_has_avx2() noexcept;

/// CPU + OS support for AVX-512F (opmask + zmm state enabled in XCR0).
bool cpu_has_avx512f() noexcept;

/// CPU + OS support for AVX-512 VPOPCNTDQ (per-lane 64-bit popcount);
/// implies cpu_has_avx512f().
bool cpu_has_avx512vpopcntdq() noexcept;

/// Human-readable summary of the probes above, e.g.
/// "avx2+avx512f+vpopcntdq", "avx2+avx512f", "avx2", or "baseline" — for
/// bench/CLI banners.
const char* cpu_isa_summary() noexcept;

}  // namespace fabp::util
