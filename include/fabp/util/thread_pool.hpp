#pragma once
// Minimal fixed-size thread pool.  Used by the multi-threaded TBLASTN
// baseline (the paper's "CPU-12T" configuration) and the GPU-algorithm
// functional stand-in.  Tasks are void() closures; parallel_for splits an
// index range into contiguous chunks.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fabp::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future resolves when it completes.  A
  /// task that throws never escapes the worker thread: the exception is
  /// captured into the future and rethrown from get().
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for every i in [begin, end), split into size() contiguous
  /// chunks; blocks until all chunks are done.  fn must be thread-safe.
  /// If chunks throw, all chunks are still drained before the first
  /// exception is rethrown on the caller (the pool stays usable).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk_begin, chunk_end) over size() contiguous chunks; blocks.
  /// Prefer this to parallel_for when per-index dispatch cost matters.
  void parallel_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Like parallel_chunks but also passes the chunk index (0-based, in
  /// range order).  The chunk layout is a pure function of (begin, end,
  /// size(), granule, max_chunks), so callers can produce deterministic
  /// ordered merges by writing into a per-chunk slot and concatenating in
  /// index order.
  ///
  /// `granule` makes every chunk a whole multiple of that many indices
  /// (the last chunk absorbs the remainder) — work whose natural unit is
  /// large (a scan tile, hundreds of KiB of plane words) sets it so no
  /// worker is handed a sliver that costs more to dispatch than to
  /// compute.
  ///
  /// `max_chunks` caps the chunk count; 0 means size().  Values above
  /// size() split finer than one chunk per worker, so stragglers rebalance
  /// through the queue (the tiled scanner's work-stealing partition);
  /// values below split coarser.
  ///
  /// Granules are spread in a balanced split — the first (grains % chunks)
  /// chunks carry one extra granule — so the count is exactly
  /// min(grains, cap) and a pool of N workers always sees N chunks when N
  /// granules exist.  (A uniform rounded-up step would not: 9 granules
  /// over 8 workers would collapse to 5 double-size chunks and strand 3
  /// workers.)
  void parallel_indexed_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
      std::size_t granule = 1, std::size_t max_chunks = 0);

  /// Exact number of chunks parallel_indexed_chunks will produce for a
  /// range of `total` indices at the given granule and cap: 0 when total
  /// is 0, otherwise min(ceil(total / granule), max_chunks ? max_chunks
  /// : size()).
  std::size_t chunk_count(std::size_t total, std::size_t granule = 1,
                          std::size_t max_chunks = 0) const noexcept {
    if (total == 0) return 0;
    if (granule == 0) granule = 1;
    const std::size_t grains = (total + granule - 1) / granule;
    const std::size_t cap =
        max_chunks == 0 ? size() : std::max<std::size_t>(1, max_chunks);
    return std::min(grains, cap);
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fabp::util
