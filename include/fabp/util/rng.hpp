#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every workload generator in this repository takes an explicit seed and is
// driven by Xoshiro256** (public-domain algorithm by Blackman & Vigna),
// seeded through SplitMix64.  std::mt19937 is deliberately avoided: its
// state is large, seeding it well is fiddly, and its output sequence is not
// stable across standard-library *distributions* — we implement our own
// bounded-draw helpers so identical seeds give identical workloads on every
// platform.

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace fabp::util {

/// SplitMix64: used to expand a single 64-bit seed into a full RNG state.
/// Also usable standalone as a fast, decent-quality hash/stream.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the repository-wide PRNG.  Satisfies
/// std::uniform_random_bit_generator so it can also feed <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 (never all-zero).
  explicit Xoshiro256(std::uint64_t seed = 0x5eedfab9u) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform in [0, bound).  bound == 0 is a precondition violation.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (no state caching; two draws per call).
  double normal() noexcept;

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Poisson draw (Knuth for small lambda, normal approximation for large).
  std::uint64_t poisson(double lambda) noexcept;

  /// Geometric: number of failures before first success, success prob p.
  std::uint64_t geometric(double p) noexcept;

  /// Draw an index in [0, weights.size()) proportionally to weights.
  /// All weights must be >= 0 and not all zero.
  std::size_t weighted(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[bounded(i)]);
    }
  }

  /// Independent child stream (jump-free fork via re-seeding; streams from
  /// distinct fork indices are statistically independent in practice).
  Xoshiro256 fork(std::uint64_t stream) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace fabp::util
