#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the end-to-end
// integrity check of the fault-tolerance layer: the host CRCs every tile of
// the packed reference once at upload, the (modeled) card reports the CRC
// of what it actually streamed, and a mismatch localises corruption to one
// tile instead of poisoning a whole scan.  Also used over readback hit
// buffers.  Table-driven, one byte per step; fast enough that a full pass
// over a reference is a small fraction of one scan (and it only runs on
// fault paths or once per upload).

#include <cstddef>
#include <cstdint>
#include <span>

namespace fabp::util {

/// CRC of `size` bytes, continuing from `crc` (pass the previous return
/// value to checksum a buffer in pieces; the empty-prefix value is 0).
/// crc32("123456789") == 0xCBF43926, the CRC-32/ISO-HDLC check value.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t crc = 0) noexcept;

inline std::uint32_t crc32(std::span<const std::byte> bytes,
                           std::uint32_t crc = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), crc);
}

/// CRC over 64-bit words as stored (little-endian byte order on every
/// platform this repo targets; documented so checksums are portable).
std::uint32_t crc32_words(std::span<const std::uint64_t> words,
                          std::uint32_t crc = 0) noexcept;

}  // namespace fabp::util
