#pragma once
// Wire protocol of the fabp TCP front-end (DESIGN.md §4e).
//
// Framing: every message is a little-endian u32 payload length followed by
// that many payload bytes; payload byte 0 is the MessageType, byte 1 the
// protocol version.  Frames above kMaxFrameBytes are rejected before any
// allocation (a garbage length prefix must not OOM the server).
//
//   AlignRequest   = type | ver | id u64 | threshold u32 | deadline_ms u32
//                  | len u32 | protein
//   AlignResponse  = type | ver | id u64 | status u8 | retry_after_ms u32
//                  | server_seconds f64 | error string | hit list
//                  | reverse hit list
//   StatsRequest   = type | ver
//   StatsResponse  = type | ver | text string
//
// Version 2 added deadline propagation (requests carry their remaining
// budget in ms; the server maps it onto the engine deadline) and the
// retry-after hint typed refusals carry back (Overloaded/QueueFull tell
// the client how long to back off before the next attempt).
//
// Strings are u32 length + bytes; hit lists are u32 count + (u64 position,
// u32 score) pairs.  Encode/decode are pure byte-vector transforms with no
// socket dependency, so the protocol is unit-testable without I/O; the
// decoders bounds-check every read and fail soft (false + untouched
// output) on truncated or alien payloads.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fabp/core/golden.hpp"

namespace fabp::net {

inline constexpr std::uint8_t kProtocolVersion = 2;
/// Per-direction frame bounds.  Client->server frames carry queries and
/// are tiny, so the server rejects anything above 1 MiB before
/// allocating (a garbage length prefix must not OOM the server).
/// Server->client frames carry hit lists, which scale with the
/// reference (a permissive threshold over a multi-megabase reference
/// yields millions of hits at 12 bytes each), so clients accept up to
/// 256 MiB; the server refuses to emit anything larger with a typed
/// error response instead of a half-written frame.
inline constexpr std::uint32_t kMaxRequestFrameBytes = 1u << 20;
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

enum class MessageType : std::uint8_t {
  AlignRequest = 1,
  AlignResponse = 2,
  StatsRequest = 3,
  StatsResponse = 4,
};

struct AlignRequest {
  std::uint64_t id = 0;          ///< echoed in the response
  std::uint32_t threshold = 0;   ///< matching elements required
  std::uint32_t deadline_ms = 0; ///< remaining budget; 0 = no deadline.
                                 ///< The server fails the request with
                                 ///< DeadlineExceeded instead of running
                                 ///< it once the budget is gone.
  std::string protein;           ///< one-letter residue codes
};

struct AlignResponse {
  std::uint64_t id = 0;
  std::uint8_t status = 0;        ///< core::ErrorCode numeric value; 0 = ok
  std::uint32_t retry_after_ms = 0;  ///< back-off hint on typed refusals
                                     ///< (Overloaded/QueueFull); 0 = none
  double server_seconds = 0.0;    ///< server-side latency (queue + scan)
  std::string error;              ///< human-readable, when status != 0
  std::vector<core::Hit> hits;
  std::vector<core::Hit> reverse_hits;

  bool ok() const noexcept { return status == 0; }
};

struct StatsResponse {
  std::string text;  ///< the server's formatted stats dump
};

// --- encoding (payload only; frame() adds the length prefix) ------------

std::string encode(const AlignRequest& message);
std::string encode(const AlignResponse& message);
std::string encode_stats_request();
std::string encode(const StatsResponse& message);

/// Length-prefixes a payload into a ready-to-send frame.
std::string frame(std::string_view payload);

// --- decoding ------------------------------------------------------------

/// The message type of a payload (first byte), or 0 for an empty payload.
MessageType peek_type(std::string_view payload) noexcept;

/// Each decoder returns false (leaving `out` untouched) on a payload that
/// is truncated, oversized, of the wrong type, or of an alien version.
bool decode(std::string_view payload, AlignRequest& out);
bool decode(std::string_view payload, AlignResponse& out);
bool decode(std::string_view payload, StatsResponse& out);

}  // namespace fabp::net
