#pragma once
// Wire protocol of the fabp TCP front-end (DESIGN.md §4e, §4g).
//
// Framing: every message is a little-endian u32 *body* length followed by
// that many body bytes, where the body is the payload plus a trailing
// little-endian CRC32 of the payload (util/crc32, the same polynomial the
// §4b tile checksums use).  Payload byte 0 is the MessageType, byte 1 the
// protocol version.  Frames above kMaxFrameBytes are rejected before any
// allocation (a garbage length prefix must not OOM the server); frames
// whose CRC does not match the payload are rejected with a typed
// integrity error instead of being decoded — closing the PR 9 gap where
// a corrupted-but-decodable frame was accepted.
//
//   AlignRequest   = type | ver | id u64 | threshold u32 | deadline_ms u32
//                  | protein string | database string | tenant string
//   AlignResponse  = type | ver | id u64 | status u8 | retry_after_ms u32
//                  | server_seconds f64 | generation u64 | error string
//                  | hit list | reverse hit list
//   StatsRequest   = type | ver
//   StatsResponse  = type | ver | text string
//   SwapDatabase   = type | ver | name string | path string | bases string
//   SwapDatabaseResponse = type | ver | status u8 | generation u64
//                  | error string
//
// Version 2 added deadline propagation (requests carry their remaining
// budget in ms; the server maps it onto the engine deadline) and the
// retry-after hint typed refusals carry back.  Version 3 adds the payload
// CRC32 trailer on every frame, the database/tenant routing fields on
// AlignRequest, the generation echo on AlignResponse, and the
// SwapDatabase admin message that publishes a new reference generation on
// a live server (by server-side file `path`, or inline DNA `bases`).
//
// Strings are u32 length + bytes; hit lists are u32 count + (u64 position,
// u32 score) pairs.  Encode/decode are pure byte-vector transforms with no
// socket dependency, so the protocol is unit-testable without I/O; the
// decoders bounds-check every read and fail soft (false + untouched
// output) on truncated or alien payloads.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fabp/core/golden.hpp"

namespace fabp::net {

inline constexpr std::uint8_t kProtocolVersion = 3;
/// Per-direction frame bounds.  Client->server frames carry queries and
/// are tiny, so the server rejects anything above 1 MiB before
/// allocating (a garbage length prefix must not OOM the server).
/// Server->client frames carry hit lists, which scale with the
/// reference (a permissive threshold over a multi-megabase reference
/// yields millions of hits at 12 bytes each), so clients accept up to
/// 256 MiB; the server refuses to emit anything larger with a typed
/// error response instead of a half-written frame.
inline constexpr std::uint32_t kMaxRequestFrameBytes = 1u << 20;
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;
/// Bytes the CRC32 trailer adds to every frame body.
inline constexpr std::uint32_t kFrameCrcBytes = 4;

enum class MessageType : std::uint8_t {
  AlignRequest = 1,
  AlignResponse = 2,
  StatsRequest = 3,
  StatsResponse = 4,
  SwapDatabaseRequest = 5,
  SwapDatabaseResponse = 6,
};

struct AlignRequest {
  std::uint64_t id = 0;          ///< echoed in the response
  std::uint32_t threshold = 0;   ///< matching elements required
  std::uint32_t deadline_ms = 0; ///< remaining budget; 0 = no deadline.
                                 ///< The server fails the request with
                                 ///< DeadlineExceeded instead of running
                                 ///< it once the budget is gone.
  std::string protein;           ///< one-letter residue codes
  std::string database;          ///< named database; empty = default
  std::string tenant;            ///< tenant billed; empty = default
};

struct AlignResponse {
  std::uint64_t id = 0;
  std::uint8_t status = 0;        ///< core::ErrorCode numeric value; 0 = ok
  std::uint32_t retry_after_ms = 0;  ///< back-off hint on typed refusals
                                     ///< (Overloaded/QueueFull); 0 = none
  double server_seconds = 0.0;    ///< server-side latency (queue + scan)
  std::uint64_t generation = 0;   ///< reference generation that served it
  std::string error;              ///< human-readable, when status != 0
  std::vector<core::Hit> hits;
  std::vector<core::Hit> reverse_hits;

  bool ok() const noexcept { return status == 0; }
};

struct StatsResponse {
  std::string text;  ///< the server's formatted stats dump
};

/// Admin: publish a new generation of `name` on the live server.  Exactly
/// one of `path` (server-side reference file: FASTA or raw ACGT) and
/// `bases` (inline DNA, bounded by the 1 MiB request frame) should be
/// non-empty.
struct SwapDatabaseRequest {
  std::string name;
  std::string path;
  std::string bases;
};

struct SwapDatabaseResponse {
  std::uint8_t status = 0;       ///< core::ErrorCode numeric value; 0 = ok
  std::uint64_t generation = 0;  ///< generation id the swap published
  std::string error;

  bool ok() const noexcept { return status == 0; }
};

// --- encoding (payload only; frame() adds length prefix + CRC) ----------

std::string encode(const AlignRequest& message);
std::string encode(const AlignResponse& message);
std::string encode_stats_request();
std::string encode(const StatsResponse& message);
std::string encode(const SwapDatabaseRequest& message);
std::string encode(const SwapDatabaseResponse& message);

/// Wraps a payload into a ready-to-send frame: u32 length of
/// (payload + 4), the payload, then the payload's CRC32 (LE).
std::string frame(std::string_view payload);

/// Splits a received frame body (payload + CRC trailer) and verifies the
/// checksum.  On success `payload` views into `body`; on a short body or
/// CRC mismatch returns false — the caller surfaces a typed
/// IntegrityFailure instead of decoding corrupted bytes.
bool verify_frame_body(std::string_view body, std::string_view& payload);

// --- decoding ------------------------------------------------------------

/// The message type of a payload (first byte), or 0 for an empty payload.
MessageType peek_type(std::string_view payload) noexcept;

/// Each decoder returns false (leaving `out` untouched) on a payload that
/// is truncated, oversized, of the wrong type, or of an alien version.
bool decode(std::string_view payload, AlignRequest& out);
bool decode(std::string_view payload, AlignResponse& out);
bool decode(std::string_view payload, StatsResponse& out);
bool decode(std::string_view payload, SwapDatabaseRequest& out);
bool decode(std::string_view payload, SwapDatabaseResponse& out);

}  // namespace fabp::net
