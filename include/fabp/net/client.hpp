#pragma once
// Resilient wire-protocol client (DESIGN.md §4f).
//
// The raw frame helpers (read_frame/write_frame) treat every failure as
// fatal, which is correct for a protocol test but wrong for a client of
// a shared service: a typed Overloaded refusal or a reset connection is
// an invitation to back off and try again — up to a bounded number of
// attempts, never past the caller's deadline.  Client wraps one logical
// connection with exactly that policy: bounded exponential backoff with
// jitter, retry-after hints honored, reconnect after transport faults,
// and the caller's remaining budget propagated to the server as
// AlignRequest::deadline_ms on every attempt.  Every call terminates
// with a typed CallStatus — the error taxonomy `fabp loadgen` reports.

#include <cstdint>
#include <string>

#include "fabp/net/fault.hpp"
#include "fabp/net/server.hpp"
#include "fabp/net/wire.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::net {

/// Connects a blocking TCP socket to host:port; throws std::runtime_error
/// when the peer is unreachable.
Socket connect_to(const std::string& host, std::uint16_t port);

/// Bounded exponential backoff.  A retry-after hint from the server
/// raises the computed backoff when larger; jitter spreads concurrent
/// retriers so a shed burst does not re-arrive as a synchronized wave.
struct RetryPolicy {
  std::size_t max_attempts = 4;      ///< total wire attempts per call
  double initial_backoff_ms = 5.0;   ///< first retry sleep
  double multiplier = 2.0;           ///< per-retry growth
  double max_backoff_ms = 200.0;     ///< sleep ceiling
  double jitter = 0.5;               ///< uniform +/- fraction per sleep
};

/// Terminal outcome taxonomy of one resilient call.
enum class CallStatus : std::uint8_t {
  Ok = 0,
  Refused,  ///< typed refusal stood after every allowed retry
            ///< (Overloaded/QueueFull exhausted, or non-retryable codes)
  Expired,  ///< the server answered DeadlineExceeded
  Reset,    ///< transport failed on every allowed attempt
  Timeout,  ///< the caller's budget ran out before a terminal response
};

const char* to_string(CallStatus status) noexcept;

struct CallResult {
  CallStatus status = CallStatus::Ok;
  AlignResponse response;    ///< valid when a response frame landed
  std::size_t attempts = 0;  ///< wire attempts consumed
  std::size_t retries = 0;   ///< attempts beyond the first
  /// CRC-detected corruption events across the attempts: responses whose
  /// frame body failed the client-side check, plus typed
  /// IntegrityFailure answers (the server caught *our* frame corrupted).
  /// Both retry like transport faults.
  std::size_t integrity_faults = 0;

  bool ok() const noexcept { return status == CallStatus::Ok; }
};

class Client {
 public:
  /// `injector`, when non-null, corrupts this client's outbound frames
  /// (chaos tests); the retry machinery then doubles as the recovery
  /// path under test.  The seed drives backoff jitter only.
  Client(std::string host, std::uint16_t port, RetryPolicy policy = {},
         std::uint64_t seed = 0x5eedfab9u, FaultInjector* injector = nullptr);

  /// One resilient align call.  `deadline_s` is the total budget across
  /// all attempts and backoff sleeps (0 = unbounded); the remaining
  /// budget is re-encoded into request.deadline_ms per attempt and also
  /// bounds the socket receive wait, so a hung server surfaces as a
  /// typed Timeout, never a hang.
  CallResult align(AlignRequest request, double deadline_s = 0.0);

  /// Drops the connection (the next call reconnects).
  void disconnect() noexcept { conn_.close(); }

 private:
  bool ensure_connected() noexcept;
  /// Jittered, hint-aware sleep before attempt `attempt` (1-based retry
  /// count), truncated to the remaining budget.  Returns false when the
  /// budget is already gone (caller must stop retrying).
  bool backoff(std::size_t attempt, std::uint32_t hint_ms,
               double remaining_s);

  std::string host_;
  std::uint16_t port_ = 0;
  RetryPolicy policy_;
  Socket conn_;
  util::Xoshiro256 rng_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace fabp::net
