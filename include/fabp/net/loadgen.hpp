#pragma once
// Closed-loop TCP load generator for the wire protocol: N client threads
// each hold one connection and issue align requests back-to-back (a new
// request the moment the previous response lands), the standard way to
// measure a serving stack's throughput/latency trade-off as concurrency
// grows.  Queries are deterministic random proteins (seeded), thresholds
// a fixed fraction of the query length.

#include <cstdint>
#include <string>

#include "fabp/net/wire.hpp"

namespace fabp::net {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t clients = 1;        ///< concurrent connections
  std::size_t requests = 64;      ///< total, split across clients
  std::size_t query_residues = 24;
  double threshold_fraction = 0.6; ///< of 3 * query_residues elements
  std::uint64_t seed = 42;
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t completed = 0;       ///< responses with ok status
  std::size_t errors = 0;          ///< typed error statuses
  std::size_t transport_failures = 0;  ///< broken connections / frames
  std::size_t total_hits = 0;      ///< forward + reverse, all responses
  double wall_s = 0.0;
  double qps = 0.0;                ///< completed / wall_s
  double p50_ms = 0.0;             ///< client-observed round-trip
  double p99_ms = 0.0;

  bool clean() const noexcept {
    return transport_failures == 0 && errors == 0;
  }
};

/// Runs the closed loop to completion.  Throws std::runtime_error when a
/// connection cannot be established at all (server not listening).
LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace fabp::net
