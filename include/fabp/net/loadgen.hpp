#pragma once
// Closed-loop TCP load generator for the wire protocol: N client threads
// each hold one connection and issue align requests back-to-back (a new
// request the moment the previous response lands), the standard way to
// measure a serving stack's throughput/latency trade-off as concurrency
// grows.  Queries are deterministic random proteins (seeded), thresholds
// a fixed fraction of the query length.
//
// The resilience knobs turn the same loop into a chaos driver: each
// request carries a deadline budget and runs through the retrying
// net::Client (typed refused/expired/reset/timeout taxonomy, retry
// amplification measured), and a configurable fraction of the
// connections become *attackers* — fault-injected sockets spraying
// corrupted, truncated, duplicated and reset frames at the server for
// the duration of the run, tallied separately so a clean healthy-side
// report still means something.

#include <cstdint>
#include <string>

#include "fabp/net/client.hpp"
#include "fabp/net/fault.hpp"
#include "fabp/net/wire.hpp"

namespace fabp::net {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t clients = 1;        ///< concurrent healthy connections
  std::size_t requests = 64;      ///< total, split across healthy clients
  std::size_t query_residues = 24;
  double threshold_fraction = 0.6; ///< of 3 * query_residues elements
  std::uint64_t seed = 42;
  std::string database;            ///< named database; empty = default
  std::string tenant;              ///< tenant billed; empty = default

  // --- resilience ---------------------------------------------------------
  double deadline_s = 0.0;  ///< per-request budget (0 = unbounded)
  RetryPolicy retry{};      ///< max_attempts = 1 disables retries
  /// Fraction of `clients` replaced by attacker connections that spray
  /// fault-injected frames (see `fault`) instead of measured requests;
  /// at least one healthy client always remains.
  double faulty_fraction = 0.0;
  FaultConfig fault{};      ///< attacker-side frame fault schedule
};

struct LoadgenReport {
  std::size_t sent = 0;
  std::size_t completed = 0;       ///< responses with ok status
  std::size_t errors = 0;          ///< typed terminal errors (refused+expired)
  std::size_t transport_failures = 0;  ///< healthy-side terminal resets
  std::size_t total_hits = 0;      ///< forward + reverse, all responses

  // --- terminal outcome taxonomy (healthy clients) -----------------------
  std::size_t refused = 0;   ///< typed refusal stood after retries
  std::size_t expired = 0;   ///< server answered DeadlineExceeded
  std::size_t resets = 0;    ///< transport failed on every attempt
  std::size_t timeouts = 0;  ///< budget ran out before a terminal answer
  std::size_t attempts = 0;  ///< wire attempts across all requests
  std::size_t retries = 0;   ///< attempts beyond each request's first
  /// CRC-detected corruption events (client-side BadCrc reads plus typed
  /// IntegrityFailure answers), recovered by retry — see CallResult.
  std::size_t integrity_faults = 0;

  // --- attacker side ------------------------------------------------------
  std::size_t attackers = 0;      ///< connections run as fault sprayers
  std::size_t attack_frames = 0;  ///< frames (whole or cut) they sent

  double wall_s = 0.0;
  double qps = 0.0;                ///< completed / wall_s
  double p50_ms = 0.0;             ///< client-observed round-trip (ok calls)
  double p99_ms = 0.0;

  /// Mean wire attempts per request — the retry-amplification factor an
  /// overloaded deployment pays for client-side retries.
  double retry_amplification() const noexcept {
    return sent == 0 ? 0.0
                     : static_cast<double>(attempts) /
                           static_cast<double>(sent);
  }

  /// Every healthy request reached a typed ok outcome: nothing refused,
  /// nothing expired, no transport loss, no budget overrun.
  bool clean() const noexcept {
    return transport_failures == 0 && errors == 0 && timeouts == 0;
  }

  /// Weaker invariant for overload/chaos runs: every request reached a
  /// *typed terminal* outcome (ok/refused/expired/reset/timeout) —
  /// nothing hung and nothing vanished untallied.
  bool all_terminal() const noexcept {
    return completed + refused + expired + resets + timeouts == sent;
  }
};

/// Runs the closed loop to completion.  Throws std::runtime_error when a
/// connection cannot be established at all (server not listening).
LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace fabp::net
