#pragma once
// Deterministic network fault injection for the TCP service edge.
//
// PR 4 made the device path chaos-testable (hw/fault.hpp); this header
// does the same for the network path.  A real service sees peers that
// stall mid-frame, links that corrupt bytes, kernels that RST under
// memory pressure, and middleboxes that replay segments.  The resilience
// suite needs those injectable — seeded, replayable, composable on both
// the server and loadgen sockets — so the chaos tests can prove the
// server never hangs and keeps serving healthy connections while faults
// rage on sick ones.
//
// Faults are drawn per *frame* (the protocol unit), not per byte: each
// outbound frame gets a FramePlan saying whether it is delayed,
// corrupted, duplicated, truncated-then-cut, or replaced by an abortive
// reset.  Like hw::FaultInjector, every category draws from its own
// Xoshiro256 sub-stream forked off one seed, so a schedule is a pure
// function of (FaultConfig, stream index) and any chaos failure replays
// from a one-line seed report.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "fabp/util/rng.hpp"

namespace fabp::net {

/// Fault rates, all per outbound frame and all defaulting to zero: a
/// default FaultConfig injects nothing and the frame-write path reduces
/// to one `enabled()` branch.
struct FaultConfig {
  std::uint64_t seed = 0x5eedfab9u;  ///< schedule seed (forked per stream)

  double corrupt_rate = 0.0;   ///< one payload byte flipped in transit
  double truncate_rate = 0.0;  ///< frame cut short, then connection reset
  double reset_rate = 0.0;     ///< abortive RST instead of the frame
  double dup_rate = 0.0;       ///< frame delivered twice back-to-back
  double delay_rate = 0.0;     ///< frame held for delay_ms before sending
  std::size_t delay_ms = 5;    ///< hold time for delayed frames

  bool enabled() const noexcept {
    return corrupt_rate > 0.0 || truncate_rate > 0.0 || reset_rate > 0.0 ||
           dup_rate > 0.0 || delay_rate > 0.0;
  }
};

enum class NetFaultKind : std::uint8_t {
  CorruptByte,     ///< a payload byte XORed with a non-zero mask
  TruncateFrame,   ///< only a prefix of the wire frame sent, then reset
  Reset,           ///< abortive close (RST) instead of the frame
  DuplicateFrame,  ///< the whole wire frame sent twice
  Delay,           ///< delay_ms sleep before the frame goes out
};

const char* to_string(NetFaultKind kind) noexcept;

/// One injected fault, as recorded in the replayable schedule.
struct NetFaultEvent {
  NetFaultKind kind = NetFaultKind::Delay;
  std::size_t frame = 0;   ///< outbound frame index on this stream
  std::size_t offset = 0;  ///< byte offset (corrupt / truncate cut point)

  bool operator==(const NetFaultEvent&) const = default;
};

/// What to do with one outbound wire frame (length prefix included).
/// `kills_connection()` plans leave the stream desynchronised, so the
/// caller must stop using the socket after executing them.
struct FramePlan {
  std::size_t delay_ms = 0;       ///< sleep before sending; 0 = none
  bool duplicate = false;         ///< send the full frame twice
  bool reset = false;             ///< abortive close, no bytes sent
  /// Bytes of the wire frame to send before cutting the connection;
  /// negative = send the whole frame.  May land inside the length
  /// prefix — a truncated prefix is exactly the malformed input the
  /// reader must survive.
  std::ptrdiff_t truncate_at = -1;
  std::size_t corrupt_offset = 0;  ///< payload byte to flip (mask != 0)
  std::uint8_t corrupt_mask = 0;   ///< XOR mask; 0 = no corruption

  bool kills_connection() const noexcept {
    return reset || truncate_at >= 0;
  }
  bool clean() const noexcept {
    return delay_ms == 0 && !duplicate && !kills_connection() &&
           corrupt_mask == 0;
  }
};

/// Draws a deterministic per-frame fault schedule from independent
/// per-category sub-streams and logs every event.  One injector models
/// one direction of one connection; callers fork a distinct stream index
/// per connection so concurrent sockets draw independent (but
/// replayable) schedules and never share RNG state across threads.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config, std::uint64_t stream = 0);

  const FaultConfig& config() const noexcept { return config_; }

  /// The plan for the next outbound wire frame of `frame_bytes` bytes
  /// (length prefix included).  Advances the frame index.
  FramePlan plan_frame(std::size_t frame_bytes);

  /// Every event drawn so far — the replayable fault schedule.
  const std::vector<NetFaultEvent>& log() const noexcept { return log_; }

 private:
  FaultConfig config_;
  util::Xoshiro256 corrupt_rng_;
  util::Xoshiro256 truncate_rng_;
  util::Xoshiro256 reset_rng_;
  util::Xoshiro256 dup_rng_;
  util::Xoshiro256 delay_rng_;
  std::size_t frame_ = 0;
  std::vector<NetFaultEvent> log_;
};

/// Arms an abortive close: SO_LINGER{on, 0} makes the next close() send
/// RST instead of FIN, which is how mid-frame connection resets reach
/// the peer as ECONNRESET rather than a clean EOF.
void arm_reset(int fd) noexcept;

/// Sends `payload` as a length-prefixed frame through `injector`'s plan
/// for it (delay, duplicate, corrupt, truncate, reset).  Returns true
/// when the connection is still usable afterwards; false when the plan
/// killed it (the fd is armed for RST — the caller must close it and
/// stop using it) or the kernel reported a send failure.  A null or
/// disabled injector degrades to plain write_frame.
bool write_frame_with_faults(int fd, std::string_view payload,
                             FaultInjector* injector);

}  // namespace fabp::net
