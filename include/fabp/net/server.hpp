#pragma once
// TCP front-end over the serving engine (DESIGN.md §4e, resilience §4f).
//
// WireServer binds a listening socket at construction (port 0 lets the
// kernel pick — the smoke tests and in-process benchmarks rely on it),
// then serve() accepts connections on the caller's thread and answers
// each one from a dedicated connection thread.  AlignRequest frames run
// through Engine::submit (so concurrent clients coalesce into shared
// scans exactly like in-process callers); StatsRequest frames return the
// engine's formatted stats dump.
//
// The service edge is where overload and misbehaving peers are bounded:
//  - Requests carry a deadline budget (AlignRequest::deadline_ms) that
//    maps onto the engine deadline; expiry comes back as a typed
//    DeadlineExceeded response, never a hang.
//  - Admission is shed *before* enqueue when the engine queue is deeper
//    than shed_queue_depth or the recent p99 exceeds shed_p99_ms: the
//    client gets a typed Overloaded refusal with a retry-after hint.
//  - Each connection pipelines at most max_inflight_per_connection
//    requests (responses stay in request order); connection I/O runs
//    nonblocking under poll() so an idle peer (idle_timeout_s) or a
//    stalled one mid-frame / mid-response (io_timeout_s — slow-loris
//    hardening) is reaped instead of pinning the thread forever.
//  - shutdown() drains gracefully but boundedly: after drain_timeout_s
//    still-queued requests are force-cancelled through the Ticket
//    cancel path and the sockets are torn down.
//  - Every inbound frame body is CRC-verified before decoding (wire v3):
//    a corrupted align frame is answered with a typed IntegrityFailure
//    and the connection survives — the framing itself is still intact.
//  - A FaultConfig on the server injects response-path network faults
//    (per connection, deterministic streams) for the chaos suite.
//
// SwapDatabaseRequest frames route to the injected SwapHandler (the CLI
// wires it to a reference-file loader + Engine::upload_database), which
// publishes a new generation while in-flight scans finish on the old one.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fabp/core/engine.hpp"
#include "fabp/net/fault.hpp"
#include "fabp/net/wire.hpp"

namespace fabp::net {

/// RAII POSIX socket fd.  Move-only; close on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_{fd} {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// ::shutdown(SHUT_RDWR): unblocks a peer thread stuck in recv without
  /// racing the fd number (close alone could let it be reused mid-read).
  void interrupt() noexcept;

 private:
  int fd_ = -1;
};

/// Outcome of one blocking frame read.  BadCrc is the interesting new
/// case: the frame arrived whole and well-framed but its payload CRC32
/// did not match, so the bytes were corrupted in transit — retryable on
/// a fresh connection, unlike a desynchronized stream.
enum class FrameRead : std::uint8_t {
  Ok = 0,
  Closed,    ///< clean EOF or broken connection
  TooLarge,  ///< length prefix above max_bytes (never allocated)
  BadCrc,    ///< frame body failed its CRC32 check
};

/// Blocking frame I/O over a connected socket.  read_frame_status reads
/// one frame body, verifies the CRC32 trailer, and on Ok leaves the
/// *payload* (trailer stripped) in `payload`.  `max_bytes` bounds the
/// body length prefix (clients pass the default response bound; the
/// server reads with kMaxRequestFrameBytes).  read_frame is the
/// Ok-or-bust convenience wrapper; write_frame returns false on a broken
/// connection.  All resume short transfers and EINTR — a signal
/// delivered mid-send must not masquerade as a peer failure.
FrameRead read_frame_status(int fd, std::string& payload,
                            std::uint32_t max_bytes = kMaxFrameBytes);
bool read_frame(int fd, std::string& payload,
                std::uint32_t max_bytes = kMaxFrameBytes);
bool write_frame(int fd, std::string_view payload);

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see port())

  // --- overload shedding (0 = that trigger disabled) ---------------------
  /// Refuse new aligns (typed Overloaded) once the engine admission queue
  /// is at least this deep.
  std::size_t shed_queue_depth = 0;
  /// Refuse new aligns once the p99 over the recent-latency window
  /// exceeds this many milliseconds.
  double shed_p99_ms = 0.0;

  // --- connection supervision --------------------------------------------
  /// Pipelined requests one connection may have outstanding; further
  /// frames wait in the socket buffer (backpressure, not refusal).
  std::size_t max_inflight_per_connection = 4;
  /// Reap a connection with no traffic and no outstanding work after
  /// this many seconds (0 = idle connections live forever).
  double idle_timeout_s = 0.0;
  /// Reap a connection stalled mid-frame — inbound bytes that stop
  /// flowing inside a frame, or a peer draining its responses too slowly
  /// — after this many seconds (0 = off).  Slow-loris hardening.
  double io_timeout_s = 0.0;

  // --- graceful drain ------------------------------------------------------
  /// shutdown() waits this long for in-flight work, then force-cancels
  /// still-queued requests through Ticket::cancel and tears sockets down.
  double drain_timeout_s = 5.0;

  /// Response-path fault injection (chaos suite); disabled by default.
  FaultConfig fault{};
};

/// Aggregate request metrics, snapshot via WireServer::metrics().
struct ServerMetrics {
  std::size_t connections = 0;
  std::size_t requests = 0;        ///< align requests answered
  std::size_t errors = 0;          ///< answered with a non-ok status
  std::size_t malformed = 0;       ///< frames that failed to decode
  std::size_t integrity = 0;       ///< frames that failed their CRC32
  std::size_t swaps = 0;           ///< SwapDatabase admin frames answered
  std::size_t shed = 0;            ///< refused with Overloaded pre-enqueue
  std::size_t io_timeouts = 0;     ///< connections reaped as idle/stalled
  std::size_t force_cancelled = 0; ///< requests cancelled at drain deadline
  double p50_ms = 0.0;             ///< server-side align latency
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class WireServer {
 public:
  /// Answers a SwapDatabaseRequest (the CLI wires this to a file loader
  /// + Engine::upload_database).  Runs on the connection thread; a
  /// default-constructed handler refuses swaps with BadArgument.
  using SwapHandler =
      std::function<SwapDatabaseResponse(const SwapDatabaseRequest&)>;

  /// Binds and listens immediately; throws std::runtime_error when the
  /// address is unavailable.  `stats_text` supplies the StatsResponse
  /// body (the CLI passes its stats-dump formatter).
  WireServer(core::Engine& engine, ServerConfig config,
             std::function<std::string()> stats_text = {},
             SwapHandler swap_handler = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// The bound port (resolved after a port-0 bind).
  std::uint16_t port() const noexcept { return port_; }

  /// Accept loop on the caller's thread; returns after shutdown().
  void serve();

  /// Bounded graceful drain: stop accepting, half-close every connection
  /// read side, wait up to drain_timeout_s for in-flight responses to go
  /// out, then force-cancel still-queued requests and tear the sockets
  /// down.  Idempotent and callable from any thread (the CLI's signal
  /// thread).
  void shutdown();

  ServerMetrics metrics() const;

 private:
  /// One pipelined slot: either a live engine ticket or an
  /// already-encoded reply (shed refusals, malformed-frame answers,
  /// stats) held so responses leave in request order.
  struct PendingReply {
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point t0{};
    bool has_ticket = false;
    core::Ticket ticket;
    std::string ready_payload;  ///< encoded, when !has_ticket
  };

  /// Shared between a connection handler and shutdown(): the handler
  /// owns the queue; the drain-deadline pass walks it to cancel tickets.
  struct ConnState {
    int fd = -1;
    std::mutex m;
    std::deque<PendingReply> pending;
  };

  void handle_connection(Socket conn, std::shared_ptr<ConnState> state,
                         std::uint64_t stream);
  /// Decode + admit one inbound frame; appends the reply (or the live
  /// ticket) to state->pending.  Returns false when the connection must
  /// close (alien/oversized frame).
  bool process_frame(std::string_view payload, ConnState& state);
  /// Consume a finished ticket into an encoded AlignResponse payload.
  std::string finish_align(PendingReply& slot);
  void record_latency(double seconds);
  double recent_percentile_ms(double pct) const;  // callers hold mutex_
  std::uint32_t retry_hint_ms(std::size_t depth) const;

  core::Engine& engine_;
  ServerConfig config_;
  std::function<std::string()> stats_text_;
  SwapHandler swap_handler_;
  Socket listener_;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable drain_cv_;
  bool stopping_ = false;
  std::size_t active_handlers_ = 0;
  std::vector<std::thread> connections_;
  std::vector<std::shared_ptr<ConnState>> conns_;  ///< live, for drain
  std::vector<double> latencies_s_;
  /// Sliding window feeding the p99 shed trigger and retry-after hints.
  std::array<double, 64> recent_ms_{};
  std::size_t recent_count_ = 0;
  std::size_t recent_next_ = 0;
  std::size_t accepted_ = 0;
  std::size_t requests_ = 0;
  std::size_t errors_ = 0;
  std::size_t malformed_ = 0;
  std::size_t integrity_ = 0;
  std::size_t swaps_ = 0;
  std::size_t shed_ = 0;
  std::size_t io_timeouts_ = 0;
  std::size_t force_cancelled_ = 0;
};

}  // namespace fabp::net
