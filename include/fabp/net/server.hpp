#pragma once
// TCP front-end over the serving engine (DESIGN.md §4e).
//
// WireServer binds a listening socket at construction (port 0 lets the
// kernel pick — the smoke tests and in-process benchmarks rely on it),
// then serve() accepts connections on the caller's thread and answers
// each one from a dedicated connection thread: AlignRequest frames run
// through Engine::submit (so concurrent clients coalesce into shared
// scans exactly like in-process callers), StatsRequest frames return the
// engine's formatted stats dump.  shutdown() is the graceful-drain path:
// stop accepting, wake every blocked connection read via ::shutdown on
// the tracked fds, join the connection threads (in-flight requests
// finish and their responses are sent first), then return.  Per-request
// wall latencies are recorded for the p50/p99 dump.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fabp/core/engine.hpp"
#include "fabp/net/wire.hpp"

namespace fabp::net {

/// RAII POSIX socket fd.  Move-only; close on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_{fd} {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// ::shutdown(SHUT_RDWR): unblocks a peer thread stuck in recv without
  /// racing the fd number (close alone could let it be reused mid-read).
  void interrupt() noexcept;

 private:
  int fd_ = -1;
};

/// Blocking frame I/O over a connected socket.  read_frame returns false
/// on clean EOF, a broken connection, or a length prefix above
/// `max_bytes` (clients pass the default response bound; the server
/// reads with kMaxRequestFrameBytes); write_frame returns false on a
/// broken connection.
bool read_frame(int fd, std::string& payload,
                std::uint32_t max_bytes = kMaxFrameBytes);
bool write_frame(int fd, std::string_view payload);

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (see port())
};

/// Aggregate request metrics, snapshot via WireServer::metrics().
struct ServerMetrics {
  std::size_t connections = 0;
  std::size_t requests = 0;        ///< align requests answered
  std::size_t errors = 0;          ///< answered with a non-ok status
  std::size_t malformed = 0;       ///< frames that failed to decode
  double p50_ms = 0.0;             ///< server-side align latency
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class WireServer {
 public:
  /// Binds and listens immediately; throws std::runtime_error when the
  /// address is unavailable.  `stats_text` supplies the StatsResponse
  /// body (the CLI passes its stats-dump formatter).
  WireServer(core::Engine& engine, ServerConfig config,
             std::function<std::string()> stats_text = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// The bound port (resolved after a port-0 bind).
  std::uint16_t port() const noexcept { return port_; }

  /// Accept loop on the caller's thread; returns after shutdown().
  void serve();

  /// Graceful drain: stop accepting, interrupt blocked connection reads,
  /// join every connection thread (in-flight responses are sent first).
  /// Idempotent and callable from any thread (the CLI's signal thread).
  void shutdown();

  ServerMetrics metrics() const;

 private:
  void handle_connection(Socket conn);
  void record_latency(double seconds);

  core::Engine& engine_;
  ServerConfig config_;
  std::function<std::string()> stats_text_;
  Socket listener_;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;
  bool stopping_ = false;
  std::vector<std::thread> connections_;
  std::vector<int> live_fds_;           ///< open conn fds, for interrupt
  std::vector<double> latencies_s_;
  std::size_t accepted_ = 0;
  std::size_t requests_ = 0;
  std::size_t errors_ = 0;
  std::size_t malformed_ = 0;
};

}  // namespace fabp::net
