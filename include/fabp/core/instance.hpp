#pragma once
// Structural netlist of one FabP *alignment instance* (paper Fig. 3): a
// column of custom comparators (2 LUT6 each) over the query elements, the
// handcrafted Pop-Counter aggregating the match bits, and the threshold
// compare producing the hit flag.  The paper maps the threshold compare
// onto a DSP; here it is built from the carry chain (an adder against the
// constant 2^n - T whose carry-out is score >= T) so the whole instance is
// one self-contained LUT/FF netlist that can be simulated bit-accurately,
// timed (hw/timing.hpp) and emitted as Verilog.
//
// With `pipelined`, registers are inserted after the comparator stage and
// after the Pop-Counter — the "multi-stage pipelined architecture" of
// §III-C; scores then appear with a latency of 2 clocks.

#include <array>
#include <cstdint>
#include <vector>

#include "fabp/core/encoding.hpp"
#include "fabp/hw/netlist.hpp"
#include "fabp/hw/popcount.hpp"
#include "fabp/hw/verilog.hpp"

namespace fabp::core {

struct InstancePorts {
  /// Per query element: the six instruction bits (b0..b5).
  std::vector<std::array<hw::NetId, 6>> query;
  /// Reference element bits, LSB-first pairs.  ref[0] and ref[1] are the
  /// two elements *preceding* the instance's window (history for the
  /// first codon; tie low when aligning at the reference start); element
  /// i of the window is ref[i + 2].
  std::vector<std::array<hw::NetId, 2>> ref;
  /// Raw match bits (before the optional pipeline register).
  std::vector<hw::NetId> matches;
  /// Pop-counter output (score), LSB-first.
  hw::Bus score;
  /// score >= threshold.
  hw::NetId hit = hw::kInvalidNet;
};

struct InstanceConfig {
  std::size_t elements = 150;   // query length L_q in elements
  std::uint32_t threshold = 0;  // user-defined hit threshold
  bool pipelined = true;        // registers between the stages
  /// When set, the query instruction bits are baked in as constants
  /// instead of primary inputs (hw/optimize.hpp then specializes the
  /// comparators).  FabP deliberately does NOT do this — a new query
  /// would need a bitstream recompile — but it is the classic FPGA
  /// trade, quantified by bench_ablation_specialize.
  const EncodedQuery* fixed_query = nullptr;
};

/// Builds the instance into `netlist` with fresh primary inputs.
InstancePorts build_alignment_instance(hw::Netlist& netlist,
                                       const InstanceConfig& config);

/// Drives the instance's inputs from an encoded query and a reference
/// window (window[0], window[1] = the two history elements; then
/// config.elements aligned elements), settles (and clocks twice when
/// pipelined), and returns the observed score.
std::uint32_t simulate_instance(hw::Netlist& netlist,
                                const InstancePorts& ports,
                                const InstanceConfig& config,
                                const EncodedQuery& query,
                                std::span<const bio::Nucleotide> window);

/// Structural Verilog for a full instance.
hw::VerilogModule emit_instance_module(const InstanceConfig& config);

}  // namespace fabp::core
