#pragma once
// Chunk-ordered hit merging — the one deterministic-merge idiom every
// parallel scan path shares.
//
// All pooled scans (golden oracle, precompiled planes, tile-fused) follow
// the same recipe: split the position range into indexed chunks, let each
// worker append its hits into a private per-chunk slot, then concatenate
// the slots *in chunk index order*.  Because the chunk layout is a pure
// function of (range, pool size, granule), the merged output is
// structurally identical — contents and ordering — to the serial scan,
// independent of worker scheduling.  These helpers are that concatenation
// step, deduplicated out of golden.cpp / bitscan.cpp / bitscan_tiled.cpp
// (the merge-order contract is pinned by tests/core/hitmerge_test.cpp).

#include <cstddef>
#include <span>
#include <vector>

#include "fabp/core/golden.hpp"

namespace fabp::core {

/// Appends every chunk's hits to `out` in chunk index order, reserving the
/// exact total up front.  `out` need not be empty: existing hits keep their
/// place ahead of the merged chunks.
inline void merge_hit_chunks_into(std::span<const std::vector<Hit>> chunks,
                                  std::vector<Hit>& out) {
  std::size_t total = out.size();
  for (const std::vector<Hit>& chunk : chunks) total += chunk.size();
  out.reserve(total);
  for (const std::vector<Hit>& chunk : chunks)
    out.insert(out.end(), chunk.begin(), chunk.end());
}

/// Chunk-ordered concatenation into a fresh vector.
inline std::vector<Hit> merge_hit_chunks(
    std::span<const std::vector<Hit>> chunks) {
  std::vector<Hit> out;
  merge_hit_chunks_into(chunks, out);
  return out;
}

/// Multi-query form: chunks[c][q] holds chunk c's hits for query q; the
/// result's element [q] is the chunk-ordered concatenation over c —
/// exactly what the single-query form produces per query.
inline std::vector<std::vector<Hit>> merge_hit_chunks_batch(
    std::span<const std::vector<std::vector<Hit>>> chunks,
    std::size_t query_count) {
  std::vector<std::vector<Hit>> outs(query_count);
  for (std::size_t q = 0; q < query_count; ++q) {
    std::size_t total = 0;
    for (const auto& chunk : chunks) total += chunk[q].size();
    outs[q].reserve(total);
    for (const auto& chunk : chunks)
      outs[q].insert(outs[q].end(), chunk[q].begin(), chunk[q].end());
  }
  return outs;
}

}  // namespace fabp::core
