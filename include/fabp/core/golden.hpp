#pragma once
// Software golden model of the FabP alignment semantics (§III-C): the
// back-translated query slides over the reference; each offset's score is
// the number of element matches under the Type I/II/III rules; offsets
// scoring >= threshold are hits.  The cycle-level accelerator simulator is
// property-tested to produce exactly these hits.

#include <cstdint>
#include <vector>

#include "fabp/bio/packed.hpp"
#include "fabp/core/encoding.hpp"
#include "fabp/util/thread_pool.hpp"

namespace fabp::core {

struct Hit {
  std::size_t position = 0;   // reference element index of query element 0
  std::uint32_t score = 0;    // matching elements (<= query length)

  bool operator==(const Hit&) const = default;
  auto operator<=>(const Hit&) const = default;
};

/// Score of one alignment instance, behavioral element semantics.
std::uint32_t golden_score_at(const std::vector<BackElement>& query,
                              const bio::NucleotideSequence& ref,
                              std::size_t position);

/// All hits at or above threshold.  O((r-q+1) * q).
std::vector<Hit> golden_hits(const std::vector<BackElement>& query,
                             const bio::NucleotideSequence& ref,
                             std::uint32_t threshold);

/// Same scan evaluated through the *encoded instructions and the generated
/// comparator LUTs* instead of the behavioral element model; used by tests
/// to pin encoding + LUT generation against the behavioral spec.
std::vector<Hit> golden_hits_encoded(const EncodedQuery& query,
                                     const bio::NucleotideSequence& ref,
                                     std::uint32_t threshold);

/// Parallel behavioral scan (functional model of the paper's CUDA
/// implementation of the same algorithm).
std::vector<Hit> golden_hits_parallel(const std::vector<BackElement>& query,
                                      const bio::NucleotideSequence& ref,
                                      std::uint32_t threshold,
                                      util::ThreadPool& pool);

/// End-to-end convenience: back-translate a protein and scan.
std::vector<Hit> align_protein(const bio::ProteinSequence& protein,
                               const bio::NucleotideSequence& ref,
                               std::uint32_t threshold);

}  // namespace fabp::core
