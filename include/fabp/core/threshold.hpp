#pragma once
// Threshold selection statistics.
//
// FabP reports every offset scoring >= a "user-defined threshold"
// (§III-C) but the paper never says how to pick it.  Under a random
// reference model the score of one alignment instance is a sum of
// independent Bernoulli element matches whose probabilities depend only
// on the query's element types (Type I matches 1/4 of random bases, U/C
// style conditions 1/2, G-bar 3/4, D 1, dependent functions in between).
// That gives a closed-form mean/variance, a normal-approximation false
// positive rate per offset, and an inversion that picks the smallest
// threshold meeting a target expected number of random hits for a given
// database size.

#include <cstdint>

#include "fabp/core/backtranslate.hpp"

namespace fabp::core {

/// P(element matches a uniformly random reference element), given the
/// element's type (dependent elements are averaged over random history).
double element_match_probability(const BackElement& element) noexcept;

struct ScoreStatistics {
  double mean = 0.0;      // expected score at a random offset
  double variance = 0.0;  // independent-elements variance
  std::size_t elements = 0;

  double stddev() const noexcept;
  /// P(score >= threshold) at one random offset (normal approximation
  /// with continuity correction; exact 0/1 at the extremes).
  double false_positive_rate(std::uint32_t threshold) const;
};

/// Statistics of a back-translated query against random sequence.
ScoreStatistics score_statistics(const std::vector<BackElement>& query);

/// Smallest threshold whose expected number of random hits over
/// `reference_elements` offsets is <= `expected_hits`.
std::uint32_t threshold_for_expected_hits(
    const std::vector<BackElement>& query, std::size_t reference_elements,
    double expected_hits = 1.0);

}  // namespace fabp::core
