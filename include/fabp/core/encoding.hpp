#pragma once
// FabP 6-bit instruction encoding (paper §III-B).
//
// Bit layout, b5 = MSB first:
//   Type I  : b5b4 = 00 opcode, b3b2 = nucleotide, b1b0 = 00
//   Type II : b5b4 = 01 opcode, b3b2 = condition,  b1b0 = 00
//   Type III: b5   = 1 opcode,  b4b3 = function F, b2 = 0, b1b0 = config
//
// The config field drives the comparator's history multiplexer (Fig. 5(a)):
//   00 -> constant (Types I/II and F:11 "D": no dependency)
//   01 -> LSB of reference element i-2   (Arg,  F:10)
//   10 -> MSB of reference element i-1   (Stop, F:00)
//   11 -> MSB of reference element i-2   (Leu,  F:01)
// The 01/10 assignments are pinned by the paper's worked example, which
// encodes Arg's third element as 110001 and Stop's as 100010.

#include <cstdint>
#include <string>
#include <vector>

#include "fabp/core/backtranslate.hpp"

namespace fabp::core {

/// History-mux selector values carried in the config field.
enum class ConfigSel : std::uint8_t {
  None = 0b00,     // pass the instruction's own b2 (Types I/II, D)
  RefIm2Lsb = 0b01,
  RefIm1Msb = 0b10,
  RefIm2Msb = 0b11,
};

class Instruction {
 public:
  constexpr Instruction() = default;
  explicit constexpr Instruction(std::uint8_t bits) noexcept
      : bits_{static_cast<std::uint8_t>(bits & 0b111111)} {}

  /// Encodes one back-translated element.
  static Instruction encode(const BackElement& element) noexcept;

  /// Decodes back to the element (exact inverse for encodings produced by
  /// encode(); throws std::invalid_argument on patterns encode() never
  /// emits, e.g. nonzero config on a Type I instruction).
  BackElement decode() const;

  constexpr std::uint8_t bits() const noexcept { return bits_; }

  constexpr bool bit(unsigned i) const noexcept {
    return ((bits_ >> i) & 1u) != 0;
  }

  /// True for the single-bit Type III opcode (b5 == 1).
  constexpr bool is_dependent() const noexcept { return bit(5); }
  constexpr bool is_exact() const noexcept {
    return !bit(5) && !bit(4);
  }
  constexpr bool is_conditional() const noexcept {
    return !bit(5) && bit(4);
  }

  /// b3b2 for Types I/II; b4b3 (the F field) for Type III.
  constexpr std::uint8_t payload() const noexcept {
    return is_dependent() ? static_cast<std::uint8_t>((bits_ >> 3) & 0b11)
                          : static_cast<std::uint8_t>((bits_ >> 2) & 0b11);
  }

  constexpr ConfigSel config() const noexcept {
    return static_cast<ConfigSel>(bits_ & 0b11);
  }

  /// MSB-first binary text, e.g. "010100" (matches the paper's examples).
  std::string to_binary_string() const;

  bool operator==(const Instruction&) const = default;

 private:
  std::uint8_t bits_ = 0;
};

using EncodedQuery = std::vector<Instruction>;

/// Back-translates and encodes a full protein query (3 instructions per
/// residue) — the host-side preparation step of §III-B.
EncodedQuery encode_query(const bio::ProteinSequence& protein);

/// Encodes an already back-translated element sequence.
EncodedQuery encode_elements(const std::vector<BackElement>& elements);

/// In-DRAM footprint of an encoded query: 6 bits per instruction, packed.
std::size_t encoded_query_bits(const EncodedQuery& query) noexcept;

}  // namespace fabp::core
