#pragma once
// DRAM layout of an encoded query (§III-B: "FabP first creates the
// back-translated sequence.  Then, it encodes that sequence and stores it
// in the FPGA main memory (DRAM)").  Instructions are 6 bits; they are
// packed LSB-first into 64-bit words with no padding, so a 750-element
// query occupies ceil(750*6/64) = 71 words = 568 bytes — the number the
// host transfer model charges.

#include <cstdint>
#include <vector>

#include "fabp/core/encoding.hpp"

namespace fabp::core {

class PackedQuery {
 public:
  PackedQuery() = default;
  explicit PackedQuery(const EncodedQuery& query);

  std::size_t size() const noexcept { return size_; }  // instructions
  bool empty() const noexcept { return size_ == 0; }

  /// Bytes occupied in DRAM (full words).
  std::size_t byte_size() const noexcept { return words_.size() * 8; }

  /// The i-th 6-bit instruction.
  Instruction get(std::size_t i) const noexcept;

  /// Full unpack (exact inverse of construction).
  EncodedQuery unpack() const;

  std::span<const std::uint64_t> words() const noexcept { return words_; }

  bool operator==(const PackedQuery&) const = default;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fabp::core
