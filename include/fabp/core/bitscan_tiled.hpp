#pragma once
// Tile-fused compile+scan: stream the 2-bit packed reference, not
// precompiled match planes.
//
// The precompiled path (BitScanReference) trades DRAM capacity and
// bandwidth for reuse: 12 whole-reference match planes (~1.5 B/base) are
// built once from the 0.25 B/base packed store and re-streamed per scan —
// ~6x the DRAM traffic of FabP's hardware regime, plus a full-reference
// compile before the first hit.  The tiled path instead walks the packed
// words in L2-resident tiles: for each tile it compiles the 12
// element-kind planes into a reusable per-thread scratch buffer (the same
// SWAR bit-compaction NucleotideBitplanes uses, fused with the
// BitScanReference plane formulas into one pass, with the prev1/prev2
// history bits carried across tile edges), immediately scores the tile
// with the ISA-dispatched ScanKernel, then discards the scratch and moves
// on.  A scan therefore streams 0.25 B/base from DRAM, needs no upfront
// compile, and its working set beyond the packed store is O(tile) per
// thread — independent of the reference size.
//
// Output is bit-for-bit identical (contents and order) to golden_hits and
// to the precompiled-plane path under every kernel: tiles are scored in
// position order and per-position scores are exact, so tiling never
// reorders or perturbs hits (locked down by tests/core/
// bitscan_tiled_test.cpp, including tile-edge history and multi-record
// databases).

#include <cstdint>
#include <span>
#include <vector>

#include "fabp/bio/database.hpp"
#include "fabp/bio/packed.hpp"
#include "fabp/core/bitscan.hpp"

namespace fabp::core {

struct TileScanConfig {
  /// Candidate positions scored per tile; rounded up to a whole number of
  /// 64-element words (minimum one word).  The default keeps one tile's 12
  /// compiled planes (12 * 2048 words = 192 KiB) plus its packed input
  /// (32 KiB) L2-resident.
  std::size_t tile_positions = 128 * 1024;
};

/// Which software scan path an entry point should take.
enum class ScanPath {
  Auto,    ///< FABP_SCAN_MODE=tiled|planes decides; tiled when unset.
  Tiled,   ///< fused tile compile+scan (this header)
  Planes,  ///< precompiled whole-reference planes (BitScanReference)
};

/// Resolves a requested path: explicit Tiled/Planes win; Auto follows the
/// FABP_SCAN_MODE environment variable ("tiled" or "planes", read once per
/// process) and defaults to the tiled path.  The Planes escape hatch keeps
/// the precompiled path reachable for differential testing and perf
/// comparison.
bool use_tiled_scan(ScanPath requested = ScanPath::Auto) noexcept;

/// Fused tile compile+scan over a 2-bit packed reference.  Non-owning: the
/// packed store (or database) must outlive the scanner.  All entry points
/// dispatch to the active ScanKernel unless a kernel is passed explicitly
/// (differential tests sweep every reachable ISA that way).
class TileScanner {
 public:
  TileScanner() = default;
  explicit TileScanner(const bio::PackedNucleotides& packed,
                       TileScanConfig config = {});
  /// Scans the database's concatenated guarded store — one fused pass over
  /// a whole multi-record database (record mapping via db.locate /
  /// annotate_hits, exactly as for the precompiled path).
  explicit TileScanner(const bio::ReferenceDatabase& database,
                       TileScanConfig config = {});

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t tile_positions() const noexcept { return tile_positions_; }

  /// Tiles a full scan of this reference walks.
  std::size_t tile_count() const noexcept;

  /// Per-thread scratch footprint of a scan whose longest query has
  /// `query_elements` elements: O(tile + query), independent of the
  /// reference size.  This (plus per-chunk hit vectors) is the entire scan
  /// working set beyond the packed store.
  std::size_t scratch_bytes(std::size_t query_elements) const noexcept;

  /// Appends hits with position in [begin, end), clamped to the valid
  /// range — the ScanKernel::range contract, fused over tiles.
  void range(const BitScanQuery& query, std::uint32_t threshold,
             std::size_t begin, std::size_t end, std::vector<Hit>& out) const;
  void range(const ScanKernel& kernel, const BitScanQuery& query,
             std::uint32_t threshold, std::size_t begin, std::size_t end,
             std::vector<Hit>& out) const;

  /// Batch form — every query is scored against each tile while its
  /// freshly compiled planes are hot (the ScanKernel::range_batch
  /// contract, fused over tiles).
  void range_batch(const BitScanQuery* queries,
                   const std::uint32_t* thresholds, std::size_t count,
                   std::size_t begin, std::size_t end,
                   std::vector<Hit>* outs) const;
  void range_batch(const ScanKernel& kernel, const BitScanQuery* queries,
                   const std::uint32_t* thresholds, std::size_t count,
                   std::size_t begin, std::size_t end,
                   std::vector<Hit>* outs) const;

  /// All hits with score >= threshold — identical to bitscan_hits /
  /// golden_hits on the same inputs.  With a pool, whole tiles are chunked
  /// over the workers (each with its own scratch) and merged in tile
  /// order, so the output is deterministic and exactly the serial scan's.
  std::vector<Hit> hits(const BitScanQuery& query, std::uint32_t threshold,
                        util::ThreadPool* pool = nullptr) const;

  /// Batch scan; element [q] equals hits(queries[q], thresholds[q]).
  /// thresholds.size() must equal queries.size().
  std::vector<std::vector<Hit>> hits_batch(
      std::span<const BitScanQuery> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr) const;

 private:
  std::span<const std::uint64_t> words_;  // 2-bit packed reference words
  std::size_t size_ = 0;                  // reference elements
  std::size_t tile_positions_ = 0;        // multiple of 64
};

}  // namespace fabp::core
