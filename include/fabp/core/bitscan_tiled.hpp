#pragma once
// Tile-fused compile+scan: stream the 2-bit packed reference, not
// precompiled match planes.
//
// The precompiled path (BitScanReference) trades DRAM capacity and
// bandwidth for reuse: 12 whole-reference match planes (~1.5 B/base) are
// built once from the 0.25 B/base packed store and re-streamed per scan —
// ~6x the DRAM traffic of FabP's hardware regime, plus a full-reference
// compile before the first hit.  The tiled path instead walks the packed
// words in L2-resident tiles: for each tile it compiles the 12
// element-kind planes into a reusable per-thread scratch buffer (the same
// SWAR bit-compaction NucleotideBitplanes uses, fused with the
// BitScanReference plane formulas into one pass, with the prev1/prev2
// history bits carried across tile edges), immediately scores the tile
// with the ISA-dispatched ScanKernel, then discards the scratch and moves
// on.  A scan therefore streams 0.25 B/base from DRAM, needs no upfront
// compile, and its working set beyond the packed store is O(tile) per
// thread — independent of the reference size.
//
// Output is bit-for-bit identical (contents and order) to golden_hits and
// to the precompiled-plane path under every kernel: tiles are scored in
// position order and per-position scores are exact, so tiling never
// reorders or perturbs hits (locked down by tests/core/
// bitscan_tiled_test.cpp, including tile-edge history and multi-record
// databases).

#include <cstdint>
#include <span>
#include <vector>

#include "fabp/bio/database.hpp"
#include "fabp/bio/packed.hpp"
#include "fabp/core/bitscan.hpp"

namespace fabp::core {

/// How a pooled scan splits its tiles across workers.  Either way every
/// run is a contiguous, tile-aligned span owned by exactly one worker:
/// the worker compiles and scores the run's tiles in its own scratch,
/// carries the prev1/prev2 history across tile edges within the run, and
/// appends hits to a cache-line-isolated per-run slot — no shared-line
/// writes, no per-tile task dispatch.
enum class TilePartition {
  Auto,      ///< Static when tiles >> workers, Stealing otherwise.
  Static,    ///< min(workers, tiles) runs — one dispatch per worker, the
             ///< fast path when every worker owns many whole tiles.
  Stealing,  ///< finer runs (a few per worker) drained through the pool
             ///< queue, so stragglers rebalance at run granularity.
};

struct TileScanConfig {
  /// Candidate positions scored per tile; rounded up to a whole number of
  /// 64-element words (minimum one word).  The default keeps one tile's 12
  /// compiled planes (12 * 2048 words = 192 KiB) plus its packed input
  /// (32 KiB) L2-resident.
  std::size_t tile_positions = 128 * 1024;

  /// Software-prefetch distance in packed reference words: while tile k is
  /// being compiled, the packed words this far ahead of the compile cursor
  /// are prefetched (and the head of tile k+1 is prefetched while tile k
  /// is being scored), hiding the DRAM latency of the 0.25 B/base stream
  /// behind the plane compile + kernel compute.  0 disables prefetching.
  /// The default (64 words = 512 B = 8 cache lines ahead) covers typical
  /// DRAM latency at the compile loop's consumption rate.
  std::size_t prefetch_distance = 64;

  /// Pooled-scan partition policy (serial scans ignore it).
  TilePartition partition = TilePartition::Auto;
};

/// Which software scan path an entry point should take.
enum class ScanPath {
  Auto,    ///< FABP_SCAN_MODE=tiled|planes decides; tiled when unset.
  Tiled,   ///< fused tile compile+scan (this header)
  Planes,  ///< precompiled whole-reference planes (BitScanReference)
};

/// Resolves a requested path: explicit Tiled/Planes win; Auto follows the
/// FABP_SCAN_MODE environment variable ("tiled" or "planes", read once per
/// process) and defaults to the tiled path.  The Planes escape hatch keeps
/// the precompiled path reachable for differential testing and perf
/// comparison.
bool use_tiled_scan(ScanPath requested = ScanPath::Auto) noexcept;

/// Fused tile compile+scan over a 2-bit packed reference.  Non-owning: the
/// packed store (or database) must outlive the scanner.  All entry points
/// dispatch to the active ScanKernel unless a kernel is passed explicitly
/// (differential tests sweep every reachable ISA that way).
class TileScanner {
 public:
  TileScanner() = default;
  explicit TileScanner(const bio::PackedNucleotides& packed,
                       TileScanConfig config = {});
  /// Scans the database's concatenated guarded store — one fused pass over
  /// a whole multi-record database (record mapping via db.locate /
  /// annotate_hits, exactly as for the precompiled path).
  explicit TileScanner(const bio::ReferenceDatabase& database,
                       TileScanConfig config = {});

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t tile_positions() const noexcept { return tile_positions_; }

  /// Tiles a full scan of this reference walks.
  std::size_t tile_count() const noexcept;

  /// Contiguous tile runs a pooled scan over `positions` candidate
  /// positions splits into for `workers` threads under the configured
  /// partition policy: min(tiles, workers) for Static, a few runs per
  /// worker for Stealing, and Auto picks Static once every worker owns
  /// enough whole tiles that imbalance is bounded by a small fraction of
  /// a run.  Exposed so tests and the bench can pin the layout.
  std::size_t scan_runs(std::size_t positions,
                        std::size_t workers) const noexcept;

  /// Per-thread scratch footprint of a scan whose longest query has
  /// `query_elements` elements: O(tile + query), independent of the
  /// reference size.  This (plus per-chunk hit vectors) is the entire scan
  /// working set beyond the packed store.
  std::size_t scratch_bytes(std::size_t query_elements) const noexcept;

  /// Appends hits with position in [begin, end), clamped to the valid
  /// range — the ScanKernel::range contract, fused over tiles.
  void range(const BitScanQuery& query, std::uint32_t threshold,
             std::size_t begin, std::size_t end, std::vector<Hit>& out) const;
  void range(const ScanKernel& kernel, const BitScanQuery& query,
             std::uint32_t threshold, std::size_t begin, std::size_t end,
             std::vector<Hit>& out) const;

  /// Batch form — every query is scored against each tile while its
  /// freshly compiled planes are hot (the ScanKernel::range_batch
  /// contract, fused over tiles).
  void range_batch(const BitScanQuery* queries,
                   const std::uint32_t* thresholds, std::size_t count,
                   std::size_t begin, std::size_t end,
                   std::vector<Hit>* outs) const;
  void range_batch(const ScanKernel& kernel, const BitScanQuery* queries,
                   const std::uint32_t* thresholds, std::size_t count,
                   std::size_t begin, std::size_t end,
                   std::vector<Hit>* outs) const;

  /// All hits with score >= threshold — identical to bitscan_hits /
  /// golden_hits on the same inputs.  With a pool, contiguous tile runs
  /// (see TilePartition) are owned whole by workers — per-run scratch and
  /// hit slots, history carried across tile edges inside the run — and
  /// stitched in run order at the merge, so the output is deterministic
  /// and exactly the serial scan's.
  std::vector<Hit> hits(const BitScanQuery& query, std::uint32_t threshold,
                        util::ThreadPool* pool = nullptr) const;

  /// Batch scan; element [q] equals hits(queries[q], thresholds[q]).
  /// thresholds.size() must equal queries.size().
  std::vector<std::vector<Hit>> hits_batch(
      std::span<const BitScanQuery> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr) const;

 private:
  std::span<const std::uint64_t> words_;  // 2-bit packed reference words
  std::size_t size_ = 0;                  // reference elements
  std::size_t tile_positions_ = 0;        // multiple of 64
  std::size_t prefetch_distance_ = 0;     // packed words; 0 = off
  TilePartition partition_ = TilePartition::Auto;
};

}  // namespace fabp::core
