#pragma once
// Host runtime — the OpenCL host program of §IV, modeled: it encodes
// queries, transfers query + reference from host DRAM to FPGA DRAM over
// PCIe, invokes the kernel (the Accelerator), and reads results back.
// All reported end-to-end times include those transfers, matching the
// paper's measurement methodology ("we measured the end-to-end execution
// time that includes reading both query and reference sequences from the
// FPGA DRAM, aligning the sequences, and writing the results").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fabp/core/accelerator.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"

namespace fabp::core {

struct HostConfig {
  AcceleratorConfig accelerator{};
  /// Also scan the reverse-complement strand (genes sit on either strand;
  /// the card streams a pre-built RC copy of the database, doubling the
  /// kernel time).
  bool search_both_strands = false;
  /// Software scan path: Auto (FABP_SCAN_MODE, tiled when unset) streams
  /// the packed reference through the tile-fused compile+scan; Planes
  /// keeps the precompiled whole-reference bit-planes (the escape hatch
  /// for differential testing and perf comparison).
  ScanPath scan_path = ScanPath::Auto;
  /// Tile geometry for the tiled path.
  TileScanConfig tile{};
  double pcie_bandwidth_bps = 12e9;   // host <-> card effective PCIe gen3 x16
  double invoke_overhead_s = 30e-6;   // kernel launch + fence
  bool reference_resident = true;     // DB transferred once, reused across
                                      // queries (the paper's usage model)
};

struct HostRunReport {
  std::vector<Hit> hits;
  /// Hits found on the reverse-complement strand, reported in *forward*
  /// coordinates of the window start (empty unless search_both_strands).
  std::vector<Hit> reverse_hits;
  FabpMapping mapping;

  double reference_transfer_s = 0.0;  // amortized to 0 when resident
  double query_transfer_s = 0.0;
  double kernel_s = 0.0;
  double readback_s = 0.0;
  double total_s = 0.0;

  double watts = 0.0;
  double joules = 0.0;  // FPGA energy over total_s
};

/// One attached "card": owns the reference database in FPGA DRAM and runs
/// queries against it.
class Session {
 public:
  explicit Session(HostConfig config = {});

  /// Transfers the reference database to FPGA DRAM (models the one-time
  /// cost; recorded and amortized per config.reference_resident).
  void upload_reference(const bio::NucleotideSequence& reference);
  void upload_reference(bio::PackedNucleotides reference);

  /// End-to-end aligned search of one protein query (functional).
  HostRunReport align(const bio::ProteinSequence& query,
                      std::uint32_t threshold);

  /// Timing-only estimate against a hypothetical reference of `bytes`
  /// bytes (2-bit packed), for database-scale projections.
  HostRunReport estimate(const bio::ProteinSequence& query,
                         std::uint32_t threshold, std::size_t bytes) const;

  /// Aligns a batch of queries against the resident reference, reusing
  /// the card (the paper's deployment model: the database is transferred
  /// once, queries stream through).  Thresholds are per-query fractions of
  /// the query's element count.  The functional hit lists for the whole
  /// batch are produced in one multi-query pass over the reference — on
  /// the default tiled path each freshly compiled tile is scored against
  /// every query while hot in cache; on the Planes path the same happens
  /// per block of cached plane words — and the per-query accelerator runs
  /// reduce to cycle/energy accounting; reports are bit-for-bit identical
  /// to calling align() per query.  Pass a pool to chunk the batch scan
  /// over threads (and, on the Planes path with search_both_strands, to
  /// compile the two strands' planes concurrently).
  struct BatchReport {
    std::vector<HostRunReport> per_query;
    double total_s = 0.0;
    double total_joules = 0.0;
    std::size_t total_hits = 0;
    double queries_per_second = 0.0;  // modeled card throughput
  };
  BatchReport align_batch(std::span<const bio::ProteinSequence> queries,
                          double threshold_fraction,
                          util::ThreadPool* pool = nullptr);

  /// Pure-software scan of the resident reference through the bit-sliced
  /// engine (no accelerator timing model): returns exactly the hits
  /// align() reports for the forward strand.  On the default tiled path
  /// the packed reference is streamed directly (nothing is compiled or
  /// cached); the Planes path compiles the reference planes on first use
  /// and caches them across queries.  Pass a pool to chunk the scan over
  /// threads (output is identical either way).
  std::vector<Hit> software_hits(const bio::ProteinSequence& query,
                                 std::uint32_t threshold,
                                 util::ThreadPool* pool = nullptr);

  /// Batch form of software_hits: all queries are scored in one pass over
  /// the reference (tile-fused by default, cached planes on the Planes
  /// path); element [q] of the result equals
  /// software_hits(queries[q], thresholds[q]) exactly.
  /// thresholds.size() must equal queries.size().
  std::vector<std::vector<Hit>> software_hits_batch(
      std::span<const bio::ProteinSequence> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr);

  const bio::PackedNucleotides& reference() const noexcept {
    return reference_;
  }
  const HostConfig& config() const noexcept { return config_; }

  /// True when this session's software scans take the tiled path.
  bool tiled() const noexcept { return use_tiled_scan(config_.scan_path); }

 private:
  /// align() with optional precomputed forward/reverse hit lists (from a
  /// batch scan); null pointers fall back to scanning inside the run.
  HostRunReport align_impl(const bio::ProteinSequence& query,
                           std::uint32_t threshold,
                           const std::vector<Hit>* forward_hits,
                           const std::vector<Hit>* reverse_hits);

  /// Lazily compiled bit-planes of the resident reference (and its RC
  /// copy); invalidated by upload_reference.  ensure_planes compiles both
  /// strands at once, overlapping the reverse compile on the pool with the
  /// forward compile on the caller (Planes path only — the tiled path
  /// never compiles whole-reference planes).
  void ensure_planes(bool both_strands, util::ThreadPool* pool);
  const BitScanReference& forward_planes();
  const BitScanReference& reverse_planes();

  HostRunReport finish(const bio::ProteinSequence& query,
                       AcceleratorRun run, std::size_t reference_bytes) const;

  HostConfig config_;
  bio::PackedNucleotides reference_;
  bio::PackedNucleotides reverse_;  // RC copy when search_both_strands
  bool reference_uploaded_ = false;
  BitScanReference bitscan_reference_;  // lazy, for software scans
  bool bitscan_ready_ = false;
  BitScanReference bitscan_reverse_;  // lazy RC planes for batch aligns
  bool bitscan_reverse_ready_ = false;
};

}  // namespace fabp::core
