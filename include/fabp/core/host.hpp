#pragma once
// Host runtime — the OpenCL host program of §IV, modeled: it encodes
// queries, transfers query + reference from host DRAM to FPGA DRAM over
// PCIe, invokes the kernel (the Accelerator), and reads results back.
// All reported end-to-end times include those transfers, matching the
// paper's measurement methodology ("we measured the end-to-end execution
// time that includes reading both query and reference sequences from the
// FPGA DRAM, aligning the sequences, and writing the results").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fabp/core/accelerator.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/core/error.hpp"
#include "fabp/hw/fault.hpp"

namespace fabp::core {

/// Detection + bounded-retry policy for the session (the host side of the
/// fault-tolerance layer; injection rates live in HostConfig::fault).
struct RecoveryConfig {
  /// Kernel attempts per strand before the invocation counts as failed.
  std::size_t max_attempts = 4;
  /// Retry backoff: attempt k waits backoff_base_s * 2^k (modeled time,
  /// charged to RecoveryStats::recovery_s).
  double backoff_base_s = 100e-6;
  /// Watchdog deadline on one kernel attempt's modeled time; 0 disables.
  /// Stall storms inflate kernel time, which is how a hung card surfaces.
  double watchdog_s = 0.0;
  /// Per-tile CRC32 of the streamed reference against the upload-time
  /// checksums, plus a CRC over the readback hit buffer.  Detected tiles
  /// are repaired by re-scanning only the affected reference range.
  /// Turning this off delivers corrupted data as-is (the chaos suite uses
  /// that to prove injected faults are real, not cosmetic).
  bool verify_integrity = true;
  /// Golden spot-check sampler: K windows (256 positions each) per strand
  /// re-scored from the resident store and compared against the returned
  /// hits.  Catches corruption even with CRC checking off.  0 disables.
  std::size_t spot_check_samples = 0;
  /// Consecutive failed invocations before the session health-state
  /// machine degrades to the software path.
  std::size_t degrade_after = 3;
  /// Degraded sessions (and invocations that exhausted their attempts)
  /// serve hits from the pure-software TileScanner path with zero card
  /// time; with this off they return typed errors instead.
  bool allow_software_fallback = true;
};

/// What the recovery machinery did for one run (or, merged, one batch).
struct RecoveryStats {
  std::size_t attempts = 0;          ///< kernel attempts (per strand)
  std::size_t retries = 0;           ///< attempts after the first
  std::size_t transfer_faults = 0;   ///< transient PCIe transfer failures
  std::size_t timeouts = 0;          ///< watchdog-expired attempts
  std::size_t crc_faults = 0;        ///< reference tiles failing CRC
  std::size_t readback_faults = 0;   ///< corrupted readbacks (re-read)
  std::size_t rescanned_tiles = 0;   ///< tiles repaired by range re-scan
  std::size_t spot_checks = 0;       ///< golden spot-check windows sampled
  std::size_t spot_check_faults = 0; ///< windows that failed and were fixed
  std::size_t fallbacks = 0;         ///< strand runs served in software
  bool degraded = false;             ///< session Degraded after this run
  double recovery_s = 0.0;           ///< modeled time lost to recovery

  void merge(const RecoveryStats& other) noexcept;
};

/// Session health-state machine: Healthy until `degrade_after` consecutive
/// invocations exhaust their attempts, then Degraded (software path or
/// DeviceLost errors, per RecoveryConfig::allow_software_fallback).
enum class HealthState { Healthy, Degraded };

struct HostConfig {
  AcceleratorConfig accelerator{};
  /// Also scan the reverse-complement strand (genes sit on either strand;
  /// the card streams a pre-built RC copy of the database, doubling the
  /// kernel time).
  bool search_both_strands = false;
  /// Software scan path: Auto (FABP_SCAN_MODE, tiled when unset) streams
  /// the packed reference through the tile-fused compile+scan; Planes
  /// keeps the precompiled whole-reference bit-planes (the escape hatch
  /// for differential testing and perf comparison).
  ScanPath scan_path = ScanPath::Auto;
  /// Tile geometry for the tiled path.
  TileScanConfig tile{};
  double pcie_bandwidth_bps = 12e9;   // host <-> card effective PCIe gen3 x16
  double invoke_overhead_s = 30e-6;   // kernel launch + fence
  bool reference_resident = true;     // DB transferred once, reused across
                                      // queries (the paper's usage model)
  /// Fault injection rates (all zero by default: the clean fast path takes
  /// one `enabled()` branch and none of the recovery machinery runs).
  hw::FaultConfig fault{};
  /// Detection / retry / degradation policy (see RecoveryConfig).
  RecoveryConfig recovery{};
};

struct HostRunReport {
  std::vector<Hit> hits;
  /// Hits found on the reverse-complement strand, reported in *forward*
  /// coordinates of the window start (empty unless search_both_strands).
  std::vector<Hit> reverse_hits;
  FabpMapping mapping;

  double reference_transfer_s = 0.0;  // amortized to 0 when resident
  double query_transfer_s = 0.0;
  double kernel_s = 0.0;
  double readback_s = 0.0;
  double total_s = 0.0;

  double watts = 0.0;
  double joules = 0.0;  // FPGA energy over total_s

  /// What recovery did for this run; total_s includes recovery.recovery_s.
  RecoveryStats recovery;
};

/// One attached "card": owns the reference database in FPGA DRAM and runs
/// queries against it.
class Session {
 public:
  explicit Session(HostConfig config = {});

  /// Transfers the reference database to FPGA DRAM (models the one-time
  /// cost; recorded and amortized per config.reference_resident).
  void upload_reference(const bio::NucleotideSequence& reference);
  void upload_reference(bio::PackedNucleotides reference);

  /// End-to-end aligned search of one protein query (functional).  Under
  /// an injected fault schedule the recovery machinery retries, repairs
  /// and (if allowed) degrades so the returned hits are always bit-exact
  /// with the golden model; throws FaultError only when the schedule is
  /// unrecoverable (and std::logic_error never — use try_align for the
  /// non-throwing boundary).
  HostRunReport align(const bio::ProteinSequence& query,
                      std::uint32_t threshold);

  /// Non-throwing form of align(): the typed error surface.
  Expected<HostRunReport> try_align(const bio::ProteinSequence& query,
                                    std::uint32_t threshold);

  /// Timing-only estimate against a hypothetical reference of `bytes`
  /// bytes (2-bit packed), for database-scale projections.
  HostRunReport estimate(const bio::ProteinSequence& query,
                         std::uint32_t threshold, std::size_t bytes) const;

  /// Aligns a batch of queries against the resident reference, reusing
  /// the card (the paper's deployment model: the database is transferred
  /// once, queries stream through).  Thresholds are per-query fractions of
  /// the query's element count.  The functional hit lists for the whole
  /// batch are produced in one multi-query pass over the reference — on
  /// the default tiled path each freshly compiled tile is scored against
  /// every query while hot in cache; on the Planes path the same happens
  /// per block of cached plane words — and the per-query accelerator runs
  /// reduce to cycle/energy accounting; reports are bit-for-bit identical
  /// to calling align() per query.  Pass a pool to chunk the batch scan
  /// over threads (and, on the Planes path with search_both_strands, to
  /// compile the two strands' planes concurrently).
  struct BatchReport {
    std::vector<HostRunReport> per_query;
    double total_s = 0.0;
    double total_joules = 0.0;
    std::size_t total_hits = 0;
    double queries_per_second = 0.0;  // modeled card throughput
    RecoveryStats recovery;           // merged over the whole batch
  };
  BatchReport align_batch(std::span<const bio::ProteinSequence> queries,
                          double threshold_fraction,
                          util::ThreadPool* pool = nullptr);

  /// Non-throwing form of align_batch(); the first unrecoverable
  /// per-query error aborts and is returned for the whole batch.
  Expected<BatchReport> try_align_batch(
      std::span<const bio::ProteinSequence> queries,
      double threshold_fraction, util::ThreadPool* pool = nullptr);

  /// Pure-software scan of the resident reference through the bit-sliced
  /// engine (no accelerator timing model): returns exactly the hits
  /// align() reports for the forward strand.  On the default tiled path
  /// the packed reference is streamed directly (nothing is compiled or
  /// cached); the Planes path compiles the reference planes on first use
  /// and caches them across queries.  Pass a pool to chunk the scan over
  /// threads (output is identical either way).
  std::vector<Hit> software_hits(const bio::ProteinSequence& query,
                                 std::uint32_t threshold,
                                 util::ThreadPool* pool = nullptr);

  /// Batch form of software_hits: all queries are scored in one pass over
  /// the reference (tile-fused by default, cached planes on the Planes
  /// path); element [q] of the result equals
  /// software_hits(queries[q], thresholds[q]) exactly.
  /// thresholds.size() must equal queries.size().
  std::vector<std::vector<Hit>> software_hits_batch(
      std::span<const bio::ProteinSequence> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr);

  const bio::PackedNucleotides& reference() const noexcept {
    return reference_;
  }
  const HostConfig& config() const noexcept { return config_; }

  /// True when this session's software scans take the tiled path.
  bool tiled() const noexcept { return use_tiled_scan(config_.scan_path); }

  /// Health-state machine position (degrades after repeated failures).
  HealthState health() const noexcept { return health_; }

  /// Every fault event injected over this session's lifetime, in draw
  /// order — the replayable schedule a chaos failure is reported with.
  const std::vector<hw::FaultEvent>& fault_log() const noexcept {
    return fault_log_;
  }

 private:
  /// align() with optional precomputed forward/reverse hit lists (from a
  /// batch scan); null pointers fall back to scanning inside the run.
  Expected<HostRunReport> align_impl(const bio::ProteinSequence& query,
                                     std::uint32_t threshold,
                                     const std::vector<Hit>* forward_hits,
                                     const std::vector<Hit>* reverse_hits);

  /// One strand's kernel invocation under the fault schedule: bounded
  /// retries for transfer failures / watchdog timeouts, CRC detection +
  /// tile-granular repair for data corruption, readback verification and
  /// the golden spot-check sampler.  On success `out` holds the final
  /// (repaired) hits and the last attempt's timing; on failure fills
  /// `error` and returns false.
  bool faulty_strand_run(const EncodedQuery& encoded, std::uint32_t threshold,
                         const bio::PackedNucleotides& store,
                         bool reverse_strand,
                         const std::vector<Hit>* precomputed,
                         RecoveryStats& stats, Error& error,
                         AcceleratorRun& out);

  /// Per-tile CRC32 of the resident store (forward or RC), computed once
  /// per upload on first use (fault paths only) and cached.
  const std::vector<std::uint32_t>& tile_crcs(bool reverse_strand);

  /// Packed words per integrity tile (the PR 3 tile geometry).
  std::size_t tile_words() const noexcept;

  /// Lazily compiled bit-planes of the resident reference (and its RC
  /// copy); invalidated by upload_reference.  ensure_planes compiles both
  /// strands at once, overlapping the reverse compile on the pool with the
  /// forward compile on the caller (Planes path only — the tiled path
  /// never compiles whole-reference planes).
  void ensure_planes(bool both_strands, util::ThreadPool* pool);
  const BitScanReference& forward_planes();
  const BitScanReference& reverse_planes();

  HostRunReport finish(const bio::ProteinSequence& query,
                       AcceleratorRun run, std::size_t reference_bytes) const;

  HostConfig config_;
  bio::PackedNucleotides reference_;
  bio::PackedNucleotides reverse_;  // RC copy when search_both_strands
  bool reference_uploaded_ = false;
  BitScanReference bitscan_reference_;  // lazy, for software scans
  bool bitscan_ready_ = false;
  BitScanReference bitscan_reverse_;  // lazy RC planes for batch aligns
  bool bitscan_reverse_ready_ = false;

  // Fault-tolerance state: upload-time tile checksums (lazy, fault paths
  // only), the health machine, and the session-lifetime fault schedule.
  std::vector<std::uint32_t> ref_crcs_;
  std::vector<std::uint32_t> rev_crcs_;
  bool ref_crcs_ready_ = false;
  bool rev_crcs_ready_ = false;
  HealthState health_ = HealthState::Healthy;
  std::size_t consecutive_failures_ = 0;
  std::uint64_t invocation_ = 0;  // align_impl calls; seeds fault streams
  std::vector<hw::FaultEvent> fault_log_;
};

}  // namespace fabp::core
