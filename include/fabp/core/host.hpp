#pragma once
// Host runtime — the OpenCL host program of §IV, modeled: it encodes
// queries, transfers query + reference from host DRAM to FPGA DRAM over
// PCIe, invokes the kernel (the Accelerator), and reads results back.
// All reported end-to-end times include those transfers, matching the
// paper's measurement methodology ("we measured the end-to-end execution
// time that includes reading both query and reference sequences from the
// FPGA DRAM, aligning the sequences, and writing the results").
//
// Since the layering refactor (DESIGN.md §"Layered host runtime") the
// machinery lives in three layers under this header's types:
//   - compile:  core/query_compiler.hpp  (query -> CompiledQuery, LRU)
//   - backend:  core/backend.hpp         (ScanBackend: hw-sim + recovery,
//                                         tiled, planes)
//   - engine:   core/engine.hpp          (queue, workers, coalescing)
// `Session` remains the stable public API: a thin synchronous facade over
// one Engine, with behavior bit-for-bit identical to the pre-refactor
// monolith (pinned by tests/core/host_test.cpp and chaos_test.cpp).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fabp/core/accelerator.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/core/error.hpp"
#include "fabp/hw/fault.hpp"
#include "fabp/hw/scheduler.hpp"

namespace fabp::core {

class Engine;

/// Detection + bounded-retry policy for the session (the host side of the
/// fault-tolerance layer; injection rates live in HostConfig::fault).
struct RecoveryConfig {
  /// Kernel attempts per strand before the invocation counts as failed.
  std::size_t max_attempts = 4;
  /// Retry backoff: attempt k waits backoff_base_s * 2^k (modeled time,
  /// charged to RecoveryStats::recovery_s).
  double backoff_base_s = 100e-6;
  /// Watchdog deadline on one kernel attempt's modeled time; 0 disables.
  /// Stall storms inflate kernel time, which is how a hung card surfaces.
  double watchdog_s = 0.0;
  /// Per-tile CRC32 of the streamed reference against the upload-time
  /// checksums, plus a CRC over the readback hit buffer.  Detected tiles
  /// are repaired by re-scanning only the affected reference range.
  /// Turning this off delivers corrupted data as-is (the chaos suite uses
  /// that to prove injected faults are real, not cosmetic).
  bool verify_integrity = true;
  /// Golden spot-check sampler: K windows (256 positions each) per strand
  /// re-scored from the resident store and compared against the returned
  /// hits.  Catches corruption even with CRC checking off.  0 disables.
  std::size_t spot_check_samples = 0;
  /// Consecutive failed invocations before the session health-state
  /// machine degrades to the software path.
  std::size_t degrade_after = 3;
  /// Degraded sessions (and invocations that exhausted their attempts)
  /// serve hits from the pure-software TileScanner path with zero card
  /// time; with this off they return typed errors instead.
  bool allow_software_fallback = true;
};

/// What the recovery machinery did for one run (or, merged, one batch).
struct RecoveryStats {
  std::size_t attempts = 0;          ///< kernel attempts (per strand)
  std::size_t retries = 0;           ///< attempts after the first
  std::size_t transfer_faults = 0;   ///< transient PCIe transfer failures
  std::size_t timeouts = 0;          ///< watchdog-expired attempts
  std::size_t crc_faults = 0;        ///< reference tiles failing CRC
  std::size_t readback_faults = 0;   ///< corrupted readbacks (re-read)
  std::size_t rescanned_tiles = 0;   ///< tiles repaired by range re-scan
  std::size_t spot_checks = 0;       ///< golden spot-check windows sampled
  std::size_t spot_check_faults = 0; ///< windows that failed and were fixed
  std::size_t fallbacks = 0;         ///< strand runs served in software
  bool degraded = false;             ///< session Degraded after this run
  double recovery_s = 0.0;           ///< modeled time lost to recovery

  void merge(const RecoveryStats& other) noexcept;
};

/// Session health-state machine: Healthy until `degrade_after` consecutive
/// invocations exhaust their attempts, then Degraded (software path or
/// DeviceLost errors, per RecoveryConfig::allow_software_fallback).
enum class HealthState { Healthy, Degraded };

struct HostConfig {
  AcceleratorConfig accelerator{};
  /// Also scan the reverse-complement strand (genes sit on either strand;
  /// the card streams a pre-built RC copy of the database, doubling the
  /// kernel time).
  bool search_both_strands = false;
  /// Software scan path: Auto (FABP_SCAN_MODE, tiled when unset) streams
  /// the packed reference through the tile-fused compile+scan; Planes
  /// keeps the precompiled whole-reference bit-planes (the escape hatch
  /// for differential testing and perf comparison).
  ScanPath scan_path = ScanPath::Auto;
  /// Tile geometry for the tiled path.
  TileScanConfig tile{};
  double pcie_bandwidth_bps = 12e9;   // host <-> card effective PCIe gen3 x16
  double invoke_overhead_s = 30e-6;   // kernel launch + fence
  bool reference_resident = true;     // DB transferred once, reused across
                                      // queries (the paper's usage model)
  /// Fault injection rates (all zero by default: the clean fast path takes
  /// one `enabled()` branch and none of the recovery machinery runs).
  hw::FaultConfig fault{};
  /// Detection / retry / degradation policy (see RecoveryConfig).
  RecoveryConfig recovery{};
  /// Device batch scheduler shape for the hw-sim backend (DESIGN.md §4d):
  /// how many compiled queries pack into one device invocation, how many
  /// ping/pong DMA buffers the card holds, and how many PE arrays split
  /// the reference.  Ignored by the software backends.
  hw::DeviceBatchConfig device_batch{};
};

struct HostRunReport {
  std::vector<Hit> hits;
  /// Hits found on the reverse-complement strand, reported in *forward*
  /// coordinates of the window start (empty unless search_both_strands).
  std::vector<Hit> reverse_hits;
  FabpMapping mapping;

  double reference_transfer_s = 0.0;  // amortized to 0 when resident
  double query_transfer_s = 0.0;
  double kernel_s = 0.0;
  double readback_s = 0.0;
  double total_s = 0.0;

  double watts = 0.0;
  double joules = 0.0;  // FPGA energy over total_s

  /// What recovery did for this run; total_s includes recovery.recovery_s.
  RecoveryStats recovery;

  /// Database generation the request was admitted under (0 before the
  /// first upload).  Lets swap-under-load callers pin hit-for-hit results
  /// to the snapshot that actually served them.
  std::uint64_t generation = 0;
};

/// Batch-align report (kept at namespace scope since the layering refactor
/// — the Engine returns it too; Session::BatchReport aliases it for source
/// compatibility).
struct BatchReport {
  std::vector<HostRunReport> per_query;
  double total_s = 0.0;
  double total_joules = 0.0;
  std::size_t total_hits = 0;
  double queries_per_second = 0.0;  // modeled card throughput
  RecoveryStats recovery;           // merged over the whole batch
};

/// One attached "card": owns the reference database in FPGA DRAM and runs
/// queries against it.  A thin synchronous facade over core::Engine (which
/// adds the admission queue, worker pool and request coalescing for
/// concurrent serving; see core/engine.hpp) — everything here executes on
/// the caller's thread and no worker threads are ever spawned.
class Session {
 public:
  /// Throws FaultError{InvalidConfig} when the configuration is rejected
  /// by validate_host_config (zero tile sizes, zero retry budgets,
  /// non-positive bandwidths, out-of-range fault rates, ...).
  explicit Session(HostConfig config = {});
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  /// Transfers the reference database to FPGA DRAM (models the one-time
  /// cost; recorded and amortized per config.reference_resident).
  void upload_reference(const bio::NucleotideSequence& reference);
  void upload_reference(bio::PackedNucleotides reference);

  /// End-to-end aligned search of one protein query (functional).  Under
  /// an injected fault schedule the recovery machinery retries, repairs
  /// and (if allowed) degrades so the returned hits are always bit-exact
  /// with the golden model; throws FaultError only when the schedule is
  /// unrecoverable (and std::logic_error never — use try_align for the
  /// non-throwing boundary).
  HostRunReport align(const bio::ProteinSequence& query,
                      std::uint32_t threshold);

  /// Non-throwing form of align(): the typed error surface.
  Expected<HostRunReport> try_align(const bio::ProteinSequence& query,
                                    std::uint32_t threshold);

  /// Timing-only estimate against a hypothetical reference of `bytes`
  /// bytes (2-bit packed), for database-scale projections.
  HostRunReport estimate(const bio::ProteinSequence& query,
                         std::uint32_t threshold, std::size_t bytes) const;

  /// Aligns a batch of queries against the resident reference, reusing
  /// the card (the paper's deployment model: the database is transferred
  /// once, queries stream through).  Thresholds are per-query fractions of
  /// the query's element count.  The functional hit lists for the whole
  /// batch are produced in one multi-query pass over the reference — on
  /// the default tiled path each freshly compiled tile is scored against
  /// every query while hot in cache; on the Planes path the same happens
  /// per block of cached plane words — and the per-query accelerator runs
  /// reduce to cycle/energy accounting; reports are bit-for-bit identical
  /// to calling align() per query.  Pass a pool to chunk the batch scan
  /// over threads (and, on the Planes path with search_both_strands, to
  /// compile the two strands' planes concurrently).
  using BatchReport = ::fabp::core::BatchReport;
  BatchReport align_batch(std::span<const bio::ProteinSequence> queries,
                          double threshold_fraction,
                          util::ThreadPool* pool = nullptr);

  /// Non-throwing form of align_batch(); the first unrecoverable
  /// per-query error aborts and is returned for the whole batch.
  Expected<BatchReport> try_align_batch(
      std::span<const bio::ProteinSequence> queries,
      double threshold_fraction, util::ThreadPool* pool = nullptr);

  /// Pure-software scan of the resident reference through the bit-sliced
  /// engine (no accelerator timing model): returns exactly the hits
  /// align() reports for the forward strand.  On the default tiled path
  /// the packed reference is streamed directly (nothing is compiled or
  /// cached); the Planes path compiles the reference planes on first use
  /// and caches them across queries.  Pass a pool to chunk the scan over
  /// threads (output is identical either way).
  std::vector<Hit> software_hits(const bio::ProteinSequence& query,
                                 std::uint32_t threshold,
                                 util::ThreadPool* pool = nullptr);

  /// Batch form of software_hits: all queries are scored in one pass over
  /// the reference (tile-fused by default, cached planes on the Planes
  /// path); element [q] of the result equals
  /// software_hits(queries[q], thresholds[q]) exactly.
  /// thresholds.size() must equal queries.size().
  std::vector<std::vector<Hit>> software_hits_batch(
      std::span<const bio::ProteinSequence> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr);

  const bio::PackedNucleotides& reference() const noexcept;
  const HostConfig& config() const noexcept;

  /// True when this session's software scans take the tiled path.
  bool tiled() const noexcept;

  /// Health-state machine position (degrades after repeated failures).
  HealthState health() const noexcept;

  /// Every fault event injected over this session's lifetime, in draw
  /// order — the replayable schedule a chaos failure is reported with.
  const std::vector<hw::FaultEvent>& fault_log() const noexcept;

  /// The engine this facade wraps, for callers that want the asynchronous
  /// serving surface (submit/Ticket) on top of the same card state.
  Engine& engine() noexcept { return *engine_; }
  const Engine& engine() const noexcept { return *engine_; }

 private:
  std::unique_ptr<Engine> engine_;
};

}  // namespace fabp::core
