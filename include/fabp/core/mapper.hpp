#pragma once
// Resource mapper: places the FabP accelerator onto a device (paper §III-C
// "FabP uses a set of multiplexers to divide Query Seq. and Reference
// Stream into multiple segments and process each segment in a cycle" and
// §IV-B / Table I).
//
// Per 512-bit AXI beat the architecture instantiates 256 alignment
// instances (one per new reference offset).  Each instance needs, per
// segment-cycle: seg_len custom comparators (2 LUTs each), a seg_len-bit
// handcrafted pop-counter, a partial-score accumulator when segmented, and
// a DSP threshold compare (a second DSP accumulates partials when S > 1).
// The mapper picks the smallest segment count S whose total fits the
// device; effective DRAM bandwidth is nominal * AXI efficiency / S.

#include <cstdint>

#include "fabp/hw/axi.hpp"
#include "fabp/hw/device.hpp"

namespace fabp::core {

struct MapperConstants {
  std::size_t instances_per_beat = 256;   // new offsets per 512-bit beat
  std::size_t comparator_luts_per_element = 2;  // exact (Fig. 5)
  double datapath_luts_per_element = 1.0;  // stream fanout / pipelining
  double segment_mux_luts_per_element = 0.7;  // only when S > 1
  double lut_overhead = 1.10;             // routing + control factor
  std::size_t fixed_luts = 20'000;        // AXI datapath, WB, FSM
  std::size_t score_bits = 10;            // "the alignment score is a
                                          //  10-bit number" (§IV-B)
  double pop_ff_per_lut = 0.4;            // pipeline regs inside the PC
  std::size_t fixed_ffs = 8'000;
  std::size_t fixed_dsps = 4;
  double bram_base_bits = 2.0 * 1024 * 1024;   // WB buffer + control
  double bram_stream_bits = 1.05 * 1024 * 1024;  // AXI FIFOs, scaled 1/S
  double resource_bound_utilization = 0.85;  // routing-congestion knee

  /// Ablation of the paper's §IV-B design choice: place the query and
  /// reference-stream buffers in BRAM instead of distributed FFs.  Saves
  /// FFs but every BRAM port fans out to all 256 instances, which the
  /// paper avoids ("to avoid the routing congestion that may happen due
  /// to high fanout of the memory blocks"): modeled as an extra LUT
  /// replication cost per instance and additional BRAM bits.
  bool buffers_in_bram = false;
  double bram_fanout_luts_per_element = 0.8;  // replication/mux overhead
};

enum class Bottleneck { Bandwidth, Resources };

struct FabpMapping {
  std::size_t query_elements = 0;  // L_q in elements (3x protein length)
  std::size_t segments = 1;        // S: cycles per beat group
  std::size_t channels = 1;        // memory channels actually used
  std::size_t segment_elements = 0;  // ceil(L_q / S)
  hw::ResourceBudget used;
  hw::ResourceBudget capacity;
  bool feasible = true;

  // Per-category utilization in [0, 1+].
  double lut_util = 0, ff_util = 0, bram_util = 0, dsp_util = 0;

  // Breakdown (LUTs).
  std::size_t comparator_luts = 0, popcounter_luts = 0, mux_luts = 0,
              accumulator_luts = 0, fixed_luts = 0;

  double axi_efficiency = 1.0;
  double effective_bandwidth_bps = 0.0;  // nominal * efficiency / segments
  Bottleneck bottleneck = Bottleneck::Bandwidth;
};

/// Maps a query of `query_elements` 2-bit reference-elements onto `device`.
/// `query_elements` is the back-translated length (3x residues).
/// With C memory channels, C beats arrive per cycle and the design
/// instantiates 256*C alignment instances (§III-C); the mapper picks the
/// channel count in [1, device.memory_channels] that maximizes effective
/// bandwidth (fewest channels on ties).
FabpMapping map_design(const hw::FpgaDevice& device,
                       std::size_t query_elements,
                       const MapperConstants& constants = {},
                       const hw::AxiTimingConfig& axi = {});

}  // namespace fabp::core
