#pragma once
// Hit post-processing — the "predict the functionality of the unknown
// query sequence" step of Fig. 1.  Raw accelerator hits are element
// positions in the concatenated database stream; annotation maps them back
// to records, translates the matched window, computes identity, and
// (optionally) confirms each hit with a BLOSUM62 Smith-Waterman score
// against the query protein so downstream users get a BLAST-shaped report.

#include <string>
#include <vector>

#include "fabp/align/local.hpp"
#include "fabp/bio/database.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {

struct AnnotatedHit {
  Hit raw;
  std::size_t record = 0;          // index into the database
  std::size_t record_offset = 0;   // element offset within the record
  double identity = 0.0;           // raw.score / query elements
  bio::ProteinSequence peptide;    // in-frame translation of the window
  int blosum_score = 0;            // SW(query, peptide), if confirmed
  bool confirmed = false;

  bool operator==(const AnnotatedHit&) const = default;
};

struct AnnotateOptions {
  bool confirm_with_sw = true;
  /// Keep only the best hit per (record, offset/dedup_window) bucket.
  std::size_t dedup_window = 3;
  /// Drop annotated hits whose SW confirmation falls below this fraction
  /// of the query's self-score (0 disables the filter).
  double min_sw_fraction = 0.0;
};

/// Annotates accelerator/golden hits against the database they were
/// produced from.  Hits that land in guard regions or span a record
/// boundary are dropped.  Output is sorted by descending identity, ties
/// by (record, offset).
std::vector<AnnotatedHit> annotate_hits(const std::vector<Hit>& hits,
                                        const bio::ReferenceDatabase& db,
                                        const bio::ProteinSequence& query,
                                        const AnnotateOptions& options = {});

/// One-line rendering for reports: "rec=<name> off=<o> id=97.3% sw=210".
std::string to_string(const AnnotatedHit& hit,
                      const bio::ReferenceDatabase& db);

}  // namespace fabp::core
