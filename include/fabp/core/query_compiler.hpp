#pragma once
// Compile layer of the serving engine (DESIGN.md §"Layered host runtime").
//
// Everything the host does to a protein query before any backend can run
// it — back-translation into typed elements, element-kind classification
// for the bit-sliced kernels, 6-bit FabP instruction encoding, the packed
// DRAM footprint the transfer model charges, and the random-model score
// statistics threshold derivation uses — is pure per-query work that the
// old Session recomputed on every align() call.  A CompiledQuery bundles
// all of it; a QueryCompiler memoizes CompiledQuerys behind a bounded LRU
// cache so repeated queries (the common case under serving traffic: the
// same hot queries against a resident database) skip recompilation
// entirely.  Entries are shared_ptr<const ...>: a hit can outlive an
// eviction, so concurrent engine workers never see a compiled query
// disappear under them.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabp/bio/sequence.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/encoding.hpp"
#include "fabp/core/threshold.hpp"

namespace fabp::core {

/// Every derived form of one protein query the host layers consume.
/// Immutable after construction; produced by QueryCompiler (or directly by
/// compile_query for one-off use).
struct CompiledQuery {
  bio::ProteinSequence protein;        ///< the source query
  std::vector<BackElement> elements;   ///< back-translated typed elements
  EncodedQuery encoded;                ///< 6-bit FabP instructions
  BitScanQuery scan;                   ///< per-element plane kinds
  std::size_t packed_bytes = 0;        ///< PackedQuery DRAM footprint
  ScoreStatistics statistics;          ///< random-model score stats

  /// Query length in elements (3 per residue).
  std::size_t size() const noexcept { return encoded.size(); }

  /// The align_batch threshold rule: floor(fraction * elements).  Kept
  /// here so every layer derives thresholds with one formula.
  std::uint32_t threshold_for_fraction(double fraction) const noexcept {
    return static_cast<std::uint32_t>(
        fraction * static_cast<double>(protein.size() * 3));
  }

  /// Smallest threshold whose expected random-hit count over a reference
  /// of `reference_elements` positions is <= `expected_hits`.
  std::uint32_t threshold_for_expected_hits(std::size_t reference_elements,
                                            double expected_hits = 1.0) const;
};

using CompiledQueryPtr = std::shared_ptr<const CompiledQuery>;

/// One-shot compilation, no caching.
CompiledQueryPtr compile_query(const bio::ProteinSequence& protein);

struct QueryCompilerStats {
  std::size_t hits = 0;       ///< cache hits served
  std::size_t misses = 0;     ///< compilations performed
  std::size_t evictions = 0;  ///< entries pushed out by capacity
  std::size_t entries = 0;    ///< currently cached
};

/// Thread-safe bounded LRU cache over compile_query, keyed by the query's
/// residue text (compilation is a pure function of the sequence — nothing
/// in HostConfig affects it, so one compiler serves every backend of an
/// engine).
class QueryCompiler {
 public:
  /// `capacity` = maximum cached queries (>= 1 enforced).
  explicit QueryCompiler(std::size_t capacity = 128);

  /// Cached compile: returns the existing entry (refreshing its recency)
  /// or compiles, caches, and possibly evicts the least recent entry.
  CompiledQueryPtr compile(const bio::ProteinSequence& protein);

  std::size_t capacity() const noexcept { return capacity_; }
  QueryCompilerStats stats() const;
  void clear();

 private:
  using LruList = std::list<std::pair<std::string, CompiledQueryPtr>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  QueryCompilerStats stats_;
};

}  // namespace fabp::core
