#pragma once
// Typed error surface for the Session API boundary.
//
// The host runtime used to have exactly one failure mode: throw
// std::logic_error and die.  With the fault-tolerance layer the interesting
// outcomes are *recoverable* — a transfer retried, a tile re-scanned, the
// session degraded to software — and the unrecoverable ones need to say
// precisely what gave up.  `Expected<T>` is the non-throwing boundary
// (std::expected is C++23; this repo targets C++20, so a thin variant-based
// equivalent).  The throwing convenience wrappers (`Session::align`) funnel
// through `value_or_throw`, which raises `FaultError` carrying the same
// typed payload.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace fabp::core {

enum class ErrorCode : std::uint8_t {
  None = 0,
  NoReference,       ///< align before upload_reference
  BadArgument,       ///< caller-side precondition violated
  TransferFailure,   ///< PCIe transfer failed on every allowed attempt
  Timeout,           ///< kernel watchdog deadline exceeded on every attempt
  IntegrityFailure,  ///< corruption detected and not repairable
  DeviceLost,        ///< health machine gave up and fallback is disabled
  InvalidConfig,     ///< rejected at Session/Engine construction
  QueueFull,         ///< engine admission queue at capacity
  Cancelled,         ///< request cancelled before it started running
  DeadlineExceeded,  ///< request deadline passed before it started running
  ShuttingDown,      ///< engine destroyed with the request still queued
  Overloaded,        ///< shed at the service edge before admission
  UnknownDatabase,   ///< request named a database that is not resident
  TenantQuotaExceeded,  ///< tenant's queue-depth quota exhausted
};

inline const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::None: return "ok";
    case ErrorCode::NoReference: return "no-reference";
    case ErrorCode::BadArgument: return "bad-argument";
    case ErrorCode::TransferFailure: return "transfer-failure";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::IntegrityFailure: return "integrity-failure";
    case ErrorCode::DeviceLost: return "device-lost";
    case ErrorCode::InvalidConfig: return "invalid-config";
    case ErrorCode::QueueFull: return "queue-full";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::ShuttingDown: return "shutting-down";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::UnknownDatabase: return "unknown-database";
    case ErrorCode::TenantQuotaExceeded: return "tenant-quota-exceeded";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::None;
  std::string message;
  std::size_t attempts = 0;  ///< kernel attempts consumed before giving up
};

/// Exception form of Error, thrown by the convenience API (Session::align)
/// when the underlying try_align returns an error.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(Error error)
      : std::runtime_error{std::string{to_string(error.code)} + ": " +
                           error.message},
        error_{std::move(error)} {}

  const Error& error() const noexcept { return error_; }
  ErrorCode code() const noexcept { return error_.code; }

 private:
  Error error_;
};

/// Minimal std::expected stand-in: holds either a T or an Error.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_{std::move(value)} {}                  // NOLINT
  Expected(Error error) : state_{std::move(error)} {}              // NOLINT

  bool has_value() const noexcept {
    return std::holds_alternative<T>(state_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  T* operator->() { return &std::get<T>(state_); }
  const T* operator->() const { return &std::get<T>(state_); }
  T& operator*() { return std::get<T>(state_); }
  const T& operator*() const { return std::get<T>(state_); }

  const Error& error() const { return std::get<Error>(state_); }

  /// Value, or throw FaultError carrying the typed payload.
  T value_or_throw() && {
    if (!has_value()) throw FaultError{std::get<Error>(std::move(state_))};
    return std::get<T>(std::move(state_));
  }

 private:
  std::variant<T, Error> state_;
};

}  // namespace fabp::core
