#pragma once
// Cycle-level simulator of the FabP accelerator (paper §III-C, Fig. 3).
//
// Per valid 512-bit AXI beat, 256 reference elements enter the Reference
// Stream buffer (which keeps the previous L_q-element tail so alignment
// positions spanning two beats are covered).  All alignment positions whose
// last element arrived with this beat are evaluated: L_q comparator matches
// are counted by the pop-counter and compared against the user threshold
// (DSP); hits go to the write-back buffer and ultimately to DRAM.  When the
// resource mapper assigns S > 1 segments, each beat occupies the datapath
// for S cycles and the AXI stream is throttled accordingly, which is
// exactly the effective-bandwidth loss Table I reports for long queries.
//
// run() is functional + timing and bit-exact against the golden model (the
// match bits come from the generated comparator LUTs when `use_lut_path`).
// estimate() is timing-only (closed form over the same cycle accounting)
// for database-scale workloads where a functional scan is not the point.

#include <cstdint>
#include <vector>

#include "fabp/bio/packed.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/core/mapper.hpp"
#include "fabp/hw/axi.hpp"
#include "fabp/hw/device.hpp"
#include "fabp/hw/fault.hpp"
#include "fabp/hw/power.hpp"

namespace fabp::core {

struct AcceleratorConfig {
  hw::FpgaDevice device = hw::kintex7();
  hw::AxiTimingConfig axi{};
  MapperConstants mapper{};
  hw::PowerModelConfig power{};
  std::uint32_t threshold = 0;     // user-defined hit threshold (score >=)
  bool use_lut_path = false;       // evaluate matches through the LUT pair
  std::size_t pipeline_depth = 12; // fill latency, cycles
  std::size_t wb_bytes_per_hit = 8;  // position + score record

  /// Optional fault injection on the AXI read channel: when set, run()
  /// streams beats through a FaultyAxiStream so stall storms surface as
  /// ordinary fifo-empty stalls (inflating kernel time, which is how the
  /// host watchdog sees them).  Non-owning; null = clean channel.
  hw::FaultInjector* fault_injector = nullptr;
};

struct AcceleratorRun {
  std::vector<Hit> hits;

  FabpMapping mapping;
  std::size_t beats = 0;            // AXI beats consumed
  std::size_t cycles = 0;           // total kernel cycles
  std::size_t stall_cycles = 0;     // cycles with no valid AXI data
  std::size_t compute_cycles = 0;   // beats * segments
  std::size_t wb_cycles = 0;        // write-back interleave cycles

  double kernel_seconds = 0.0;
  double effective_bandwidth_bps = 0.0;  // reference bytes / kernel time
  double watts = 0.0;
  double joules = 0.0;
};

/// Raw cycle accounting of streaming `total_beats` through the
/// FIFO-overlapped datapath: beats arrive in lockstep groups of `channels`
/// per cycle through the AXI burst model (optionally fault-injected stall
/// storms), and a `segments`-segment datapath occupies the pipe for
/// `segments` cycles per group.  This is exactly the accounting loop of
/// Accelerator::run's non-LUT path, shared with the device batch scheduler
/// so a per-PE reference slice is priced bit-identically to a full run.
struct StreamBeatTiming {
  std::size_t beats = 0;
  std::size_t stall_cycles = 0;
  std::size_t compute_cycles = 0;
};

StreamBeatTiming stream_beat_timing(const hw::AxiTimingConfig& axi,
                                    hw::FaultInjector* injector,
                                    std::size_t total_beats,
                                    std::size_t channels,
                                    std::size_t segments);

class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig config = {});

  /// Host-side step: back-translate + encode the protein query and map the
  /// design.  Returns the mapping (throws std::invalid_argument if the
  /// query is empty or cannot be placed even fully segmented).
  const FabpMapping& load_query(const bio::ProteinSequence& protein);

  /// Same, from a pre-encoded query.
  const FabpMapping& load_encoded(EncodedQuery query);

  /// Functional + timing simulation over a packed reference.  When the
  /// caller already holds the hit list for this (query, reference,
  /// threshold) — e.g. Session::align_batch scores a whole batch in one
  /// pass over cached bit-planes — it can pass `precomputed_hits` and the
  /// run reduces to cycle/energy accounting.  The list must be exactly
  /// what the default path would compute; the LUT oracle path ignores it
  /// and always evaluates element by element.
  AcceleratorRun run(const bio::PackedNucleotides& reference,
                     const std::vector<Hit>* precomputed_hits =
                         nullptr) const;

  /// Timing-only estimate for a reference of `reference_elements` 2-bit
  /// elements with an expected hit density (hits per reference element).
  AcceleratorRun estimate(std::size_t reference_elements,
                          double expected_hit_density = 1e-7) const;

  const AcceleratorConfig& config() const noexcept { return config_; }
  const FabpMapping& mapping() const noexcept { return mapping_; }
  const EncodedQuery& encoded_query() const noexcept { return query_; }

 private:
  void finalize_timing(AcceleratorRun& run, std::size_t reference_elements)
      const;

  AcceleratorConfig config_;
  EncodedQuery query_;
  std::vector<BackElement> elements_;  // decoded view for the fast path
  FabpMapping mapping_;
};

}  // namespace fabp::core
