#pragma once
// A slice of the Fig. 3 datapath: N alignment instances sharing one
// Reference Stream window.  Instance k compares the query against window
// offsets [k, k + L_q); all instances read the same window nets (the
// high-fanout sharing the paper manages with FF-based buffers) and each
// produces its own score and hit flag.
//
// The full device instantiates 256 instances x L_q elements — too big to
// simulate gate-by-gate for fun — but a scaled slice is enough to prove
// the topology: tests check every instance against the golden model
// simultaneously, and resource counts scale exactly linearly, which is
// what the resource mapper assumes.

#include <vector>

#include "fabp/core/instance.hpp"

namespace fabp::core {

struct ArrayPorts {
  /// Shared query instruction bits (b0..b5 per element).
  std::vector<std::array<hw::NetId, 6>> query;
  /// Shared window: 2 history elements + (elements + instances - 1)
  /// stream elements, 2 bits each, LSB first.
  std::vector<std::array<hw::NetId, 2>> window;
  /// Per instance: score bus and hit flag.
  std::vector<hw::Bus> scores;
  std::vector<hw::NetId> hits;
};

struct ArrayConfig {
  std::size_t elements = 36;    // L_q
  std::size_t instances = 8;    // parallel alignment positions
  std::uint32_t threshold = 0;
  bool pipelined = false;
};

/// Builds the array with fresh primary inputs.
ArrayPorts build_instance_array(hw::Netlist& netlist,
                                const ArrayConfig& config);

/// Drives the shared window (2 history + elements + instances - 1
/// nucleotides) and query, settles/clocks, and returns every instance's
/// score.
std::vector<std::uint32_t> simulate_array(
    hw::Netlist& netlist, const ArrayPorts& ports, const ArrayConfig& config,
    const EncodedQuery& query, std::span<const bio::Nucleotide> window);

}  // namespace fabp::core
