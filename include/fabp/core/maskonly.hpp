#pragma once
// Mask-only encoding baseline — the ablation that motivates FabP's Type
// III machinery (§III-A/B).
//
// The obvious cheap encoding stores, per back-translated element, a 4-bit
// mask of acceptable nucleotides (union over the amino acid's codons at
// that position).  It needs only ONE LUT6 per element (4 mask bits + 2
// reference bits) instead of FabP's two — but it cannot express
// *dependencies between positions*: Arg's (A/C)G(F:10) degrades to
// {A,C} G {anything}, which also accepts AGU/AGC (= Ser) and AGGG-style
// impossibilities.  This module implements that baseline so the benches
// can quantify the specificity FabP's 6-bit instructions buy.

#include <cstdint>
#include <vector>

#include "fabp/core/golden.hpp"

namespace fabp::core {

/// One 4-bit mask per element; bit k = nucleotide with code k accepted.
using MaskQuery = std::vector<std::uint8_t>;

/// Per-position nucleotide mask of `aa` over its biological codon set.
std::uint8_t position_mask(bio::AminoAcid aa, std::size_t position) noexcept;

/// 3 masks per residue.
MaskQuery mask_encode(const bio::ProteinSequence& protein);

/// Number of matching elements at `position` under mask-only semantics.
std::uint32_t mask_score_at(const MaskQuery& query,
                            const bio::NucleotideSequence& ref,
                            std::size_t position);

/// All offsets scoring >= threshold (mask-only semantics).
std::vector<Hit> mask_hits(const MaskQuery& query,
                           const bio::NucleotideSequence& ref,
                           std::uint32_t threshold);

/// Codons fully accepted by the mask encoding of `aa` (superset of the
/// biological set whenever positions are dependent).
std::size_t mask_accepted_codons(bio::AminoAcid aa);

/// Codons fully accepted by the FabP template of `aa`.
std::size_t template_accepted_codons(bio::AminoAcid aa);

}  // namespace fabp::core
