#pragma once
// Engine layer of the serving runtime (DESIGN.md §"Layered host runtime").
//
// The Session facade answers one query at a time on the caller's thread.
// A deployment answers many callers at once against one card: requests
// arrive concurrently, wait in a bounded admission queue, and the scarce
// resource — one pass over the resident reference — wants to be shared.
// The Engine is that serving loop: submit() enqueues a request and hands
// back a future-like Ticket; a small worker pool drains the queue, and
// whenever more than one request is waiting it *coalesces* them into one
// multi-query scan over the reference (the PR-2/PR-3 batch machinery), so
// queue depth converts into per-query scan cost savings instead of pure
// latency.  Requests carry optional deadlines and can be cancelled while
// queued; every outcome — including queue-full rejection, cancellation,
// deadline expiry and shutdown — is a typed core::Error, never a hang.
//
// Determinism contract: the hits of a coalesced request are bit-for-bit
// the hits of Session::align on the same query/threshold (pinned by the
// engine differential tests for all three backends).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "fabp/core/backend.hpp"
#include "fabp/core/shard.hpp"

namespace fabp::core {

struct EngineConfig {
  HostConfig host{};
  /// Which backend serves requests (the full card model by default).
  BackendKind backend = BackendKind::HwSim;
  /// Reference sharding (DESIGN.md §4e).  shard_count == 1 keeps the
  /// single-card path; > 1 routes through a ShardedBackend: N backend
  /// instances each holding a contiguous slice of card DRAM (+ halo),
  /// per-shard admission queues, scatter/gather with global rebase.
  ShardConfig shard{};
  /// Worker threads draining the queue.  Backend execution itself is
  /// serialized (one modeled card), so extra workers only overlap claim /
  /// bookkeeping; 1–2 is plenty.
  std::size_t workers = 2;
  /// Admission queue bound; submissions beyond it are rejected with
  /// ErrorCode::QueueFull instead of growing latency without bound.
  std::size_t queue_capacity = 256;
  /// Most queued requests one coalesced batch may absorb.
  std::size_t max_coalesce = 16;
  /// QueryCompiler LRU capacity (compiled artifacts shared across requests).
  std::size_t compiler_capacity = 128;
  /// Spawn workers lazily on the first submit().  Turn off to hold the
  /// queue closed until an explicit start() — requests then accumulate
  /// (or reject) deterministically, which the queue/cancel/deadline tests
  /// rely on.
  bool autostart = true;
};

/// Per-request knobs.
struct RequestOptions {
  /// Seconds the request may wait before it is failed with
  /// DeadlineExceeded instead of run; 0 = no deadline.  Checked when a
  /// worker claims the request *and again* at the device dispatch point
  /// (after the claiming batch wins the execution lock), so a request
  /// that expired behind a long-running batch never rides into a device
  /// invocation and inflates batch latency for live requests.
  double timeout_s = 0.0;
};

/// Monotonic counters over an engine's lifetime (snapshot via stats()).
struct EngineStats {
  std::size_t submitted = 0;         ///< accepted into the queue
  std::size_t completed = 0;         ///< finished with a value
  std::size_t failed = 0;            ///< finished with a typed error
  std::size_t rejected = 0;          ///< refused at submit (queue full)
  std::size_t cancelled = 0;         ///< cancelled while queued
  std::size_t expired = 0;           ///< deadline passed while queued
  std::size_t coalesced_batches = 0; ///< multi-query scans issued
  std::size_t coalesced_requests = 0;///< requests served by those scans
  std::size_t largest_batch = 0;     ///< widest coalesced scan so far

  /// Mean requests per coalesced batch (0 when none formed).
  double batch_occupancy() const noexcept {
    return coalesced_batches == 0
               ? 0.0
               : static_cast<double>(coalesced_requests) /
                     static_cast<double>(coalesced_batches);
  }
};

namespace detail {

/// Queue-entry lifecycle.  The atomic phase is the single arbitration
/// point between the claiming worker and a concurrent cancel: whoever
/// CASes Pending away owns the promise and fulfils it exactly once.
enum class RequestPhase : int { Pending = 0, Claimed = 1, Cancelled = 2 };

struct EngineCounters {
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> cancelled{0};
  std::atomic<std::size_t> expired{0};
  std::atomic<std::size_t> coalesced_batches{0};
  std::atomic<std::size_t> coalesced_requests{0};
  std::atomic<std::size_t> largest_batch{0};
};

struct RequestState {
  CompiledQueryPtr query;
  std::uint32_t threshold = 0;
  std::chrono::steady_clock::time_point deadline{};  // epoch = none
  bool has_deadline = false;
  std::atomic<int> phase{static_cast<int>(RequestPhase::Pending)};
  std::promise<Expected<HostRunReport>> promise;
  std::shared_ptr<EngineCounters> counters;  // outlives the engine

  /// CAS Pending -> to; true means the caller now owns the promise.
  bool claim(RequestPhase to) noexcept {
    int expected = static_cast<int>(RequestPhase::Pending);
    return phase.compare_exchange_strong(expected, static_cast<int>(to));
  }
};

/// Fails every already-claimed batch entry whose deadline is at or past
/// `now` with DeadlineExceeded (bumping the expired counter) and drops it
/// from the batch.  Called by execute_batch once it holds the execution
/// lock — the second deadline checkpoint after the claim-time one.
void drop_expired(std::vector<std::shared_ptr<RequestState>>& batch,
                  std::chrono::steady_clock::time_point now);

}  // namespace detail

/// Handle to one submitted request.  wait() blocks for the outcome and
/// may be called once; cancel() races the workers for a still-queued
/// request.  Tickets share ownership of the request state, so they stay
/// valid after the engine is destroyed (the outcome is then a
/// ShuttingDown error if the request never ran).
class Ticket {
 public:
  Ticket() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the request finishes and consumes the outcome.
  Expected<HostRunReport> wait() { return future_.get(); }

  /// True once the outcome is available (wait() will not block).
  bool ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds{0}) ==
               std::future_status::ready;
  }

  /// Cancels the request if no worker has claimed it yet.  Returns true
  /// when this call won the race (wait() then yields ErrorCode::Cancelled);
  /// false when the request already ran, failed, or was cancelled before.
  bool cancel();

 private:
  friend class Engine;
  explicit Ticket(std::shared_ptr<detail::RequestState> state)
      : state_{std::move(state)}, future_{state_->promise.get_future()} {}

  std::shared_ptr<detail::RequestState> state_;
  std::future<Expected<HostRunReport>> future_;
};

/// Construction-time validation of the engine knobs + the wrapped
/// HostConfig (ErrorCode::None when valid, InvalidConfig otherwise).
Error validate_engine_config(const EngineConfig& config) noexcept;

class Engine {
 public:
  /// Throws FaultError{InvalidConfig} when validate_engine_config rejects
  /// the configuration.  Worker threads start lazily on the first
  /// submit(), so purely synchronous use (the Session facade) never
  /// spawns a thread.
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- reference lifecycle ------------------------------------------------
  void upload_reference(const bio::NucleotideSequence& reference);
  void upload_reference(bio::PackedNucleotides reference);
  bool has_reference() const noexcept { return store_.uploaded; }
  const bio::PackedNucleotides& reference() const noexcept {
    return store_.forward;
  }

  // --- asynchronous serving ----------------------------------------------
  /// Enqueues one aligned search.  Never throws and never blocks beyond
  /// the queue lock: a full queue, a compile failure (unencodable residue)
  /// and shutdown all come back as already-failed tickets.
  Ticket submit(const bio::ProteinSequence& query, std::uint32_t threshold,
                RequestOptions options = {});

  /// Spawns the worker pool if it is not running yet (no-op afterwards).
  /// Only needed with autostart off.
  void start();

  // --- synchronous paths (the Session facade) ----------------------------
  /// One aligned search on the caller's thread, exactly Session::try_align.
  /// Optional precomputed strand hit lists come from a batch scan.
  Expected<HostRunReport> align_sync(
      const bio::ProteinSequence& query, std::uint32_t threshold,
      const std::vector<Hit>* forward_hits = nullptr,
      const std::vector<Hit>* reverse_hits = nullptr);

  /// Batch align on the caller's thread: one multi-query scan precomputes
  /// every hit list, then per-query runs reduce to accounting — exactly
  /// Session::try_align_batch.
  Expected<BatchReport> align_batch_sync(
      std::span<const bio::ProteinSequence> queries, double threshold_fraction,
      util::ThreadPool* pool = nullptr);

  /// Timing-only projection (Session::estimate).
  HostRunReport estimate(const bio::ProteinSequence& query,
                         std::uint32_t threshold, std::size_t bytes) const;

  /// Pure-software scans of the resident reference (Session::software_hits
  /// contracts; caller must have uploaded a reference).
  std::vector<Hit> software_hits(const bio::ProteinSequence& query,
                                 std::uint32_t threshold,
                                 util::ThreadPool* pool = nullptr);
  std::vector<std::vector<Hit>> software_hits_batch(
      std::span<const bio::ProteinSequence> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr);

  // --- introspection ------------------------------------------------------
  /// Requests currently waiting for a worker claim.  The service edge
  /// (net::WireServer) sheds on this before enqueueing more work.
  std::size_t queue_depth() const {
    std::lock_guard lock{queue_mutex_};
    return queue_.size();
  }

  const EngineConfig& config() const noexcept { return config_; }
  const HostConfig& host_config() const noexcept { return config_.host; }
  BackendKind backend_kind() const noexcept { return backend_->kind(); }
  EngineStats stats() const noexcept;
  QueryCompilerStats compiler_stats() const { return compiler_.stats(); }

  /// Backend health / fault schedule.  Stable only while no worker is
  /// executing (the single-threaded facade pattern, or after draining).
  HealthState health() const noexcept { return backend_->health(); }
  const std::vector<hw::FaultEvent>& fault_log() const noexcept {
    return backend_->fault_log();
  }

  /// Device batch scheduler accounting of the backend (all-zero for the
  /// software backends).  With sharding this is the *merged* cross-card
  /// view (counts summed, makespans max'ed — see ShardedBackend).  Takes
  /// the execution lock for a stable snapshot.
  DevicePipelineStats pipeline_stats() const {
    std::lock_guard lock{exec_mutex_};
    return backend_->pipeline_stats();
  }

  /// Per-shard router view (owned ranges, health, queue depths, recovery,
  /// per-card pipeline stats).  Empty when shard_count == 1 (no router).
  /// Takes the execution lock for a stable snapshot.
  std::vector<ShardStatus> shard_status() const {
    std::lock_guard lock{exec_mutex_};
    return sharded_ != nullptr ? sharded_->shard_status()
                               : std::vector<ShardStatus>{};
  }
  std::size_t shard_count() const noexcept {
    return sharded_ != nullptr ? sharded_->shard_count() : 1;
  }
  /// Router scatter/gather wall time (0 when unsharded).  Execution-lock
  /// stable like pipeline_stats().
  double shard_overhead_seconds() const {
    std::lock_guard lock{exec_mutex_};
    return sharded_ != nullptr
               ? sharded_->scatter_seconds() + sharded_->gather_seconds()
               : 0.0;
  }

 private:
  using StatePtr = std::shared_ptr<detail::RequestState>;

  void worker_loop();
  void ensure_workers();
  /// Runs one claimed batch (1..max_coalesce requests) on the backend as
  /// a single run_many call (the hw-sim device batch scheduler's unit).
  void execute_batch(std::vector<StatePtr> batch);

  EngineConfig config_;
  ReferenceStore store_;
  std::unique_ptr<ScanBackend> backend_;
  ShardedBackend* sharded_ = nullptr;  ///< backend_ downcast when sharded
  mutable QueryCompiler compiler_;
  std::shared_ptr<detail::EngineCounters> counters_;

  /// Serializes every backend touch: one modeled card, plus backend-side
  /// mutable state (fault log, lazy planes/CRCs) is not thread-safe.
  mutable std::mutex exec_mutex_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<StatePtr> queue_;
  std::vector<std::thread> workers_;
  bool workers_started_ = false;
  bool stopping_ = false;
};

}  // namespace fabp::core
