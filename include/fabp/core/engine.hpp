#pragma once
// Engine layer of the serving runtime (DESIGN.md §"Layered host runtime").
//
// The Session facade answers one query at a time on the caller's thread.
// A deployment answers many callers at once against one card: requests
// arrive concurrently, wait in a bounded admission queue, and the scarce
// resource — one pass over the resident reference — wants to be shared.
// The Engine is that serving loop: submit() enqueues a request and hands
// back a future-like Ticket; a small worker pool drains the queue, and
// whenever more than one request is waiting it *coalesces* them into one
// multi-query scan over the reference (the PR-2/PR-3 batch machinery), so
// queue depth converts into per-query scan cost savings instead of pure
// latency.  Requests carry optional deadlines and can be cancelled while
// queued; every outcome — including queue-full rejection, cancellation,
// deadline expiry and shutdown — is a typed core::Error, never a hang.
//
// Multi-tenant reference management (DESIGN.md §4g): the engine hosts any
// number of *named databases*, each a sequence of immutable, refcounted
// reference generations with their own backend set (shard plans rebuilt
// per generation).  upload_database() publishes a new generation while
// in-flight requests finish on the one they were admitted under; the old
// snapshot is reclaimed when its last pin drops (epoch-style, see
// VersionedStore).  Admission is tenant-aware: per-tenant queues drained
// by a weighted stride scheduler (fair share ∝ weight), per-tenant
// queue-depth quotas, and typed UnknownDatabase / TenantQuotaExceeded
// refusals.
//
// Determinism contract: the hits of a coalesced request are bit-for-bit
// the hits of Session::align on the same query/threshold and generation
// (pinned by the engine differential tests for all three backends).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fabp/core/backend.hpp"
#include "fabp/core/shard.hpp"

namespace fabp::core {

/// Admission-time identity and share of one tenant.  Unregistered tenant
/// names fall back to the EngineConfig defaults, so registration is only
/// needed to differentiate weights or quotas.
struct TenantConfig {
  std::string name;
  /// Fair-share weight: the stride scheduler dequeues tenants' requests
  /// in proportion to their weights whenever both have work queued.
  double weight = 1.0;
  /// Most requests this tenant may have waiting at once; submissions
  /// beyond it fail typed TenantQuotaExceeded.  0 = bounded only by the
  /// engine-wide queue_capacity.
  std::size_t queue_quota = 0;
};

struct EngineConfig {
  HostConfig host{};
  /// Which backend serves requests (the full card model by default).
  BackendKind backend = BackendKind::HwSim;
  /// Reference sharding (DESIGN.md §4e).  shard_count == 1 keeps the
  /// single-card path; > 1 routes through a ShardedBackend: N backend
  /// instances each holding a contiguous slice of card DRAM (+ halo),
  /// per-shard admission queues, scatter/gather with global rebase.
  /// Applied per database generation — a swap rebuilds the shard plans
  /// over the new snapshot.
  ShardConfig shard{};
  /// Worker threads draining the queue.  Backend execution itself is
  /// serialized per database (one modeled card each), so extra workers
  /// only overlap claim / bookkeeping — unless multiple databases are
  /// resident, which execute genuinely in parallel.
  std::size_t workers = 2;
  /// Admission queue bound across all tenants; submissions beyond it are
  /// rejected with ErrorCode::QueueFull instead of growing latency
  /// without bound.
  std::size_t queue_capacity = 256;
  /// Most queued requests one coalesced batch may absorb.
  std::size_t max_coalesce = 16;
  /// QueryCompiler LRU capacity (compiled artifacts shared across requests).
  std::size_t compiler_capacity = 128;
  /// Spawn workers lazily on the first submit().  Turn off to hold the
  /// queue closed until an explicit start() — requests then accumulate
  /// (or reject) deterministically, which the queue/cancel/deadline tests
  /// rely on.
  bool autostart = true;
  /// Pre-registered tenants (weight/quota overrides).  Unlisted tenant
  /// names are admitted with the defaults below.
  std::vector<TenantConfig> tenants;
  double default_tenant_weight = 1.0;
  std::size_t default_tenant_quota = 0;
};

/// Per-request knobs.
struct RequestOptions {
  /// Seconds the request may wait before it is failed with
  /// DeadlineExceeded instead of run; 0 = no deadline.  Checked when a
  /// worker claims the request *and again* at the device dispatch point
  /// (after the claiming batch wins the execution lock), so a request
  /// that expired behind a long-running batch never rides into a device
  /// invocation and inflates batch latency for live requests.
  double timeout_s = 0.0;
  /// Named database to search; empty = Engine::kDefaultDatabase.  An
  /// unknown name fails typed UnknownDatabase at submit.
  std::string database;
  /// Tenant the request is billed to; empty = the default tenant.
  std::string tenant;
};

/// Monotonic counters over an engine's lifetime (snapshot via stats()).
struct EngineStats {
  std::size_t submitted = 0;         ///< accepted into the queue
  std::size_t completed = 0;         ///< finished with a value
  std::size_t failed = 0;            ///< finished with a typed error
  std::size_t rejected = 0;          ///< refused at submit (queue/quota full)
  std::size_t cancelled = 0;         ///< cancelled while queued
  std::size_t expired = 0;           ///< deadline passed while queued
  std::size_t coalesced_batches = 0; ///< multi-query scans issued
  std::size_t coalesced_requests = 0;///< requests served by those scans
  std::size_t largest_batch = 0;     ///< widest coalesced scan so far

  /// Mean requests per coalesced batch (0 when none formed).
  double batch_occupancy() const noexcept {
    return coalesced_batches == 0
               ? 0.0
               : static_cast<double>(coalesced_requests) /
                     static_cast<double>(coalesced_batches);
  }
};

/// Point-in-time view of one resident database (database_status()).
struct DatabaseStatus {
  std::string name;
  std::uint64_t active_generation = 0;
  std::size_t swaps = 0;          ///< uploads published over the lifetime
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double qps = 0.0;               ///< completed / engine uptime
  double p50_ms = 0.0;            ///< admit-to-outcome latency percentiles
  double p99_ms = 0.0;
  bool degraded = false;          ///< whole-database fallback engaged
  std::size_t fallback_batches = 0;
  std::size_t reclaimed_generations = 0;
  /// Active + still-pinned retired generations with live refcounts.
  std::vector<VersionedStore::GenerationStatus> generations;
};

/// Point-in-time view of one tenant (tenant_status()).
struct TenantStatus {
  std::string name;
  double weight = 1.0;
  std::size_t quota = 0;          ///< 0 = engine queue bound only
  std::size_t queue_depth = 0;
  std::size_t peak_depth = 0;
  std::size_t submitted = 0;
  std::size_t dequeued = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t quota_rejections = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

namespace detail {

/// Queue-entry lifecycle.  The atomic phase is the single arbitration
/// point between the claiming worker and a concurrent cancel: whoever
/// CASes Pending away owns the promise and fulfils it exactly once.
enum class RequestPhase : int { Pending = 0, Claimed = 1, Cancelled = 2 };

struct EngineCounters {
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> cancelled{0};
  std::atomic<std::size_t> expired{0};
  std::atomic<std::size_t> coalesced_batches{0};
  std::atomic<std::size_t> coalesced_requests{0};
  std::atomic<std::size_t> largest_batch{0};
};

/// One resident generation of a database: the immutable snapshot plus the
/// backend set built over it.  Constructing the backends over a fresh
/// snapshot is what "shard plans rebuilt per generation" means — the
/// ShardedBackend constructor reslices the new store immediately — and it
/// also guarantees no stale derived artifacts (planes, tile CRCs) can
/// survive a swap.  Requests pin this whole object for their lifetime;
/// the last pin dropping reclaims strands, slices and caches in one sweep
/// (see VersionedStore).
struct Generation final : ReferenceSnapshot {
  std::unique_ptr<ScanBackend> backend;
  ShardedBackend* sharded = nullptr;  ///< backend downcast when sharded
  /// Whole-database software fallback (engaged only on the async serving
  /// path): built lazily when the primary degrades beyond what per-shard
  /// shedding can absorb.
  std::unique_ptr<ScanBackend> fallback;
  bool fallback_engaged = false;  ///< guarded by the owning db's exec mutex
  std::atomic<std::size_t> fallback_batches{0};
};

/// Small mutex-guarded circular window of request latencies (ms), shared
/// shape for per-database and per-tenant percentile reporting.
struct LatencyRing {
  static constexpr std::size_t kCapacity = 1024;

  void record(double value_ms);
  std::vector<double> snapshot() const;  ///< valid samples, unordered

 private:
  mutable std::mutex mutex_;
  std::vector<double> ms_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
};

/// One named database resident in the engine.  Never destroyed while the
/// engine lives, so raw pointers into the map are stable.
struct Database {
  std::string name;
  /// Guards the active-generation pointer and publication order.
  mutable std::mutex swap_mutex;
  /// Serializes backend touches for this database (one modeled card per
  /// database; backend-side mutable state is not thread-safe).  Distinct
  /// databases execute in parallel.
  mutable std::mutex exec_mutex;
  std::shared_ptr<Generation> active;  ///< typed pin; same control block
                                       ///< the VersionedStore tracks
  VersionedStore versions;

  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> swaps{0};
  std::atomic<bool> degraded{false};
  LatencyRing latency;
};

struct RequestState;

/// One tenant's admission queue + stride-scheduler state.  Queue, pass
/// and the plain counters are guarded by the engine's queue mutex; the
/// completion counters and latency ring are touched at fulfil time.
struct TenantQueue {
  std::string name;
  double weight = 1.0;
  std::size_t quota = 0;
  std::deque<std::shared_ptr<RequestState>> waiting;
  /// Stride virtual time: each executed request advances it by 1/weight,
  /// so a weight-4 tenant is picked 4x as often as a weight-1 one while
  /// both have work queued.
  double pass = 0.0;
  std::size_t submitted = 0;
  std::size_t dequeued = 0;
  std::size_t quota_rejections = 0;
  std::size_t peak_depth = 0;
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  LatencyRing latency;
};

struct RequestState {
  CompiledQueryPtr query;
  std::uint32_t threshold = 0;
  std::chrono::steady_clock::time_point deadline{};  // epoch = none
  bool has_deadline = false;
  std::atomic<int> phase{static_cast<int>(RequestPhase::Pending)};
  std::promise<Expected<HostRunReport>> promise;
  std::shared_ptr<EngineCounters> counters;  // outlives the engine

  /// The generation this request was admitted under.  The shared_ptr IS
  /// the epoch pin: as long as any in-flight request holds it, the
  /// snapshot (strands, shard slices, caches) cannot be reclaimed.
  std::shared_ptr<Generation> generation;
  Database* database = nullptr;     // stable for the engine's lifetime
  TenantQueue* tenant = nullptr;    // stable for the engine's lifetime
  std::chrono::steady_clock::time_point enqueued{};

  /// CAS Pending -> to; true means the caller now owns the promise.
  bool claim(RequestPhase to) noexcept {
    int expected = static_cast<int>(RequestPhase::Pending);
    return phase.compare_exchange_strong(expected, static_cast<int>(to));
  }
};

/// Fails every already-claimed batch entry whose deadline is at or past
/// `now` with DeadlineExceeded (bumping the expired counter) and drops it
/// from the batch.  Called by execute_batch once it holds the execution
/// lock — the second deadline checkpoint after the claim-time one.
void drop_expired(std::vector<std::shared_ptr<RequestState>>& batch,
                  std::chrono::steady_clock::time_point now);

}  // namespace detail

/// Handle to one submitted request.  wait() blocks for the outcome and
/// may be called once; cancel() races the workers for a still-queued
/// request.  Tickets share ownership of the request state, so they stay
/// valid after the engine is destroyed (the outcome is then a
/// ShuttingDown error if the request never ran).
class Ticket {
 public:
  Ticket() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks until the request finishes and consumes the outcome.
  Expected<HostRunReport> wait() { return future_.get(); }

  /// True once the outcome is available (wait() will not block).
  bool ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds{0}) ==
               std::future_status::ready;
  }

  /// Cancels the request if no worker has claimed it yet.  Returns true
  /// when this call won the race (wait() then yields ErrorCode::Cancelled);
  /// false when the request already ran, failed, or was cancelled before.
  bool cancel();

 private:
  friend class Engine;
  explicit Ticket(std::shared_ptr<detail::RequestState> state)
      : state_{std::move(state)}, future_{state_->promise.get_future()} {}

  std::shared_ptr<detail::RequestState> state_;
  std::future<Expected<HostRunReport>> future_;
};

/// Construction-time validation of the engine knobs + the wrapped
/// HostConfig (ErrorCode::None when valid, InvalidConfig otherwise).
Error validate_engine_config(const EngineConfig& config) noexcept;

class Engine {
 public:
  /// The database upload_reference() publishes to and requests with no
  /// database name are routed to (the single-database facade view).
  static constexpr const char* kDefaultDatabase = "default";
  /// The tenant unlabelled requests are billed to.
  static constexpr const char* kDefaultTenant = "default";

  /// Throws FaultError{InvalidConfig} when validate_engine_config rejects
  /// the configuration.  Worker threads start lazily on the first
  /// submit(), so purely synchronous use (the Session facade) never
  /// spawns a thread.
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- reference lifecycle ------------------------------------------------
  /// Single-database facade (the Session path): publishes a new generation
  /// of kDefaultDatabase.  In-flight requests finish on the snapshot they
  /// were admitted under; fresh backends per generation preserve the
  /// "no stale planes/CRCs after re-upload" contract byte-compatibly.
  void upload_reference(const bio::NucleotideSequence& reference);
  void upload_reference(bio::PackedNucleotides reference);

  /// Publishes a new generation of the named database, creating the
  /// database on first upload.  The whole new snapshot — RC strand,
  /// backend set, shard plans — is built off-lock while the old
  /// generation keeps serving; the swap itself is a pointer publication.
  /// Returns the generation id just published.
  std::uint64_t upload_database(const std::string& name,
                                const bio::NucleotideSequence& reference);
  std::uint64_t upload_database(const std::string& name,
                                bio::PackedNucleotides reference);

  bool has_database(const std::string& name) const;
  std::vector<std::string> database_names() const;

  bool has_reference() const;
  /// The default database's active forward strand.  Stable until the next
  /// upload to the default database.
  const bio::PackedNucleotides& reference() const;

  // --- asynchronous serving ----------------------------------------------
  /// Enqueues one aligned search.  Never throws and never blocks beyond
  /// the queue lock: a full queue, an exhausted tenant quota, an unknown
  /// database, a compile failure (unencodable residue) and shutdown all
  /// come back as already-failed tickets with typed errors.
  Ticket submit(const bio::ProteinSequence& query, std::uint32_t threshold,
                RequestOptions options = {});

  /// Spawns the worker pool if it is not running yet (no-op afterwards).
  /// Only needed with autostart off.
  void start();

  // --- synchronous paths (the Session facade) ----------------------------
  /// One aligned search on the caller's thread, exactly Session::try_align.
  /// Optional precomputed strand hit lists come from a batch scan.  Runs
  /// against the default database's active generation.
  Expected<HostRunReport> align_sync(
      const bio::ProteinSequence& query, std::uint32_t threshold,
      const std::vector<Hit>* forward_hits = nullptr,
      const std::vector<Hit>* reverse_hits = nullptr);

  /// Batch align on the caller's thread: one multi-query scan precomputes
  /// every hit list, then per-query runs reduce to accounting — exactly
  /// Session::try_align_batch.
  Expected<BatchReport> align_batch_sync(
      std::span<const bio::ProteinSequence> queries, double threshold_fraction,
      util::ThreadPool* pool = nullptr);

  /// Timing-only projection (Session::estimate).
  HostRunReport estimate(const bio::ProteinSequence& query,
                         std::uint32_t threshold, std::size_t bytes) const;

  /// Pure-software scans of the resident reference (Session::software_hits
  /// contracts; caller must have uploaded a reference).
  std::vector<Hit> software_hits(const bio::ProteinSequence& query,
                                 std::uint32_t threshold,
                                 util::ThreadPool* pool = nullptr);
  std::vector<std::vector<Hit>> software_hits_batch(
      std::span<const bio::ProteinSequence> queries,
      std::span<const std::uint32_t> thresholds,
      util::ThreadPool* pool = nullptr);

  // --- introspection ------------------------------------------------------
  /// Requests currently waiting for a worker claim, across all tenants.
  /// The service edge (net::WireServer) sheds on this before enqueueing
  /// more work.
  std::size_t queue_depth() const {
    std::lock_guard lock{queue_mutex_};
    return queued_total_;
  }

  const EngineConfig& config() const noexcept { return config_; }
  const HostConfig& host_config() const noexcept { return config_.host; }
  BackendKind backend_kind() const noexcept { return config_.backend; }
  EngineStats stats() const noexcept;
  QueryCompilerStats compiler_stats() const { return compiler_.stats(); }

  /// Per-database and per-tenant observability (QPS, latency percentiles,
  /// queue depths, per-generation refcounts) — the `fabp serve` stats
  /// dump renders these.
  std::vector<DatabaseStatus> database_status() const;
  std::vector<TenantStatus> tenant_status() const;
  double uptime_seconds() const;

  /// Backend health / fault schedule of the default database's active
  /// generation.  Stable only while no worker is executing (the
  /// single-threaded facade pattern, or after draining) and until the
  /// next upload.
  HealthState health() const;
  const std::vector<hw::FaultEvent>& fault_log() const;

  /// Device batch scheduler accounting of the default database's active
  /// backend (all-zero for the software backends).  With sharding this is
  /// the *merged* cross-card view (counts summed, makespans max'ed — see
  /// ShardedBackend).  Takes the execution lock for a stable snapshot.
  DevicePipelineStats pipeline_stats() const;

  /// Per-shard router view (owned ranges, health, queue depths, recovery,
  /// per-card pipeline stats) of the default database's active generation.
  /// Empty when shard_count == 1 (no router).  Takes the execution lock
  /// for a stable snapshot.
  std::vector<ShardStatus> shard_status() const;
  std::size_t shard_count() const noexcept {
    return config_.shard.shard_count > 1 ? config_.shard.shard_count : 1;
  }
  /// Router scatter/gather wall time of the active generation (0 when
  /// unsharded).  Execution-lock stable like pipeline_stats().
  double shard_overhead_seconds() const;

 private:
  using StatePtr = std::shared_ptr<detail::RequestState>;

  void worker_loop();
  void ensure_workers();
  /// Runs one claimed batch (1..max_coalesce requests, all pinned to the
  /// same generation) on that generation's backend as a single run_many
  /// call (the hw-sim device batch scheduler's unit).
  void execute_batch(std::vector<StatePtr> batch);

  /// Looks up a resident database (nullptr when unknown).
  detail::Database* find_database(const std::string& name) const;
  /// Finds or creates a database (generation-0 backend set over an empty
  /// store, matching the pre-upload engine of old).
  detail::Database& ensure_database(const std::string& name);
  /// Builds the backend set (sharded when configured) over gen's store.
  void build_backends(detail::Generation& gen) const;
  /// Pins the active generation of `db`.
  static std::shared_ptr<detail::Generation> pin_active(detail::Database& db);
  /// Finds or creates the tenant queue; caller holds queue_mutex_.
  detail::TenantQueue& tenant_queue_locked(const std::string& name);
  /// Min-pass non-empty tenant whose head request matches `match` (any
  /// generation when null); caller holds queue_mutex_.
  detail::TenantQueue* pick_tenant_locked(const detail::Generation* match);
  /// The backend a batch should run on, engaging the whole-database
  /// software fallback when the primary is beyond per-shard shedding.
  /// Caller holds db.exec_mutex.
  ScanBackend& route_backend(detail::Database& db, detail::Generation& gen);

  EngineConfig config_;
  mutable QueryCompiler compiler_;
  std::shared_ptr<detail::EngineCounters> counters_;
  std::chrono::steady_clock::time_point start_time_;

  /// Guards the database map's structure; Database objects themselves are
  /// never destroyed while the engine lives.
  mutable std::mutex db_mutex_;
  std::map<std::string, std::unique_ptr<detail::Database>> databases_;
  detail::Database* default_db_ = nullptr;  ///< always resident

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::map<std::string, std::unique_ptr<detail::TenantQueue>> tenants_;
  std::size_t queued_total_ = 0;
  /// Pass of the most recently dequeued tenant; newly active tenants jump
  /// here so an idle tenant cannot bank credit and burst.
  double virtual_time_ = 0.0;
  std::vector<std::thread> workers_;
  bool workers_started_ = false;
  bool stopping_ = false;
};

}  // namespace fabp::core
