#pragma once
// Bit-sliced software scan engine: scores 64 candidate alignment positions
// per machine word instead of one element comparison per inner-loop step.
//
// The trick: every query element, whatever its type, is a *fixed predicate
// on (ref[j], ref[j-1], ref[j-2])* — so over a whole reference it compiles
// to one match bitplane (bit j = "this element matches at reference index
// j"), built from the fabp::bio::NucleotideBitplanes occurrence / history
// planes with a handful of AND/OR/NOT word ops.  Only 12 distinct
// predicates exist (4 Type I exacts, 4 Type II conditions, 4 Type III
// functions), so a reference is "compiled" once into at most 12 planes and
// any query scans against them.
//
// Scanning then works a block of 64 positions at a time: for query element
// i, fetch 64 bits of its kind's plane at bit offset (block_base + i) and
// add them into vertical (bit-sliced SWAR) counters; after all elements,
// a borrow-propagation compare against the threshold yields a 64-bit hit
// mask, and Hit records are materialised only for set bits.  The result is
// bit-for-bit identical to the scalar golden_hits oracle (locked down by
// the differential tests in tests/core/bitscan_test.cpp).

#include <array>
#include <cstdint>
#include <vector>

#include "fabp/bio/bitplanes.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {

/// Distinct comparator predicates an element can compile to: Type I per
/// nucleotide (0..3), Type II per condition (4..7), Type III per function
/// (8..11).
inline constexpr std::size_t kElementKindCount = 12;

/// Kind index of one element as used *away from the query start* (i >= 2,
/// where both history elements exist — the only placement back_translate
/// ever produces for Type III).
std::size_t element_kind(const BackElement& element) noexcept;

/// A reference compiled for bit-sliced scanning: one match bitplane per
/// element kind, padded with a zero guard word for unaligned fetches.
/// Building it is O(12 * size / 64) word ops; reuse it across queries
/// (the planes depend only on the reference).
class BitScanReference {
 public:
  BitScanReference() = default;
  explicit BitScanReference(const bio::NucleotideBitplanes& planes);
  explicit BitScanReference(const bio::PackedNucleotides& packed)
      : BitScanReference{bio::NucleotideBitplanes{packed}} {}
  explicit BitScanReference(const bio::NucleotideSequence& seq)
      : BitScanReference{bio::NucleotideBitplanes{seq}} {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Plane words for `kind` (padded_word_count words, last one zero).
  const std::uint64_t* plane(std::size_t kind) const noexcept {
    return planes_[kind].data();
  }

 private:
  std::size_t size_ = 0;
  std::array<std::vector<std::uint64_t>, kElementKindCount> planes_;
};

/// A query compiled to per-element plane indices.  Elements at offsets 0
/// and 1 get their kind adjusted so the scalar oracle's "missing history
/// reads as A" convention is reproduced exactly even for hand-built
/// queries that place Type III elements before offset 2.
class BitScanQuery {
 public:
  BitScanQuery() = default;
  explicit BitScanQuery(const std::vector<BackElement>& query);
  explicit BitScanQuery(const EncodedQuery& query);

  std::size_t size() const noexcept { return kinds_.size(); }
  bool empty() const noexcept { return kinds_.empty(); }

  const std::vector<std::uint8_t>& kinds() const noexcept { return kinds_; }

 private:
  std::vector<std::uint8_t> kinds_;
};

/// All hits with score >= threshold, identical (contents and order) to
/// golden_hits on the same inputs.
std::vector<Hit> bitscan_hits(const BitScanQuery& query,
                              const BitScanReference& reference,
                              std::uint32_t threshold);

/// Appends hits whose position lies in [begin, end) — the building block
/// of the threaded scan (positions are clamped to the valid range).
void bitscan_range(const BitScanQuery& query,
                   const BitScanReference& reference, std::uint32_t threshold,
                   std::size_t begin, std::size_t end, std::vector<Hit>& out);

/// Convenience one-shot form (compiles query and reference internally).
std::vector<Hit> bitscan_hits(const std::vector<BackElement>& query,
                              const bio::NucleotideSequence& reference,
                              std::uint32_t threshold);

/// Multicore scan: reference positions are chunked over the pool; chunks
/// are merged in chunk order, so the output is deterministic and exactly
/// equal to the single-threaded scan.
std::vector<Hit> bitscan_hits_parallel(const BitScanQuery& query,
                                       const BitScanReference& reference,
                                       std::uint32_t threshold,
                                       util::ThreadPool& pool);

}  // namespace fabp::core
