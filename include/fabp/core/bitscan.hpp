#pragma once
// Bit-sliced software scan engine: scores 64 candidate alignment positions
// per machine word instead of one element comparison per inner-loop step.
//
// The trick: every query element, whatever its type, is a *fixed predicate
// on (ref[j], ref[j-1], ref[j-2])* — so over a whole reference it compiles
// to one match bitplane (bit j = "this element matches at reference index
// j"), built from the fabp::bio::NucleotideBitplanes occurrence / history
// planes with a handful of AND/OR/NOT word ops.  Only 12 distinct
// predicates exist (4 Type I exacts, 4 Type II conditions, 4 Type III
// functions), so a reference is "compiled" once into at most 12 planes and
// any query scans against them.
//
// Scanning then works a block of N positions at a time (N = the lane width
// of the selected kernel): for query element i, fetch N bits of its kind's
// plane at bit offset (block_base + i) and add them into vertical
// (bit-sliced SWAR) counters; after all elements, a borrow-propagation
// compare against the threshold yields an N-bit hit mask, and Hit records
// are materialised only for set bits.  The result is bit-for-bit identical
// to the scalar golden_hits oracle (locked down by the differential tests
// in tests/core/bitscan_test.cpp and tests/core/bitscan_kernels_test.cpp).
//
// The block loop is ISA-dispatched: the same vertical-counter algorithm is
// instantiated at 64 lanes (portable uint64_t SWAR), 256 lanes (AVX2) and
// 512 lanes (AVX-512F), each compiled in its own TU with the matching -m
// flags so the binary stays runnable on any x86-64.  A second 512-lane
// variant (AVX-512 VPOPCNTDQ) replaces the per-element ripple-add with a
// carry-save compressor step — the software shape of FabP's hardware
// popcount/adder tree — plus a popcount-census infeasibility early exit.
// The widest kernel the CPU + OS support is selected once at startup
// (util/cpuid.hpp); the
// FABP_FORCE_ISA=scalar|swar64|avx2|avx512|avx512vpopcnt environment
// variable overrides the choice for testing (ignored when the named ISA
// is unavailable).

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "fabp/bio/bitplanes.hpp"
#include "fabp/core/golden.hpp"

namespace fabp::core {

/// Distinct comparator predicates an element can compile to: Type I per
/// nucleotide (0..3), Type II per condition (4..7), Type III per function
/// (8..11).
inline constexpr std::size_t kElementKindCount = 12;

/// Kind index of one element as used *away from the query start* (i >= 2,
/// where both history elements exist — the only placement back_translate
/// ever produces for Type III).
std::size_t element_kind(const BackElement& element) noexcept;

/// Zero guard words every compiled plane carries past its last data word:
/// the widest kernel (AVX-512, 8 words per vector) fetches
/// plane[w .. w + 8] for w up to the last data word, so 8 guard words keep
/// every unaligned fetch in bounds.
inline constexpr std::size_t kScanGuardWords = 8;

/// Non-owning view of the 12 compiled element-kind planes the scan kernels
/// consume: bit j of planes[kind] answers "does an element of `kind` match
/// at position j", for j in [0, size).  Each plane must stay readable for
/// kScanGuardWords words past its last data word.  A BitScanReference
/// converts implicitly; the tiled scanner builds views over per-tile
/// scratch buffers instead, which is what lets one kernel implementation
/// serve both the precompiled and the tile-fused paths.
struct PlaneView {
  std::array<const std::uint64_t*, kElementKindCount> planes{};
  std::size_t size = 0;  // positions described by the planes

  const std::uint64_t* plane(std::size_t kind) const noexcept {
    return planes[kind];
  }
};

/// A reference compiled for bit-sliced scanning: one match bitplane per
/// element kind, padded with zero guard words sized for the widest kernel's
/// unaligned fetches (an AVX-512 fetch reads up to 8 words past the last
/// data word).  Building it is O(12 * size / 64) word ops; reuse it across
/// queries (the planes depend only on the reference).
class BitScanReference {
 public:
  BitScanReference() = default;
  explicit BitScanReference(const bio::NucleotideBitplanes& planes);
  explicit BitScanReference(const bio::PackedNucleotides& packed)
      : BitScanReference{bio::NucleotideBitplanes{packed}} {}
  explicit BitScanReference(const bio::NucleotideSequence& seq)
      : BitScanReference{bio::NucleotideBitplanes{seq}} {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Plane words for `kind` (padded_word_count words, last one zero).
  const std::uint64_t* plane(std::size_t kind) const noexcept {
    return planes_[kind].data();
  }

  /// The kernels' view of the compiled planes.
  PlaneView view() const noexcept {
    PlaneView v;
    for (std::size_t k = 0; k < kElementKindCount; ++k)
      v.planes[k] = planes_[k].data();
    v.size = size_;
    return v;
  }
  operator PlaneView() const noexcept { return view(); }  // NOLINT(google-explicit-constructor)

 private:
  std::size_t size_ = 0;
  std::array<std::vector<std::uint64_t>, kElementKindCount> planes_;
};

/// A query compiled to per-element plane indices.  Elements at offsets 0
/// and 1 get their kind adjusted so the scalar oracle's "missing history
/// reads as A" convention is reproduced exactly even for hand-built
/// queries that place Type III elements before offset 2.
class BitScanQuery {
 public:
  BitScanQuery() = default;
  explicit BitScanQuery(const std::vector<BackElement>& query);
  explicit BitScanQuery(const EncodedQuery& query);

  std::size_t size() const noexcept { return kinds_.size(); }
  bool empty() const noexcept { return kinds_.empty(); }

  const std::vector<std::uint8_t>& kinds() const noexcept { return kinds_; }

 private:
  std::vector<std::uint8_t> kinds_;
};

/// All hits with score >= threshold, identical (contents and order) to
/// golden_hits on the same inputs.
std::vector<Hit> bitscan_hits(const BitScanQuery& query,
                              const BitScanReference& reference,
                              std::uint32_t threshold);

/// Appends hits whose position lies in [begin, end) — the building block
/// of the threaded scan (positions are clamped to the valid range).
void bitscan_range(const BitScanQuery& query,
                   const BitScanReference& reference, std::uint32_t threshold,
                   std::size_t begin, std::size_t end, std::vector<Hit>& out);

/// Convenience one-shot form (compiles query and reference internally).
std::vector<Hit> bitscan_hits(const std::vector<BackElement>& query,
                              const bio::NucleotideSequence& reference,
                              std::uint32_t threshold);

/// Multicore scan: reference positions are chunked over the pool; chunks
/// are merged in chunk order, so the output is deterministic and exactly
/// equal to the single-threaded scan.
std::vector<Hit> bitscan_hits_parallel(const BitScanQuery& query,
                                       const BitScanReference& reference,
                                       std::uint32_t threshold,
                                       util::ThreadPool& pool);

// ---------------------------------------------------------------------------
// ISA-dispatched scan kernels.

/// Instruction sets the block scan loop is instantiated for.  Scalar is a
/// per-position reference loop over the same planes (no SWAR counters) —
/// the slowest path, kept reachable for differential testing; Swar64 is
/// the portable baseline, always available.  Avx512Vpopcnt is the same
/// 512-lane substrate as Avx512 with the carry-save accumulate and the
/// VPOPCNTDQ-census early exit; it additionally requires the
/// AVX512_VPOPCNTDQ CPUID bit.
enum class ScanIsa { Scalar, Swar64, Avx2, Avx512, Avx512Vpopcnt };

inline constexpr std::size_t kScanIsaCount = 5;

/// All ISA values, widest/most specialised last — handy for test sweeps.
inline constexpr std::array<ScanIsa, kScanIsaCount> kAllScanIsas{
    ScanIsa::Scalar, ScanIsa::Swar64, ScanIsa::Avx2, ScanIsa::Avx512,
    ScanIsa::Avx512Vpopcnt};

/// One scan implementation: the per-block inner loop (plane fetch → SWAR
/// counter add → borrow-propagate threshold compare) at a fixed lane
/// width, plus its multi-query batch form.  Kernels operate on a PlaneView
/// (a BitScanReference converts implicitly), so the same instantiation
/// scores whole precompiled references and tile-scratch planes alike.  All
/// kernels produce output bit-for-bit identical to golden_hits (contents
/// and order).
struct ScanKernel {
  ScanIsa isa;
  const char* name;     // "scalar" | "swar64" | "avx2" | "avx512" |
                        // "avx512vpopcnt"
  unsigned lanes;       // positions scored per block (1, 64, 256, 512)

  /// Appends hits with position in [begin, end), clamped to the valid
  /// range — same contract as bitscan_range.
  void (*range)(const BitScanQuery& query, const PlaneView& reference,
                std::uint32_t threshold, std::size_t begin, std::size_t end,
                std::vector<Hit>& out);

  /// Batch form: walks the reference blocks of [begin, end) once and
  /// scores every query against each block while its plane words are hot
  /// in cache.  outs[q] receives exactly what range() would append for
  /// (queries[q], thresholds[q]) over the same span.
  void (*range_batch)(const BitScanQuery* queries,
                      const std::uint32_t* thresholds, std::size_t count,
                      const PlaneView& reference, std::size_t begin,
                      std::size_t end, std::vector<Hit>* outs);
};

/// Kernel for `isa`, or nullptr when it is not compiled in or the running
/// CPU/OS cannot execute it.  Scalar and Swar64 never return nullptr.
const ScanKernel* scan_kernel_for(ScanIsa isa) noexcept;

/// Parses a FABP_FORCE_ISA value ("scalar", "swar64", "avx2", "avx512",
/// "avx512vpopcnt"); returns false on unknown names.
bool scan_isa_from_name(std::string_view name, ScanIsa& out) noexcept;

/// The kernel every bitscan_* entry point dispatches to: the widest ISA
/// the host supports, unless FABP_FORCE_ISA selects an available narrower
/// one.  Resolved once on first use.
const ScanKernel& active_scan_kernel() noexcept;

// ---------------------------------------------------------------------------
// Multi-query batch scanning.

/// Scans every query of a batch against the reference in one pass over the
/// reference planes: each cached block of plane words is scored against
/// all queries before moving on, so plane traffic is amortised across the
/// batch instead of re-streamed per query.  outs[q] is exactly
/// bitscan_hits(queries[q], reference, thresholds[q]) — contents and
/// order.  thresholds.size() must equal queries.size().  With a pool the
/// position range is chunked over threads and merged deterministically in
/// chunk order, like bitscan_hits_parallel.
std::vector<std::vector<Hit>> bitscan_hits_batch(
    std::span<const BitScanQuery> queries, const BitScanReference& reference,
    std::span<const std::uint32_t> thresholds,
    util::ThreadPool* pool = nullptr);

}  // namespace fabp::core
