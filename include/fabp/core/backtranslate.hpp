#pragma once
// Back-translation with element typing (paper §III-A).
//
// Every amino acid maps to a 3-element degenerate codon template.  Each
// element is one of the paper's three types:
//   Type I   - exact nucleotide (perfect match required),
//   Type II  - conditional: one of four 2-bit match conditions,
//   Type III - dependent: the match set depends on an *earlier reference
//              element* of the same codon (plus D = "don't care", which is
//              nominally Type II but encoded with the Type III opcode).
//
// The dependent functions distill the earlier reference element to a single
// bit S (see DESIGN.md §1): Stop uses the MSB of ref[i-1], Leu the MSB of
// ref[i-2], Arg the LSB of ref[i-2].

#include <array>
#include <cstdint>
#include <vector>

#include "fabp/bio/alphabet.hpp"
#include "fabp/util/rng.hpp"
#include "fabp/bio/codon.hpp"
#include "fabp/bio/sequence.hpp"

namespace fabp::core {

enum class ElementType : std::uint8_t { ExactI, ConditionalII, DependentIII };

/// Type II match conditions, numbered with their 2-bit encodings (§III-B):
/// "Five conditions observed in the codon table (U/C, A/G, G-bar, A/C, and
/// D)"; D is carried by the Type III opcode as function F:11.
enum class Condition : std::uint8_t {
  UorC = 0b00,   // pyrimidines (e.g. Phe 3rd element)
  AorG = 0b01,   // purines (e.g. Lys 3rd element)
  NotG = 0b10,   // anything but G (Ile 3rd element)
  AorC = 0b11,   // Arg 1st element
};

/// Type III dependent functions (F field).
enum class Function : std::uint8_t {
  Stop3 = 0b00,  // Stop 3rd element: dep. on ref[i-1] MSB
  Leu3 = 0b01,   // Leu 3rd element: dep. on ref[i-2] MSB
  Arg3 = 0b10,   // Arg 3rd element: dep. on ref[i-2] LSB
  AnyD = 0b11,   // D: matches every nucleotide
};

/// One back-translated query element.
struct BackElement {
  ElementType type = ElementType::ExactI;
  bio::Nucleotide exact = bio::Nucleotide::A;  // Type I payload
  Condition cond = Condition::UorC;            // Type II payload
  Function func = Function::AnyD;              // Type III payload

  static BackElement make_exact(bio::Nucleotide n) {
    BackElement e;
    e.type = ElementType::ExactI;
    e.exact = n;
    return e;
  }
  static BackElement make_conditional(Condition c) {
    BackElement e;
    e.type = ElementType::ConditionalII;
    e.cond = c;
    return e;
  }
  static BackElement make_dependent(Function f) {
    BackElement e;
    e.type = ElementType::DependentIII;
    e.func = f;
    return e;
  }

  /// Behavioral comparator semantics (the specification the LUT pair in
  /// fabp/core/comparator.hpp is generated from and tested against).
  /// `ref` is the aligned reference element; `ref_im1`/`ref_im2` the
  /// reference elements one and two positions earlier (only consulted by
  /// Type III functions, which by construction sit at codon position 2).
  bool matches(bio::Nucleotide ref, bio::Nucleotide ref_im1,
               bio::Nucleotide ref_im2) const noexcept;

  bool operator==(const BackElement&) const = default;
};

/// The 3-element degenerate template of one amino acid (or Stop).
struct CodonTemplate {
  std::array<BackElement, 3> elements;

  const BackElement& operator[](std::size_t i) const noexcept {
    return elements[i];
  }
};

/// Template for `aa` (§III-A; full table in DESIGN.md).  Note: like the
/// paper, Ser maps to UCD only — the two AGU/AGC codons are not covered
/// (no Type III function exists for a Ser split in Fig. 5).
const CodonTemplate& codon_template(bio::AminoAcid aa) noexcept;

/// True iff `codon` is matched by `aa`'s template when aligned against its
/// own bases (i.e. the template accepts this codon as a source of `aa`).
bool template_accepts(bio::AminoAcid aa, const bio::Codon& codon) noexcept;

/// Back-translates a protein into 3*size() typed elements.
std::vector<BackElement> back_translate(const bio::ProteinSequence& protein);

/// Random coding sequence drawing only codons the templates accept (i.e.
/// excluding AGU/AGC for Ser).  Use when a planted gene must score the
/// full query length under FabP matching; bio::random_coding_sequence
/// samples the *biological* codon set instead.
bio::NucleotideSequence random_template_coding(
    const bio::ProteinSequence& protein, util::Xoshiro256& rng);

/// Human-readable rendering of a template element ("A", "U/C", "G-bar",
/// "F:10", "D"), used by the codon_explorer example.
std::string to_string(const BackElement& element);

}  // namespace fabp::core
