#pragma once
// The FabP custom comparator (paper §III-D, Fig. 5): exactly two LUT6s per
// query element.
//
//   LUT_mux : inputs {cfg0, cfg1, q2, ref_im1_msb, ref_im2_msb, ref_im2_lsb}
//             output X = q2 when cfg==00, else the selected history bit S.
//   LUT_cmp : inputs {ref0, ref1, X, q3, q4, q5}
//             output   = match bit, programmed with the Fig. 5(b) table.
//
// Both INIT vectors are *generated* from the behavioral element semantics
// (BackElement::matches) so the netlist is correct by construction and the
// test suite checks the 4096-point cross product against the behavioral
// model.

#include <cstdint>

#include "fabp/core/encoding.hpp"
#include "fabp/hw/lut.hpp"
#include "fabp/hw/netlist.hpp"
#include "fabp/hw/verilog.hpp"

namespace fabp::core {

/// INIT vector of the history multiplexer LUT.
hw::Lut6 comparator_mux_lut();

/// INIT vector of the comparison LUT (Fig. 5(b)).
hw::Lut6 comparator_cmp_lut();

/// Pure-function evaluation of the two-LUT cell (no netlist).  `ref` is the
/// 2-bit reference element code; the three history bits are the distilled
/// earlier reference bits routed to the mux in Fig. 5(a).
bool comparator_eval(Instruction q, std::uint8_t ref_code, bool ref_im1_msb,
                     bool ref_im2_msb, bool ref_im2_lsb);

/// Convenience: evaluate against full nucleotides (distills the history
/// bits itself); semantics identical to the encoded element's
/// BackElement::matches.
bool comparator_eval(Instruction q, bio::Nucleotide ref,
                     bio::Nucleotide ref_im1, bio::Nucleotide ref_im2);

/// Structural form: instantiates the two LUTs in a netlist.
struct ComparatorPorts {
  // Query instruction bits (primary inputs, b0..b5).
  std::array<hw::NetId, 6> q;
  // Reference element bits {lsb, msb} and the three history bits.
  hw::NetId ref0, ref1;
  hw::NetId ref_im1_msb, ref_im2_msb, ref_im2_lsb;
  // Match output.
  hw::NetId match;
};

/// Adds one comparator cell (2 LUTs) wired to fresh primary inputs.
ComparatorPorts build_comparator(hw::Netlist& netlist);

/// Adds one comparator cell wired to existing nets (for array builders).
hw::NetId build_comparator_on(hw::Netlist& netlist,
                              std::span<const hw::NetId> q_bits,
                              hw::NetId ref0, hw::NetId ref1,
                              hw::NetId ref_im1_msb, hw::NetId ref_im2_msb,
                              hw::NetId ref_im2_lsb);

/// Structural Verilog for one comparator cell — two directly instantiated
/// LUT6 primitives, exactly as §III-D describes.
hw::VerilogModule emit_comparator_module();

}  // namespace fabp::core
