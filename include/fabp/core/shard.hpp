#pragma once
// Shard router layer — the multi-card scale-out of the serving engine
// (DESIGN.md §4e).
//
// One ReferenceStore models one card's DRAM.  A ShardedBackend models N
// cards: the uploaded reference is split into N contiguous owned ranges of
// window-start positions, and each card's DRAM holds its owned range plus
// a *halo* of max_query_elements - 1 trailing elements, so every alignment
// window that starts inside the owned range lies entirely inside the
// slice.  A window starting in shard s's halo starts inside shard s+1's
// owned range, which is how boundary hits are deduplicated: at gather time
// each shard keeps exactly the hits whose window *starts* in its owned
// range, rebases them from slice-local to global coordinates, and the
// ascending-shard concatenation reproduces the unsharded position-ordered
// hit list bit for bit.
//
// Reverse strand: each shard's store is built with
// ReferenceStore::upload(slice, both_strands), so its RC copy is
// RC(R[a, b)) = RC(R)[S - b, S - a) — exactly the RC windows whose forward
// extent lies in the slice.  A shard's mapped reverse hit at local forward
// coordinate f is the global hit at f + a (the same rebase as the forward
// strand), and the same owned-range filter applies; raw RC scan
// coordinates rebase by S - b per shard and concatenate in *descending*
// shard order (ascending RC position).  The halo math is worked through in
// DESIGN.md §4e.
//
// Routing: each shard has its own admission queue drained by one worker
// thread (the per-card command queue); a coalesced engine batch fans out
// as ONE run_many/scan_batch per shard, never one per request.  The PR-4
// health machine folds into routing: a shard whose primary backend has
// degraded sheds its slice to a software fallback backend over the same
// slice instead of stalling its queue, and the gathered hits stay
// bit-identical (the fallback scans the same DRAM image).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "fabp/core/backend.hpp"

namespace fabp::core {

/// Knobs of the shard router.  shard_count == 1 is a valid degenerate
/// router (one card, slice == whole reference) — the engine only builds a
/// router at all when shard_count > 1.
struct ShardConfig {
  std::size_t shard_count = 1;
  /// Largest compiled query (in nucleotide elements, i.e. 3x residues) the
  /// sharded layout supports; every slice carries a halo of
  /// max_query_elements - 1 elements past its owned range.  Longer queries
  /// fail with a typed BadArgument instead of silently losing boundary
  /// hits.
  std::size_t max_query_elements = 1536;  // 512 residues
  /// Chaos knob: when set, fault injection stays enabled only on this
  /// shard — every other shard's fault rates are zeroed.  Used to prove
  /// fault isolation (one bad card must not perturb its peers).
  static constexpr std::size_t kAllShards = static_cast<std::size_t>(-1);
  std::size_t fault_only_shard = kAllShards;
};

/// Construction-time validation (ErrorCode::None when valid).
Error validate_shard_config(const ShardConfig& config) noexcept;

/// Point-in-time router view of one shard (Engine::shard_status()).
struct ShardStatus {
  std::size_t index = 0;
  std::size_t owned_begin = 0;  ///< global window-start ownership [begin,end)
  std::size_t owned_end = 0;
  std::size_t slice_elements = 0;  ///< owned + halo actually resident
  HealthState health = HealthState::Healthy;
  bool routed_to_fallback = false;  ///< slice shed to the software backend
  std::size_t queue_depth = 0;      ///< jobs waiting in the admission queue
  std::size_t peak_queue_depth = 0;
  std::size_t batches_executed = 0;  ///< fan-out jobs this shard ran
  std::size_t fallback_batches = 0;  ///< of those, served by the fallback
  std::size_t fault_events = 0;      ///< injected faults on this card
  RecoveryStats recovery;            ///< merged over the shard's lifetime
  DevicePipelineStats pipeline;      ///< this card's scheduler accounting
};

/// N ScanBackend cards behind one ScanBackend face.  kind() reports the
/// primary backend kind, so the engine and facade stay oblivious.
/// Thread-safety contract matches every other backend: external
/// serialization of run/run_many/scan_* / invalidate (the engine's
/// exec_mutex_); the internal shard workers only parallelize *inside* one
/// such call.
class ShardedBackend final : public ScanBackend {
 public:
  /// `config` and `store` must outlive the backend (the engine owns both).
  /// The store is the *global* reference; invalidate() re-slices it.
  ShardedBackend(BackendKind kind, const HostConfig& config,
                 const ReferenceStore& store, const ShardConfig& shard);
  ~ShardedBackend() override;

  BackendKind kind() const noexcept override { return kind_; }
  void invalidate() override;
  Expected<BackendRun> run(const BackendRequest& request) override;
  std::vector<Expected<BackendRun>> run_many(
      std::span<const BackendRequest> requests) override;
  /// Merged cross-card view: counts summed, makespans max'ed (the cards
  /// run in parallel), tasks = requests through the busiest card — so
  /// modeled_qps() is the system throughput, not one card's.
  DevicePipelineStats pipeline_stats() const noexcept override;
  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override;
  std::vector<Hit> scan_one(const CompiledQuery& query,
                            std::uint32_t threshold,
                            util::ThreadPool* pool) override;
  bool supports_precomputed_hits() const noexcept override;
  /// Worst health over the fleet (Degraded if any card degraded).
  HealthState health() const noexcept override;
  /// Union of every card's fault log, appended in gather order.
  const std::vector<hw::FaultEvent>& fault_log() const noexcept override;

  const ShardConfig& shard_config() const noexcept { return shard_config_; }
  std::size_t shard_count() const noexcept;
  std::vector<ShardStatus> shard_status() const;
  /// Router overhead accounting: time spent splitting batches / rebasing
  /// and merging hits, outside any shard's own scan.
  double scatter_seconds() const noexcept { return scatter_s_; }
  double gather_seconds() const noexcept { return gather_s_; }

 private:
  struct Shard;

  void reslice();
  Expected<BackendRun> gather_request(
      std::size_t request_index, std::size_t query_elements,
      std::vector<std::vector<Expected<BackendRun>>>& per_shard);
  void harvest_shard_stats(Shard& shard);

  BackendKind kind_;
  const HostConfig& config_;
  const ReferenceStore& store_;  // the global image; shards hold slices
  ShardConfig shard_config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<hw::FaultEvent> merged_fault_log_;
  double scatter_s_ = 0.0;
  double gather_s_ = 0.0;
};

/// Constructs the router (same ownership contract as make_backend).
std::unique_ptr<ShardedBackend> make_sharded_backend(
    BackendKind kind, const HostConfig& config, const ReferenceStore& store,
    const ShardConfig& shard);

}  // namespace fabp::core
