#pragma once
// Backend layer of the serving engine (DESIGN.md §"Layered host runtime").
//
// A ScanBackend is one way of answering "all hits of this compiled query
// against the uploaded reference": the tile-fused software scanner, the
// precompiled whole-reference planes, or the cycle-accurate hardware
// simulation (Accelerator) wrapped in the PR-4 fault-detection/recovery
// machinery that used to live inside Session.  Every backend consumes a
// CompiledQuery (the compile layer's artifact) and returns hits + per-run
// stats through one uniform BackendRun, so the engine's coalescing
// scheduler and the Session facade schedule them interchangeably — the
// architecture ASAP and the FPGA-alignment surveys frame for alignment
// accelerators behind a host runtime.
//
// Functional contract shared by all backends: the forward hit list, and
// the reverse-strand list mapped to forward window coordinates, are
// bit-for-bit what golden_hits computes (the software scanners by the
// PR-1/PR-3 pinning, the hw-sim by the accelerator's own differential
// tests, faults included — recovery repairs to golden or reports a typed
// error).

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "fabp/core/host.hpp"
#include "fabp/core/query_compiler.hpp"

namespace fabp::core {

/// Backend selection: which implementation serves a request.
enum class BackendKind : std::uint8_t {
  HwSim,   ///< Accelerator model + fault recovery (the full card model)
  Tiled,   ///< tile-fused software compile+scan (TileScanner)
  Planes,  ///< precompiled whole-reference planes (BitScanReference)
};

const char* to_string(BackendKind kind) noexcept;

/// The software backend matching a HostConfig's scan-path choice.
BackendKind software_backend_kind(ScanPath path) noexcept;

/// The "FPGA DRAM" of the model: the packed reference (and its
/// reverse-complement copy when both strands are searched), shared by every
/// backend of an engine.  upload() is the one mutation point; backends
/// cache derived artifacts (planes, tile CRCs) and drop them on
/// invalidate().
struct ReferenceStore {
  bio::PackedNucleotides forward;
  bio::PackedNucleotides reverse;  ///< RC copy; empty unless both strands
  bool uploaded = false;

  void upload(bio::PackedNucleotides packed, bool both_strands);
  const bio::PackedNucleotides& strand(bool reverse_strand) const noexcept {
    return reverse_strand ? reverse : forward;
  }
};

// --- versioned reference management (DESIGN.md §4g) ----------------------
//
// A service cannot mutate the store a scan is reading.  The versioned path
// wraps each uploaded database generation in an immutable, refcounted
// snapshot: in-flight work pins the generation it was admitted under via
// shared_ptr, a swap publishes a *new* snapshot (with its own backend set
// built over it) and retires the old one, and the retired generation's
// memory — packed strands, shard slices, per-backend caches — is reclaimed
// by the last pin dropping, never by an explicit free racing a scan.
// Epoch-style reclamation with the shared_ptr control block as the epoch
// counter.

/// One immutable generation of a database's reference.  The store is
/// filled at construction and never mutated afterwards; everything built
/// over it (backends, shard plans, plane caches) hangs off the subclassing
/// owner and dies with the snapshot.  Polymorphic so the engine can attach
/// its per-generation backend set while the reclamation layer tracks only
/// this base.
struct ReferenceSnapshot {
  std::uint64_t generation = 0;  ///< monotonically increasing per database
  ReferenceStore store;

  virtual ~ReferenceSnapshot() = default;
};

/// Publication point + reclamation ledger for one database's snapshots.
/// publish() retires the previously active generation onto a weak_ptr
/// ledger; status() prunes entries whose last pin has dropped and counts
/// them as reclaimed.  Thread-safe; the returned shared_ptrs are the pins.
class VersionedStore {
 public:
  struct GenerationStatus {
    std::uint64_t generation = 0;
    long pins = 0;       ///< live shared_ptr count (active incl. the store's)
    bool active = false; ///< false = retired, still pinned by in-flight work
  };

  /// The currently active snapshot (never null once publish() ran).
  std::shared_ptr<const ReferenceSnapshot> active() const;

  /// Publishes `next` as the active generation and retires the previous
  /// one.  Returns the generation id assigned to `next` (caller sets the
  /// field before publishing; this just echoes it).
  std::uint64_t publish(std::shared_ptr<const ReferenceSnapshot> next);

  /// Next generation id to assign (starts at 1; 0 is the empty pre-upload
  /// generation).
  std::uint64_t next_generation();

  /// Active + still-pinned retired generations, pruning reclaimed ones.
  std::vector<GenerationStatus> status() const;

  /// Retired generations whose last pin has dropped (cumulative).
  std::size_t reclaimed() const;

 private:
  void prune_locked() const;

  mutable std::mutex mutex_;
  std::shared_ptr<const ReferenceSnapshot> active_;
  mutable std::vector<std::weak_ptr<const ReferenceSnapshot>> retired_;
  std::uint64_t next_generation_ = 1;
  mutable std::size_t reclaimed_ = 0;
};

/// One backend invocation's raw result: both strands' hits plus the cycle/
/// energy accounting and what recovery did.  Software backends report
/// measured wall time in kernel_seconds and no card power; the hw-sim
/// reports the modeled kernel.  finalize_run() turns this into the
/// HostRunReport the public API ships.
struct BackendRun {
  std::vector<Hit> hits;          ///< forward strand, position order
  std::vector<Hit> reverse_hits;  ///< forward window coords, sorted
  FabpMapping mapping;            ///< empty for pure-software backends
  std::size_t cycles = 0;
  double kernel_seconds = 0.0;
  double watts = 0.0;
  RecoveryStats recovery;
};

/// One request as a backend sees it.  The precomputed lists come from a
/// coalesced batch scan: forward_hits in forward coordinates, reverse_hits
/// raw RC-strand positions (the backend maps them).  Null pointers mean
/// "scan inside the run".
struct BackendRequest {
  const CompiledQuery* query = nullptr;
  std::uint32_t threshold = 0;
  const std::vector<Hit>* forward_hits = nullptr;
  const std::vector<Hit>* reverse_hits = nullptr;
  util::ThreadPool* pool = nullptr;  ///< chunks software scans; may be null
};

/// Cumulative device-pipeline accounting of a backend that schedules work
/// as packed device invocations (DESIGN.md §4d).  Software backends report
/// all-zero stats.  Times are modeled seconds over the backend's lifetime;
/// serial_s is what the same invocations would have cost with a single
/// buffer and no transfer/compute overlap, so serial_s / pipelined_s is the
/// modeled double-buffering + multi-PE speedup.
struct DevicePipelineStats {
  std::size_t invocations = 0;         ///< packed device calls issued
  std::size_t tasks = 0;               ///< queries carried by those calls
  std::size_t retried_invocations = 0; ///< re-enqueued after a fault
  std::size_t pe_count = 0;
  std::size_t buffer_depth = 0;
  std::size_t largest_invocation = 0;  ///< max tasks packed into one call
  double transfer_s = 0.0;             ///< DMA busy time (ctrl + payload)
  double compute_s = 0.0;              ///< PE-array busy time (max over PEs)
  double serial_s = 0.0;               ///< depth-1 single-buffer baseline
  double pipelined_s = 0.0;            ///< modeled makespan with overlap
  double pe_busy_s = 0.0;              ///< sum of per-PE busy time

  double occupancy() const noexcept {
    return pipelined_s > 0.0 ? compute_s / pipelined_s : 0.0;
  }
  /// Fraction of the overlappable time actually hidden: 1.0 = perfect
  /// double buffering, 0.0 = fully serial.
  double overlap_efficiency() const noexcept {
    const double hideable = transfer_s < compute_s ? transfer_s : compute_s;
    if (hideable <= 0.0 || pipelined_s <= 0.0) return 0.0;
    const double hidden = serial_s - pipelined_s;
    return hidden <= 0.0 ? 0.0 : (hidden >= hideable ? 1.0 : hidden / hideable);
  }
  double pe_utilization() const noexcept {
    const double cap = compute_s * static_cast<double>(pe_count);
    return cap > 0.0 ? pe_busy_s / cap : 0.0;
  }
  double modeled_qps() const noexcept {
    return pipelined_s > 0.0 ? static_cast<double>(tasks) / pipelined_s : 0.0;
  }
};

class ScanBackend {
 public:
  virtual ~ScanBackend() = default;

  virtual BackendKind kind() const noexcept = 0;
  std::string_view name() const noexcept { return to_string(kind()); }

  /// The reference store changed (re-upload): drop every derived cache.
  virtual void invalidate() = 0;

  /// One aligned search (both strands when the config says so).  Typed
  /// errors only — never throws for runtime failures.
  virtual Expected<BackendRun> run(const BackendRequest& request) = 0;

  /// A coalesced batch as one call, in request order: element [i] is the
  /// result for requests[i].  The default forwards to run() serially; the
  /// hw-sim backend overrides it with the device batch scheduler (packed
  /// invocations, double-buffered DMA, multi-PE slices — DESIGN.md §4d)
  /// and keeps every element bit-identical to the serial path.
  virtual std::vector<Expected<BackendRun>> run_many(
      std::span<const BackendRequest> requests);

  /// Lifetime device-pipeline accounting (all-zero for software backends).
  virtual DevicePipelineStats pipeline_stats() const noexcept { return {}; }

  /// Raw hit lists for a whole batch in one pass over one strand of the
  /// reference — the coalescing scheduler's precompute hook.  Element [q]
  /// is exactly the strand hit list run() would compute for
  /// (queries[q], thresholds[q]); reverse-strand lists are returned in raw
  /// RC coordinates (run() maps them).
  virtual std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) = 0;

  /// Forward-strand hits through the pure software path (the
  /// Session::software_hits contract: no accelerator timing model).
  virtual std::vector<Hit> scan_one(const CompiledQuery& query,
                                    std::uint32_t threshold,
                                    util::ThreadPool* pool) = 0;

  /// False when run() must evaluate element-by-element and ignores
  /// precomputed hit lists (the LUT oracle path).
  virtual bool supports_precomputed_hits() const noexcept { return true; }

  /// Health machine position; software backends never degrade.
  virtual HealthState health() const noexcept { return HealthState::Healthy; }

  /// Injected fault events over this backend's lifetime (hw-sim only).
  virtual const std::vector<hw::FaultEvent>& fault_log() const noexcept;
};

/// Constructs a backend over `store` for `kind`.  The store and config
/// must outlive the backend (the engine/Session owns all three).
std::unique_ptr<ScanBackend> make_backend(BackendKind kind,
                                          const HostConfig& config,
                                          const ReferenceStore& store);

/// Turns a backend run into the public HostRunReport: adds the PCIe
/// transfer model (query upload, readback, optional reference transfer),
/// charges recovery time, and prices energy — exactly the accounting the
/// pre-refactor Session::finish performed.
HostRunReport finalize_run(const HostConfig& config,
                           const CompiledQuery& query, BackendRun run,
                           std::size_t reference_bytes);

/// Timing-only projection against a hypothetical reference of `bytes`
/// packed bytes (Session::estimate's engine).
HostRunReport estimate_run(const HostConfig& config,
                           const CompiledQuery& query, std::uint32_t threshold,
                           std::size_t bytes);

/// Typed construction-time validation of a HostConfig: zero/absurd tile
/// sizes, non-positive bandwidths, zero retry budgets and out-of-range
/// fault probabilities are rejected with ErrorCode::InvalidConfig before
/// they can fail deep inside a scan.  Returns ErrorCode::None when valid.
Error validate_host_config(const HostConfig& config) noexcept;

}  // namespace fabp::core
