#pragma once
// Umbrella header for the FabP library — reproduction of "FPGA Acceleration
// of Protein Back-Translation and Alignment" (DATE 2021).
//
// Quickstart:
//
//   #include <fabp/fabp.hpp>
//
//   fabp::bio::NucleotideSequence db = ...;          // DNA/RNA reference
//   fabp::bio::ProteinSequence query =
//       fabp::bio::ProteinSequence::parse("MFSR");
//
//   fabp::core::Session session;                     // Kintex-7 model
//   session.upload_reference(db);
//   auto report = session.align(query, /*threshold=*/10);
//   for (const auto& hit : report.hits)
//     std::cout << hit.position << " score " << hit.score << '\n';
//
// Layering (see DESIGN.md):
//   bio/   sequences, codon table, FASTA, generators     (substrate S1)
//   hw/    LUT6 netlists, pop-counters, devices, AXI     (substrate S2)
//   align/ Smith-Waterman & friends                      (substrate S3)
//   blast/ TBLASTN-like CPU baseline                     (substrate S4)
//   core/  back-translation, encoding, comparator,
//          accelerator simulator, mapper, host runtime   (the paper, S5)
//   perf/  cross-platform performance & energy models    (S6)
//   net/   TCP front-end: wire protocol, server, loadgen (serving)

#include "fabp/util/bitops.hpp"
#include "fabp/util/crc32.hpp"
#include "fabp/util/rng.hpp"
#include "fabp/util/stats.hpp"
#include "fabp/util/table.hpp"
#include "fabp/util/thread_pool.hpp"
#include "fabp/util/timer.hpp"

#include "fabp/bio/alphabet.hpp"
#include "fabp/bio/bitplanes.hpp"
#include "fabp/bio/codon.hpp"
#include "fabp/bio/codon_usage.hpp"
#include "fabp/bio/database.hpp"
#include "fabp/bio/fasta.hpp"
#include "fabp/bio/generate.hpp"
#include "fabp/bio/mutation.hpp"
#include "fabp/bio/packed.hpp"
#include "fabp/bio/sequence.hpp"
#include "fabp/bio/translation.hpp"

#include "fabp/hw/axi.hpp"
#include "fabp/hw/device.hpp"
#include "fabp/hw/fault.hpp"
#include "fabp/hw/lut.hpp"
#include "fabp/hw/netlist.hpp"
#include "fabp/hw/optimize.hpp"
#include "fabp/hw/popcount.hpp"
#include "fabp/hw/power.hpp"
#include "fabp/hw/timing.hpp"
#include "fabp/hw/vcd.hpp"
#include "fabp/hw/verilog.hpp"

#include "fabp/align/extension.hpp"
#include "fabp/align/local.hpp"
#include "fabp/align/scoring.hpp"
#include "fabp/align/sliding.hpp"

#include "fabp/blast/evalue.hpp"
#include "fabp/blast/kmer_index.hpp"
#include "fabp/blast/seg.hpp"
#include "fabp/blast/tblastn.hpp"

#include "fabp/core/accelerator.hpp"
#include "fabp/core/array.hpp"
#include "fabp/core/backend.hpp"
#include "fabp/core/backtranslate.hpp"
#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/core/comparator.hpp"
#include "fabp/core/encoding.hpp"
#include "fabp/core/engine.hpp"
#include "fabp/core/error.hpp"
#include "fabp/core/golden.hpp"
#include "fabp/core/hitmerge.hpp"
#include "fabp/core/host.hpp"
#include "fabp/core/instance.hpp"
#include "fabp/core/query_compiler.hpp"
#include "fabp/core/mapper.hpp"
#include "fabp/core/maskonly.hpp"
#include "fabp/core/querypack.hpp"
#include "fabp/core/report.hpp"
#include "fabp/core/shard.hpp"
#include "fabp/core/threshold.hpp"

#include "fabp/net/loadgen.hpp"
#include "fabp/net/server.hpp"
#include "fabp/net/wire.hpp"
