#pragma once
// Dynamic-programming aligners (paper §II): Smith-Waterman local alignment
// with affine gaps (the optimal-result baseline FabP is compared against)
// and Needleman-Wunsch global alignment.  Both are templated on the symbol
// type and scoring functor so they serve proteins (BLOSUM62) and
// nucleotides (match/mismatch) alike.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "fabp/align/scoring.hpp"
#include "fabp/bio/sequence.hpp"

namespace fabp::align {

/// One aligned-pair operation for traceback rendering.
enum class EditOp : char { Match = 'M', Insert = 'I', Delete = 'D' };

struct Alignment {
  int score = 0;
  // Half-open coordinates of the aligned region in each sequence.
  std::size_t query_begin = 0, query_end = 0;
  std::size_t ref_begin = 0, ref_end = 0;
  std::vector<EditOp> ops;  // query->reference edit script (local region)

  std::size_t matches_or_mismatches() const noexcept {
    return static_cast<std::size_t>(
        std::count(ops.begin(), ops.end(), EditOp::Match));
  }
  std::size_t indel_ops() const noexcept { return ops.size() - matches_or_mismatches(); }

  /// Compact CIGAR-style text, e.g. "12M1D7M".
  std::string cigar() const;
};

namespace detail {

/// Affine-gap Smith-Waterman with full traceback.  O(q*r) time and memory.
template <typename Sym, typename ScoreFn>
Alignment smith_waterman_impl(std::span<const Sym> query,
                              std::span<const Sym> ref, const ScoreFn& score,
                              GapPenalties gaps) {
  const std::size_t q = query.size();
  const std::size_t r = ref.size();
  Alignment out;
  if (q == 0 || r == 0) return out;

  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
  const std::size_t width = r + 1;

  // H: best score ending at (i,j); E: gap in query (deletion from ref view);
  // F: gap in reference.  Tracebacks stored as 2-bit codes per matrix.
  std::vector<int> h((q + 1) * width, 0);
  std::vector<int> e((q + 1) * width, kNegInf);
  std::vector<int> f((q + 1) * width, kNegInf);
  std::vector<std::uint8_t> trace((q + 1) * width, 0);
  // trace bits: 0-1 = H source (0 stop, 1 diag, 2 from E, 3 from F),
  //             bit 2 = E extends, bit 3 = F extends.

  int best = 0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= q; ++i) {
    for (std::size_t j = 1; j <= r; ++j) {
      const std::size_t idx = i * width + j;
      const int open_e = h[idx - width] - gaps.open - gaps.extend;
      const int ext_e = e[idx - width] - gaps.extend;
      e[idx] = std::max(open_e, ext_e);

      const int open_f = h[idx - 1] - gaps.open - gaps.extend;
      const int ext_f = f[idx - 1] - gaps.extend;
      f[idx] = std::max(open_f, ext_f);

      const int diag =
          h[idx - width - 1] + score(query[i - 1], ref[j - 1]);

      int v = 0;
      std::uint8_t t = 0;
      if (diag > v) { v = diag; t = 1; }
      if (e[idx] > v) { v = e[idx]; t = 2; }
      if (f[idx] > v) { v = f[idx]; t = 3; }
      if (ext_e >= open_e) t |= 0b0100;
      if (ext_f >= open_f) t |= 0b1000;
      h[idx] = v;
      trace[idx] = t;

      if (v > best) {
        best = v;
        best_i = i;
        best_j = j;
      }
    }
  }

  out.score = best;
  if (best == 0) return out;

  // Traceback from the maximum until H hits a stop cell.
  std::size_t i = best_i, j = best_j;
  enum class State { H, E, F } state = State::H;
  std::vector<EditOp> rops;
  for (;;) {
    const std::size_t idx = i * width + j;
    if (state == State::H) {
      const std::uint8_t source = trace[idx] & 0b11;
      if (source == 0) break;
      if (source == 1) {
        rops.push_back(EditOp::Match);
        --i; --j;
      } else if (source == 2) {
        state = State::E;
      } else {
        state = State::F;
      }
    } else if (state == State::E) {
      rops.push_back(EditOp::Insert);  // consumes a query symbol
      const bool extends = (trace[idx] & 0b0100) != 0;
      --i;
      if (!extends) state = State::H;
    } else {
      rops.push_back(EditOp::Delete);  // consumes a reference symbol
      const bool extends = (trace[idx] & 0b1000) != 0;
      --j;
      if (!extends) state = State::H;
    }
  }

  out.query_begin = i;
  out.query_end = best_i;
  out.ref_begin = j;
  out.ref_end = best_j;
  out.ops.assign(rops.rbegin(), rops.rend());
  return out;
}

/// Score-only Smith-Waterman in O(r) memory (two DP rows).
template <typename Sym, typename ScoreFn>
int smith_waterman_score_impl(std::span<const Sym> query,
                              std::span<const Sym> ref, const ScoreFn& score,
                              GapPenalties gaps) {
  const std::size_t q = query.size();
  const std::size_t r = ref.size();
  if (q == 0 || r == 0) return 0;
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

  std::vector<int> h(r + 1, 0), e(r + 1, kNegInf);
  int best = 0;
  for (std::size_t i = 1; i <= q; ++i) {
    int h_diag = 0;  // H[i-1][j-1]
    int f = kNegInf;
    int h_left = 0;  // H[i][j-1] as it is produced
    for (std::size_t j = 1; j <= r; ++j) {
      e[j] = std::max(h[j] - gaps.open - gaps.extend, e[j] - gaps.extend);
      f = std::max(h_left - gaps.open - gaps.extend, f - gaps.extend);
      int v = h_diag + score(query[i - 1], ref[j - 1]);
      v = std::max({0, v, e[j], f});
      h_diag = h[j];
      h[j] = v;
      h_left = v;
      best = std::max(best, v);
    }
  }
  return best;
}

/// Needleman-Wunsch global score with affine gaps.
template <typename Sym, typename ScoreFn>
int needleman_wunsch_score_impl(std::span<const Sym> query,
                                std::span<const Sym> ref,
                                const ScoreFn& score, GapPenalties gaps) {
  const std::size_t q = query.size();
  const std::size_t r = ref.size();
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

  std::vector<int> h(r + 1), e(r + 1, kNegInf);
  h[0] = 0;
  for (std::size_t j = 1; j <= r; ++j)
    h[j] = -gaps.open - static_cast<int>(j) * gaps.extend;

  for (std::size_t i = 1; i <= q; ++i) {
    int h_diag = h[0];
    h[0] = -gaps.open - static_cast<int>(i) * gaps.extend;
    int f = kNegInf;
    int h_left = h[0];
    for (std::size_t j = 1; j <= r; ++j) {
      e[j] = std::max(h[j] - gaps.open - gaps.extend, e[j] - gaps.extend);
      f = std::max(h_left - gaps.open - gaps.extend, f - gaps.extend);
      int v = h_diag + score(query[i - 1], ref[j - 1]);
      v = std::max({v, e[j], f});
      h_diag = h[j];
      h[j] = v;
      h_left = v;
    }
  }
  return h[r];
}

}  // namespace detail

// -- Protein instantiations -------------------------------------------------

Alignment smith_waterman(const bio::ProteinSequence& query,
                         const bio::ProteinSequence& ref,
                         const SubstitutionMatrix& matrix,
                         GapPenalties gaps = {});

int smith_waterman_score(const bio::ProteinSequence& query,
                         const bio::ProteinSequence& ref,
                         const SubstitutionMatrix& matrix,
                         GapPenalties gaps = {});

int needleman_wunsch_score(const bio::ProteinSequence& query,
                           const bio::ProteinSequence& ref,
                           const SubstitutionMatrix& matrix,
                           GapPenalties gaps = {});

// -- Nucleotide instantiations ----------------------------------------------

Alignment smith_waterman(const bio::NucleotideSequence& query,
                         const bio::NucleotideSequence& ref,
                         NucleotideScoring scoring = {}, GapPenalties gaps = {});

int smith_waterman_score(const bio::NucleotideSequence& query,
                         const bio::NucleotideSequence& ref,
                         NucleotideScoring scoring = {}, GapPenalties gaps = {});

int needleman_wunsch_score(const bio::NucleotideSequence& query,
                           const bio::NucleotideSequence& ref,
                           NucleotideScoring scoring = {},
                           GapPenalties gaps = {});

}  // namespace fabp::align
