#pragma once
// Seed-extension primitives used by the TBLASTN-style pipeline:
//  * X-drop ungapped extension (BLAST stage 2)
//  * banded affine-gap extension around a seed diagonal (BLAST stage 3)

#include <cstddef>
#include <span>

#include "fabp/align/scoring.hpp"
#include "fabp/bio/sequence.hpp"

namespace fabp::align {

struct UngappedExtension {
  int score = 0;
  // Half-open extent of the extended segment in each sequence.
  std::size_t query_begin = 0, query_end = 0;
  std::size_t ref_begin = 0, ref_end = 0;

  std::size_t length() const noexcept { return query_end - query_begin; }
};

/// Extends an exact/approximate word hit at (query_pos, ref_pos) in both
/// directions without gaps, stopping when the running score falls more than
/// `x_drop` below the best seen (Altschul et al. 1990).  `seed_len` symbols
/// starting at the hit are included unconditionally.
UngappedExtension ungapped_extend(const bio::ProteinSequence& query,
                                  const bio::ProteinSequence& ref,
                                  std::size_t query_pos, std::size_t ref_pos,
                                  std::size_t seed_len,
                                  const SubstitutionMatrix& matrix,
                                  int x_drop = 20);

/// Banded affine-gap local alignment restricted to diagonals within
/// `bandwidth` of (ref_pos - query_pos).  Returns the best local score in
/// the band; used as the gapped-extension stage.
int banded_local_score(const bio::ProteinSequence& query,
                       const bio::ProteinSequence& ref,
                       std::size_t query_pos, std::size_t ref_pos,
                       std::size_t bandwidth, const SubstitutionMatrix& matrix,
                       GapPenalties gaps = {});

}  // namespace fabp::align
