#pragma once
// Alignment scoring: nucleotide match/mismatch/gap schemes and the BLOSUM62
// amino-acid substitution matrix used by the TBLASTN baseline.

#include <array>
#include <cstdint>

#include "fabp/bio/alphabet.hpp"

namespace fabp::align {

/// Affine gap model: opening a gap costs `gap_open`, each further base in
/// the same gap costs `gap_extend` (both are penalties, i.e. >= 0 here and
/// subtracted by the DP).
struct GapPenalties {
  int open = 11;
  int extend = 1;
};

/// Simple nucleotide scoring (BLASTN-style defaults).
struct NucleotideScoring {
  int match = 2;
  int mismatch = -3;

  int operator()(bio::Nucleotide a, bio::Nucleotide b) const noexcept {
    return a == b ? match : mismatch;
  }
};

/// Protein substitution matrix over the 20 standard residues + Stop.
class SubstitutionMatrix {
 public:
  /// The BLOSUM62 matrix (Henikoff & Henikoff 1992), with the BLAST
  /// convention for the stop symbol: Stop/Stop = +1, Stop/anything = -4.
  static const SubstitutionMatrix& blosum62();

  int score(bio::AminoAcid a, bio::AminoAcid b) const noexcept {
    return table_[bio::index(a)][bio::index(b)];
  }

  int operator()(bio::AminoAcid a, bio::AminoAcid b) const noexcept {
    return score(a, b);
  }

  /// Highest score in the matrix (used by seed thresholds).
  int max_score() const noexcept;

 private:
  using Row = std::array<std::int8_t, bio::kAminoAcidCount>;
  std::array<Row, bio::kAminoAcidCount> table_{};
};

}  // namespace fabp::align
