#pragma once
// Substitution-only sliding alignment over plain nucleotide sequences.
//
// This is the algorithmic core the paper implements in hardware (§III-C):
// the query slides across the reference; each offset is an independent
// alignment instance whose score is the count of matching elements; offsets
// scoring at or above a threshold are hits.  The degenerate-codon version
// (matching a *back-translated* query) lives in fabp/reference.hpp — this
// plain version is used by tests, by the GPU functional stand-in, and as a
// building block for both.

#include <cstdint>
#include <vector>

#include "fabp/bio/sequence.hpp"
#include "fabp/util/thread_pool.hpp"

namespace fabp::align {

struct SlidingHit {
  std::size_t position = 0;  // reference offset of query element 0
  std::uint32_t score = 0;   // number of matching elements

  bool operator==(const SlidingHit&) const = default;
  auto operator<=>(const SlidingHit&) const = default;
};

/// All offsets with >= threshold matching elements.  O((r-q+1) * q).
std::vector<SlidingHit> sliding_hits(const bio::NucleotideSequence& query,
                                     const bio::NucleotideSequence& ref,
                                     std::uint32_t threshold);

/// Score at a single offset (number of equal elements).
std::uint32_t sliding_score_at(const bio::NucleotideSequence& query,
                               const bio::NucleotideSequence& ref,
                               std::size_t position);

/// Multithreaded variant used as the functional model of the paper's CUDA
/// implementation: offsets are partitioned across pool workers (one GPU
/// "thread block" per chunk).  Result is identical to sliding_hits.
std::vector<SlidingHit> sliding_hits_parallel(
    const bio::NucleotideSequence& query, const bio::NucleotideSequence& ref,
    std::uint32_t threshold, util::ThreadPool& pool);

}  // namespace fabp::align
