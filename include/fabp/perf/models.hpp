#pragma once
// Cross-platform time and energy models that produce the Figure-6 rows.
//
//  * CPU (TBLASTN 1T): our pipeline is *measured* on a sampled reference,
//    converted to a per-base rate, rescaled to the target CPU via
//    CpuSpec::host_to_target_speed, then extrapolated to the full database.
//  * CPU 12T: 1T divided by threads * parallel_efficiency (the measuring
//    host has too few cores to measure 12 threads honestly).
//  * GPU: analytic throughput model (GpuSpec) over the same element-
//    comparison workload, plus PCIe/launch overheads.
//  * FabP: the Accelerator's timing estimate (cycle accounting) plus the
//    same host-side overheads via core::Session.

#include <cstddef>

#include "fabp/bio/generate.hpp"
#include "fabp/blast/tblastn.hpp"
#include "fabp/core/host.hpp"
#include "fabp/perf/platform.hpp"

namespace fabp::perf {

struct PlatformResult {
  double seconds = 0.0;
  double watts = 0.0;
  double joules = 0.0;
};

/// Measured single-thread TBLASTN throughput for one query length.
struct CpuMeasurement {
  double host_seconds = 0.0;       // wall time on the sampled reference
  std::size_t sample_bases = 0;
  double bases_per_second = 0.0;   // on the measuring host
  blast::TblastnStats stats;       // pipeline stage counters
};

/// Runs the TBLASTN pipeline once on `sample` and derives the rate.
CpuMeasurement measure_tblastn(const bio::ProteinSequence& query,
                               const bio::NucleotideSequence& sample,
                               const blast::TblastnConfig& config = {});

/// Extrapolates a measurement to `db_bases` on the target CPU.
PlatformResult cpu_result(const CpuMeasurement& m, const CpuSpec& cpu,
                          std::size_t db_bases, bool multithreaded);

/// GPU model: workload = (db_elements - query_elements + 1) * query
/// elements comparisons, plus reference DMA at memory bandwidth and a
/// fixed launch overhead.
PlatformResult gpu_result(const GpuSpec& gpu, std::size_t db_elements,
                          std::size_t query_elements,
                          double launch_overhead_s = 50e-6);

/// FabP via the host session timing estimate.
PlatformResult fabp_result(const core::Session& session,
                           const bio::ProteinSequence& query,
                           std::uint32_t threshold, std::size_t db_bytes);

}  // namespace fabp::perf
