#pragma once
// Platform descriptors for the Figure-6 cross-platform comparison.
//
// The paper's testbed: Intel i7-8700K (TBLASTN, 1 and 12 threads), NVIDIA
// GTX 1080Ti (the authors' CUDA implementation), and FabP on a Kintex-7.
// None of that hardware exists in this environment, so the CPU numbers are
// *measured on the host and rescaled by an explicit clock/IPC factor*, the
// GPU numbers come from a throughput model built from datasheet constants,
// and the FabP numbers come from the cycle-level simulator.  Every constant
// is in this header so the calibration is auditable.

#include <cstddef>

namespace fabp::perf {

/// CPU running the TBLASTN baseline.
struct CpuSpec {
  const char* name = "i7-8700K";
  std::size_t threads = 12;
  double watts_single_thread = 45.0;  // package power, one active core
  double watts_all_threads = 95.0;    // TDP under full load
  /// Throughput scaling from the measuring host to the target CPU
  /// (clock * IPC advantage of the i7-8700K over the host core).
  double host_to_target_speed = 1.6;
  /// Parallel efficiency of the 12-thread TBLASTN run (hash-probe bound
  /// workloads scale sub-linearly; NCBI reports ~75-85%).
  double parallel_efficiency = 0.8;

  double speedup_12t() const noexcept {
    return static_cast<double>(threads) * parallel_efficiency;
  }
};

/// GPU running the substitution-only sliding kernel (the paper's CUDA
/// implementation of the same algorithm FabP runs).
struct GpuSpec {
  const char* name = "GTX 1080Ti";
  std::size_t cuda_cores = 3584;
  double clock_hz = 1.58e9;
  double watts = 250.0;
  double memory_bandwidth_bps = 484e9;
  /// 2-bit elements packed in a 32-bit word: one LOP3-style compare covers
  /// 16 elements, but unpacking, popcount and control cost instructions.
  std::size_t elements_per_word = 16;
  double instructions_per_word = 7.0;
  double achieved_occupancy = 0.65;

  /// Sustained element comparisons per second.
  double comparisons_per_second() const noexcept {
    return static_cast<double>(cuda_cores) * clock_hz *
           static_cast<double>(elements_per_word) / instructions_per_word *
           achieved_occupancy;
  }
};

CpuSpec i7_8700k();
GpuSpec gtx_1080ti();

}  // namespace fabp::perf
