#pragma once
// Figure-6 harness: sweeps protein query lengths 50..250 over the four
// platforms (CPU-1T, CPU-12T, GPU, FabP) and reports execution time and
// energy, normalized to the single-thread CPU — the exact series of
// Fig. 6(a) and Fig. 6(b) plus the paper's headline averages (E7).

#include <vector>

#include "fabp/perf/models.hpp"

namespace fabp::perf {

struct Figure6Config {
  std::vector<std::size_t> query_lengths{50, 100, 150, 200, 250};
  std::size_t db_bases = std::size_t{1} << 30;  // nominal 1 GB database
  std::size_t cpu_sample_bases = 1 << 21;       // measured CPU sample
  std::uint64_t seed = 2021;
  double threshold_fraction = 0.8;  // hit threshold as fraction of elements
  CpuSpec cpu = i7_8700k();
  GpuSpec gpu = gtx_1080ti();
  core::HostConfig host{};          // FabP device + host model
};

struct Figure6Row {
  std::size_t query_length = 0;     // residues
  std::size_t query_elements = 0;   // back-translated elements
  PlatformResult cpu1, cpu12, gpu, fabp;

  // Speedups (time ratios) and energy-efficiency ratios vs CPU-1T.
  double speedup_cpu12 = 0, speedup_gpu = 0, speedup_fabp = 0;
  double energy_cpu12 = 0, energy_gpu = 0, energy_fabp = 0;
};

struct Figure6Summary {
  // Paper's headline averages (E7): 8.1% over GPU, 24.8x over CPU-12T;
  // 23.2x / 266.8x energy efficiency.
  double fabp_over_gpu_speedup = 0;
  double fabp_over_cpu12_speedup = 0;
  double fabp_over_gpu_energy = 0;
  double fabp_over_cpu12_energy = 0;
};

std::vector<Figure6Row> run_figure6(const Figure6Config& config);

Figure6Summary summarize(const std::vector<Figure6Row>& rows);

}  // namespace fabp::perf
