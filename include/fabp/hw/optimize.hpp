#pragma once
// Netlist optimization passes — the LUT-level cleanups a synthesis tool
// runs after elaboration, reimplemented over our netlist model:
//   * constant propagation: LUT inputs driven by constants are folded
//     into the INIT vector (a LUT whose function collapses to 0/1 becomes
//     a constant; to a single-input identity, an alias),
//   * carry simplification: majority with a constant leg becomes AND/OR,
//   * dead-cell elimination: logic not reachable from the kept outputs is
//     dropped.
// Used by the instance generators to specialize hardware for a *fixed*
// query (the paper keeps the query in registers; specializing it into the
// LUTs instead is the classic FPGA trade — see bench_ablation_specialize).

#include <span>
#include <vector>

#include "fabp/hw/netlist.hpp"

namespace fabp::hw {

struct OptimizeStats {
  std::size_t folded_constants = 0;  // cells that became constants
  std::size_t collapsed_aliases = 0; // identity LUTs removed
  std::size_t dead_cells = 0;        // unreachable cells dropped
  std::size_t luts_before = 0, luts_after = 0;
  std::size_t ffs_before = 0, ffs_after = 0;
};

struct OptimizeResult {
  Netlist netlist;
  /// Maps every old net id to its new net id (constants and aliases map
  /// to their replacement's net).
  std::vector<NetId> net_map;
  OptimizeStats stats;
};

/// Optimizes `input`, preserving the observability of every net in
/// `keep` (those are the module outputs).  Primary inputs are preserved
/// in order, so set_input positions keep working via net_map.
OptimizeResult optimize(const Netlist& input, std::span<const NetId> keep);

}  // namespace fabp::hw
