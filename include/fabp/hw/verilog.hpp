#pragma once
// Structural Verilog emission.
//
// The paper implements FabP "in Verilog HDL" and stresses that the custom
// comparator and Pop-Counter *directly instantiate* LUT6 and FF primitives
// (§III-D).  This emitter turns any Netlist into exactly that style of
// source: one `LUT6 #(.INIT(64'h...))` per LUT cell, one `FDRE` per
// flip-flop, carry cells as explicit majority assigns (the positions a
// synthesizer maps onto the slice carry chain).  The output is valid
// Vivado-flavoured structural Verilog, usable as the starting point for a
// real implementation run.

#include <string>
#include <utility>
#include <vector>

#include "fabp/hw/netlist.hpp"

namespace fabp::hw {

struct VerilogPort {
  std::string name;
  NetId net = kInvalidNet;
};

struct VerilogModule {
  std::string name;
  std::string source;

  /// Counts occurrences of a primitive instantiation (e.g. "LUT6").
  std::size_t instance_count(const std::string& primitive) const;
};

/// Emits `netlist` as a structural module.  Every primary input consumed
/// by logic should appear in `inputs` (unlisted inputs become internal
/// wires tied to 1'b0); `outputs` name the observable nets.  If the
/// netlist contains flip-flops, `clk` and `rst` ports are added.
VerilogModule emit_verilog(const Netlist& netlist,
                           const std::string& module_name,
                           const std::vector<VerilogPort>& inputs,
                           const std::vector<VerilogPort>& outputs);

/// Convenience emitters for the paper's two hand-instantiated blocks.
VerilogModule emit_pop36_module();
VerilogModule emit_popcounter_module(std::size_t width, bool handcrafted);

}  // namespace fabp::hw
