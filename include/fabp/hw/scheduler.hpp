#pragma once
// Device batch scheduler primitives (DESIGN.md §4d).
//
// A card is not called once per query: the host packs variable-size tasks
// into fixed-capacity *device invocations* — a control-record table plus a
// concatenated payload buffer sized to the on-card query SRAM — and the
// device unpacks the records to serve every task in one pass over the
// streamed reference (the memory-scheduler pattern UCLA-VAST's
// minimap2-acceleration uses for its kernel dispatch).  While invocation k
// computes, the DMA engine stages invocation k+1 into the other half of a
// ping/pong buffer pair, so transfer hides behind compute up to
// `buffer_depth` invocations in flight.
//
// This header is layer-pure hardware modeling: packing works on abstract
// task descriptors (index, payload bytes, threshold) and the pipeline
// timeline on per-invocation (transfer, compute) stage times.  The core
// backend layer owns the mapping from compiled queries to descriptors and
// from per-PE hit streams back to per-task outputs.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fabp::hw {

/// Shape of one device invocation and of the DMA pipeline feeding it.
struct DeviceBatchConfig {
  /// Control-record slots per invocation: the most tasks one kernel call
  /// can serve.  The engine's coalescing cap derives from this.
  std::size_t invocation_tasks = 8;
  /// On-card query buffer per invocation (one half of the ping/pong pair);
  /// packing closes an invocation when the next task's payload would not
  /// fit.  A single oversized task still gets an invocation of its own
  /// (streamed through the buffer rather than resident).
  std::size_t invocation_payload_bytes = 8192;
  /// Parallel PE arrays per card, each owning a memory channel and
  /// scanning a contiguous slice of the reference (plus an L_q-1 halo).
  std::size_t pe_count = 1;
  /// DMA buffers in flight: 1 = transfer and compute strictly serialize,
  /// 2 = classic ping/pong (transfer of k+1 overlaps compute of k).
  std::size_t buffer_depth = 2;
  /// DMA size of one control record (task id, offset, length, threshold).
  std::size_t control_record_bytes = 16;
};

/// What the caller hands the packer per task.
struct DeviceTaskDesc {
  std::uint32_t task = 0;           ///< caller's index, echoed in records
  std::uint32_t payload_bytes = 0;  ///< packed query bytes
  std::uint32_t threshold = 0;
};

/// One slot of an invocation's control table: where the task's query
/// bytes sit in the payload buffer and the threshold its PEs compare
/// against.  The descheduler routes the device's per-task hit streams
/// back to the caller through `task`.
struct ControlRecord {
  std::uint32_t task = 0;
  std::uint32_t offset_bytes = 0;
  std::uint32_t length_bytes = 0;
  std::uint32_t threshold = 0;
};

/// One packed kernel call.
struct DeviceInvocation {
  std::vector<ControlRecord> records;
  std::size_t payload_bytes = 0;  ///< sum of record lengths

  /// Bytes the DMA engine moves host -> card for this invocation.
  std::size_t transfer_bytes(const DeviceBatchConfig& config) const noexcept {
    return records.size() * config.control_record_bytes + payload_bytes;
  }
};

/// Packs tasks *in order* into the fewest invocations that respect both
/// the record capacity and the payload buffer; order is preserved within
/// and across invocations (descheduling and fault-schedule replay rely on
/// it).  A task larger than the whole payload buffer gets a dedicated
/// invocation instead of being rejected.
std::vector<DeviceInvocation> pack_invocations(
    std::span<const DeviceTaskDesc> tasks, const DeviceBatchConfig& config);

/// One invocation's stage times as the pipeline model sees them.
struct PipelineStage {
  double transfer_s = 0.0;  ///< DMA: records + payload up, hits back
  double compute_s = 0.0;   ///< kernel: reference stream through the PEs
};

/// Timeline of a run of invocations through the double-buffered pipe.
struct PipelineTimeline {
  double total_s = 0.0;          ///< makespan at the modeled buffer depth
  double serial_s = 0.0;         ///< sum of stages (single-buffer makespan)
  double transfer_busy_s = 0.0;  ///< DMA engine busy time
  double compute_busy_s = 0.0;   ///< PE array busy time
  double compute_stall_s = 0.0;  ///< PE idle, waiting on a buffer

  /// Fraction of the makespan the PE array computes.
  double occupancy() const noexcept {
    return total_s > 0.0 ? compute_busy_s / total_s : 0.0;
  }
  /// Fraction of the hideable stage time actually hidden: 1 when every
  /// overlappable transfer ran behind compute, 0 at buffer depth 1.
  double overlap_efficiency() const noexcept {
    const double hideable =
        transfer_busy_s < compute_busy_s ? transfer_busy_s : compute_busy_s;
    if (hideable <= 0.0) return 0.0;
    const double hidden = serial_s - total_s;
    if (hidden <= 0.0) return 0.0;
    return hidden >= hideable ? 1.0 : hidden / hideable;
  }
};

/// Deterministic timeline of `stages` through a `buffer_depth`-deep
/// ping/pong pipe: one DMA engine, one compute engine, transfers in
/// order, transfer k waits for a free buffer (compute of k-depth done),
/// compute k waits for its transfer and for compute k-1.  Depth 1
/// degenerates to the serial sum.
PipelineTimeline pipeline_timeline(std::span<const PipelineStage> stages,
                                   std::size_t buffer_depth);

}  // namespace fabp::hw
