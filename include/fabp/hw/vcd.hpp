#pragma once
// VCD (Value Change Dump, IEEE 1364) trace writer for the netlist
// simulator — record selected nets cycle by cycle and inspect the
// accelerator datapath in GTKWave, like any RTL debug flow.

#include <iosfwd>
#include <string>
#include <vector>

#include "fabp/hw/netlist.hpp"

namespace fabp::hw {

class VcdTrace {
 public:
  /// `timescale` is the VCD timescale text, e.g. "5ns" (one sample per
  /// clock at 200 MHz).
  VcdTrace(std::string module_name, std::string timescale = "5ns");

  /// Registers a net under a signal name (call before the first sample).
  void watch(NetId net, std::string name);

  /// Registers a multi-bit bus under one vector signal.
  void watch_bus(std::span<const NetId> bus, std::string name);

  /// Captures the current netlist values as the next sample.
  void sample(const Netlist& netlist);

  std::size_t samples() const noexcept { return samples_; }

  /// Writes header + all recorded changes.
  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

 private:
  struct Signal {
    std::string name;
    std::string id;               // VCD short identifier
    std::vector<NetId> nets;      // one = scalar; many = vector (MSB first)
    std::vector<std::string> values;  // per sample, binary text
  };

  static std::string make_id(std::size_t index);

  std::string module_;
  std::string timescale_;
  std::vector<Signal> signals_;
  std::size_t samples_ = 0;
};

}  // namespace fabp::hw
