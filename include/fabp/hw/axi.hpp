#pragma once
// AXI read-channel timing model.
//
// The paper (§III-C): "In clock cycles that the AXI port does not have
// valid data from the DRAM, all the stages of FabP will be stalled".  For a
// *sequential* access pattern the achieved bandwidth is close to nominal;
// this model makes that concrete as a deterministic burst pattern — BURST
// valid beats followed by a fixed re-arbitration gap — plus an optional
// page-boundary penalty.  Efficiency = burst / (burst + gap).

#include <cstddef>

namespace fabp::hw {

struct AxiTimingConfig {
  std::size_t burst_beats = 64;     // beats delivered back-to-back
  std::size_t inter_burst_gap = 3;  // stall cycles between bursts
  std::size_t page_beats = 2048;    // beats per DRAM page (row)
  std::size_t page_miss_penalty = 8;  // extra stall cycles at a page crossing
};

/// Cycle-level read stream: call advance() once per kernel clock; it
/// reports whether a beat is valid this cycle.  Deterministic.
class AxiReadStream {
 public:
  explicit AxiReadStream(AxiTimingConfig config = {}) noexcept
      : config_{config} {}

  /// One clock cycle; returns true when a beat of data is delivered.
  bool advance() noexcept;

  std::size_t beats_delivered() const noexcept { return beats_; }
  std::size_t cycles_elapsed() const noexcept { return cycles_; }

  /// Fraction of cycles carrying valid data so far (0 if no cycles yet).
  double efficiency() const noexcept {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(beats_) /
                              static_cast<double>(cycles_);
  }

  /// Closed-form steady-state efficiency of the configured pattern.
  static double steady_state_efficiency(const AxiTimingConfig& c) noexcept;

  /// Closed-form cycle count to deliver exactly `beats`: what
  /// cycles_elapsed() reads after advance() has returned true that many
  /// times.  The device batch scheduler prices the on-card DMA of each
  /// packed invocation with this instead of stepping a stream
  /// (equivalence is pinned by tests/hw/axi_test.cpp).
  static std::size_t cycles_for_beats(const AxiTimingConfig& c,
                                      std::size_t beats) noexcept;

  void reset() noexcept;

 private:
  AxiTimingConfig config_;
  std::size_t beats_ = 0;
  std::size_t cycles_ = 0;
  std::size_t in_burst_ = 0;    // beats delivered in the current burst
  std::size_t stall_left_ = 0;  // pending stall cycles
};

}  // namespace fabp::hw
