#pragma once
// LUT6 primitive model.
//
// A Xilinx LUT6 is a 64-entry truth table: the six input bits form an index
// (I0 = LSB) and the INIT vector supplies the output.  The paper's custom
// comparator and Pop-Counter are built by *directly instantiating* LUT6
// primitives with computed INIT values (§III-D); this type is that INIT
// computation plus bit-accurate evaluation.

#include <cstdint>
#include <string>

namespace fabp::hw {

class Lut6 {
 public:
  constexpr Lut6() = default;
  explicit constexpr Lut6(std::uint64_t init) noexcept : init_{init} {}

  /// Builds the INIT vector by sampling `fn` at all 64 input combinations.
  /// `fn` receives the 6-bit index (I0 = bit 0).
  template <typename Fn>
  static Lut6 from_function(Fn&& fn) {
    std::uint64_t init = 0;
    for (unsigned idx = 0; idx < 64; ++idx)
      if (fn(static_cast<std::uint8_t>(idx))) init |= 1ULL << idx;
    return Lut6{init};
  }

  constexpr std::uint64_t init() const noexcept { return init_; }

  /// Evaluates with a packed 6-bit input index.
  constexpr bool eval(std::uint8_t index) const noexcept {
    return ((init_ >> (index & 63)) & 1ULL) != 0;
  }

  /// Evaluates with individual input bits (i0 = LSB of the index).
  constexpr bool eval(bool i0, bool i1, bool i2, bool i3, bool i4,
                      bool i5) const noexcept {
    const std::uint8_t index = static_cast<std::uint8_t>(
        (i0 ? 1 : 0) | (i1 ? 2 : 0) | (i2 ? 4 : 0) | (i3 ? 8 : 0) |
        (i4 ? 16 : 0) | (i5 ? 32 : 0));
    return eval(index);
  }

  /// Xilinx-style INIT attribute text, e.g. "64'hDEADBEEF00000000".
  std::string init_string() const;

  bool operator==(const Lut6&) const = default;

 private:
  std::uint64_t init_ = 0;
};

}  // namespace fabp::hw
