#pragma once
// A small structural netlist of FPGA primitives (LUT6, FF, constants,
// primary inputs) with bit-accurate simulation and resource accounting.
//
// Construction is bottom-up: a cell may only consume nets that already
// exist, so creation order is a topological order and combinational
// settling is a single in-order pass — no event queue needed.  Clocked
// state (FFs) updates in two phases on clock() so feedback through
// registers is well defined.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabp/hw/lut.hpp"

namespace fabp::hw {

using NetId = std::uint32_t;
inline constexpr NetId kInvalidNet = 0xffffffff;

struct NetlistStats {
  std::size_t luts = 0;
  std::size_t ffs = 0;
  std::size_t carries = 0;  // dedicated carry-chain elements (CARRY4 slots)
  std::size_t inputs = 0;
  std::size_t cells = 0;
};

enum class CellKind : std::uint8_t { Input, Const, Lut, Ff, Carry };

class Netlist {
 public:
  /// Read-only view of one cell, for emitters and analyzers.
  struct CellView {
    CellKind kind;
    NetId output;
    Lut6 lut;                        // meaningful for Lut cells
    std::span<const NetId> inputs;   // Lut <=6, Ff 1 (D), Carry 3 (a,b,cin)
    bool const_value;                // Const cells; Ff reset value
  };

  /// Primary input; value set via set_input().
  NetId add_input(bool initial = false);

  /// Constant driver.
  NetId add_const(bool value);

  /// LUT with up to 6 inputs (I0 = inputs[0] = LSB of the truth-table
  /// index; missing high inputs read as 0).  Throws std::invalid_argument
  /// if more than 6 inputs or any input net does not exist yet.
  NetId add_lut(const Lut6& lut, std::span<const NetId> inputs);

  /// Convenience overloads for small fan-in.
  NetId add_lut(const Lut6& lut, std::initializer_list<NetId> inputs);

  /// D flip-flop; output reads `reset_value` until the first clock().
  NetId add_ff(NetId d, bool reset_value = false);

  /// Dedicated carry element: out = majority(a, b, cin).  Models the
  /// slice carry chain (CARRY4/CARRY8), which costs no LUTs on real
  /// devices; counted separately in stats().
  NetId add_carry(NetId a, NetId b, NetId cin);

  void set_input(NetId net, bool value);

  /// Propagates all combinational logic (single topological pass).
  void settle();

  /// Rising clock edge: capture all FF D inputs, update Q, then settle().
  void clock();

  /// Resets every FF to its reset value and re-settles.
  void reset();

  bool value(NetId net) const { return values_.at(net); }

  NetlistStats stats() const noexcept;

  std::size_t net_count() const noexcept { return values_.size(); }

  std::size_t cell_count() const noexcept { return cells_.size(); }
  CellView cell(std::size_t index) const noexcept {
    const Cell& c = cells_[index];
    return CellView{c.kind, c.output, c.lut, c.inputs, c.reset_value};
  }

 private:
  struct Cell {
    CellKind kind;
    NetId output;
    Lut6 lut;                   // Lut cells
    std::vector<NetId> inputs;  // Lut: up to 6; Ff: exactly 1 (D)
    bool reset_value = false;   // Ff cells
  };

  NetId new_net(bool initial);
  void check_net(NetId net) const;

  std::vector<Cell> cells_;
  std::vector<std::uint8_t> values_;  // current value per net
  std::vector<std::size_t> ff_cells_; // indices into cells_
};

}  // namespace fabp::hw
