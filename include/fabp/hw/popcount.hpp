#pragma once
// Pop-Counter netlist generators (paper §III-D, Fig. 4).
//
// The handcrafted counter is built from Pop36 blocks: six groups of three
// LUT6s sharing six inputs (each group is a 6:3 ones-counter), followed by
// a column-wise stage that re-counts the six 3-bit partial results per bit
// position, and two short shifted adds.  The baseline is the "simple HDL
// description of a tree-adder-style Pop-Counter": a balanced binary adder
// tree over the input bits, mapped at one LUT per sum bit with free carry
// chains.  bench_ablation_popcounter compares the LUT counts of both
// (paper claim: ~20% reduction for the handcrafted design).

#include <span>
#include <vector>

#include "fabp/hw/netlist.hpp"

namespace fabp::hw {

/// Multi-bit value (LSB first) living on netlist nets.
using Bus = std::vector<NetId>;

/// Reads a bus as an unsigned integer after settle()/clock().
std::uint64_t read_bus(const Netlist& netlist, std::span<const NetId> bus);

/// Drives primary-input nets from an unsigned integer (LSB first).
void drive_bus(Netlist& netlist, std::span<const NetId> bus,
               std::uint64_t value);

/// Ripple adder: a + b (unequal widths allowed), result has
/// max(len(a), len(b)) + 1 bits.  Cost: one LUT per operand-width bit plus
/// free carry cells — the standard slice carry-chain mapping.
Bus add_buses(Netlist& netlist, std::span<const NetId> a,
              std::span<const NetId> b);

/// 6:3 ones-counter: three LUT6s sharing the same (up to) six inputs.
Bus ones_count6(Netlist& netlist, std::span<const NetId> bits);

/// Pop36 (Fig. 4): exactly the paper's structure; `bits` may be shorter
/// than 36 (padded with constant zeros).  Output: 6-bit count.
Bus build_pop36(Netlist& netlist, std::span<const NetId> bits);

/// Full handcrafted pop-counter: ceil(n/36) Pop36 blocks + adder tree.
Bus build_popcounter_handcrafted(Netlist& netlist,
                                 std::span<const NetId> bits);

/// Baseline: balanced binary adder tree over individual bits.
Bus build_popcounter_tree(Netlist& netlist, std::span<const NetId> bits);

/// LUT cost of each style for n input bits, without building a Netlist
/// (used by the resource mapper; must agree with the generators — tested).
std::size_t popcounter_luts_handcrafted(std::size_t n_bits);
std::size_t popcounter_luts_tree(std::size_t n_bits);

}  // namespace fabp::hw
