#pragma once
// FPGA device descriptions and resource accounting.
//
// The "kintex7" entry reproduces the Available row of Table I: 326k LUTs,
// 407k FFs, 16 Mb BRAM, 840 DSPs, one memory channel at 12.8 GB/s.  At the
// paper's 512-bit AXI width, 12.8 GB/s corresponds to a 200 MHz kernel
// clock (64 B x 200 MHz), which is the frequency the models assume.

#include <cstdint>
#include <string>

namespace fabp::hw {

struct ResourceBudget {
  std::size_t luts = 0;
  std::size_t ffs = 0;
  std::size_t bram_bits = 0;
  std::size_t dsps = 0;

  ResourceBudget& operator+=(const ResourceBudget& other) noexcept {
    luts += other.luts;
    ffs += other.ffs;
    bram_bits += other.bram_bits;
    dsps += other.dsps;
    return *this;
  }
  friend ResourceBudget operator+(ResourceBudget a,
                                  const ResourceBudget& b) noexcept {
    a += b;
    return a;
  }
  ResourceBudget operator*(std::size_t n) const noexcept {
    return ResourceBudget{luts * n, ffs * n, bram_bits * n, dsps * n};
  }
  bool fits_in(const ResourceBudget& capacity) const noexcept {
    return luts <= capacity.luts && ffs <= capacity.ffs &&
           bram_bits <= capacity.bram_bits && dsps <= capacity.dsps;
  }
};

struct FpgaDevice {
  std::string name;
  ResourceBudget capacity;
  std::size_t memory_channels = 1;
  std::size_t axi_bits = 512;           // per-channel interface width
  double clock_hz = 200e6;              // kernel clock
  double channel_bandwidth_bps = 12.8e9;  // nominal per-channel DRAM BW

  /// Elements (2-bit) delivered per valid AXI beat, per channel.
  std::size_t elements_per_beat() const noexcept { return axi_bits / 2; }

  /// Nominal total bandwidth over all channels, bytes/second.
  double total_bandwidth_bps() const noexcept {
    return channel_bandwidth_bps * static_cast<double>(memory_channels);
  }
};

/// Mid-range Kintex-7 as characterized in Table I.
FpgaDevice kintex7();

/// A larger device (for the §IV-B note that "an FPGA with more LUTs can
/// outperform the GPU-based implementation"): Virtex UltraScale+-class
/// budget, same single channel unless widened by the caller.
FpgaDevice virtex_ultrascale_plus();

}  // namespace fabp::hw
