#pragma once
// Deterministic fault injection for the accelerator + host pipeline.
//
// The paper's timing argument (§III-C) models the AXI read channel as a
// deterministic, always-correct stream.  A deployed card is not: DRAM and
// the PCIe link suffer transient bit flips, dropped/duplicated beats,
// re-arbitration storms and outright transfer failures.  This header makes
// those injectable — seeded, replayable, and composable with the existing
// `AxiReadStream` — so the host runtime's detection and recovery machinery
// (core/host.hpp) can be exercised and differentially tested against the
// golden model.
//
// Everything is driven by util::Xoshiro256 sub-streams forked from one
// seed, so a fault schedule is a pure function of (FaultConfig, stream
// index): two injectors built alike draw the identical schedule, which is
// what makes chaos failures replayable from a one-line seed report.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fabp/hw/axi.hpp"
#include "fabp/util/rng.hpp"

namespace fabp::hw {

/// Width of one AXI data beat, as everywhere in the model (§III-C).
inline constexpr std::size_t kAxiDataBits = 512;

/// Fault rates.  All default to zero: a default FaultConfig injects
/// nothing and the host runtime compiles the whole machinery down to one
/// `enabled()` branch.
struct FaultConfig {
  std::uint64_t seed = 0x5eedfab9u;  ///< schedule seed (forked per attempt)

  /// Expected bit flips per *bit* streamed over AXI (DRAM/link soft-error
  /// rate; realistic cards sit around 1e-12..1e-9, chaos tests crank it).
  /// Sampled per beat with probability min(1, kAxiDataBits * flip_rate).
  double flip_rate = 0.0;
  double drop_rate = 0.0;  ///< per-beat probability the beat is lost
  double dup_rate = 0.0;   ///< per-beat probability the beat is delivered twice

  /// Per-delivered-beat probability of a stall storm (the DRAM controller
  /// re-arbitrating away: `stall_cycles` dead cycles are inserted).
  double stall_rate = 0.0;
  std::size_t stall_cycles = 256;

  double transfer_fail_rate = 0.0;  ///< per PCIe transfer, transient failure
  double readback_flip_rate = 0.0;  ///< per readback, hit-buffer corruption

  bool enabled() const noexcept {
    return flip_rate > 0.0 || drop_rate > 0.0 || dup_rate > 0.0 ||
           stall_rate > 0.0 || transfer_fail_rate > 0.0 ||
           readback_flip_rate > 0.0;
  }
};

enum class FaultKind : std::uint8_t {
  BitFlip,       ///< one bit of a streamed beat inverted
  DropBeat,      ///< a beat never delivered (stream realigns at a tile edge)
  DupBeat,       ///< a beat delivered twice (ditto)
  StallStorm,    ///< extra dead cycles on the AXI channel
  TransferFail,  ///< a whole PCIe transfer failed transiently
  ReadbackFlip,  ///< a bit of the readback hit buffer inverted
};

const char* to_string(FaultKind kind) noexcept;

/// One injected fault, as recorded in the replayable schedule.
struct FaultEvent {
  FaultKind kind = FaultKind::BitFlip;
  std::size_t beat = 0;     ///< AXI beat index (data/stall faults)
  std::uint32_t bit = 0;    ///< bit within the beat / readback buffer
  std::size_t cycles = 0;   ///< stall cycles (StallStorm only)

  bool operator==(const FaultEvent&) const = default;
};

/// Draws a deterministic fault schedule from independent per-category
/// sub-streams and logs every event it emits.  One injector models one
/// kernel invocation attempt; the host forks a fresh stream index per
/// attempt so retries see independent (but replayable) schedules.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config, std::uint64_t stream = 0);

  const FaultConfig& config() const noexcept { return config_; }

  /// One PCIe transfer: true = this transfer transiently fails.
  bool transfer_fails();

  /// One result readback: true = the hit buffer arrives corrupted, with
  /// `bit` set to the flipped bit index (callers clamp to the buffer).
  bool readback_corrupts(std::uint32_t& bit);

  /// Data-corruption events (flips, drops, dups) over a stream of `beats`
  /// beats, in beat order.  Geometric skip-sampling: cost is O(events),
  /// not O(beats), so a near-zero rate over a huge reference is free.
  std::vector<FaultEvent> data_events(std::size_t beats);

  /// Stall-storm draw for one delivered beat: 0 = clean, otherwise the
  /// number of dead cycles to insert.  Consumed by FaultyAxiStream.
  std::size_t storm_cycles(std::size_t beat);

  /// Every event drawn so far — the replayable fault schedule.
  const std::vector<FaultEvent>& log() const noexcept { return log_; }

 private:
  FaultConfig config_;
  util::Xoshiro256 transfer_rng_;
  util::Xoshiro256 data_rng_;
  util::Xoshiro256 stall_rng_;
  util::Xoshiro256 readback_rng_;
  std::vector<FaultEvent> log_;
};

/// AxiReadStream composed with a FaultInjector: identical contract
/// (advance() once per kernel clock, true when a beat lands), but a
/// delivered beat may open a stall storm that holds the channel down for
/// config().stall_cycles cycles.  With a null injector it behaves exactly
/// like the wrapped stream (the zero-fault fast path).
class FaultyAxiStream {
 public:
  explicit FaultyAxiStream(AxiTimingConfig config = {},
                           FaultInjector* injector = nullptr) noexcept
      : inner_{config}, injector_{injector} {}

  /// One clock cycle; returns true when a beat of data is delivered.
  bool advance();

  std::size_t beats_delivered() const noexcept {
    return inner_.beats_delivered();
  }
  std::size_t cycles_elapsed() const noexcept {
    return inner_.cycles_elapsed() + injected_;
  }
  /// Storm cycles inserted so far on top of the deterministic pattern.
  std::size_t injected_stall_cycles() const noexcept { return injected_; }

  double efficiency() const noexcept {
    const std::size_t cycles = cycles_elapsed();
    return cycles == 0 ? 0.0
                       : static_cast<double>(beats_delivered()) /
                             static_cast<double>(cycles);
  }

  void reset() noexcept;

 private:
  AxiReadStream inner_;
  FaultInjector* injector_;
  std::size_t pending_ = 0;   // storm cycles still to serve
  std::size_t injected_ = 0;  // storm cycles served so far
};

/// Applies flip/drop/dup events to a copy of a 2-bit packed word stream.
/// Drops and dups shift the remainder of the containing `tile_words`-word
/// window (one beat = 8 words) and the stream realigns at the next tile
/// boundary — the DMA-descriptor-per-tile behaviour of a real card.
/// StallStorm/TransferFail/ReadbackFlip events are ignored here.
std::vector<std::uint64_t> corrupt_words(std::span<const std::uint64_t> words,
                                         std::span<const FaultEvent> events,
                                         std::size_t tile_words);

}  // namespace fabp::hw
