#pragma once
// FPGA power model.
//
// A standard first-order decomposition: static leakage plus dynamic power
// proportional to toggling capacitance (here: active LUTs/FFs/DSPs at the
// kernel clock).  Constants are calibrated to the mid-range Kintex-7 class
// (a fully-utilized design lands near ~11-12 W, consistent with the
// paper's implied FabP power: 23.2x energy efficiency at 1.081x speedup
// over a 250 W GPU implies roughly 250 / (23.2/1.081) ~ 11.7 W).

#include "fabp/hw/device.hpp"

namespace fabp::hw {

struct PowerModelConfig {
  double static_watts = 2.5;          // leakage + I/O + clocking base
  double watts_per_mega_lut_ghz = 150.0;  // dynamic, per 1e6 LUTs at 1 GHz
  double watts_per_mega_ff_ghz = 20.0;    // dynamic, per 1e6 FFs at 1 GHz
  double watts_per_dsp_ghz = 0.01;        // dynamic, per DSP at 1 GHz
  double dram_watts = 1.2;            // one DRAM channel under streaming
  double average_toggle_rate = 0.25;  // fraction of nodes switching/cycle
};

class FpgaPowerModel {
 public:
  explicit FpgaPowerModel(PowerModelConfig config = {}) noexcept
      : config_{config} {}

  /// Total power (W) of a design using `used` resources on `device`,
  /// with `active_channels` DRAM channels streaming.
  double watts(const FpgaDevice& device, const ResourceBudget& used,
               std::size_t active_channels = 1) const noexcept;

  const PowerModelConfig& config() const noexcept { return config_; }

 private:
  PowerModelConfig config_;
};

}  // namespace fabp::hw
