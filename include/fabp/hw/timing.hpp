#pragma once
// Static timing analysis over the netlist model.
//
// A first-order Kintex-7-class delay model: each LUT adds logic delay plus
// an average routed-net delay; carry elements ride the dedicated chain and
// are nearly free.  Paths start at primary inputs or FF outputs (Q) and
// end at FF D pins or designated outputs.  This is what justifies the
// 200 MHz kernel clock the paper's 12.8 GB/s figure implies, and what the
// pipelining ablation (pipeline registers between comparator array,
// Pop-Counter stages and threshold compare) measures against.

#include <cstdint>
#include <vector>

#include "fabp/hw/netlist.hpp"

namespace fabp::hw {

struct TimingModel {
  double lut_delay_ns = 0.25;      // LUT6 logic delay (K7 speedgrade -2)
  double net_delay_ns = 0.45;      // average routed net
  double carry_delay_ns = 0.03;    // per carry element on the chain
  double clk_to_q_ns = 0.35;
  double setup_ns = 0.10;
};

struct TimingReport {
  double critical_path_ns = 0.0;   // worst register-to-register / in-to-out
  std::size_t logic_levels = 0;    // LUTs on the critical path
  NetId critical_net = kInvalidNet;
  double fmax_hz = 0.0;            // 1 / (clk_to_q + path + setup)

  bool meets(double clock_hz) const noexcept { return fmax_hz >= clock_hz; }
};

/// Analyzes the whole netlist: arrival times propagate from primary inputs
/// and FF outputs; the report covers the worst path to any FF D pin or any
/// net (combinational outputs included).
TimingReport analyze_timing(const Netlist& netlist,
                            const TimingModel& model = {});

/// Per-net logic depth (LUT count on the deepest path), for ablations.
std::vector<std::size_t> logic_depths(const Netlist& netlist);

}  // namespace fabp::hw
