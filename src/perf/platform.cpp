#include "fabp/perf/platform.hpp"

namespace fabp::perf {

CpuSpec i7_8700k() { return CpuSpec{}; }

GpuSpec gtx_1080ti() { return GpuSpec{}; }

}  // namespace fabp::perf
