#include "fabp/perf/models.hpp"

#include "fabp/util/timer.hpp"

namespace fabp::perf {

CpuMeasurement measure_tblastn(const bio::ProteinSequence& query,
                               const bio::NucleotideSequence& sample,
                               const blast::TblastnConfig& config) {
  CpuMeasurement m;
  m.sample_bases = sample.size();

  blast::Tblastn engine{query, config};
  util::Timer timer;
  const blast::TblastnResult result = engine.search(sample);
  m.host_seconds = timer.seconds();
  m.stats = result.stats;
  m.bases_per_second = m.host_seconds > 0.0
                           ? static_cast<double>(sample.size()) /
                                 m.host_seconds
                           : 0.0;
  return m;
}

PlatformResult cpu_result(const CpuMeasurement& m, const CpuSpec& cpu,
                          std::size_t db_bases, bool multithreaded) {
  PlatformResult out;
  const double target_rate = m.bases_per_second * cpu.host_to_target_speed;
  double seconds = target_rate > 0.0
                       ? static_cast<double>(db_bases) / target_rate
                       : 0.0;
  if (multithreaded) seconds /= cpu.speedup_12t();
  out.seconds = seconds;
  out.watts =
      multithreaded ? cpu.watts_all_threads : cpu.watts_single_thread;
  out.joules = out.watts * out.seconds;
  return out;
}

PlatformResult gpu_result(const GpuSpec& gpu, std::size_t db_elements,
                          std::size_t query_elements,
                          double launch_overhead_s) {
  PlatformResult out;
  if (db_elements < query_elements) return out;
  const double positions =
      static_cast<double>(db_elements - query_elements + 1);
  const double comparisons =
      positions * static_cast<double>(query_elements);
  const double compute_s = comparisons / gpu.comparisons_per_second();
  // Streaming the 2-bit packed reference through the memory hierarchy;
  // every element is reused query_elements times from shared memory, so
  // DRAM traffic is ~one pass over the packed database.
  const double dma_s =
      (static_cast<double>(db_elements) / 4.0) / gpu.memory_bandwidth_bps;
  out.seconds = std::max(compute_s, dma_s) + launch_overhead_s;
  out.watts = gpu.watts;
  out.joules = out.watts * out.seconds;
  return out;
}

PlatformResult fabp_result(const core::Session& session,
                           const bio::ProteinSequence& query,
                           std::uint32_t threshold, std::size_t db_bytes) {
  const core::HostRunReport report =
      session.estimate(query, threshold, db_bytes);
  PlatformResult out;
  out.seconds = report.total_s;
  out.watts = report.watts;
  out.joules = report.joules;
  return out;
}

}  // namespace fabp::perf
