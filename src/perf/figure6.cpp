#include "fabp/perf/figure6.hpp"

#include <cmath>

#include "fabp/util/stats.hpp"

namespace fabp::perf {

std::vector<Figure6Row> run_figure6(const Figure6Config& config) {
  std::vector<Figure6Row> rows;

  // One synthetic sample reference with planted genes long enough for the
  // largest query; CPU throughput is measured on it per query length.
  const std::size_t max_len =
      *std::max_element(config.query_lengths.begin(),
                        config.query_lengths.end());
  bio::DatabaseSpec db_spec;
  db_spec.total_bases = config.cpu_sample_bases;
  db_spec.gene_count = 8;
  db_spec.gene_length = max_len + 10;
  db_spec.seed = config.seed;
  const bio::SyntheticDatabase sample = bio::SyntheticDatabase::build(db_spec);

  core::Session session{config.host};

  for (std::size_t length : config.query_lengths) {
    Figure6Row row;
    row.query_length = length;
    row.query_elements = 3 * length;

    bio::QuerySpec qspec;
    qspec.length = length;
    qspec.seed = config.seed + length;
    const bio::QuerySet queries = bio::sample_queries(sample, 1, qspec);
    const bio::ProteinSequence& query = queries.queries.front();

    // CPU: measure 1T on the sample, extrapolate to the nominal database.
    const CpuMeasurement m = measure_tblastn(query, sample.dna);
    row.cpu1 = cpu_result(m, config.cpu, config.db_bases, false);
    row.cpu12 = cpu_result(m, config.cpu, config.db_bases, true);

    // GPU: analytic over the same element workload (db bases == elements).
    row.gpu = gpu_result(config.gpu, config.db_bases, row.query_elements);

    // FabP: host estimate over the nominal database (2-bit packed bytes).
    const auto threshold = static_cast<std::uint32_t>(std::llround(
        config.threshold_fraction * static_cast<double>(row.query_elements)));
    row.fabp =
        fabp_result(session, query, threshold, config.db_bases / 4);

    const auto ratio = [](double base, double x) {
      return x > 0.0 ? base / x : 0.0;
    };
    row.speedup_cpu12 = ratio(row.cpu1.seconds, row.cpu12.seconds);
    row.speedup_gpu = ratio(row.cpu1.seconds, row.gpu.seconds);
    row.speedup_fabp = ratio(row.cpu1.seconds, row.fabp.seconds);
    row.energy_cpu12 = ratio(row.cpu1.joules, row.cpu12.joules);
    row.energy_gpu = ratio(row.cpu1.joules, row.gpu.joules);
    row.energy_fabp = ratio(row.cpu1.joules, row.fabp.joules);

    rows.push_back(row);
  }
  return rows;
}

Figure6Summary summarize(const std::vector<Figure6Row>& rows) {
  Figure6Summary s;
  if (rows.empty()) return s;
  std::vector<double> vs_gpu, vs_cpu12, e_gpu, e_cpu12;
  for (const Figure6Row& row : rows) {
    if (row.gpu.seconds > 0) vs_gpu.push_back(row.gpu.seconds / row.fabp.seconds);
    if (row.cpu12.seconds > 0)
      vs_cpu12.push_back(row.cpu12.seconds / row.fabp.seconds);
    if (row.fabp.joules > 0) {
      e_gpu.push_back(row.gpu.joules / row.fabp.joules);
      e_cpu12.push_back(row.cpu12.joules / row.fabp.joules);
    }
  }
  s.fabp_over_gpu_speedup = util::mean(vs_gpu);
  s.fabp_over_cpu12_speedup = util::mean(vs_cpu12);
  s.fabp_over_gpu_energy = util::mean(e_gpu);
  s.fabp_over_cpu12_energy = util::mean(e_cpu12);
  return s;
}

}  // namespace fabp::perf
