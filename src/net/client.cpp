#include "fabp/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "fabp/core/error.hpp"

namespace fabp::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Bounds how long one recv may park when the call has a budget, so a
/// hung or stalled server becomes a transport failure the retry loop
/// can classify, instead of a blocked client thread.
void set_io_timeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    // A zero timeval means "no timeout" to the kernel; round up instead.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool retryable_status(std::uint8_t status) noexcept {
  return status == static_cast<std::uint8_t>(core::ErrorCode::Overloaded) ||
         status == static_cast<std::uint8_t>(core::ErrorCode::QueueFull);
}

}  // namespace

Socket connect_to(const std::string& host, std::uint16_t port) {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!sock.valid()) throw std::runtime_error{"socket() failed"};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error{"bad host address: " + host};
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0)
    throw std::runtime_error{"connect() failed to " + host + ":" +
                             std::to_string(port)};
  return sock;
}

const char* to_string(CallStatus status) noexcept {
  switch (status) {
    case CallStatus::Ok: return "ok";
    case CallStatus::Refused: return "refused";
    case CallStatus::Expired: return "expired";
    case CallStatus::Reset: return "reset";
    case CallStatus::Timeout: return "timeout";
  }
  return "unknown";
}

Client::Client(std::string host, std::uint16_t port, RetryPolicy policy,
               std::uint64_t seed, FaultInjector* injector)
    : host_{std::move(host)},
      port_{port},
      policy_{policy},
      rng_{seed},
      injector_{injector} {}

bool Client::ensure_connected() noexcept {
  if (conn_.valid()) return true;
  try {
    conn_ = connect_to(host_, port_);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool Client::backoff(std::size_t attempt, std::uint32_t hint_ms,
                     double remaining_s) {
  double sleep_ms =
      policy_.initial_backoff_ms *
      std::pow(policy_.multiplier, static_cast<double>(attempt - 1));
  sleep_ms = std::min(sleep_ms, policy_.max_backoff_ms);
  // The server's hint knows the queue; believe it when it asks for more.
  sleep_ms = std::max(sleep_ms, static_cast<double>(hint_ms));
  if (policy_.jitter > 0.0)
    sleep_ms *= 1.0 + policy_.jitter * (2.0 * rng_.uniform() - 1.0);
  sleep_ms = std::max(sleep_ms, 0.0);
  if (remaining_s >= 0.0 && sleep_ms * 1e-3 >= remaining_s)
    return false;  // the budget ends before the retry could land
  if (sleep_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  return true;
}

CallResult Client::align(AlignRequest request, double deadline_s) {
  const bool bounded = deadline_s > 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_s));
  const std::size_t max_attempts = std::max<std::size_t>(
      policy_.max_attempts, 1);

  CallResult result;
  bool last_was_transport = false;
  std::string payload;
  while (result.attempts < max_attempts) {
    double remaining_s = -1.0;
    if (bounded) {
      remaining_s =
          std::chrono::duration<double>(deadline - Clock::now()).count();
      if (remaining_s <= 0.0) {
        result.status = CallStatus::Timeout;
        return result;
      }
      // Propagate what is left of the budget, not the original total:
      // time burned on earlier attempts and sleeps is gone.
      request.deadline_ms = static_cast<std::uint32_t>(std::clamp(
          std::ceil(remaining_s * 1e3), 1.0, 4.0e9));
    }
    ++result.attempts;

    if (!ensure_connected()) {
      last_was_transport = true;
    } else {
      if (bounded) set_io_timeout(conn_.fd(), remaining_s);
      AlignResponse response;
      bool io_ok = false;
      bool integrity = false;
      if (write_frame_with_faults(conn_.fd(), encode(request), injector_)) {
        const FrameRead got = read_frame_status(conn_.fd(), payload);
        if (got == FrameRead::BadCrc) {
          // The response was corrupted in transit but the framing held:
          // the stream is still synchronized, so keep the connection and
          // retry like a transport fault.
          integrity = true;
        } else if (got == FrameRead::Ok && decode(payload, response)) {
          if (response.status ==
              static_cast<std::uint8_t>(
                  core::ErrorCode::IntegrityFailure)) {
            // The server saw *our* frame corrupted; its answer carries
            // no usable request id.  Same recovery: retry.
            integrity = true;
          } else if (response.id == request.id) {
            io_ok = true;
          }
        }
      }
      if (integrity) {
        ++result.integrity_faults;
        last_was_transport = true;
      } else if (io_ok) {
        last_was_transport = false;
        if (response.status == 0) {
          result.status = CallStatus::Ok;
          result.response = std::move(response);
          return result;
        }
        if (response.status ==
            static_cast<std::uint8_t>(core::ErrorCode::DeadlineExceeded)) {
          result.status = CallStatus::Expired;
          result.response = std::move(response);
          return result;
        }
        if (!retryable_status(response.status)) {
          result.status = CallStatus::Refused;
          result.response = std::move(response);
          return result;
        }
        result.response = std::move(response);  // keep the last refusal
      } else {
        // Desynchronized or broken stream: the connection is unusable.
        conn_.close();
        last_was_transport = true;
      }
    }

    if (result.attempts >= max_attempts) break;
    const std::uint32_t hint =
        last_was_transport ? 0 : result.response.retry_after_ms;
    if (bounded)
      remaining_s =
          std::chrono::duration<double>(deadline - Clock::now()).count();
    if (!backoff(result.attempts, hint, remaining_s)) {
      result.status = CallStatus::Timeout;
      result.retries = result.attempts - 1;
      return result;
    }
    ++result.retries;
  }

  result.status =
      last_was_transport ? CallStatus::Reset : CallStatus::Refused;
  return result;
}

}  // namespace fabp::net
