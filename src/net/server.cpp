#include "fabp/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "fabp/util/stats.hpp"

namespace fabp::net {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

bool read_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0 && errno == EINTR) continue;  // signal mid-read: resume
    if (n <= 0) return false;               // EOF or real error
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal mid-send: resume
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::uint32_t decode_length(const char* prefix) {
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(prefix[i]))
              << (8 * i);
  return length;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::interrupt() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

FrameRead read_frame_status(int fd, std::string& payload,
                            std::uint32_t max_bytes) {
  char prefix[4];
  if (!read_exact(fd, prefix, sizeof prefix)) return FrameRead::Closed;
  const std::uint32_t length = decode_length(prefix);
  // `max_bytes` bounds the *payload*; the body carries 4 more CRC bytes.
  if (length > max_bytes + kFrameCrcBytes) return FrameRead::TooLarge;
  payload.resize(length);
  if (length > 0 && !read_exact(fd, payload.data(), length))
    return FrameRead::Closed;
  std::string_view verified;
  if (!verify_frame_body(payload, verified)) return FrameRead::BadCrc;
  payload.resize(verified.size());  // strip the CRC trailer in place
  return FrameRead::Ok;
}

bool read_frame(int fd, std::string& payload, std::uint32_t max_bytes) {
  return read_frame_status(fd, payload, max_bytes) == FrameRead::Ok;
}

bool write_frame(int fd, std::string_view payload) {
  const std::string framed = frame(payload);
  return write_exact(fd, framed.data(), framed.size());
}

WireServer::WireServer(core::Engine& engine, ServerConfig config,
                       std::function<std::string()> stats_text,
                       SwapHandler swap_handler)
    : engine_{engine},
      config_{std::move(config)},
      stats_text_{std::move(stats_text)},
      swap_handler_{std::move(swap_handler)} {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!sock.valid()) throw std::runtime_error{"socket() failed"};
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error{"bad bind address: " + config_.bind_address};
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw std::runtime_error{"bind() failed on " + config_.bind_address};
  if (::listen(sock.fd(), 64) != 0)
    throw std::runtime_error{"listen() failed"};

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    throw std::runtime_error{"getsockname() failed"};
  port_ = ntohs(bound.sin_port);
  listener_ = std::move(sock);
}

WireServer::~WireServer() { shutdown(); }

void WireServer::serve() {
  for (;;) {
    Socket conn{::accept(listener_.fd(), nullptr, nullptr)};
    {
      std::lock_guard lock{mutex_};
      if (stopping_) break;  // shutdown() interrupted the accept
      if (!conn.valid()) continue;
      ++accepted_;
      auto state = std::make_shared<ConnState>();
      state->fd = conn.fd();
      conns_.push_back(state);
      ++active_handlers_;
      // Per-connection fault stream index: deterministic given arrival
      // order, never shared across handler threads.
      const std::uint64_t stream = accepted_;
      connections_.emplace_back(
          [this, state, stream,
           c = std::make_shared<Socket>(std::move(conn))]() mutable {
            handle_connection(std::move(*c), std::move(state), stream);
          });
    }
  }
}

void WireServer::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock lock{mutex_};
    if (stopping_) return;
    stopping_ = true;
    listener_.interrupt();
    // Half-close every connection's read side: handlers see EOF, stop
    // admitting, and finish sending the responses already in flight.
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RD);

    // Bounded drain: give in-flight work drain_timeout_s to complete.
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               std::max(config_.drain_timeout_s, 0.0)));
    drain_cv_.wait_until(lock, deadline,
                         [this] { return active_handlers_ == 0; });

    if (active_handlers_ > 0) {
      // Drain deadline passed.  Force-cancel still-queued requests so
      // their handlers get typed Cancelled outcomes immediately instead
      // of waiting behind the backlog, then tear the sockets down so
      // blocked sends fail fast.
      auto live = conns_;
      lock.unlock();
      std::size_t cancelled = 0;
      for (const auto& c : live) {
        std::lock_guard state_lock{c->m};
        for (PendingReply& slot : c->pending)
          if (slot.has_ticket && slot.ticket.cancel()) ++cancelled;
        ::shutdown(c->fd, SHUT_RDWR);
      }
      lock.lock();
      force_cancelled_ += cancelled;
    }
    to_join.swap(connections_);
  }
  for (std::thread& t : to_join)
    if (t.joinable()) t.join();
  // The listener fd stays open (but shutdown) until destruction: closing
  // it here could race a serve() thread still parked in accept() with a
  // reused fd number.
}

ServerMetrics WireServer::metrics() const {
  std::lock_guard lock{mutex_};
  ServerMetrics m;
  m.connections = accepted_;
  m.requests = requests_;
  m.errors = errors_;
  m.malformed = malformed_;
  m.integrity = integrity_;
  m.swaps = swaps_;
  m.shed = shed_;
  m.io_timeouts = io_timeouts_;
  m.force_cancelled = force_cancelled_;
  if (!latencies_s_.empty()) {
    m.p50_ms = 1e3 * util::percentile(latencies_s_, 50.0);
    m.p99_ms = 1e3 * util::percentile(latencies_s_, 99.0);
    m.max_ms =
        1e3 * *std::max_element(latencies_s_.begin(), latencies_s_.end());
  }
  return m;
}

void WireServer::record_latency(double seconds) {
  std::lock_guard lock{mutex_};
  latencies_s_.push_back(seconds);
  recent_ms_[recent_next_] = 1e3 * seconds;
  recent_next_ = (recent_next_ + 1) % recent_ms_.size();
  recent_count_ = std::min(recent_count_ + 1, recent_ms_.size());
}

double WireServer::recent_percentile_ms(double pct) const {
  if (recent_count_ == 0) return 0.0;
  return util::percentile(std::span{recent_ms_.data(), recent_count_}, pct);
}

std::uint32_t WireServer::retry_hint_ms(std::size_t depth) const {
  double per_request_ms = 1.0;
  {
    std::lock_guard lock{mutex_};
    per_request_ms = std::max(recent_percentile_ms(50.0), 1.0);
  }
  const double workers =
      static_cast<double>(std::max<std::size_t>(engine_.config().workers, 1));
  const double hint =
      per_request_ms * static_cast<double>(depth + 1) / workers;
  return static_cast<std::uint32_t>(std::clamp(hint, 1.0, 2000.0));
}

std::string WireServer::finish_align(PendingReply& slot) {
  AlignResponse response;
  response.id = slot.id;
  auto outcome = slot.ticket.wait();
  if (outcome.has_value()) {
    response.hits = std::move(outcome.value().hits);
    response.reverse_hits = std::move(outcome.value().reverse_hits);
    response.generation = outcome.value().generation;
  } else {
    response.status = static_cast<std::uint8_t>(outcome.error().code);
    response.error = outcome.error().message;
    // Both refusal flavors are backpressure; give the back-off hint.
    if (outcome.error().code == core::ErrorCode::QueueFull ||
        outcome.error().code == core::ErrorCode::TenantQuotaExceeded)
      response.retry_after_ms = retry_hint_ms(engine_.queue_depth());
  }
  const double seconds = seconds_between(slot.t0, Clock::now());
  response.server_seconds = seconds;
  record_latency(seconds);
  std::string encoded = encode(response);
  if (encoded.size() > kMaxFrameBytes) {
    // The wire contract forbids emitting this; answer with the typed
    // error instead of a frame the client must reject.
    response.hits.clear();
    response.reverse_hits.clear();
    response.status =
        static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
    response.error = "hit list exceeds the response frame limit";
    encoded = encode(response);
  }
  {
    std::lock_guard lock{mutex_};
    ++requests_;
    if (response.status != 0) ++errors_;
  }
  return encoded;
}

bool WireServer::process_frame(std::string_view payload, ConnState& state) {
  switch (peek_type(payload)) {
    case MessageType::AlignRequest: {
      PendingReply slot;
      slot.t0 = Clock::now();
      AlignRequest request;
      if (!decode(payload, request)) {
        // Unparseable align frame: answer with BadArgument rather than
        // hanging the client, then keep the connection.
        {
          std::lock_guard lock{mutex_};
          ++malformed_;
          ++requests_;
          ++errors_;
        }
        AlignResponse response;
        response.status =
            static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
        response.error = "malformed align request";
        slot.ready_payload = encode(response);
        std::lock_guard state_lock{state.m};
        state.pending.push_back(std::move(slot));
        return true;
      }
      slot.id = request.id;

      // Shed *before* enqueue: a queue already past the configured depth
      // (or a recent p99 past its bound) means this request would only
      // wait out its budget — refuse it now with a typed Overloaded and
      // a back-off hint instead of growing the queue.
      const std::size_t depth = engine_.queue_depth();
      bool shed =
          config_.shed_queue_depth > 0 && depth >= config_.shed_queue_depth;
      if (!shed && config_.shed_p99_ms > 0.0) {
        std::lock_guard lock{mutex_};
        shed = recent_percentile_ms(99.0) > config_.shed_p99_ms;
      }
      if (shed) {
        AlignResponse response;
        response.id = request.id;
        response.status =
            static_cast<std::uint8_t>(core::ErrorCode::Overloaded);
        response.retry_after_ms = retry_hint_ms(depth);
        response.error = "server overloaded; retry after the hint";
        {
          std::lock_guard lock{mutex_};
          ++shed_;
          ++requests_;
          ++errors_;
        }
        slot.ready_payload = encode(response);
        std::lock_guard state_lock{state.m};
        state.pending.push_back(std::move(slot));
        return true;
      }

      try {
        const auto protein = bio::ProteinSequence::parse(request.protein);
        core::RequestOptions options;
        // Deadline propagation: the wire budget becomes the engine
        // deadline, checked at claim and again at device dispatch.
        options.timeout_s =
            static_cast<double>(request.deadline_ms) / 1e3;
        // Wire v3 routing: named database, billed tenant (empty = the
        // engine defaults).  Unknown names come back as typed errors
        // through the ticket, like any other admission refusal.
        options.database = request.database;
        options.tenant = request.tenant;
        // Route through submit() so concurrent connections coalesce
        // into shared scans like in-process engine callers.
        slot.ticket = engine_.submit(protein, request.threshold, options);
        slot.has_ticket = true;
      } catch (const std::exception& e) {
        AlignResponse response;
        response.id = request.id;
        response.status =
            static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
        response.error = e.what();
        {
          std::lock_guard lock{mutex_};
          ++requests_;
          ++errors_;
        }
        slot.ready_payload = encode(response);
      }
      std::lock_guard state_lock{state.m};
      state.pending.push_back(std::move(slot));
      return true;
    }
    case MessageType::StatsRequest: {
      PendingReply slot;
      StatsResponse stats;
      stats.text = stats_text_ ? stats_text_() : std::string{};
      slot.ready_payload = encode(stats);
      std::lock_guard state_lock{state.m};
      state.pending.push_back(std::move(slot));
      return true;
    }
    case MessageType::SwapDatabaseRequest: {
      PendingReply slot;
      SwapDatabaseResponse response;
      SwapDatabaseRequest request;
      if (!decode(payload, request)) {
        std::lock_guard lock{mutex_};
        ++malformed_;
        return false;  // corrupted admin frame: drop the connection
      }
      if (!swap_handler_) {
        response.status =
            static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
        response.error = "this server does not accept database swaps";
      } else {
        // The handler compiles and publishes the new generation on this
        // connection's thread; align traffic on other connections keeps
        // flowing against the old generation meanwhile.
        response = swap_handler_(request);
      }
      {
        std::lock_guard lock{mutex_};
        ++swaps_;
      }
      slot.ready_payload = encode(response);
      std::lock_guard state_lock{state.m};
      state.pending.push_back(std::move(slot));
      return true;
    }
    default: {
      std::lock_guard lock{mutex_};
      ++malformed_;
      return false;  // alien frame: drop the connection
    }
  }
}

void WireServer::handle_connection(Socket conn,
                                   std::shared_ptr<ConnState> state,
                                   std::uint64_t stream) {
  set_nonblocking(conn.fd());
  FaultInjector injector{config_.fault, stream};
  const bool faulty = config_.fault.enabled();

  const std::size_t cap =
      std::max<std::size_t>(config_.max_inflight_per_connection, 1);
  const double idle_s = config_.idle_timeout_s;
  const double io_s = config_.io_timeout_s;

  std::string inbuf;   // raw inbound bytes, parsed into frames
  std::string outbuf;  // encoded outbound frames
  std::size_t out_off = 0;
  bool reading = true;           // false after EOF / drain half-close
  bool dead = false;             // tear down now
  bool close_after_flush = false;  // finish sending, then tear down
  bool reset_on_close = false;   // abortive close (fault plan)
  auto last_rx = Clock::now();
  auto last_tx = last_rx;

  // Appends one payload to outbuf as a wire frame, routed through the
  // per-connection fault plan when chaos is on.
  const auto emit = [&](std::string_view payload) {
    std::string framed = frame(payload);
    if (!faulty) {
      outbuf += framed;
      return;
    }
    const FramePlan plan = injector.plan_frame(framed.size());
    if (plan.delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
    if (plan.reset) {
      reset_on_close = true;
      dead = true;
      return;
    }
    if (plan.truncate_at >= 0) {
      outbuf.append(framed.data(),
                    static_cast<std::size_t>(plan.truncate_at));
      reset_on_close = true;
      close_after_flush = true;
      return;
    }
    if (plan.corrupt_mask != 0 && plan.corrupt_offset < framed.size())
      framed[plan.corrupt_offset] = static_cast<char>(
          static_cast<std::uint8_t>(framed[plan.corrupt_offset]) ^
          plan.corrupt_mask);
    outbuf += framed;
    if (plan.duplicate) outbuf += framed;
  };

  while (!dead) {
    // 1) Promote finished work into outbuf, strictly in request order
    //    (pipelined peers rely on FIFO responses).
    std::size_t inflight = 0;
    {
      std::lock_guard state_lock{state->m};
      while (!state->pending.empty() && !close_after_flush && !dead) {
        PendingReply& front = state->pending.front();
        if (front.has_ticket && !front.ticket.ready()) break;
        PendingReply slot = std::move(front);
        state->pending.pop_front();
        emit(slot.has_ticket ? finish_align(slot) : slot.ready_payload);
      }
      inflight = state->pending.size();
    }

    // 2) Parse buffered frames while under the pipeline cap.
    while (!dead && !close_after_flush && inflight < cap &&
           inbuf.size() >= 4) {
      const std::uint32_t length = decode_length(inbuf.data());
      if (length > kMaxRequestFrameBytes + kFrameCrcBytes) {
        // Attacker-controlled length beyond the request bound: reject
        // before any allocation and drop the connection.
        std::lock_guard lock{mutex_};
        ++malformed_;
        dead = true;
        break;
      }
      if (inbuf.size() < 4 + static_cast<std::size_t>(length)) break;
      const std::string_view body{inbuf.data() + 4, length};
      std::string_view payload;
      if (!verify_frame_body(body, payload)) {
        // Payload corrupted in transit (wire v3 CRC mismatch).  The
        // framing itself held, so the stream is still synchronized:
        // answer a typed IntegrityFailure and keep the connection.  (A
        // flipped bit in the length prefix instead desyncs the stream
        // and is caught by the malformed/oversized/io-timeout paths.)
        {
          std::lock_guard lock{mutex_};
          ++integrity_;
          ++requests_;
          ++errors_;
        }
        AlignResponse response;
        response.status =
            static_cast<std::uint8_t>(core::ErrorCode::IntegrityFailure);
        response.error = "frame payload failed its CRC32 check";
        PendingReply slot;
        slot.ready_payload = encode(response);
        {
          std::lock_guard state_lock{state->m};
          state->pending.push_back(std::move(slot));
        }
      } else if (!process_frame(payload, *state)) {
        dead = true;
      }
      inbuf.erase(0, 4 + static_cast<std::size_t>(length));
      std::lock_guard state_lock{state->m};
      inflight = state->pending.size();
    }
    if (dead) break;

    // 3) Exit checks: drained and flushed means a clean close.
    const bool flushed = out_off >= outbuf.size();
    if (close_after_flush && flushed) break;
    if (!reading && flushed) {
      std::lock_guard state_lock{state->m};
      if (state->pending.empty()) break;
    }

    // 4) Poll for socket readiness, with a timeout that serves whichever
    //    supervisor fires first: ticket readiness (short tick), idle
    //    reap, or a stalled peer (io timeout).
    pollfd pfd{};
    pfd.fd = conn.fd();
    if (reading && !close_after_flush && inflight < cap)
      pfd.events |= POLLIN;
    if (!flushed) pfd.events |= POLLOUT;

    int timeout_ms = -1;
    if (inflight > 0) {
      timeout_ms = 2;  // tickets resolve out-of-band; re-check soon
    } else {
      double wait_s = -1.0;
      const auto consider = [&](double candidate) {
        if (candidate < 0.0) candidate = 0.0;
        if (wait_s < 0.0 || candidate < wait_s) wait_s = candidate;
      };
      const auto now = Clock::now();
      if (idle_s > 0.0 && reading && flushed && inbuf.empty())
        consider(idle_s - seconds_between(last_rx, now));
      if (io_s > 0.0 && !inbuf.empty())
        consider(io_s - seconds_between(last_rx, now));
      if (io_s > 0.0 && !flushed)
        consider(io_s - seconds_between(last_tx, now));
      if (wait_s >= 0.0)
        timeout_ms = std::clamp(
            static_cast<int>(std::ceil(wait_s * 1e3)), 1, 1000);
    }
    const int nready = ::poll(&pfd, 1, timeout_ms);
    if (nready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    // 5) Inbound bytes (one bounded recv per iteration keeps a flooding
    //    peer's buffer growth capped by the parse/pipeline backpressure).
    if (reading && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[16384];
      for (;;) {
        const ssize_t n = ::recv(conn.fd(), buf, sizeof buf, 0);
        if (n > 0) {
          inbuf.append(buf, static_cast<std::size_t>(n));
          last_rx = Clock::now();
        } else if (n == 0) {
          reading = false;  // peer half-closed (or drain SHUT_RD)
        } else if (errno == EINTR) {
          continue;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
          dead = true;
        }
        break;
      }
    }

    // 6) Outbound bytes.
    if (!dead && out_off < outbuf.size() &&
        (pfd.revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::send(conn.fd(), outbuf.data() + out_off,
                               outbuf.size() - out_off, MSG_NOSIGNAL);
      if (n > 0) {
        out_off += static_cast<std::size_t>(n);
        last_tx = Clock::now();
        if (out_off >= outbuf.size()) {
          outbuf.clear();
          out_off = 0;
        }
      } else if (n < 0 && errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK) {
        dead = true;
      }
    }

    // 7) Supervision: reap idle and stalled peers instead of letting
    //    them pin this thread (slow-loris hardening).
    if (!dead) {
      const auto now = Clock::now();
      const bool out_pending = out_off < outbuf.size();
      if (io_s > 0.0 && out_pending &&
          seconds_between(last_tx, now) > io_s) {
        std::lock_guard lock{mutex_};
        ++io_timeouts_;
        dead = true;
      } else if (io_s > 0.0 && !inbuf.empty() && reading &&
                 seconds_between(last_rx, now) > io_s) {
        // Bytes stopped flowing mid-frame: the classic slow loris.
        std::lock_guard lock{mutex_};
        ++io_timeouts_;
        dead = true;
      } else if (idle_s > 0.0 && reading && inflight == 0 &&
                 !out_pending && inbuf.empty() &&
                 seconds_between(last_rx, now) > idle_s) {
        std::lock_guard lock{mutex_};
        ++io_timeouts_;
        dead = true;
      }
    }
  }

  // Cancel whatever never got answered so the engine does not burn a
  // scan on a connection that is gone (claimed requests finish anyway).
  {
    std::lock_guard state_lock{state->m};
    for (PendingReply& slot : state->pending)
      if (slot.has_ticket) slot.ticket.cancel();
    state->pending.clear();
  }
  if (reset_on_close) arm_reset(conn.fd());
  {
    std::lock_guard lock{mutex_};
    conns_.erase(std::remove(conns_.begin(), conns_.end(), state),
                 conns_.end());
    --active_handlers_;
  }
  drain_cv_.notify_all();
}

}  // namespace fabp::net
