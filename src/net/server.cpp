#include "fabp/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "fabp/util/stats.hpp"

namespace fabp::net {
namespace {

bool read_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) return false;  // EOF or error (EINTR is not expected:
                               // signals are routed to a sigwait thread)
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_exact(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::interrupt() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool read_frame(int fd, std::string& payload, std::uint32_t max_bytes) {
  char prefix[4];
  if (!read_exact(fd, prefix, sizeof prefix)) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(prefix[i]))
              << (8 * i);
  if (length > max_bytes) return false;
  payload.resize(length);
  return length == 0 || read_exact(fd, payload.data(), length);
}

bool write_frame(int fd, std::string_view payload) {
  const std::string framed = frame(payload);
  return write_exact(fd, framed.data(), framed.size());
}

WireServer::WireServer(core::Engine& engine, ServerConfig config,
                       std::function<std::string()> stats_text)
    : engine_{engine},
      config_{std::move(config)},
      stats_text_{std::move(stats_text)} {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!sock.valid()) throw std::runtime_error{"socket() failed"};
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error{"bad bind address: " + config_.bind_address};
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    throw std::runtime_error{"bind() failed on " + config_.bind_address};
  if (::listen(sock.fd(), 64) != 0)
    throw std::runtime_error{"listen() failed"};

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    throw std::runtime_error{"getsockname() failed"};
  port_ = ntohs(bound.sin_port);
  listener_ = std::move(sock);
}

WireServer::~WireServer() { shutdown(); }

void WireServer::serve() {
  for (;;) {
    Socket conn{::accept(listener_.fd(), nullptr, nullptr)};
    {
      std::lock_guard lock{mutex_};
      if (stopping_) break;  // shutdown() interrupted the accept
      if (!conn.valid()) continue;
      ++accepted_;
      live_fds_.push_back(conn.fd());
      connections_.emplace_back(
          [this, c = std::make_shared<Socket>(std::move(conn))]() mutable {
            handle_connection(std::move(*c));
          });
    }
  }
}

void WireServer::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock{mutex_};
    if (stopping_) return;
    stopping_ = true;
    listener_.interrupt();
    // Wake every connection thread parked in recv; their reads fail and
    // the threads run to completion (responses in flight are sent first
    // on the write half-closing only after send returns).
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RD);
    to_join.swap(connections_);
  }
  for (std::thread& t : to_join)
    if (t.joinable()) t.join();
  // The listener fd stays open (but shutdown) until destruction: closing
  // it here could race a serve() thread still parked in accept() with a
  // reused fd number.
}

ServerMetrics WireServer::metrics() const {
  std::lock_guard lock{mutex_};
  ServerMetrics m;
  m.connections = accepted_;
  m.requests = requests_;
  m.errors = errors_;
  m.malformed = malformed_;
  if (!latencies_s_.empty()) {
    m.p50_ms = 1e3 * util::percentile(latencies_s_, 50.0);
    m.p99_ms = 1e3 * util::percentile(latencies_s_, 99.0);
    m.max_ms =
        1e3 * *std::max_element(latencies_s_.begin(), latencies_s_.end());
  }
  return m;
}

void WireServer::record_latency(double seconds) {
  std::lock_guard lock{mutex_};
  latencies_s_.push_back(seconds);
}

void WireServer::handle_connection(Socket conn) {
  std::string payload;
  while (read_frame(conn.fd(), payload, kMaxRequestFrameBytes)) {
    switch (peek_type(payload)) {
      case MessageType::AlignRequest: {
        AlignRequest request;
        AlignResponse response;
        if (!decode(payload, request)) {
          std::lock_guard lock{mutex_};
          ++malformed_;
          // Unparseable align frame: answer with BadArgument rather than
          // hanging the client, then keep the connection.
          response.status =
              static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
          response.error = "malformed align request";
          if (!write_frame(conn.fd(), encode(response))) goto done;
          break;
        }
        response.id = request.id;
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const auto protein = bio::ProteinSequence::parse(request.protein);
          // Route through submit() so concurrent connections coalesce
          // into shared scans like in-process engine callers.
          auto outcome =
              engine_.submit(protein, request.threshold).wait();
          if (outcome.has_value()) {
            response.hits = std::move(outcome.value().hits);
            response.reverse_hits = std::move(outcome.value().reverse_hits);
          } else {
            response.status =
                static_cast<std::uint8_t>(outcome.error().code);
            response.error = outcome.error().message;
          }
        } catch (const std::exception& e) {
          response.status =
              static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
          response.error = e.what();
        }
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        response.server_seconds = seconds;
        record_latency(seconds);
        std::string encoded = encode(response);
        if (encoded.size() > kMaxFrameBytes) {
          // The wire contract forbids emitting this; answer with the
          // typed error instead of a frame the client must reject.
          response.hits.clear();
          response.reverse_hits.clear();
          response.status =
              static_cast<std::uint8_t>(core::ErrorCode::BadArgument);
          response.error = "hit list exceeds the response frame limit";
          encoded = encode(response);
        }
        {
          std::lock_guard lock{mutex_};
          ++requests_;
          if (response.status != 0) ++errors_;
        }
        if (!write_frame(conn.fd(), encoded)) goto done;
        break;
      }
      case MessageType::StatsRequest: {
        StatsResponse stats;
        stats.text = stats_text_ ? stats_text_() : std::string{};
        if (!write_frame(conn.fd(), encode(stats))) goto done;
        break;
      }
      default: {
        std::lock_guard lock{mutex_};
        ++malformed_;
        goto done;  // alien frame: drop the connection
      }
    }
  }
done:
  std::lock_guard lock{mutex_};
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), conn.fd()),
                  live_fds_.end());
}

}  // namespace fabp::net
