#include "fabp/net/fault.hpp"

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>

#include "fabp/net/server.hpp"
#include "fabp/net/wire.hpp"

namespace fabp::net {

namespace {

// Blocking send loop, local to the fault path (the production write path
// lives in server.cpp and is poll-supervised; fault writes come from
// test harnesses and loadgen attacker threads, where blocking is fine).
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* to_string(NetFaultKind kind) noexcept {
  switch (kind) {
    case NetFaultKind::CorruptByte: return "corrupt-byte";
    case NetFaultKind::TruncateFrame: return "truncate-frame";
    case NetFaultKind::Reset: return "reset";
    case NetFaultKind::DuplicateFrame: return "duplicate-frame";
    case NetFaultKind::Delay: return "delay";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t stream)
    : config_{config},
      corrupt_rng_{util::SplitMix64{config.seed ^ (stream * 5 + 0)}.next()},
      truncate_rng_{util::SplitMix64{config.seed ^ (stream * 5 + 1)}.next()},
      reset_rng_{util::SplitMix64{config.seed ^ (stream * 5 + 2)}.next()},
      dup_rng_{util::SplitMix64{config.seed ^ (stream * 5 + 3)}.next()},
      delay_rng_{util::SplitMix64{config.seed ^ (stream * 5 + 4)}.next()} {}

FramePlan FaultInjector::plan_frame(std::size_t frame_bytes) {
  const std::size_t index = frame_++;
  FramePlan plan;
  if (delay_rng_.chance(config_.delay_rate)) {
    plan.delay_ms = config_.delay_ms;
    log_.push_back(NetFaultEvent{NetFaultKind::Delay, index, 0});
  }
  // Reset and truncate both kill the connection; reset wins when both
  // fire (no bytes make it out).
  if (reset_rng_.chance(config_.reset_rate)) {
    plan.reset = true;
    log_.push_back(NetFaultEvent{NetFaultKind::Reset, index, 0});
    return plan;
  }
  if (frame_bytes > 0 && truncate_rng_.chance(config_.truncate_rate)) {
    // Cut anywhere in the wire frame, including inside the 4-byte length
    // prefix — a half-written prefix is precisely the malformed input
    // the peer's reader has to fail soft on.
    plan.truncate_at =
        static_cast<std::ptrdiff_t>(truncate_rng_.bounded(frame_bytes));
    log_.push_back(NetFaultEvent{NetFaultKind::TruncateFrame, index,
                                 static_cast<std::size_t>(plan.truncate_at)});
    return plan;
  }
  if (dup_rng_.chance(config_.dup_rate)) {
    plan.duplicate = true;
    log_.push_back(NetFaultEvent{NetFaultKind::DuplicateFrame, index, 0});
  }
  // Corruption stays inside the payload (offset >= 4): flipping a length
  // prefix byte could announce bytes that never arrive, which is a hang,
  // not a corruption — truncation covers the prefix-damage case with a
  // cut that terminates the wait.
  if (frame_bytes > 4 && corrupt_rng_.chance(config_.corrupt_rate)) {
    plan.corrupt_offset = 4 + corrupt_rng_.bounded(frame_bytes - 4);
    plan.corrupt_mask =
        static_cast<std::uint8_t>(1u << corrupt_rng_.bounded(8));
    log_.push_back(NetFaultEvent{NetFaultKind::CorruptByte, index,
                                 plan.corrupt_offset});
  }
  return plan;
}

void arm_reset(int fd) noexcept {
  const linger abort_on_close{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
               sizeof abort_on_close);
}

bool write_frame_with_faults(int fd, std::string_view payload,
                             FaultInjector* injector) {
  if (injector == nullptr || !injector->config().enabled())
    return write_frame(fd, payload);

  std::string framed = frame(payload);
  const FramePlan plan = injector->plan_frame(framed.size());
  if (plan.delay_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
  if (plan.reset) {
    arm_reset(fd);
    return false;
  }
  if (plan.truncate_at >= 0) {
    send_all(fd, framed.data(), static_cast<std::size_t>(plan.truncate_at));
    arm_reset(fd);
    return false;
  }
  if (plan.corrupt_mask != 0 && plan.corrupt_offset < framed.size())
    framed[plan.corrupt_offset] = static_cast<char>(
        static_cast<std::uint8_t>(framed[plan.corrupt_offset]) ^
        plan.corrupt_mask);
  if (!send_all(fd, framed.data(), framed.size())) return false;
  if (plan.duplicate && !send_all(fd, framed.data(), framed.size()))
    return false;
  return true;
}

}  // namespace fabp::net
