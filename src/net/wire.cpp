#include "fabp/net/wire.hpp"

#include <cstring>

#include "fabp/util/crc32.hpp"

namespace fabp::net {
namespace {

// Little-endian append/read helpers.  memcpy keeps them alignment-safe;
// the reader tracks a cursor and fails soft past the end.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_hits(std::string& out, const std::vector<core::Hit>& hits) {
  put_u32(out, static_cast<std::uint32_t>(hits.size()));
  for (const core::Hit& h : hits) {
    put_u64(out, h.position);
    put_u32(out, h.score);
  }
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_{data} {}

  bool u8(std::uint8_t& v) {
    if (data_.size() - pos_ < 1) return fail();
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (data_.size() - pos_ < 4) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (data_.size() - pos_ < 8) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  bool string(std::string& v) {
    std::uint32_t n = 0;
    if (!u32(n) || data_.size() - pos_ < n) return fail();
    v.assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  bool hits(std::vector<core::Hit>& v) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    // 12 bytes per entry; a lying count must not reserve gigabytes.
    if (data_.size() - pos_ < std::size_t{n} * 12) return fail();
    v.clear();
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      core::Hit h;
      std::uint64_t pos = 0;
      if (!u64(pos) || !u32(h.score)) return false;
      h.position = static_cast<std::size_t>(pos);
      v.push_back(h);
    }
    return true;
  }

  /// A well-formed payload is consumed exactly; trailing garbage is a
  /// framing bug worth rejecting.
  bool exhausted() const noexcept { return ok_ && pos_ == data_.size(); }
  bool ok() const noexcept { return ok_; }

 private:
  bool fail() noexcept {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool read_header(Reader& r, MessageType expected) {
  std::uint8_t type = 0;
  std::uint8_t version = 0;
  return r.u8(type) && r.u8(version) &&
         type == static_cast<std::uint8_t>(expected) &&
         version == kProtocolVersion;
}

void put_header(std::string& out, MessageType type) {
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u8(out, kProtocolVersion);
}

}  // namespace

std::string encode(const AlignRequest& message) {
  std::string out;
  out.reserve(2 + 8 + 4 + 4 + 12 + message.protein.size() +
              message.database.size() + message.tenant.size());
  put_header(out, MessageType::AlignRequest);
  put_u64(out, message.id);
  put_u32(out, message.threshold);
  put_u32(out, message.deadline_ms);
  put_string(out, message.protein);
  put_string(out, message.database);
  put_string(out, message.tenant);
  return out;
}

std::string encode(const AlignResponse& message) {
  std::string out;
  out.reserve(2 + 8 + 1 + 8 + 4 + message.error.size() +
              12 * (message.hits.size() + message.reverse_hits.size()) + 8);
  put_header(out, MessageType::AlignResponse);
  put_u64(out, message.id);
  put_u8(out, message.status);
  put_u32(out, message.retry_after_ms);
  put_f64(out, message.server_seconds);
  put_u64(out, message.generation);
  put_string(out, message.error);
  put_hits(out, message.hits);
  put_hits(out, message.reverse_hits);
  return out;
}

std::string encode(const SwapDatabaseRequest& message) {
  std::string out;
  out.reserve(2 + 12 + message.name.size() + message.path.size() +
              message.bases.size());
  put_header(out, MessageType::SwapDatabaseRequest);
  put_string(out, message.name);
  put_string(out, message.path);
  put_string(out, message.bases);
  return out;
}

std::string encode(const SwapDatabaseResponse& message) {
  std::string out;
  out.reserve(2 + 1 + 8 + 4 + message.error.size());
  put_header(out, MessageType::SwapDatabaseResponse);
  put_u8(out, message.status);
  put_u64(out, message.generation);
  put_string(out, message.error);
  return out;
}

std::string encode_stats_request() {
  std::string out;
  put_header(out, MessageType::StatsRequest);
  return out;
}

std::string encode(const StatsResponse& message) {
  std::string out;
  out.reserve(2 + 4 + message.text.size());
  put_header(out, MessageType::StatsResponse);
  put_string(out, message.text);
  return out;
}

std::string frame(std::string_view payload) {
  // Body = payload + CRC32(payload): corruption anywhere in the payload
  // is detected end-to-end, whichever direction the frame travels.  (A
  // flipped bit in the 4-byte length prefix still surfaces as a desync /
  // oversized frame, which the existing malformed-frame hardening
  // already drops.)
  std::string out;
  out.reserve(4 + payload.size() + kFrameCrcBytes);
  put_u32(out,
          static_cast<std::uint32_t>(payload.size()) + kFrameCrcBytes);
  out.append(payload);
  put_u32(out, util::crc32(payload.data(), payload.size()));
  return out;
}

bool verify_frame_body(std::string_view body, std::string_view& payload) {
  if (body.size() < kFrameCrcBytes) return false;
  const std::string_view data = body.substr(0, body.size() - kFrameCrcBytes);
  std::uint32_t carried = 0;
  for (int i = 0; i < 4; ++i)
    carried |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
                   body[body.size() - kFrameCrcBytes + i]))
               << (8 * i);
  if (carried != util::crc32(data.data(), data.size())) return false;
  payload = data;
  return true;
}

MessageType peek_type(std::string_view payload) noexcept {
  return payload.empty()
             ? static_cast<MessageType>(0)
             : static_cast<MessageType>(
                   static_cast<std::uint8_t>(payload.front()));
}

bool decode(std::string_view payload, AlignRequest& out) {
  if (payload.size() > kMaxRequestFrameBytes) return false;
  Reader r{payload};
  AlignRequest m;
  if (!read_header(r, MessageType::AlignRequest) || !r.u64(m.id) ||
      !r.u32(m.threshold) || !r.u32(m.deadline_ms) || !r.string(m.protein) ||
      !r.string(m.database) || !r.string(m.tenant) || !r.exhausted())
    return false;
  out = std::move(m);
  return true;
}

bool decode(std::string_view payload, AlignResponse& out) {
  if (payload.size() > kMaxFrameBytes) return false;
  Reader r{payload};
  AlignResponse m;
  if (!read_header(r, MessageType::AlignResponse) || !r.u64(m.id) ||
      !r.u8(m.status) || !r.u32(m.retry_after_ms) ||
      !r.f64(m.server_seconds) || !r.u64(m.generation) ||
      !r.string(m.error) || !r.hits(m.hits) || !r.hits(m.reverse_hits) ||
      !r.exhausted())
    return false;
  out = std::move(m);
  return true;
}

bool decode(std::string_view payload, SwapDatabaseRequest& out) {
  if (payload.size() > kMaxRequestFrameBytes) return false;
  Reader r{payload};
  SwapDatabaseRequest m;
  if (!read_header(r, MessageType::SwapDatabaseRequest) ||
      !r.string(m.name) || !r.string(m.path) || !r.string(m.bases) ||
      !r.exhausted())
    return false;
  out = std::move(m);
  return true;
}

bool decode(std::string_view payload, SwapDatabaseResponse& out) {
  if (payload.size() > kMaxFrameBytes) return false;
  Reader r{payload};
  SwapDatabaseResponse m;
  if (!read_header(r, MessageType::SwapDatabaseResponse) ||
      !r.u8(m.status) || !r.u64(m.generation) || !r.string(m.error) ||
      !r.exhausted())
    return false;
  out = std::move(m);
  return true;
}

bool decode(std::string_view payload, StatsResponse& out) {
  if (payload.size() > kMaxFrameBytes) return false;
  Reader r{payload};
  StatsResponse m;
  if (!read_header(r, MessageType::StatsResponse) || !r.string(m.text) ||
      !r.exhausted())
    return false;
  out = std::move(m);
  return true;
}

}  // namespace fabp::net
