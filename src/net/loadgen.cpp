#include "fabp/net/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/net/server.hpp"
#include "fabp/util/rng.hpp"
#include "fabp/util/stats.hpp"

namespace fabp::net {
namespace {

Socket connect_to(const std::string& host, std::uint16_t port) {
  Socket sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!sock.valid()) throw std::runtime_error{"socket() failed"};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error{"bad host address: " + host};
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0)
    throw std::runtime_error{"connect() failed to " + host + ":" +
                             std::to_string(port)};
  return sock;
}

struct ClientTally {
  std::size_t sent = 0;
  std::size_t completed = 0;
  std::size_t errors = 0;
  std::size_t transport_failures = 0;
  std::size_t total_hits = 0;
  std::vector<double> latencies_s;
};

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  const std::size_t clients = std::max<std::size_t>(1, config.clients);

  // Pre-generate every query so client threads only do I/O; queries are
  // deterministic in the seed for reproducible benchmark runs.
  std::vector<std::string> proteins;
  proteins.reserve(config.requests);
  util::Xoshiro256 rng{config.seed};
  for (std::size_t i = 0; i < config.requests; ++i)
    proteins.push_back(
        bio::random_protein(config.query_residues, rng).to_string());
  const auto threshold = static_cast<std::uint32_t>(
      static_cast<double>(3 * config.query_residues) *
      config.threshold_fraction);

  // Probe connection first so a dead server is a typed failure, not N
  // threads' worth of identical errors.
  connect_to(config.host, config.port);

  std::vector<ClientTally> tallies(clients);
  std::atomic<std::size_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientTally& tally = tallies[c];
        Socket conn;
        try {
          conn = connect_to(config.host, config.port);
        } catch (const std::exception&) {
          ++tally.transport_failures;
          return;
        }
        std::string payload;
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= proteins.size()) break;
          AlignRequest request;
          request.id = i;
          request.threshold = threshold;
          request.protein = proteins[i];
          ++tally.sent;
          const auto start = std::chrono::steady_clock::now();
          AlignResponse response;
          if (!write_frame(conn.fd(), encode(request)) ||
              !read_frame(conn.fd(), payload) ||
              !decode(payload, response) || response.id != request.id) {
            ++tally.transport_failures;
            return;  // connection is unusable past a framing error
          }
          tally.latencies_s.push_back(
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count());
          if (response.ok()) {
            ++tally.completed;
            tally.total_hits +=
                response.hits.size() + response.reverse_hits.size();
          } else {
            ++tally.errors;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadgenReport report;
  report.wall_s = wall_s;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.sent += tally.sent;
    report.completed += tally.completed;
    report.errors += tally.errors;
    report.transport_failures += tally.transport_failures;
    report.total_hits += tally.total_hits;
    latencies.insert(latencies.end(), tally.latencies_s.begin(),
                     tally.latencies_s.end());
  }
  if (wall_s > 0.0)
    report.qps = static_cast<double>(report.completed) / wall_s;
  if (!latencies.empty()) {
    report.p50_ms = 1e3 * util::percentile(latencies, 50.0);
    report.p99_ms = 1e3 * util::percentile(latencies, 99.0);
  }
  return report;
}

}  // namespace fabp::net
