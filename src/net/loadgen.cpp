#include "fabp/net/loadgen.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fabp/bio/generate.hpp"
#include "fabp/net/server.hpp"
#include "fabp/util/rng.hpp"
#include "fabp/util/stats.hpp"

namespace fabp::net {
namespace {

struct ClientTally {
  std::size_t sent = 0;
  std::size_t completed = 0;
  std::size_t refused = 0;
  std::size_t expired = 0;
  std::size_t resets = 0;
  std::size_t timeouts = 0;
  std::size_t attempts = 0;
  std::size_t retries = 0;
  std::size_t integrity_faults = 0;
  std::size_t total_hits = 0;
  std::size_t attack_frames = 0;
  std::vector<double> latencies_s;
};

/// One attacker connection: sprays fault-injected align frames at the
/// server until the healthy side finishes.  Reconnects after every
/// connection-killing fault; responses are drained opportunistically so
/// the server's write side is exercised too (but a stalled drain is
/// fine — the server's slow-write supervision owns that case).
void attack_loop(const LoadgenConfig& config, std::uint64_t stream,
                 const std::string& protein, std::uint32_t threshold,
                 const std::atomic<bool>& done, ClientTally& tally) {
  FaultInjector injector{config.fault, stream};
  Socket conn;
  std::string payload;
  std::uint64_t id = 0;
  while (!done.load(std::memory_order_relaxed)) {
    if (!conn.valid()) {
      try {
        conn = connect_to(config.host, config.port);
      } catch (const std::exception&) {
        break;  // server gone; the healthy side will report it
      }
      // Never park forever on a drain: the loop must notice `done`.
      timeval tv{0, 50 * 1000};
      ::setsockopt(conn.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    AlignRequest request;
    request.id = id++;
    request.threshold = threshold;
    request.protein = protein;
    ++tally.attack_frames;
    if (!write_frame_with_faults(conn.fd(), encode(request), &injector)) {
      conn.close();  // fault plan killed the stream (RST on close)
      continue;
    }
    read_frame(conn.fd(), payload);  // best-effort drain, timeout-bounded
  }
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  const std::size_t total_clients = std::max<std::size_t>(1, config.clients);
  std::size_t attackers = static_cast<std::size_t>(
      static_cast<double>(total_clients) *
      std::clamp(config.faulty_fraction, 0.0, 1.0));
  attackers = std::min(attackers, total_clients - 1);  // >= 1 healthy
  const std::size_t healthy = total_clients - attackers;

  // Pre-generate every query so client threads only do I/O; queries are
  // deterministic in the seed for reproducible benchmark runs.
  std::vector<std::string> proteins;
  proteins.reserve(config.requests);
  util::Xoshiro256 rng{config.seed};
  for (std::size_t i = 0; i < config.requests; ++i)
    proteins.push_back(
        bio::random_protein(config.query_residues, rng).to_string());
  const auto threshold = static_cast<std::uint32_t>(
      static_cast<double>(3 * config.query_residues) *
      config.threshold_fraction);
  const std::string attack_protein =
      proteins.empty()
          ? bio::random_protein(config.query_residues, rng).to_string()
          : proteins.front();

  // Probe connection first so a dead server is a typed failure, not N
  // threads' worth of identical errors.
  connect_to(config.host, config.port);

  std::vector<ClientTally> tallies(total_clients);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> done{false};
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(total_clients);
    for (std::size_t c = 0; c < healthy; ++c) {
      threads.emplace_back([&, c] {
        ClientTally& tally = tallies[c];
        Client client{config.host, config.port, config.retry,
                      config.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1))};
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= proteins.size()) break;
          AlignRequest request;
          request.id = i;
          request.threshold = threshold;
          request.protein = proteins[i];
          request.database = config.database;
          request.tenant = config.tenant;
          ++tally.sent;
          const auto start = std::chrono::steady_clock::now();
          CallResult outcome = client.align(request, config.deadline_s);
          tally.attempts += outcome.attempts;
          tally.retries += outcome.retries;
          tally.integrity_faults += outcome.integrity_faults;
          switch (outcome.status) {
            case CallStatus::Ok:
              ++tally.completed;
              tally.total_hits += outcome.response.hits.size() +
                                  outcome.response.reverse_hits.size();
              tally.latencies_s.push_back(
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count());
              break;
            case CallStatus::Refused: ++tally.refused; break;
            case CallStatus::Expired: ++tally.expired; break;
            case CallStatus::Reset: ++tally.resets; break;
            case CallStatus::Timeout: ++tally.timeouts; break;
          }
        }
      });
    }
    for (std::size_t a = 0; a < attackers; ++a) {
      threads.emplace_back([&, a] {
        attack_loop(config, a + 1, attack_protein, threshold, done,
                    tallies[healthy + a]);
      });
    }
    // Healthy threads are the first `healthy` entries; once they drain
    // the request queue, stop the attackers.
    for (std::size_t c = 0; c < healthy; ++c) threads[c].join();
    done.store(true, std::memory_order_relaxed);
    for (std::size_t a = 0; a < attackers; ++a) threads[healthy + a].join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadgenReport report;
  report.wall_s = wall_s;
  report.attackers = attackers;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.sent += tally.sent;
    report.completed += tally.completed;
    report.refused += tally.refused;
    report.expired += tally.expired;
    report.resets += tally.resets;
    report.timeouts += tally.timeouts;
    report.attempts += tally.attempts;
    report.retries += tally.retries;
    report.integrity_faults += tally.integrity_faults;
    report.total_hits += tally.total_hits;
    report.attack_frames += tally.attack_frames;
    latencies.insert(latencies.end(), tally.latencies_s.begin(),
                     tally.latencies_s.end());
  }
  report.errors = report.refused + report.expired;
  report.transport_failures = report.resets;
  if (wall_s > 0.0)
    report.qps = static_cast<double>(report.completed) / wall_s;
  if (!latencies.empty()) {
    report.p50_ms = 1e3 * util::percentile(latencies, 50.0);
    report.p99_ms = 1e3 * util::percentile(latencies, 99.0);
  }
  return report;
}

}  // namespace fabp::net
