#include "fabp/blast/tblastn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"

namespace fabp::blast {

TblastnStats& TblastnStats::operator+=(const TblastnStats& o) noexcept {
  residues_scanned += o.residues_scanned;
  word_probes += o.word_probes;
  seed_hits += o.seed_hits;
  two_hit_pairs += o.two_hit_pairs;
  ungapped_extensions += o.ungapped_extensions;
  gapped_extensions += o.gapped_extensions;
  hsps_reported += o.hsps_reported;
  return *this;
}

namespace {
std::vector<bool> query_mask_for(const bio::ProteinSequence& query,
                                 const TblastnConfig& config) {
  return config.mask_query ? seg_mask(query, config.seg)
                           : std::vector<bool>(query.size(), false);
}

// Candidate-discovery scan of one strand.  The tiled default packs the
// strand to 2 bits/base and fuses compile+scan per tile; the Planes
// escape hatch (FABP_SCAN_MODE=planes) keeps the precompiled
// whole-strand planes for differential runs.  Output is identical.
std::vector<core::Hit> prefilter_scan(const core::BitScanQuery& compiled,
                                      const bio::NucleotideSequence& strand,
                                      std::uint32_t threshold) {
  if (core::use_tiled_scan()) {
    const bio::PackedNucleotides packed{strand};
    return core::TileScanner{packed}.hits(compiled, threshold);
  }
  return core::bitscan_hits(compiled, core::BitScanReference{strand},
                            threshold);
}
}  // namespace

Tblastn::Tblastn(bio::ProteinSequence query, TblastnConfig config,
                 const align::SubstitutionMatrix& matrix)
    : query_{std::move(query)},
      config_{config},
      matrix_{matrix},
      query_mask_{query_mask_for(query_, config)},
      index_{query_, config.index, matrix, &query_mask_} {}

TblastnResult Tblastn::search(const bio::NucleotideSequence& reference) const {
  if (config_.bitscan_prefilter) return search_prefiltered(reference);
  // Six-frame residue count: ~2 residues per base over both strands.
  const std::size_t db_residues = reference.size() * 2;
  return search_frames(reference, 0, db_residues);
}

TblastnResult Tblastn::search_prefiltered(
    const bio::NucleotideSequence& reference) const {
  const std::size_t qbases = 3 * query_.size();
  if (qbases == 0 || reference.size() < qbases)
    return search_frames(reference, 0, reference.size() * 2);

  // Candidate discovery: scan both strands with the bit-sliced engine at a
  // fraction of the full back-translated score.
  const auto elements = core::back_translate(query_);
  const auto threshold = static_cast<std::uint32_t>(std::ceil(
      config_.prefilter_fraction * static_cast<double>(elements.size())));
  const core::BitScanQuery compiled{elements};
  const std::size_t lr = reference.size();

  // Forward hit at p covers bases [p, p + qbases); a hit at p on the
  // reverse complement covers forward bases [lr - p - qbases, lr - p).
  std::vector<std::pair<std::size_t, std::size_t>> intervals;
  for (const core::Hit& hit : prefilter_scan(compiled, reference, threshold))
    intervals.emplace_back(hit.position, hit.position + qbases);
  for (const core::Hit& hit : prefilter_scan(
           compiled, reference.reverse_complement(), threshold))
    intervals.emplace_back(lr - hit.position - qbases, lr - hit.position);

  TblastnResult merged;
  if (intervals.empty()) return merged;

  // Pad, clamp, and coalesce overlapping windows.
  for (auto& [lo, hi] : intervals) {
    lo = lo > config_.prefilter_pad ? lo - config_.prefilter_pad : 0;
    hi = std::min(lr, hi + config_.prefilter_pad);
  }
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<std::size_t, std::size_t>> windows;
  for (const auto& [lo, hi] : intervals) {
    if (!windows.empty() && lo <= windows.back().second)
      windows.back().second = std::max(windows.back().second, hi);
    else
      windows.emplace_back(lo, hi);
  }

  // Seed only inside the candidate windows; statistics use the full
  // database size so E-values stay comparable with the unfiltered scan.
  const std::size_t db_residues = lr * 2;
  for (const auto& [lo, hi] : windows) {
    const bio::NucleotideSequence window = reference.subsequence(lo, hi - lo);
    TblastnResult local = search_frames(window, lo, db_residues);
    merged.stats += local.stats;
    merged.hits.insert(merged.hits.end(), local.hits.begin(),
                       local.hits.end());
  }

  std::sort(merged.hits.begin(), merged.hits.end(),
            [](const TblastnHit& a, const TblastnHit& b) {
              return std::tie(a.dna_position, a.query_begin, a.query_end,
                              a.score, a.frame) <
                     std::tie(b.dna_position, b.query_begin, b.query_end,
                              b.score, b.frame);
            });
  merged.hits.erase(
      std::unique(merged.hits.begin(), merged.hits.end(),
                  [](const TblastnHit& a, const TblastnHit& b) {
                    return a.dna_position == b.dna_position &&
                           a.query_begin == b.query_begin &&
                           a.query_end == b.query_end && a.score == b.score;
                  }),
      merged.hits.end());
  return merged;
}

TblastnResult Tblastn::search_frames(const bio::NucleotideSequence& reference,
                                     std::size_t dna_offset,
                                     std::size_t total_db_residues) const {
  TblastnResult result;
  const std::size_t k = index_.k();
  const std::size_t qlen = query_.size();
  if (qlen < k || reference.size() < 3) return result;

  const SearchSpace space{qlen, total_db_residues};
  const int cutoff_score =
      score_for_evalue(config_.evalue_cutoff, space, config_.stats);

  const auto frames = bio::six_frame_translate(reference);
  constexpr std::size_t kNeverSeen = std::numeric_limits<std::size_t>::max();

  for (const auto& frame : frames) {
    const auto& residues = frame.protein.residues();
    if (residues.size() < k) continue;
    result.stats.residues_scanned += residues.size();

    // Per-diagonal state: diagonal id = subject_pos - query_pos + qlen.
    const std::size_t diag_count = residues.size() + qlen + 1;
    std::vector<std::size_t> last_seed(diag_count, kNeverSeen);
    std::vector<std::size_t> extended_until(diag_count, 0);

    for (std::size_t pos = 0; pos + k <= residues.size(); ++pos) {
      ++result.stats.word_probes;
      const auto query_positions = index_.lookup(residues, pos);
      for (std::uint32_t qpos : query_positions) {
        ++result.stats.seed_hits;
        const std::size_t diag = pos - qpos + qlen;

        if (extended_until[diag] != 0 && pos < extended_until[diag])
          continue;  // already covered by a previous extension

        if (config_.two_hit) {
          const std::size_t prev = last_seed[diag];
          // Overlapping hits neither trigger nor displace the stored hit
          // (Altschul et al. 1997) — otherwise dense seeds in a strong
          // match region would keep resetting the window.
          if (prev != kNeverSeen && pos < prev + k) continue;
          last_seed[diag] = pos;
          // Require a second, non-overlapping hit within the window.
          if (prev == kNeverSeen || pos - prev > config_.two_hit_window)
            continue;
          ++result.stats.two_hit_pairs;
        }

        ++result.stats.ungapped_extensions;
        const auto ext =
            align::ungapped_extend(query_, frame.protein, qpos, pos, k,
                                   matrix_, config_.ungapped_x_drop);
        extended_until[diag] = ext.ref_end;

        int score = ext.score;
        std::size_t sbegin = ext.ref_begin, send = ext.ref_end;
        std::size_t qbegin = ext.query_begin, qend = ext.query_end;
        if (score >= config_.gapped_trigger) {
          ++result.stats.gapped_extensions;
          const int gapped = align::banded_local_score(
              query_, frame.protein, qpos, pos, config_.band, matrix_,
              config_.gaps);
          score = std::max(score, gapped);
        }
        if (score < cutoff_score) continue;

        TblastnHit hit;
        hit.frame = frame.id.frame;
        hit.query_begin = qbegin;
        hit.query_end = qend;
        hit.subject_begin = sbegin;
        hit.subject_end = send;
        hit.dna_position =
            dna_offset + frame.nucleotide_position(sbegin, reference.size());
        hit.score = score;
        hit.bits = bit_score(score, config_.stats);
        hit.evalue = evalue(score, space, config_.stats);
        result.hits.push_back(hit);
        ++result.stats.hsps_reported;
      }
    }
  }

  std::sort(result.hits.begin(), result.hits.end(),
            [](const TblastnHit& a, const TblastnHit& b) {
              return std::tie(a.frame, a.subject_begin, a.query_begin) <
                     std::tie(b.frame, b.subject_begin, b.query_begin);
            });
  return result;
}

TblastnResult Tblastn::search_parallel(
    const bio::NucleotideSequence& reference, util::ThreadPool& pool,
    std::size_t chunk_bases) const {
  const std::size_t overlap = 3 * (query_.size() + 8);
  if (reference.size() <= chunk_bases + overlap) return search(reference);

  const std::size_t db_residues = reference.size() * 2;
  std::vector<std::size_t> starts;
  for (std::size_t pos = 0; pos < reference.size(); pos += chunk_bases)
    starts.push_back(pos);

  TblastnResult merged;
  std::mutex merge_mutex;
  pool.parallel_for(0, starts.size(), [&](std::size_t c) {
    const std::size_t begin = starts[c];
    const std::size_t len =
        std::min(chunk_bases + overlap, reference.size() - begin);
    const bio::NucleotideSequence chunk = reference.subsequence(begin, len);
    TblastnResult local = search_frames(chunk, begin, db_residues);
    const std::lock_guard lock{merge_mutex};
    merged.stats += local.stats;
    merged.hits.insert(merged.hits.end(), local.hits.begin(),
                       local.hits.end());
  });

  // Deduplicate hits discovered in two overlapping chunks: identical
  // (frame-strand, dna position, query extent, score) tuples.
  std::sort(merged.hits.begin(), merged.hits.end(),
            [](const TblastnHit& a, const TblastnHit& b) {
              return std::tie(a.dna_position, a.query_begin, a.query_end,
                              a.score, a.frame) <
                     std::tie(b.dna_position, b.query_begin, b.query_end,
                              b.score, b.frame);
            });
  merged.hits.erase(
      std::unique(merged.hits.begin(), merged.hits.end(),
                  [](const TblastnHit& a, const TblastnHit& b) {
                    return a.dna_position == b.dna_position &&
                           a.query_begin == b.query_begin &&
                           a.query_end == b.query_end && a.score == b.score;
                  }),
      merged.hits.end());
  return merged;
}

align::Alignment Tblastn::align_hit(const TblastnHit& hit,
                                    const bio::NucleotideSequence& reference,
                                    std::size_t context) const {
  // Re-derive the hit's translated frame and carve a window around the
  // HSP with some slack so gapped tracebacks have room to breathe.
  const auto frames = bio::six_frame_translate(reference);
  const auto& frame = frames.at(static_cast<std::size_t>(hit.frame));
  const auto& residues = frame.protein;

  const std::size_t begin =
      hit.subject_begin > context ? hit.subject_begin - context : 0;
  const std::size_t end =
      std::min(residues.size(), hit.subject_end + context);
  const bio::ProteinSequence window =
      residues.subsequence(begin, end - begin);

  align::Alignment alignment =
      align::smith_waterman(query_, window, matrix_, config_.gaps);
  // Shift window-local subject coordinates back to frame coordinates.
  alignment.ref_begin += begin;
  alignment.ref_end += begin;
  return alignment;
}

}  // namespace fabp::blast
