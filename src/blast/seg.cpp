#include "fabp/blast/seg.hpp"

#include <array>
#include <cmath>

namespace fabp::blast {

double composition_entropy(std::span<const bio::AminoAcid> residues) {
  if (residues.empty()) return 0.0;
  std::array<std::size_t, bio::kAminoAcidCount> counts{};
  for (bio::AminoAcid aa : residues) counts[bio::index(aa)]++;
  const double n = static_cast<double>(residues.size());
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

std::vector<bool> seg_mask(const bio::ProteinSequence& protein,
                           const SegConfig& config) {
  const std::size_t n = protein.size();
  std::vector<bool> mask(n, false);
  const std::size_t w = config.window;
  if (w == 0 || n < w) return mask;

  // Windowed entropies, indexed by window start.
  const std::size_t windows = n - w + 1;
  std::vector<double> entropy(windows);
  for (std::size_t s = 0; s < windows; ++s)
    entropy[s] = composition_entropy(
        std::span<const bio::AminoAcid>{protein.residues().data() + s, w});

  // Two-threshold hysteresis over window starts: a sub-locut window opens
  // a region; it grows over adjacent sub-hicut windows in both directions.
  std::vector<bool> window_masked(windows, false);
  for (std::size_t s = 0; s < windows; ++s) {
    if (entropy[s] >= config.locut || window_masked[s]) continue;
    std::size_t lo = s, hi = s;
    while (lo > 0 && entropy[lo - 1] < config.hicut) --lo;
    while (hi + 1 < windows && entropy[hi + 1] < config.hicut) ++hi;
    for (std::size_t k = lo; k <= hi; ++k) window_masked[k] = true;
  }

  // A residue is masked when every window covering it is masked — the
  // conservative intersection rule keeps region boundaries tight.
  std::vector<std::size_t> covering(n, 0), masked_covering(n, 0);
  for (std::size_t s = 0; s < windows; ++s)
    for (std::size_t k = s; k < s + w; ++k) {
      ++covering[k];
      if (window_masked[s]) ++masked_covering[k];
    }
  for (std::size_t k = 0; k < n; ++k)
    mask[k] = covering[k] > 0 && masked_covering[k] == covering[k];
  return mask;
}

double masked_fraction(const std::vector<bool>& mask) {
  if (mask.empty()) return 0.0;
  std::size_t masked = 0;
  for (bool m : mask)
    if (m) ++masked;
  return static_cast<double>(masked) / static_cast<double>(mask.size());
}

}  // namespace fabp::blast
