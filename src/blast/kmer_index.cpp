#include "fabp/blast/kmer_index.hpp"

#include <numeric>
#include <stdexcept>

namespace fabp::blast {

std::uint32_t pack_kmer(std::span<const bio::AminoAcid> residues) {
  std::uint32_t word = 0;
  for (bio::AminoAcid aa : residues)
    word = (word << 5) | static_cast<std::uint32_t>(bio::index(aa));
  return word;
}

namespace {

// Enumerates all words w (over the 20 standard residues) with
// sum_i matrix(w[i], window[i]) >= threshold, invoking sink(packed_word).
// DFS with a best-remaining-score bound prunes the 20^k space hard.
template <typename Sink>
void enumerate_neighborhood(std::span<const bio::AminoAcid> window,
                            const align::SubstitutionMatrix& matrix,
                            int threshold, Sink&& sink) {
  const std::size_t k = window.size();
  // max_tail[i] = best achievable score from positions i..k-1.
  std::vector<int> max_tail(k + 1, 0);
  for (std::size_t i = k; i-- > 0;) {
    int best = -127;
    for (std::size_t a = 0; a < 20; ++a)
      best = std::max(best,
                      matrix.score(static_cast<bio::AminoAcid>(a), window[i]));
    max_tail[i] = max_tail[i + 1] + best;
  }

  const auto dfs = [&](auto&& self, std::size_t depth, std::uint32_t word,
                       int score) -> void {
    if (depth == k) {
      if (score >= threshold) sink(word);
      return;
    }
    for (std::size_t a = 0; a < 20; ++a) {
      const int next =
          score + matrix.score(static_cast<bio::AminoAcid>(a), window[depth]);
      if (next + max_tail[depth + 1] >= threshold)
        self(self, depth + 1,
             (word << 5) | static_cast<std::uint32_t>(a), next);
    }
  };
  dfs(dfs, 0, 0, 0);
}

}  // namespace

KmerIndex::KmerIndex(const bio::ProteinSequence& query,
                     const KmerIndexConfig& config,
                     const align::SubstitutionMatrix& matrix,
                     const std::vector<bool>* query_mask)
    : config_{config}, query_length_{query.size()} {
  if (config_.k == 0 || config_.k > 5)
    throw std::invalid_argument{"KmerIndex: k must be in [1,5]"};

  const std::size_t words = std::size_t{1} << (5 * config_.k);
  std::vector<std::uint32_t> counts(words + 1, 0);

  // Pass 1: count neighborhood sizes per word.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (query.size() >= config_.k) {
    for (std::size_t p = 0; p + config_.k <= query.size(); ++p) {
      const std::span<const bio::AminoAcid> window{
          query.residues().data() + p, config_.k};
      bool excluded = false;
      for (std::size_t k = 0; k < config_.k; ++k) {
        if (window[k] == bio::AminoAcid::Stop) excluded = true;
        if (query_mask && (*query_mask)[p + k]) excluded = true;
      }
      if (excluded) continue;
      enumerate_neighborhood(window, matrix, config_.neighbor_threshold,
                             [&](std::uint32_t word) {
                               pairs.emplace_back(
                                   word, static_cast<std::uint32_t>(p));
                             });
    }
  }

  for (const auto& [word, pos] : pairs) counts[word + 1]++;
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  offsets_ = counts;
  entries_.resize(pairs.size());
  // Counting-sort fill (stable in query-position order per word).
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [word, pos] : pairs) entries_[cursor[word]++] = pos;
}

std::span<const std::uint32_t> KmerIndex::lookup(
    std::span<const bio::AminoAcid> ref_residues, std::size_t pos) const {
  if (pos + config_.k > ref_residues.size()) return {};
  for (std::size_t i = 0; i < config_.k; ++i)
    if (ref_residues[pos + i] == bio::AminoAcid::Stop) return {};
  return lookup_packed(pack_kmer(ref_residues.subspan(pos, config_.k)));
}

std::span<const std::uint32_t> KmerIndex::lookup_packed(
    std::uint32_t word) const {
  if (word + 1 >= offsets_.size()) return {};
  const std::uint32_t begin = offsets_[word];
  const std::uint32_t end = offsets_[word + 1];
  return {entries_.data() + begin, entries_.data() + end};
}

}  // namespace fabp::blast
