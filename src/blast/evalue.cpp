#include "fabp/blast/evalue.hpp"

#include <algorithm>
#include <cmath>

namespace fabp::blast {

double bit_score(int raw_score, const KarlinAltschulParams& params) {
  return (params.lambda * raw_score - std::log(params.k)) / std::log(2.0);
}

double SearchSpace::effective(const KarlinAltschulParams& params) const {
  // Expected HSP length l = ln(K m n) / H; subtract from both lengths.
  const double m = static_cast<double>(std::max<std::size_t>(1, query_length));
  const double n = static_cast<double>(std::max<std::size_t>(1, db_length));
  const double l = std::log(params.k * m * n) / std::max(params.h, 1e-6);
  const double m_eff = std::max(1.0, m - l);
  const double n_eff = std::max(1.0, n - l);
  return m_eff * n_eff;
}

double evalue(int raw_score, const SearchSpace& space,
              const KarlinAltschulParams& params) {
  return params.k * space.effective(params) *
         std::exp(-params.lambda * raw_score);
}

int score_for_evalue(double target, const SearchSpace& space,
                     const KarlinAltschulParams& params) {
  // Invert E = K * mn * exp(-lambda S)  ->  S = ln(K mn / E) / lambda.
  target = std::max(target, 1e-300);
  const double s =
      std::log(params.k * space.effective(params) / target) / params.lambda;
  return static_cast<int>(std::ceil(std::max(0.0, s)));
}

}  // namespace fabp::blast
