#include "fabp/core/bitscan.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "bitscan_kernel_impl.hpp"
#include "fabp/core/hitmerge.hpp"
#include "fabp/util/cpuid.hpp"

namespace fabp::core {

namespace {

// Kind indices shared with element_kind(); named where the compile step
// needs to substitute a degenerate kind for missing history.
constexpr std::uint8_t kKindAorG = 4 + static_cast<std::uint8_t>(Condition::AorG);
constexpr std::uint8_t kKindAny = 8 + static_cast<std::uint8_t>(Function::AnyD);

// Chunk granule for the pooled precompiled-plane scans: one default scan
// tile's worth of positions, so no worker is handed a sliver whose
// dispatch cost exceeds its compute (and so chunk layout matches the
// tiled path's whole-tile chunks).
constexpr std::size_t kParallelScanGranule = 128 * 1024;

}  // namespace

std::size_t element_kind(const BackElement& element) noexcept {
  switch (element.type) {
    case ElementType::ExactI:
      return bio::code(element.exact);
    case ElementType::ConditionalII:
      return 4 + static_cast<std::size_t>(element.cond);
    case ElementType::DependentIII:
      return 8 + static_cast<std::size_t>(element.func);
  }
  return kKindAny;
}

BitScanReference::BitScanReference(const bio::NucleotideBitplanes& planes) {
  size_ = planes.size();
  const std::size_t words = planes.word_count();
  const std::size_t padded = words + kScanGuardWords;
  for (auto& plane : planes_) plane.assign(padded, 0);

  const auto eq_a = planes.occurrence(bio::Nucleotide::A);
  const auto eq_c = planes.occurrence(bio::Nucleotide::C);
  const auto eq_g = planes.occurrence(bio::Nucleotide::G);
  const auto eq_u = planes.occurrence(bio::Nucleotide::U);
  const auto lsb = planes.lsb();
  const auto msb = planes.msb();
  const auto p1m = planes.prev1_msb();
  const auto p2m = planes.prev2_msb();
  const auto p2l = planes.prev2_lsb();
  const auto valid = planes.valid();

  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t v = valid[w];
    // Type I: occurrence planes verbatim.
    planes_[0][w] = eq_a[w];
    planes_[1][w] = eq_c[w];
    planes_[2][w] = eq_g[w];
    planes_[3][w] = eq_u[w];
    // Type II conditions on the 2-bit code: U/C = LSB set, A/G = LSB
    // clear, G-bar, A/C = MSB clear.
    planes_[4][w] = lsb[w];
    planes_[5][w] = v & ~lsb[w];
    planes_[6][w] = v & ~eq_g[w];
    planes_[7][w] = v & ~msb[w];
    // Type III: select per position between the S=1 and S=0 match sets
    // with the history plane (BackElement::matches, vectorised).
    planes_[8][w] = (p1m[w] & eq_a[w]) | (v & ~p1m[w] & ~lsb[w]);  // Stop3
    planes_[9][w] = v & ~(p2m[w] & lsb[w]);                        // Leu3
    planes_[10][w] = p2l[w] | (v & ~lsb[w]);                       // Arg3
    planes_[11][w] = v;                                            // D
  }
}

BitScanQuery::BitScanQuery(const std::vector<BackElement>& query) {
  kinds_.reserve(query.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    std::uint8_t kind = static_cast<std::uint8_t>(element_kind(query[i]));
    // The scalar oracle substitutes A for history reads before the query
    // start (i-1 at i==0, i-2 at i<2).  A's code is 00, which collapses
    // Stop3/Arg3 to the purine condition and Leu3 to "any".  Well-formed
    // queries never place Type III before offset 2, but the engine must
    // agree with the oracle on every input.
    if (i < 2 && query[i].type == ElementType::DependentIII) {
      switch (query[i].func) {
        case Function::Stop3:
          if (i == 0) kind = kKindAorG;
          break;
        case Function::Leu3:
          kind = kKindAny;
          break;
        case Function::Arg3:
          kind = kKindAorG;
          break;
        case Function::AnyD:
          break;
      }
    }
    kinds_.push_back(kind);
  }
}

BitScanQuery::BitScanQuery(const EncodedQuery& query) {
  std::vector<BackElement> elements;
  elements.reserve(query.size());
  for (const Instruction& instr : query) elements.push_back(instr.decode());
  *this = BitScanQuery{elements};
}

// ---------------------------------------------------------------------------
// Kernel dispatch.

const ScanKernel* scan_kernel_for(ScanIsa isa) noexcept {
  switch (isa) {
    case ScanIsa::Scalar:
      return detail::scalar_kernel();
    case ScanIsa::Swar64:
      return detail::swar64_kernel();
    case ScanIsa::Avx2:
      return util::cpu_has_avx2() ? detail::avx2_kernel() : nullptr;
    case ScanIsa::Avx512:
      return util::cpu_has_avx512f() ? detail::avx512_kernel() : nullptr;
    case ScanIsa::Avx512Vpopcnt:
      return util::cpu_has_avx512vpopcntdq() ? detail::avx512vpopcnt_kernel()
                                             : nullptr;
  }
  return nullptr;
}

bool scan_isa_from_name(std::string_view name, ScanIsa& out) noexcept {
  if (name == "scalar") out = ScanIsa::Scalar;
  else if (name == "swar64") out = ScanIsa::Swar64;
  else if (name == "avx2") out = ScanIsa::Avx2;
  else if (name == "avx512") out = ScanIsa::Avx512;
  else if (name == "avx512vpopcnt") out = ScanIsa::Avx512Vpopcnt;
  else return false;
  return true;
}

const ScanKernel& active_scan_kernel() noexcept {
  static const ScanKernel* const chosen = [] {
    if (const char* force = std::getenv("FABP_FORCE_ISA")) {
      // Unknown names and ISAs the host cannot run fall through to
      // auto-detection — the override is a test hook, not a way to crash.
      ScanIsa isa;
      if (scan_isa_from_name(force, isa))
        if (const ScanKernel* kernel = scan_kernel_for(isa)) return kernel;
    }
    for (ScanIsa isa :
         {ScanIsa::Avx512Vpopcnt, ScanIsa::Avx512, ScanIsa::Avx2})
      if (const ScanKernel* kernel = scan_kernel_for(isa)) return kernel;
    return scan_kernel_for(ScanIsa::Swar64);  // always present
  }();
  return *chosen;
}

// ---------------------------------------------------------------------------
// Entry points (all funnel into the active kernel).

void bitscan_range(const BitScanQuery& query,
                   const BitScanReference& reference, std::uint32_t threshold,
                   std::size_t begin, std::size_t end, std::vector<Hit>& out) {
  active_scan_kernel().range(query, reference, threshold, begin, end, out);
}

std::vector<Hit> bitscan_hits(const BitScanQuery& query,
                              const BitScanReference& reference,
                              std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || reference.size() < query.size()) return hits;
  bitscan_range(query, reference, threshold, 0,
                reference.size() - query.size() + 1, hits);
  return hits;
}

std::vector<Hit> bitscan_hits(const std::vector<BackElement>& query,
                              const bio::NucleotideSequence& reference,
                              std::uint32_t threshold) {
  return bitscan_hits(BitScanQuery{query}, BitScanReference{reference},
                      threshold);
}

std::vector<Hit> bitscan_hits_parallel(const BitScanQuery& query,
                                       const BitScanReference& reference,
                                       std::uint32_t threshold,
                                       util::ThreadPool& pool) {
  if (query.empty() || reference.size() < query.size()) return {};
  const std::size_t positions = reference.size() - query.size() + 1;

  std::vector<std::vector<Hit>> chunks(
      pool.chunk_count(positions, kParallelScanGranule));
  pool.parallel_indexed_chunks(
      0, positions,
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        bitscan_range(query, reference, threshold, lo, hi, chunks[c]);
      },
      kParallelScanGranule);
  return merge_hit_chunks(chunks);
}

std::vector<std::vector<Hit>> bitscan_hits_batch(
    std::span<const BitScanQuery> queries, const BitScanReference& reference,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) {
  if (queries.size() != thresholds.size())
    throw std::invalid_argument{
        "bitscan_hits_batch: one threshold per query required"};
  std::vector<std::vector<Hit>> outs(queries.size());
  if (queries.empty()) return outs;

  // The shared position range spans the longest-scanning query; each
  // query is clamped inside the kernel.
  std::size_t positions = 0;
  for (const BitScanQuery& query : queries)
    if (!query.empty() && reference.size() >= query.size())
      positions =
          std::max(positions, reference.size() - query.size() + 1);
  if (positions == 0) return outs;

  const ScanKernel& kernel = active_scan_kernel();
  if (pool == nullptr) {
    kernel.range_batch(queries.data(), thresholds.data(), queries.size(),
                       reference, 0, positions, outs.data());
    return outs;
  }

  // Chunk positions over the pool; every chunk scans all queries (block
  // caching still applies within the chunk), then per-query results are
  // merged in chunk order — deterministic and identical to the serial
  // batch, which is itself identical to per-query bitscan_hits.
  std::vector<std::vector<std::vector<Hit>>> chunks(
      pool->chunk_count(positions, kParallelScanGranule),
      std::vector<std::vector<Hit>>(queries.size()));
  pool->parallel_indexed_chunks(
      0, positions,
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        kernel.range_batch(queries.data(), thresholds.data(), queries.size(),
                           reference, lo, hi, chunks[c].data());
      },
      kParallelScanGranule);
  return merge_hit_chunks_batch(chunks, queries.size());
}

}  // namespace fabp::core
