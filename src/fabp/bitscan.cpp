#include "fabp/core/bitscan.hpp"

#include <algorithm>
#include <bit>

namespace fabp::core {

namespace {

// Vertical counter planes: enough bits for any practical query length
// (count <= query length, so bit_width(qlen) planes carry it).
constexpr unsigned kMaxCounterBits = 33;

// Kind indices shared with element_kind(); named where the compile step
// needs to substitute a degenerate kind for missing history.
constexpr std::uint8_t kKindAorG = 4 + static_cast<std::uint8_t>(Condition::AorG);
constexpr std::uint8_t kKindAny = 8 + static_cast<std::uint8_t>(Function::AnyD);

}  // namespace

std::size_t element_kind(const BackElement& element) noexcept {
  switch (element.type) {
    case ElementType::ExactI:
      return bio::code(element.exact);
    case ElementType::ConditionalII:
      return 4 + static_cast<std::size_t>(element.cond);
    case ElementType::DependentIII:
      return 8 + static_cast<std::size_t>(element.func);
  }
  return kKindAny;
}

BitScanReference::BitScanReference(const bio::NucleotideBitplanes& planes) {
  size_ = planes.size();
  const std::size_t words = planes.word_count();
  // Two zero guard words: an unaligned fetch for the last block's last
  // element reads up to 62 bits past the final plane word.
  const std::size_t padded = words + 2;
  for (auto& plane : planes_) plane.assign(padded, 0);

  const auto eq_a = planes.occurrence(bio::Nucleotide::A);
  const auto eq_c = planes.occurrence(bio::Nucleotide::C);
  const auto eq_g = planes.occurrence(bio::Nucleotide::G);
  const auto eq_u = planes.occurrence(bio::Nucleotide::U);
  const auto lsb = planes.lsb();
  const auto msb = planes.msb();
  const auto p1m = planes.prev1_msb();
  const auto p2m = planes.prev2_msb();
  const auto p2l = planes.prev2_lsb();
  const auto valid = planes.valid();

  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t v = valid[w];
    // Type I: occurrence planes verbatim.
    planes_[0][w] = eq_a[w];
    planes_[1][w] = eq_c[w];
    planes_[2][w] = eq_g[w];
    planes_[3][w] = eq_u[w];
    // Type II conditions on the 2-bit code: U/C = LSB set, A/G = LSB
    // clear, G-bar, A/C = MSB clear.
    planes_[4][w] = lsb[w];
    planes_[5][w] = v & ~lsb[w];
    planes_[6][w] = v & ~eq_g[w];
    planes_[7][w] = v & ~msb[w];
    // Type III: select per position between the S=1 and S=0 match sets
    // with the history plane (BackElement::matches, vectorised).
    planes_[8][w] = (p1m[w] & eq_a[w]) | (v & ~p1m[w] & ~lsb[w]);  // Stop3
    planes_[9][w] = v & ~(p2m[w] & lsb[w]);                        // Leu3
    planes_[10][w] = p2l[w] | (v & ~lsb[w]);                       // Arg3
    planes_[11][w] = v;                                            // D
  }
}

BitScanQuery::BitScanQuery(const std::vector<BackElement>& query) {
  kinds_.reserve(query.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    std::uint8_t kind = static_cast<std::uint8_t>(element_kind(query[i]));
    // The scalar oracle substitutes A for history reads before the query
    // start (i-1 at i==0, i-2 at i<2).  A's code is 00, which collapses
    // Stop3/Arg3 to the purine condition and Leu3 to "any".  Well-formed
    // queries never place Type III before offset 2, but the engine must
    // agree with the oracle on every input.
    if (i < 2 && query[i].type == ElementType::DependentIII) {
      switch (query[i].func) {
        case Function::Stop3:
          if (i == 0) kind = kKindAorG;
          break;
        case Function::Leu3:
          kind = kKindAny;
          break;
        case Function::Arg3:
          kind = kKindAorG;
          break;
        case Function::AnyD:
          break;
      }
    }
    kinds_.push_back(kind);
  }
}

BitScanQuery::BitScanQuery(const EncodedQuery& query) {
  std::vector<BackElement> elements;
  elements.reserve(query.size());
  for (const Instruction& instr : query) elements.push_back(instr.decode());
  *this = BitScanQuery{elements};
}

void bitscan_range(const BitScanQuery& query,
                   const BitScanReference& reference, std::uint32_t threshold,
                   std::size_t begin, std::size_t end, std::vector<Hit>& out) {
  const std::size_t qlen = query.size();
  if (qlen == 0 || reference.size() < qlen) return;
  const std::size_t positions = reference.size() - qlen + 1;
  end = std::min(end, positions);
  if (begin >= end) return;
  if (threshold > qlen) return;  // scores never exceed the element count

  const unsigned nbits = static_cast<unsigned>(std::bit_width(qlen));
  std::vector<const std::uint64_t*> planes(qlen);
  const std::vector<std::uint8_t>& kinds = query.kinds();
  for (std::size_t i = 0; i < qlen; ++i)
    planes[i] = reference.plane(kinds[i]);

  for (std::size_t base = begin; base < end; base += 64) {
    const std::size_t block = std::min<std::size_t>(64, end - base);

    // Accumulate per-position scores in vertical counters: lane j of
    // counter plane b is bit b of the score at position base + j.
    std::uint64_t counters[kMaxCounterBits] = {};
    for (std::size_t i = 0; i < qlen; ++i) {
      const std::size_t offset = base + i;
      const std::uint64_t* plane = planes[i];
      const std::size_t w = offset >> 6;
      const unsigned s = static_cast<unsigned>(offset & 63);
      std::uint64_t match = plane[w] >> s;
      if (s != 0) match |= plane[w + 1] << (64 - s);

      std::uint64_t carry = match;  // ripple-add 1 into every set lane
      for (unsigned b = 0; carry != 0; ++b) {
        const std::uint64_t overflow = counters[b] & carry;
        counters[b] ^= carry;
        carry = overflow;
      }
    }

    // score >= threshold per lane: subtract the broadcast threshold and
    // keep lanes with no borrow-out.
    std::uint64_t borrow = 0;
    for (unsigned b = 0; b < nbits; ++b) {
      const std::uint64_t tb = ((threshold >> b) & 1u) ? ~0ULL : 0ULL;
      borrow = (~counters[b] & (tb | borrow)) | (tb & borrow);
    }
    std::uint64_t hits = ~borrow;
    if (block < 64) hits &= (1ULL << block) - 1;

    while (hits != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(hits));
      hits &= hits - 1;
      std::uint32_t score = 0;
      for (unsigned b = 0; b < nbits; ++b)
        score |= static_cast<std::uint32_t>((counters[b] >> lane) & 1u) << b;
      out.push_back(Hit{base + lane, score});
    }
  }
}

std::vector<Hit> bitscan_hits(const BitScanQuery& query,
                              const BitScanReference& reference,
                              std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || reference.size() < query.size()) return hits;
  bitscan_range(query, reference, threshold, 0,
                reference.size() - query.size() + 1, hits);
  return hits;
}

std::vector<Hit> bitscan_hits(const std::vector<BackElement>& query,
                              const bio::NucleotideSequence& reference,
                              std::uint32_t threshold) {
  return bitscan_hits(BitScanQuery{query}, BitScanReference{reference},
                      threshold);
}

std::vector<Hit> bitscan_hits_parallel(const BitScanQuery& query,
                                       const BitScanReference& reference,
                                       std::uint32_t threshold,
                                       util::ThreadPool& pool) {
  std::vector<Hit> hits;
  if (query.empty() || reference.size() < query.size()) return hits;
  const std::size_t positions = reference.size() - query.size() + 1;

  std::vector<std::vector<Hit>> chunks(pool.chunk_count(positions));
  pool.parallel_indexed_chunks(
      0, positions, [&](std::size_t c, std::size_t lo, std::size_t hi) {
        bitscan_range(query, reference, threshold, lo, hi, chunks[c]);
      });

  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  hits.reserve(total);
  for (const auto& chunk : chunks)
    hits.insert(hits.end(), chunk.begin(), chunk.end());
  return hits;
}

}  // namespace fabp::core
