#pragma once
// Private, ISA-agnostic core of the scan kernels.  Each kernel TU
// (bitscan_kernels_{swar,avx2,avx512}.cpp) defines a Traits type mapping
// the vertical-counter algorithm onto its vector substrate and
// instantiates scan_range_t / scan_batch_t with it.  This header contains
// no intrinsics, so it compiles identically under every per-TU -m flag
// set; all type names below are template parameters, which also keeps the
// instantiations TU-local (no comdat function compiled with AVX flags can
// be picked by the linker for a baseline caller).
//
// Traits contract (V = Traits::Vec holds kWords 64-bit lanes):
//   static constexpr unsigned kWords;
//   static V zero();
//   static V broadcast(std::uint64_t x);          // x in every 64-bit lane
//   static V load_bits(const std::uint64_t* plane, std::size_t w,
//                      unsigned s);
//     // 64*kWords plane bits starting at bit offset 64*w + s, i.e.
//     // lane k = (plane[w+k] >> s) | (plane[w+k+1] << (64 - s));
//     // reads plane[w .. w + kWords], which the kScanGuardWords padding
//     // every PlaneView plane carries keeps in bounds.
//   static V and_(V, V); or_(V, V); xor_(V, V);
//   static V andnot(V a, V b);                    // ~a & b
//   static V not_(V);
//   static bool any(V);                           // any bit set
//   static void store(std::uint64_t* dst, V);     // kWords words
//
// Traits powering the carry-save scorer (scan_range_t/scan_batch_t with
// kCsa = true) additionally provide:
//   static void csa(V& high, V& low, V a, V b, V c);
//     // bitwise full adder: low = a^b^c, high = majority(a,b,c)
//   static unsigned popcount_total(V);            // set bits across lanes

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "fabp/core/bitscan.hpp"

namespace fabp::core::detail {

// Vertical counter planes: enough bits for any practical query length
// (count <= query length, so bit_width(qlen) planes carry it).
inline constexpr unsigned kMaxCounterBits = 33;

// Accessors for the kernel-registration functions each TU exports; a TU
// whose ISA is not compiled in returns nullptr.
const ScanKernel* scalar_kernel() noexcept;
const ScanKernel* swar64_kernel() noexcept;
const ScanKernel* avx2_kernel() noexcept;
const ScanKernel* avx512_kernel() noexcept;
const ScanKernel* avx512vpopcnt_kernel() noexcept;

// Elements between feasibility checks in the carry-save scorer (must be a
// power of two).  Each check costs one borrow-propagate over the counter
// planes plus a lane census; every 16 elements it is well under 10% of
// the accumulate work it can skip.
inline constexpr std::size_t kCsaCheckStride = 16;

/// Borrow-out of (score - value) per lane over the first nbits counter
/// planes: a lane's borrow bit is set iff its score < value.
template <typename Traits>
inline typename Traits::Vec counter_borrow(
    const typename Traits::Vec* counters, unsigned nbits,
    std::uint32_t value) {
  using V = typename Traits::Vec;
  V borrow = Traits::zero();
  for (unsigned b = 0; b < nbits; ++b) {
    const V tb = Traits::broadcast(((value >> b) & 1u) ? ~0ULL : 0ULL);
    borrow = Traits::or_(
        Traits::andnot(counters[b], Traits::or_(tb, borrow)),
        Traits::and_(tb, borrow));
  }
  return borrow;
}

/// Materialises Hit records for every set lane of hit_mask below `block`,
/// reading each hit's score back out of the vertical counters.  Counters
/// are spilled at most once, and only when some lane actually hit.
template <typename Traits>
inline void emit_block_hits(const typename Traits::Vec* counters,
                            unsigned nbits, typename Traits::Vec hit_mask,
                            std::size_t base, std::size_t block,
                            std::vector<Hit>& out) {
  constexpr unsigned kW = Traits::kWords;
  std::uint64_t hit_words[kW];
  Traits::store(hit_words, hit_mask);

  std::uint64_t counter_words[kMaxCounterBits][kW];
  bool spilled = false;
  for (unsigned k = 0; k < kW; ++k) {
    const std::size_t lane_base = 64ull * k;
    if (lane_base >= block) break;
    std::uint64_t hits = hit_words[k];
    const std::size_t valid = std::min<std::size_t>(64, block - lane_base);
    if (valid < 64) hits &= (1ULL << valid) - 1;
    if (hits == 0) continue;
    if (!spilled) {
      for (unsigned b = 0; b < nbits; ++b)
        Traits::store(counter_words[b], counters[b]);
      spilled = true;
    }
    do {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(hits));
      hits &= hits - 1;
      std::uint32_t score = 0;
      for (unsigned b = 0; b < nbits; ++b)
        score |= static_cast<std::uint32_t>((counter_words[b][k] >> lane) &
                                            1u)
                 << b;
      out.push_back(Hit{base + lane_base + lane, score});
    } while (hits != 0);
  }
}

/// Scores one block of 64 * Traits::kWords candidate positions starting at
/// `base` and appends the `block` leading lanes that reach the threshold.
template <typename Traits>
inline void score_block(const std::uint64_t* const* planes, std::size_t qlen,
                        unsigned nbits, std::uint32_t threshold,
                        std::size_t base, std::size_t block,
                        std::vector<Hit>& out) {
  using V = typename Traits::Vec;

  // Accumulate per-position scores in vertical counters: lane j of
  // counter plane b is bit b of the score at position base + j.  Scores
  // never exceed qlen, so only the first nbits planes are ever touched.
  V counters[kMaxCounterBits];
  for (unsigned b = 0; b < nbits; ++b) counters[b] = Traits::zero();
  for (std::size_t i = 0; i < qlen; ++i) {
    const std::size_t offset = base + i;
    V carry = Traits::load_bits(planes[i], offset >> 6,
                                static_cast<unsigned>(offset & 63));
    // Ripple-add 1 into every set lane.
    for (unsigned b = 0; Traits::any(carry); ++b) {
      const V overflow = Traits::and_(counters[b], carry);
      counters[b] = Traits::xor_(counters[b], carry);
      carry = overflow;
    }
  }

  // score >= threshold per lane: no borrow-out of (score - threshold).
  const V borrow = counter_borrow<Traits>(counters, nbits, threshold);
  emit_block_hits<Traits>(counters, nbits, Traits::not_(borrow), base, block,
                          out);
}

/// Carry-save variant of score_block for Traits with csa/popcount_total:
/// elements are folded two per step through a bitwise full adder (the
/// software shape of FabP's hardware popcount/compressor tree), halving
/// the ripple passes through the counter planes, and every
/// kCsaCheckStride elements a feasibility census abandons the block when
/// no lane can still reach the threshold — exact, because a lane whose
/// partial score plus all remaining elements stays below the threshold
/// can never produce a hit.  Output is bit-identical to score_block.
template <typename Traits>
inline void score_block_csa(const std::uint64_t* const* planes,
                            std::size_t qlen, unsigned nbits,
                            std::uint32_t threshold, std::size_t base,
                            std::size_t block, std::vector<Hit>& out) {
  using V = typename Traits::Vec;

  V counters[kMaxCounterBits];
  for (unsigned b = 0; b < nbits; ++b) counters[b] = Traits::zero();

  std::size_t i = 0;
  for (; i + 1 < qlen; i += 2) {
    const std::size_t o0 = base + i;
    const std::size_t o1 = o0 + 1;
    const V e0 = Traits::load_bits(planes[i], o0 >> 6,
                                   static_cast<unsigned>(o0 & 63));
    const V e1 = Traits::load_bits(planes[i + 1], o1 >> 6,
                                   static_cast<unsigned>(o1 & 63));
    // One full adder folds both elements and counter bit 0; only the
    // compressed carry ripples into the higher planes.
    V carry, sum;
    Traits::csa(carry, sum, counters[0], e0, e1);
    counters[0] = sum;
    for (unsigned b = 1; Traits::any(carry); ++b) {
      const V overflow = Traits::and_(counters[b], carry);
      counters[b] = Traits::xor_(counters[b], carry);
      carry = overflow;
    }

    const std::size_t done = i + 2;
    if ((done & (kCsaCheckStride - 1)) == 0 && done < qlen) {
      // A lane can still hit iff partial + remaining >= threshold.  When
      // even a perfect tail cannot save any lane, the whole block is
      // provably hitless: skip the rest of the query.
      const std::size_t remaining = qlen - done;
      if (threshold > remaining) {
        const std::uint32_t need =
            threshold - static_cast<std::uint32_t>(remaining);
        const V alive = Traits::not_(
            counter_borrow<Traits>(counters, nbits, need));
        if (Traits::popcount_total(alive) == 0) return;
      }
    }
  }
  if (i < qlen) {  // odd element count: plain ripple-add for the last one
    const std::size_t offset = base + i;
    V carry = Traits::load_bits(planes[i], offset >> 6,
                                static_cast<unsigned>(offset & 63));
    for (unsigned b = 0; Traits::any(carry); ++b) {
      const V overflow = Traits::and_(counters[b], carry);
      counters[b] = Traits::xor_(counters[b], carry);
      carry = overflow;
    }
  }

  const V borrow = counter_borrow<Traits>(counters, nbits, threshold);
  emit_block_hits<Traits>(counters, nbits, Traits::not_(borrow), base, block,
                          out);
}

/// One query prepared for the block loop: per-element plane pointers plus
/// the clamped scan bounds.  A query the preamble rejects (empty, longer
/// than the reference, threshold above qlen) gets end == begin and is
/// skipped by the loops below.
struct PreparedQuery {
  std::vector<const std::uint64_t*> planes;
  std::size_t qlen = 0;
  unsigned nbits = 0;
  std::uint32_t threshold = 0;
  std::size_t end = 0;  // one past the last position to score
};

inline PreparedQuery prepare_query(const BitScanQuery& query,
                                   const PlaneView& reference,
                                   std::uint32_t threshold, std::size_t begin,
                                   std::size_t end) {
  PreparedQuery p;
  p.qlen = query.size();
  p.threshold = threshold;
  p.end = begin;
  if (p.qlen == 0 || reference.size < p.qlen) return p;
  const std::size_t positions = reference.size - p.qlen + 1;
  end = std::min(end, positions);
  if (begin >= end) return p;
  if (threshold > p.qlen) return p;  // scores never exceed the element count
  p.end = end;
  p.nbits = static_cast<unsigned>(std::bit_width(p.qlen));
  p.planes.resize(p.qlen);
  const std::vector<std::uint8_t>& kinds = query.kinds();
  for (std::size_t i = 0; i < p.qlen; ++i)
    p.planes[i] = reference.plane(kinds[i]);
  return p;
}

// kCsa selects the carry-save scorer (score_block_csa) — only valid for
// Traits providing the csa/popcount_total extensions.
template <typename Traits, bool kCsa = false>
void scan_range_t(const BitScanQuery& query, const PlaneView& reference,
                  std::uint32_t threshold, std::size_t begin, std::size_t end,
                  std::vector<Hit>& out) {
  const PreparedQuery p = prepare_query(query, reference, threshold, begin,
                                        end);
  constexpr std::size_t kLanes = 64ull * Traits::kWords;
  for (std::size_t base = begin; base < p.end; base += kLanes) {
    const std::size_t block = std::min(kLanes, p.end - base);
    if constexpr (kCsa)
      score_block_csa<Traits>(p.planes.data(), p.qlen, p.nbits, p.threshold,
                              base, block, out);
    else
      score_block<Traits>(p.planes.data(), p.qlen, p.nbits, p.threshold,
                          base, block, out);
  }
}

template <typename Traits, bool kCsa = false>
void scan_batch_t(const BitScanQuery* queries, const std::uint32_t* thresholds,
                  std::size_t count, const PlaneView& reference,
                  std::size_t begin, std::size_t end, std::vector<Hit>* outs) {
  std::vector<PreparedQuery> prepared;
  prepared.reserve(count);
  std::size_t max_end = begin;
  for (std::size_t q = 0; q < count; ++q) {
    prepared.push_back(
        prepare_query(queries[q], reference, thresholds[q], begin, end));
    max_end = std::max(max_end, prepared.back().end);
  }

  // One pass over the reference: every query is scored against the block
  // while its plane words are still hot, instead of re-streaming all
  // planes per query.  Blocks are aligned to `begin` exactly like the
  // single-query loop, so each outs[q] matches a solo scan bit for bit.
  constexpr std::size_t kLanes = 64ull * Traits::kWords;
  for (std::size_t base = begin; base < max_end; base += kLanes) {
    for (std::size_t q = 0; q < count; ++q) {
      const PreparedQuery& p = prepared[q];
      if (base >= p.end) continue;
      const std::size_t block = std::min(kLanes, p.end - base);
      if constexpr (kCsa)
        score_block_csa<Traits>(p.planes.data(), p.qlen, p.nbits,
                                p.threshold, base, block, outs[q]);
      else
        score_block<Traits>(p.planes.data(), p.qlen, p.nbits, p.threshold,
                            base, block, outs[q]);
    }
  }
}

}  // namespace fabp::core::detail
