#pragma once
// Private, ISA-agnostic core of the scan kernels.  Each kernel TU
// (bitscan_kernels_{swar,avx2,avx512}.cpp) defines a Traits type mapping
// the vertical-counter algorithm onto its vector substrate and
// instantiates scan_range_t / scan_batch_t with it.  This header contains
// no intrinsics, so it compiles identically under every per-TU -m flag
// set; all type names below are template parameters, which also keeps the
// instantiations TU-local (no comdat function compiled with AVX flags can
// be picked by the linker for a baseline caller).
//
// Traits contract (V = Traits::Vec holds kWords 64-bit lanes):
//   static constexpr unsigned kWords;
//   static V zero();
//   static V broadcast(std::uint64_t x);          // x in every 64-bit lane
//   static V load_bits(const std::uint64_t* plane, std::size_t w,
//                      unsigned s);
//     // 64*kWords plane bits starting at bit offset 64*w + s, i.e.
//     // lane k = (plane[w+k] >> s) | (plane[w+k+1] << (64 - s));
//     // reads plane[w .. w + kWords], which the kScanGuardWords padding
//     // every PlaneView plane carries keeps in bounds.
//   static V and_(V, V); or_(V, V); xor_(V, V);
//   static V andnot(V a, V b);                    // ~a & b
//   static V not_(V);
//   static bool any(V);                           // any bit set
//   static void store(std::uint64_t* dst, V);     // kWords words

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "fabp/core/bitscan.hpp"

namespace fabp::core::detail {

// Vertical counter planes: enough bits for any practical query length
// (count <= query length, so bit_width(qlen) planes carry it).
inline constexpr unsigned kMaxCounterBits = 33;

// Accessors for the kernel-registration functions each TU exports; a TU
// whose ISA is not compiled in returns nullptr.
const ScanKernel* scalar_kernel() noexcept;
const ScanKernel* swar64_kernel() noexcept;
const ScanKernel* avx2_kernel() noexcept;
const ScanKernel* avx512_kernel() noexcept;

/// Scores one block of 64 * Traits::kWords candidate positions starting at
/// `base` and appends the `block` leading lanes that reach the threshold.
template <typename Traits>
inline void score_block(const std::uint64_t* const* planes, std::size_t qlen,
                        unsigned nbits, std::uint32_t threshold,
                        std::size_t base, std::size_t block,
                        std::vector<Hit>& out) {
  using V = typename Traits::Vec;
  constexpr unsigned kW = Traits::kWords;

  // Accumulate per-position scores in vertical counters: lane j of
  // counter plane b is bit b of the score at position base + j.  Scores
  // never exceed qlen, so only the first nbits planes are ever touched.
  V counters[kMaxCounterBits];
  for (unsigned b = 0; b < nbits; ++b) counters[b] = Traits::zero();
  for (std::size_t i = 0; i < qlen; ++i) {
    const std::size_t offset = base + i;
    V carry = Traits::load_bits(planes[i], offset >> 6,
                                static_cast<unsigned>(offset & 63));
    // Ripple-add 1 into every set lane.
    for (unsigned b = 0; Traits::any(carry); ++b) {
      const V overflow = Traits::and_(counters[b], carry);
      counters[b] = Traits::xor_(counters[b], carry);
      carry = overflow;
    }
  }

  // score >= threshold per lane: subtract the broadcast threshold and
  // keep lanes with no borrow-out.
  V borrow = Traits::zero();
  for (unsigned b = 0; b < nbits; ++b) {
    const V tb =
        Traits::broadcast(((threshold >> b) & 1u) ? ~0ULL : 0ULL);
    borrow = Traits::or_(
        Traits::andnot(counters[b], Traits::or_(tb, borrow)),
        Traits::and_(tb, borrow));
  }

  std::uint64_t hit_words[kW];
  Traits::store(hit_words, Traits::not_(borrow));

  // Materialise Hit records word by word; counters are spilled at most
  // once per block, and only when some lane actually hit.
  std::uint64_t counter_words[kMaxCounterBits][kW];
  bool spilled = false;
  for (unsigned k = 0; k < kW; ++k) {
    const std::size_t lane_base = 64ull * k;
    if (lane_base >= block) break;
    std::uint64_t hits = hit_words[k];
    const std::size_t valid = std::min<std::size_t>(64, block - lane_base);
    if (valid < 64) hits &= (1ULL << valid) - 1;
    if (hits == 0) continue;
    if (!spilled) {
      for (unsigned b = 0; b < nbits; ++b)
        Traits::store(counter_words[b], counters[b]);
      spilled = true;
    }
    do {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(hits));
      hits &= hits - 1;
      std::uint32_t score = 0;
      for (unsigned b = 0; b < nbits; ++b)
        score |= static_cast<std::uint32_t>((counter_words[b][k] >> lane) &
                                            1u)
                 << b;
      out.push_back(Hit{base + lane_base + lane, score});
    } while (hits != 0);
  }
}

/// One query prepared for the block loop: per-element plane pointers plus
/// the clamped scan bounds.  A query the preamble rejects (empty, longer
/// than the reference, threshold above qlen) gets end == begin and is
/// skipped by the loops below.
struct PreparedQuery {
  std::vector<const std::uint64_t*> planes;
  std::size_t qlen = 0;
  unsigned nbits = 0;
  std::uint32_t threshold = 0;
  std::size_t end = 0;  // one past the last position to score
};

inline PreparedQuery prepare_query(const BitScanQuery& query,
                                   const PlaneView& reference,
                                   std::uint32_t threshold, std::size_t begin,
                                   std::size_t end) {
  PreparedQuery p;
  p.qlen = query.size();
  p.threshold = threshold;
  p.end = begin;
  if (p.qlen == 0 || reference.size < p.qlen) return p;
  const std::size_t positions = reference.size - p.qlen + 1;
  end = std::min(end, positions);
  if (begin >= end) return p;
  if (threshold > p.qlen) return p;  // scores never exceed the element count
  p.end = end;
  p.nbits = static_cast<unsigned>(std::bit_width(p.qlen));
  p.planes.resize(p.qlen);
  const std::vector<std::uint8_t>& kinds = query.kinds();
  for (std::size_t i = 0; i < p.qlen; ++i)
    p.planes[i] = reference.plane(kinds[i]);
  return p;
}

template <typename Traits>
void scan_range_t(const BitScanQuery& query, const PlaneView& reference,
                  std::uint32_t threshold, std::size_t begin, std::size_t end,
                  std::vector<Hit>& out) {
  const PreparedQuery p = prepare_query(query, reference, threshold, begin,
                                        end);
  constexpr std::size_t kLanes = 64ull * Traits::kWords;
  for (std::size_t base = begin; base < p.end; base += kLanes)
    score_block<Traits>(p.planes.data(), p.qlen, p.nbits, p.threshold, base,
                        std::min(kLanes, p.end - base), out);
}

template <typename Traits>
void scan_batch_t(const BitScanQuery* queries, const std::uint32_t* thresholds,
                  std::size_t count, const PlaneView& reference,
                  std::size_t begin, std::size_t end, std::vector<Hit>* outs) {
  std::vector<PreparedQuery> prepared;
  prepared.reserve(count);
  std::size_t max_end = begin;
  for (std::size_t q = 0; q < count; ++q) {
    prepared.push_back(
        prepare_query(queries[q], reference, thresholds[q], begin, end));
    max_end = std::max(max_end, prepared.back().end);
  }

  // One pass over the reference: every query is scored against the block
  // while its plane words are still hot, instead of re-streaming all
  // planes per query.  Blocks are aligned to `begin` exactly like the
  // single-query loop, so each outs[q] matches a solo scan bit for bit.
  constexpr std::size_t kLanes = 64ull * Traits::kWords;
  for (std::size_t base = begin; base < max_end; base += kLanes) {
    for (std::size_t q = 0; q < count; ++q) {
      const PreparedQuery& p = prepared[q];
      if (base >= p.end) continue;
      score_block<Traits>(p.planes.data(), p.qlen, p.nbits, p.threshold,
                          base, std::min(kLanes, p.end - base), outs[q]);
    }
  }
}

}  // namespace fabp::core::detail
