#include "fabp/core/threshold.hpp"

#include <cmath>
#include <numbers>

namespace fabp::core {

double element_match_probability(const BackElement& element) noexcept {
  switch (element.type) {
    case ElementType::ExactI:
      return 0.25;
    case ElementType::ConditionalII:
      switch (element.cond) {
        case Condition::UorC:
        case Condition::AorG:
        case Condition::AorC: return 0.5;
        case Condition::NotG: return 0.75;
      }
      return 0.5;
    case ElementType::DependentIII:
      switch (element.func) {
        // Averaged over a uniformly random history element.
        case Function::Stop3: return 0.375;  // (1/2 + 1/4) / 2
        case Function::Leu3: return 0.75;    // (1 + 1/2) / 2
        case Function::Arg3: return 0.75;
        case Function::AnyD: return 1.0;
      }
      return 1.0;
  }
  return 0.25;
}

double ScoreStatistics::stddev() const noexcept { return std::sqrt(variance); }

double ScoreStatistics::false_positive_rate(std::uint32_t threshold) const {
  if (threshold == 0) return 1.0;
  if (static_cast<double>(threshold) > static_cast<double>(elements))
    return 0.0;
  if (variance <= 0.0)
    return static_cast<double>(threshold) <= mean ? 1.0 : 0.0;
  // Normal approximation with continuity correction:
  // P(S >= t) ~= Q((t - 0.5 - mean) / sd).
  const double z = (static_cast<double>(threshold) - 0.5 - mean) / stddev();
  return 0.5 * std::erfc(z / std::numbers::sqrt2);
}

ScoreStatistics score_statistics(const std::vector<BackElement>& query) {
  ScoreStatistics stats;
  stats.elements = query.size();
  for (const BackElement& e : query) {
    const double p = element_match_probability(e);
    stats.mean += p;
    stats.variance += p * (1.0 - p);
  }
  return stats;
}

std::uint32_t threshold_for_expected_hits(
    const std::vector<BackElement>& query, std::size_t reference_elements,
    double expected_hits) {
  const ScoreStatistics stats = score_statistics(query);
  const double offsets = static_cast<double>(
      reference_elements > query.size()
          ? reference_elements - query.size() + 1
          : 1);
  const double target_fpr =
      expected_hits <= 0.0 ? 0.0 : expected_hits / offsets;
  for (std::uint32_t t = 0; t <= query.size(); ++t)
    if (stats.false_positive_rate(t) <= target_fpr) return t;
  return static_cast<std::uint32_t>(query.size()) + 1;  // unreachable FPR
}

}  // namespace fabp::core
