#include "fabp/core/bitscan_tiled.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "fabp/util/bitops.hpp"
#include "fabp/util/thread_pool.hpp"

namespace fabp::core {

namespace {

using util::ceil_div;
using util::compress_even_bits;

// Stealing mode splits the scan into this many runs per worker: fine
// enough that one slow worker sheds load through the queue, coarse enough
// that dispatch and scratch setup stay amortised over many tiles.
constexpr std::size_t kStealingRunsPerWorker = 4;

// Auto picks the static partition once every worker owns at least this
// many whole tiles — the end-of-scan imbalance is then bounded by one
// tile per run, a small fraction of each worker's share.
constexpr std::size_t kStaticTilesPerWorker = 8;

// Read-prefetch into a streaming cache level; a no-op compiler-side when
// the builtin is unavailable (the hardware prefetcher still works).
inline void prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/0);
#else
  (void)p;
#endif
}

// One tile's compiled planes: a single allocation holding all 12 kind
// planes at a fixed stride, reused across every tile of a scan.  Plane k
// lives at buffer[k * stride .. k * stride + stride); words past the
// tile's data are kept zero so kernel guard fetches read zeros exactly
// like BitScanReference's padding.
struct TileScratch {
  std::vector<std::uint64_t> buffer;
  std::size_t stride = 0;

  void resize(std::size_t words_per_plane) {
    stride = words_per_plane;
    buffer.assign(kElementKindCount * stride, 0);
  }
  std::uint64_t* plane(std::size_t kind) noexcept {
    return buffer.data() + kind * stride;
  }
  PlaneView view(std::size_t positions) const noexcept {
    PlaneView v;
    for (std::size_t k = 0; k < kElementKindCount; ++k)
      v.planes[k] = buffer.data() + k * stride;
    v.size = positions;
    return v;
  }
};

// lsb/msb code-bitplane words of global word `w` straight from the packed
// store (two packed words -> one plane word; missing words decode as A).
struct CodeWord {
  std::uint64_t lsb = 0;
  std::uint64_t msb = 0;
};

CodeWord code_word(std::span<const std::uint64_t> packed,
                   std::size_t w) noexcept {
  const std::uint64_t lo = 2 * w < packed.size() ? packed[2 * w] : 0;
  const std::uint64_t hi = 2 * w + 1 < packed.size() ? packed[2 * w + 1] : 0;
  CodeWord c;
  c.lsb = compress_even_bits(lo) | (compress_even_bits(hi) << 32);
  c.msb = compress_even_bits(lo >> 1) | (compress_even_bits(hi >> 1) << 32);
  return c;
}

// Compiles the 12 element-kind planes for global words
// [first_word, first_word + data_words) into scratch indices
// [0, data_words), fusing the NucleotideBitplanes SWAR compaction and the
// BitScanReference plane formulas into one pass over the packed words.
// The prev1/prev2 history bits are seeded from `entry` — the code word of
// first_word - 1, which the caller either carries over from the previous
// tile of its run or (at a run boundary) re-derives from the packed store
// — so planes are bit-for-bit what the whole-reference compile produces
// for the same words.  Scratch words in [data_words, stride) are zeroed —
// the guard padding kernel fetches rely on.
//
// Returns the code word observed at global word `capture_w` (the entry
// history of the run's next tile); pass SIZE_MAX on the last tile.  With
// prefetch_words != 0 the packed words that far ahead of the compile
// cursor are software-prefetched, one line per 4 plane words.
CodeWord compile_tile(std::span<const std::uint64_t> packed,
                      std::size_t ref_size, std::size_t first_word,
                      std::size_t data_words, std::size_t capture_w,
                      CodeWord entry, std::size_t prefetch_words,
                      TileScratch& scratch) {
  const std::size_t word_count = ceil_div(ref_size, 64);
  const unsigned tail = static_cast<unsigned>(ref_size & 63);

  CodeWord prev = entry;
  CodeWord captured;
  std::uint64_t* const p = scratch.buffer.data();
  const std::size_t stride = scratch.stride;
  for (std::size_t i = 0; i < data_words; ++i) {
    const std::size_t w = first_word + i;
    if (prefetch_words != 0 && (i & 3) == 0) {
      // The loop consumes 2 packed words per iteration; touch the line
      // `prefetch_words` packed words ahead once per 4 iterations (one
      // 64-byte line = 8 words).
      const std::size_t ahead = 2 * w + prefetch_words;
      if (ahead < packed.size()) prefetch_ro(packed.data() + ahead);
    }
    const CodeWord c = code_word(packed, w);
    if (w == capture_w) captured = c;
    std::uint64_t valid = ~0ULL;
    if (w + 1 == word_count && tail != 0) valid = (1ULL << tail) - 1;
    if (w >= word_count) valid = 0;

    const std::uint64_t lsb = c.lsb, msb = c.msb;
    const std::uint64_t eq_g = msb & ~lsb;
    const std::uint64_t eq_a = ~(lsb | msb) & valid;
    const std::uint64_t p1m = ((msb << 1) | (prev.msb >> 63)) & valid;
    const std::uint64_t p2m = ((msb << 2) | (prev.msb >> 62)) & valid;
    const std::uint64_t p2l = ((lsb << 2) | (prev.lsb >> 62)) & valid;

    // Type I: occurrence planes.
    p[0 * stride + i] = eq_a;
    p[1 * stride + i] = lsb & ~msb;
    p[2 * stride + i] = eq_g;
    p[3 * stride + i] = lsb & msb;
    // Type II conditions on the 2-bit code.
    p[4 * stride + i] = lsb;
    p[5 * stride + i] = valid & ~lsb;
    p[6 * stride + i] = valid & ~eq_g;
    p[7 * stride + i] = valid & ~msb;
    // Type III: history-dependent selects (see BitScanReference).
    p[8 * stride + i] = (p1m & eq_a) | (valid & ~p1m & ~lsb);  // Stop3
    p[9 * stride + i] = valid & ~(p2m & lsb);                  // Leu3
    p[10 * stride + i] = p2l | (valid & ~lsb);                 // Arg3
    p[11 * stride + i] = valid;                                // D

    prev = c;
  }
  // Re-zero the slack: a previous (larger) tile may have left data there,
  // and kernel guard fetches past the tile's last data word must see 0.
  for (std::size_t k = 0; k < kElementKindCount; ++k)
    std::fill(p + k * stride + data_words, p + (k + 1) * stride, 0);
  return captured;
}

// Scratch words per plane for a scan whose longest query has qlen
// elements: one tile of plane words, the inter-tile overhang a query
// straddling the edge reads, and the kernel guard fetch padding.
std::size_t stride_for(std::size_t tile_positions, std::size_t qlen) noexcept {
  return tile_positions / 64 + ceil_div(qlen + 63, 64) + 1 + kScanGuardWords;
}

}  // namespace

bool use_tiled_scan(ScanPath requested) noexcept {
  if (requested != ScanPath::Auto) return requested == ScanPath::Tiled;
  static const bool tiled = [] {
    if (const char* mode = std::getenv("FABP_SCAN_MODE"))
      if (std::string_view{mode} == "planes") return false;
    return true;  // unknown values keep the default, like FABP_FORCE_ISA
  }();
  return tiled;
}

TileScanner::TileScanner(const bio::PackedNucleotides& packed,
                         TileScanConfig config)
    : words_{packed.words()},
      size_{packed.size()},
      prefetch_distance_{config.prefetch_distance},
      partition_{config.partition} {
  tile_positions_ = std::max<std::size_t>(config.tile_positions, 1);
  tile_positions_ = 64 * ceil_div(tile_positions_, 64);
}

TileScanner::TileScanner(const bio::ReferenceDatabase& database,
                         TileScanConfig config)
    : TileScanner{database.packed(), config} {}

std::size_t TileScanner::tile_count() const noexcept {
  return tile_positions_ == 0 ? 0 : ceil_div(size_, tile_positions_);
}

std::size_t TileScanner::scan_runs(std::size_t positions,
                                   std::size_t workers) const noexcept {
  if (positions == 0 || workers <= 1 || tile_positions_ == 0) return 1;
  const std::size_t tiles = ceil_div(positions, tile_positions_);
  switch (partition_) {
    case TilePartition::Static:
      return std::min(tiles, workers);
    case TilePartition::Stealing:
      return std::min(tiles, workers * kStealingRunsPerWorker);
    case TilePartition::Auto:
      break;
  }
  return tiles >= workers * kStaticTilesPerWorker
             ? std::min(tiles, workers)
             : std::min(tiles, workers * kStealingRunsPerWorker);
}

std::size_t TileScanner::scratch_bytes(
    std::size_t query_elements) const noexcept {
  return kElementKindCount * stride_for(tile_positions_, query_elements) *
         sizeof(std::uint64_t);
}

void TileScanner::range(const BitScanQuery& query, std::uint32_t threshold,
                        std::size_t begin, std::size_t end,
                        std::vector<Hit>& out) const {
  range(active_scan_kernel(), query, threshold, begin, end, out);
}

void TileScanner::range(const ScanKernel& kernel, const BitScanQuery& query,
                        std::uint32_t threshold, std::size_t begin,
                        std::size_t end, std::vector<Hit>& out) const {
  range_batch(kernel, &query, &threshold, 1, begin, end, &out);
}

void TileScanner::range_batch(const BitScanQuery* queries,
                              const std::uint32_t* thresholds,
                              std::size_t count, std::size_t begin,
                              std::size_t end, std::vector<Hit>* outs) const {
  range_batch(active_scan_kernel(), queries, thresholds, count, begin, end,
              outs);
}

void TileScanner::range_batch(const ScanKernel& kernel,
                              const BitScanQuery* queries,
                              const std::uint32_t* thresholds,
                              std::size_t count, std::size_t begin,
                              std::size_t end, std::vector<Hit>* outs) const {
  // Clamp to the widest scannable span and find the overhang-defining
  // query; queries the preamble rejects are skipped by prepare_query
  // inside the kernel exactly as on the precompiled path.
  std::size_t max_qlen = 0;
  std::size_t scan_end = begin;
  for (std::size_t q = 0; q < count; ++q) {
    const std::size_t qlen = queries[q].size();
    if (qlen == 0 || size_ < qlen || thresholds[q] > qlen) continue;
    max_qlen = std::max(max_qlen, qlen);
    scan_end = std::max(scan_end, std::min(end, size_ - qlen + 1));
  }
  if (max_qlen == 0 || begin >= scan_end) return;

  TileScratch scratch;
  scratch.resize(stride_for(tile_positions_, max_qlen));
  const std::size_t word_count = ceil_div(size_, 64);
  std::vector<std::size_t> before(count);

  // Entry history of the first tile of this span; from here on the code
  // word at each tile's entry edge is captured during the previous tile's
  // compile pass instead of re-read from the packed store — the whole
  // span (a worker's owned run in pooled scans) streams every packed word
  // exactly once, plus the inter-tile overhang.
  std::size_t pos = begin;
  CodeWord entry;  // zero at the reference start
  if ((pos >> 6) > 0) entry = code_word(words_, (pos >> 6) - 1);

  while (pos < scan_end) {
    // Tiles sit on the absolute grid, so a chunked parallel scan compiles
    // exactly the words a serial scan would for the same positions.
    const std::size_t tile_end = std::min(
        scan_end, (pos / tile_positions_ + 1) * tile_positions_);
    const std::size_t first_word = pos >> 6;
    const std::size_t local_base = first_word * 64;
    // Plane words that must hold real data: position tile_end-1 reads
    // query bits up to offset tile_end-1 + max_qlen-1.
    const std::size_t last_word =
        std::min(word_count - 1, (tile_end + max_qlen - 2) >> 6);
    const std::size_t data_words = last_word - first_word + 1;
    // Footprint invariant, checked in every build (one compare per tile):
    // the scan's working set beyond the packed store never exceeds the
    // O(tile + query) scratch it was sized for.
    if (data_words + kScanGuardWords > scratch.stride)
      throw std::logic_error{
          "TileScanner: tile scratch underestimates the working set"};
    // The next tile starts at word tile_end/64 (tile ends are 64-aligned
    // except the final clamp); its entry history is the code word just
    // before, which this tile's compile pass walks over.
    const bool last_tile = tile_end >= scan_end;
    const std::size_t capture_w =
        last_tile ? static_cast<std::size_t>(-1) : (tile_end >> 6) - 1;
    const CodeWord next_entry =
        compile_tile(words_, size_, first_word, data_words, capture_w, entry,
                     prefetch_distance_, scratch);

    // While this tile is being *scored* the packed stream sits idle; pull
    // the head of the next tile's packed words in so the next compile
    // does not stall on DRAM.
    if (prefetch_distance_ != 0 && !last_tile) {
      const std::size_t next_first = 2 * (tile_end >> 6);
      const std::size_t limit =
          std::min(words_.size(), next_first + prefetch_distance_);
      for (std::size_t a = next_first; a < limit; a += 8)
        prefetch_ro(words_.data() + a);
    }

    // Score the tile in local coordinates (plane bit j = reference
    // position local_base + j), then rebase the appended hits; the scores
    // and the per-position order are untouched, so output is identical to
    // a whole-reference scan.
    const PlaneView view = scratch.view(size_ - local_base);
    for (std::size_t q = 0; q < count; ++q) before[q] = outs[q].size();
    kernel.range_batch(queries, thresholds, count, view, pos - local_base,
                       tile_end - local_base, outs);
    for (std::size_t q = 0; q < count; ++q)
      for (std::size_t h = before[q]; h < outs[q].size(); ++h)
        outs[q][h].position += local_base;
    pos = tile_end;
    entry = next_entry;
  }
}

std::vector<Hit> TileScanner::hits(const BitScanQuery& query,
                                   std::uint32_t threshold,
                                   util::ThreadPool* pool) const {
  std::vector<Hit> out;
  if (query.empty() || size_ < query.size()) return out;
  const std::size_t positions = size_ - query.size() + 1;
  if (pool == nullptr || pool->size() <= 1 || positions <= tile_positions_) {
    range(query, threshold, 0, positions, out);
    return out;
  }

  // Partition the tile grid into contiguous runs (see TilePartition): each
  // run is compiled and scored whole by one worker — its own scratch, its
  // own cache-line-isolated hit slot, history carried across its tile
  // edges — then the slots are stitched in run order: deterministic and
  // bit-identical to the serial scan.
  const std::size_t runs = scan_runs(positions, pool->size());
  if (runs <= 1) {
    range(query, threshold, 0, positions, out);
    return out;
  }
  struct alignas(64) RunSlot {
    std::vector<Hit> hits;
  };
  std::vector<RunSlot> slots(runs);
  pool->parallel_indexed_chunks(
      0, positions,
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        range(query, threshold, lo, hi, slots[c].hits);
      },
      tile_positions_, runs);
  std::size_t total = 0;
  for (const RunSlot& slot : slots) total += slot.hits.size();
  out.reserve(total);
  for (const RunSlot& slot : slots)
    out.insert(out.end(), slot.hits.begin(), slot.hits.end());
  return out;
}

std::vector<std::vector<Hit>> TileScanner::hits_batch(
    std::span<const BitScanQuery> queries,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) const {
  if (queries.size() != thresholds.size())
    throw std::invalid_argument{
        "TileScanner::hits_batch: one threshold per query required"};
  std::vector<std::vector<Hit>> outs(queries.size());
  if (queries.empty()) return outs;

  std::size_t positions = 0;
  for (const BitScanQuery& query : queries)
    if (!query.empty() && size_ >= query.size())
      positions = std::max(positions, size_ - query.size() + 1);
  if (positions == 0) return outs;

  if (pool == nullptr || pool->size() <= 1 || positions <= tile_positions_) {
    range_batch(queries.data(), thresholds.data(), queries.size(), 0,
                positions, outs.data());
    return outs;
  }

  const std::size_t runs = scan_runs(positions, pool->size());
  if (runs <= 1) {
    range_batch(queries.data(), thresholds.data(), queries.size(), 0,
                positions, outs.data());
    return outs;
  }
  struct alignas(64) RunSlot {
    std::vector<std::vector<Hit>> hits;
  };
  std::vector<RunSlot> slots(runs);
  for (RunSlot& slot : slots)
    slot.hits = std::vector<std::vector<Hit>>(queries.size());
  pool->parallel_indexed_chunks(
      0, positions,
      [&](std::size_t c, std::size_t lo, std::size_t hi) {
        range_batch(queries.data(), thresholds.data(), queries.size(), lo, hi,
                    slots[c].hits.data());
      },
      tile_positions_, runs);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::size_t total = 0;
    for (const RunSlot& slot : slots) total += slot.hits[q].size();
    outs[q].reserve(total);
    for (const RunSlot& slot : slots)
      outs[q].insert(outs[q].end(), slot.hits[q].begin(), slot.hits[q].end());
  }
  return outs;
}

}  // namespace fabp::core
