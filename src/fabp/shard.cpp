#include "fabp/core/shard.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "fabp/util/timer.hpp"

namespace fabp::core {

namespace {

// Per-card fault streams must be independent: the same seed on every card
// would replay identical fault schedules in lockstep across the fleet.
constexpr std::uint64_t kShardSeedStride = 0x9e3779b97f4a7c15ull;

// Position of the first hit at or past `position` in a sorted hit list.
std::vector<Hit>::const_iterator hit_lower_bound(const std::vector<Hit>& hits,
                                                 std::size_t position) {
  return std::lower_bound(
      hits.begin(), hits.end(), position,
      [](const Hit& hit, std::size_t value) { return hit.position < value; });
}

}  // namespace

Error validate_shard_config(const ShardConfig& config) noexcept {
  if (config.shard_count == 0)
    return Error{ErrorCode::InvalidConfig, "shard.shard_count must be positive"};
  if (config.shard_count > 64)
    return Error{ErrorCode::InvalidConfig, "shard.shard_count above 64 is absurd"};
  if (config.max_query_elements == 0)
    return Error{ErrorCode::InvalidConfig,
                 "shard.max_query_elements must be positive"};
  if (config.fault_only_shard != ShardConfig::kAllShards &&
      config.fault_only_shard >= config.shard_count)
    return Error{ErrorCode::InvalidConfig,
                 "shard.fault_only_shard is not a shard index"};
  return Error{};
}

// One modeled card: its DRAM slice, its primary backend, a software
// fallback over the same slice, and a single-threaded admission queue (the
// card's command queue).  The queue fields are guarded by `mutex`; every
// other field is touched only by the router with the engine's execution
// lock held (the backend thread-safety contract), or by the worker while
// the router is blocked on the job's future.
struct ShardedBackend::Shard {
  std::size_t index = 0;
  std::size_t owned_begin = 0;  // global window-start ownership [begin, end)
  std::size_t owned_end = 0;

  HostConfig config;     // per-card fault stream / chaos gating
  ReferenceStore store;  // this card's DRAM slice (owned range + halo)
  std::unique_ptr<ScanBackend> primary;
  std::unique_ptr<ScanBackend> fallback;  // software path over the same slice

  mutable std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::packaged_task<void()>> jobs;
  bool stopping = false;
  std::size_t peak_queue_depth = 0;
  std::thread worker;

  // Router-side lifetime accounting.
  bool routed_to_fallback = false;
  std::size_t batches_executed = 0;
  std::size_t fallback_batches = 0;
  std::size_t fault_log_consumed = 0;
  RecoveryStats recovery;

  std::size_t owned_elements() const noexcept {
    return owned_end - owned_begin;
  }
  std::size_t slice_elements() const noexcept { return store.forward.size(); }

  std::future<void> enqueue(std::function<void()> fn) {
    std::packaged_task<void()> task{std::move(fn)};
    std::future<void> done = task.get_future();
    {
      std::lock_guard lock{mutex};
      jobs.push_back(std::move(task));
      peak_queue_depth = std::max(peak_queue_depth, jobs.size());
    }
    cv.notify_one();
    return done;
  }

  void worker_loop() {
    for (;;) {
      std::packaged_task<void()> job;
      {
        std::unique_lock lock{mutex};
        cv.wait(lock, [this] { return stopping || !jobs.empty(); });
        if (jobs.empty()) return;  // stopping, queue drained
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      job();  // exceptions land in the future the router holds
    }
  }

  /// The backend this batch routes to.  A Degraded primary sheds the slice
  /// to the software fallback instead of stalling the queue on per-request
  /// golden recoveries (or DeviceLost errors when fallback is disallowed).
  ScanBackend* route(bool allow_fallback, bool& used_fallback) {
    if (fallback && allow_fallback &&
        primary->health() == HealthState::Degraded) {
      used_fallback = true;
      routed_to_fallback = true;
      ++fallback_batches;
      return fallback.get();
    }
    used_fallback = false;
    return primary.get();
  }
};

ShardedBackend::ShardedBackend(BackendKind kind, const HostConfig& config,
                               const ReferenceStore& store,
                               const ShardConfig& shard)
    : kind_{kind}, config_{config}, store_{store}, shard_config_{shard} {
  if (Error error = validate_shard_config(shard_config_);
      error.code != ErrorCode::None)
    throw FaultError{std::move(error)};
  shards_.reserve(shard_config_.shard_count);
  for (std::size_t s = 0; s < shard_config_.shard_count; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->index = s;
    sh->config = config_;
    sh->config.fault.seed += kShardSeedStride * (s + 1);
    if (shard_config_.fault_only_shard != ShardConfig::kAllShards &&
        s != shard_config_.fault_only_shard) {
      const std::uint64_t seed = sh->config.fault.seed;
      sh->config.fault = hw::FaultConfig{};
      sh->config.fault.seed = seed;
    }
    sh->primary = make_backend(kind_, sh->config, sh->store);
    if (kind_ == BackendKind::HwSim)
      sh->fallback = make_backend(software_backend_kind(sh->config.scan_path),
                                  sh->config, sh->store);
    shards_.push_back(std::move(sh));
  }
  reslice();
  for (auto& sh : shards_)
    sh->worker = std::thread{[shard_ptr = sh.get()] { shard_ptr->worker_loop(); }};
}

ShardedBackend::~ShardedBackend() {
  for (auto& sh : shards_) {
    {
      std::lock_guard lock{sh->mutex};
      sh->stopping = true;
    }
    sh->cv.notify_all();
  }
  for (auto& sh : shards_)
    if (sh->worker.joinable()) sh->worker.join();
}

void ShardedBackend::reslice() {
  const std::size_t total = store_.forward.size();
  const std::size_t count = shards_.size();
  const std::size_t halo = shard_config_.max_query_elements - 1;
  for (auto& sp : shards_) {
    Shard& sh = *sp;
    // Natural ragged partition of window-start ownership: shard s owns
    // [s*S/N, (s+1)*S/N); the resident slice extends `halo` elements past
    // the owned range (clamped at the reference end) so every window
    // starting in the owned range lies inside the slice.
    sh.owned_begin = sh.index * total / count;
    sh.owned_end = (sh.index + 1) * total / count;
    if (store_.uploaded) {
      const std::size_t slice_end = std::min(total, sh.owned_end + halo);
      sh.store.upload(
          store_.forward.slice(sh.owned_begin, slice_end - sh.owned_begin),
          config_.search_both_strands);
    } else {
      sh.store = ReferenceStore{};
    }
    sh.primary->invalidate();
    if (sh.fallback) sh.fallback->invalidate();
  }
}

void ShardedBackend::invalidate() { reslice(); }

std::size_t ShardedBackend::shard_count() const noexcept {
  return shards_.size();
}

bool ShardedBackend::supports_precomputed_hits() const noexcept {
  return shards_.front()->primary->supports_precomputed_hits();
}

HealthState ShardedBackend::health() const noexcept {
  for (const auto& sh : shards_)
    if (sh->primary->health() == HealthState::Degraded)
      return HealthState::Degraded;
  return HealthState::Healthy;
}

const std::vector<hw::FaultEvent>& ShardedBackend::fault_log()
    const noexcept {
  return merged_fault_log_;
}

void ShardedBackend::harvest_shard_stats(Shard& shard) {
  const std::vector<hw::FaultEvent>& log = shard.primary->fault_log();
  for (std::size_t i = shard.fault_log_consumed; i < log.size(); ++i)
    merged_fault_log_.push_back(log[i]);
  shard.fault_log_consumed = log.size();
}

Expected<BackendRun> ShardedBackend::run(const BackendRequest& request) {
  std::vector<Expected<BackendRun>> out = run_many({&request, 1});
  return std::move(out.front());
}

Expected<BackendRun> ShardedBackend::gather_request(
    std::size_t request_index, std::size_t query_elements,
    std::vector<std::vector<Expected<BackendRun>>>& per_shard) {
  (void)query_elements;
  // First shard error fails the request (the shards see identical request
  // shapes, so the first error is the representative one).
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Expected<BackendRun>& result = per_shard[s][request_index];
    if (!result) return result.error();
  }
  BackendRun out;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    const BackendRun& part = per_shard[s][request_index].value();
    const std::size_t owned = sh.owned_elements();
    // Ownership filter + rebase: keep hits whose window starts in the
    // owned range (slice-local position < owned), lift them to global
    // coordinates.  Halo hits are each owned by the next shard — dropping
    // them here is the dedup.  Ascending-shard concatenation of sorted
    // owned sub-lists reproduces the unsharded position order exactly; the
    // reverse list is already mapped to slice-local *forward* coordinates
    // by each shard's backend, so the same rule applies verbatim.
    for (auto it = part.hits.begin(), end = hit_lower_bound(part.hits, owned);
         it != end; ++it)
      out.hits.push_back(Hit{it->position + sh.owned_begin, it->score});
    for (auto it = part.reverse_hits.begin(),
              end = hit_lower_bound(part.reverse_hits, owned);
         it != end; ++it)
      out.reverse_hits.push_back(Hit{it->position + sh.owned_begin, it->score});
    // The cards run in parallel: makespan accounting is max over cards,
    // energy is summed.
    out.cycles = std::max(out.cycles, part.cycles);
    out.kernel_seconds = std::max(out.kernel_seconds, part.kernel_seconds);
    out.watts += part.watts;
    if (s == 0) out.mapping = part.mapping;
    out.recovery.merge(part.recovery);
    sh.recovery.merge(part.recovery);
  }
  return out;
}

std::vector<Expected<BackendRun>> ShardedBackend::run_many(
    std::span<const BackendRequest> requests) {
  std::vector<Expected<BackendRun>> out;
  out.reserve(requests.size());
  if (requests.empty()) return out;
  if (!store_.uploaded) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      out.push_back(Error{ErrorCode::NoReference,
                          "Session: no reference uploaded"});
    return out;
  }

  util::Timer scatter_timer;
  const std::size_t total = store_.forward.size();

  // Admission check: a query longer than the halo supports would lose
  // boundary hits silently — fail it typed without touching any card.
  std::vector<std::size_t> routed;  // original indices that fan out
  routed.reserve(requests.size());
  std::vector<bool> oversized(requests.size(), false);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].query->size() > shard_config_.max_query_elements)
      oversized[i] = true;
    else
      routed.push_back(i);
  }

  // Scatter: one request list per shard, precomputed hit lists narrowed to
  // each slice (exactly what that shard's own scan would produce, so the
  // precompute contract holds card-locally).
  struct ShardBatch {
    std::vector<std::vector<Hit>> forward_arena;
    std::vector<std::vector<Hit>> reverse_arena;
    std::vector<BackendRequest> requests;
  };
  std::vector<ShardBatch> batches(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    ShardBatch& batch = batches[s];
    const std::size_t slice_begin = sh.owned_begin;
    const std::size_t slice_end = slice_begin + sh.slice_elements();
    batch.forward_arena.resize(routed.size());
    batch.reverse_arena.resize(routed.size());
    batch.requests.reserve(routed.size());
    for (std::size_t j = 0; j < routed.size(); ++j) {
      const BackendRequest& original = requests[routed[j]];
      const std::size_t lq = original.query->size();
      BackendRequest local;
      local.query = original.query;
      local.threshold = original.threshold;
      local.pool = original.pool;
      if (original.forward_hits != nullptr) {
        // Slice-local forward list: global positions in [begin, end - lq],
        // rebased by -begin.  (Positions past end - lq cannot start a
        // window inside the slice and never appear slice-locally.)
        const std::vector<Hit>& global = *original.forward_hits;
        std::vector<Hit>& local_hits = batch.forward_arena[j];
        const std::size_t last =
            slice_end - slice_begin >= lq ? slice_end - lq + 1 : slice_begin;
        for (auto it = hit_lower_bound(global, slice_begin),
                  end = hit_lower_bound(global, last);
             it != end; ++it)
          local_hits.push_back(Hit{it->position - slice_begin, it->score});
        local.forward_hits = &local_hits;
      }
      if (original.reverse_hits != nullptr) {
        // Raw RC coordinates: the global raw position q maps to forward
        // start f = S - lq - q; the slice sees windows with f in
        // [begin, end - lq], i.e. q in [S - end, S - lq - begin], shifted
        // by -(S - end) into the slice's own RC frame.  The global list is
        // ascending in q, so the kept subrange stays ascending locally.
        const std::vector<Hit>& global = *original.reverse_hits;
        std::vector<Hit>& local_hits = batch.reverse_arena[j];
        if (slice_end - slice_begin >= lq && total >= slice_end) {
          const std::size_t shift = total - slice_end;
          const std::size_t hi = total - lq - slice_begin;  // inclusive
          for (auto it = hit_lower_bound(global, shift),
                    end = hit_lower_bound(global, hi + 1);
               it != end; ++it)
            local_hits.push_back(Hit{it->position - shift, it->score});
        }
        local.reverse_hits = &local_hits;
      }
      batch.requests.push_back(local);
    }
  }
  scatter_s_ += scatter_timer.seconds();

  // Fan out: ONE run_many per shard through its admission queue — the
  // hw-sim cards each pack the whole batch into device invocations over
  // their own slice.  Wait for every card before surfacing any failure.
  std::vector<std::vector<Expected<BackendRun>>> shard_results(shards_.size());
  if (!routed.empty()) {
    std::vector<std::future<void>> done;
    done.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      ++sh.batches_executed;
      bool used_fallback = false;
      ScanBackend* target =
          sh.route(config_.recovery.allow_software_fallback, used_fallback);
      const bool both_strands = config_.search_both_strands;
      done.push_back(sh.enqueue([target, used_fallback, both_strands,
                                 &batch = batches[s],
                                 &results = shard_results[s]] {
        results = target->run_many(batch.requests);
        if (used_fallback) {
          // Keep the degraded-path accounting the primary would have
          // produced: these strand runs were served in software.
          for (Expected<BackendRun>& result : results) {
            if (!result) continue;
            result->recovery.fallbacks += both_strands ? 2 : 1;
            result->recovery.degraded = true;
          }
        }
      }));
    }
    std::exception_ptr first_failure;
    for (std::future<void>& future : done) {
      try {
        future.get();
      } catch (...) {
        if (!first_failure) first_failure = std::current_exception();
      }
    }
    if (first_failure) std::rethrow_exception(first_failure);
  }

  util::Timer gather_timer;
  std::size_t j = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (oversized[i]) {
      out.push_back(Error{
          ErrorCode::BadArgument,
          "query exceeds shard.max_query_elements (halo too small for it)"});
      continue;
    }
    out.push_back(gather_request(j++, requests[i].query->size(),
                                 shard_results));
  }
  for (auto& sh : shards_) harvest_shard_stats(*sh);
  gather_s_ += gather_timer.seconds();
  return out;
}

std::vector<std::vector<Hit>> ShardedBackend::scan_batch(
    std::span<const CompiledQueryPtr> queries,
    std::span<const std::uint32_t> thresholds, bool reverse_strand,
    util::ThreadPool* pool) {
  std::vector<std::vector<Hit>> out(queries.size());
  if (queries.empty() || !store_.uploaded) return out;
  for (const CompiledQueryPtr& query : queries)
    if (query->size() > shard_config_.max_query_elements)
      throw std::invalid_argument{
          "ShardedBackend::scan_batch: query exceeds shard.max_query_elements"};

  // Fan out: one scan_batch per shard through its admission queue.
  std::vector<std::vector<std::vector<Hit>>> shard_hits(shards_.size());
  {
    std::vector<std::future<void>> done;
    done.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& sh = *shards_[s];
      ++sh.batches_executed;
      bool used_fallback = false;
      ScanBackend* target =
          sh.route(config_.recovery.allow_software_fallback, used_fallback);
      done.push_back(sh.enqueue(
          [target, queries, thresholds, reverse_strand, pool,
           &results = shard_hits[s]] {
            results = target->scan_batch(queries, thresholds, reverse_strand,
                                         pool);
          }));
    }
    std::exception_ptr first_failure;
    for (std::future<void>& future : done) {
      try {
        future.get();
      } catch (...) {
        if (!first_failure) first_failure = std::current_exception();
      }
    }
    if (first_failure) std::rethrow_exception(first_failure);
  }

  util::Timer gather_timer;
  const std::size_t total = store_.forward.size();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::size_t lq = queries[q]->size();
    std::vector<Hit>& merged = out[q];
    if (!reverse_strand) {
      // Ascending shards, owned-range filter, +owned_begin rebase: the
      // unsharded forward list in position order.
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& sh = *shards_[s];
        const std::vector<Hit>& local = shard_hits[s][q];
        for (auto it = local.begin(),
                  end = hit_lower_bound(local, sh.owned_elements());
             it != end; ++it)
          merged.push_back(Hit{it->position + sh.owned_begin, it->score});
      }
    } else {
      // Raw RC coordinates ascend as forward coordinates *descend*, so the
      // globally sorted raw list is the descending-shard concatenation.
      // Slice-local raw j maps to local forward start L - lq - j; it is
      // owned iff that is < owned, i.e. j >= L - lq - owned + 1; the
      // global raw coordinate is j + (S - slice_end).
      for (std::size_t s = shards_.size(); s-- > 0;) {
        Shard& sh = *shards_[s];
        const std::vector<Hit>& local = shard_hits[s][q];
        const std::size_t slice = sh.slice_elements();
        if (slice < lq) continue;
        const std::size_t owned = sh.owned_elements();
        const std::size_t lo =
            slice - lq + 1 > owned ? slice - lq + 1 - owned : 0;
        const std::size_t shift = total - (sh.owned_begin + slice);
        for (auto it = hit_lower_bound(local, lo); it != local.end(); ++it)
          merged.push_back(Hit{it->position + shift, it->score});
      }
    }
  }
  gather_s_ += gather_timer.seconds();
  return out;
}

std::vector<Hit> ShardedBackend::scan_one(const CompiledQuery& query,
                                          std::uint32_t threshold,
                                          util::ThreadPool* pool) {
  if (query.size() > shard_config_.max_query_elements)
    throw std::invalid_argument{
        "ShardedBackend::scan_one: query exceeds shard.max_query_elements"};
  std::vector<std::vector<Hit>> shard_hits(shards_.size());
  std::vector<std::future<void>> done;
  done.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    bool used_fallback = false;
    ScanBackend* target =
        sh.route(config_.recovery.allow_software_fallback, used_fallback);
    done.push_back(
        sh.enqueue([target, &query, threshold, pool, &results = shard_hits[s]] {
          results = target->scan_one(query, threshold, pool);
        }));
  }
  std::exception_ptr first_failure;
  for (std::future<void>& future : done) {
    try {
      future.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);

  std::vector<Hit> merged;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    const std::vector<Hit>& local = shard_hits[s];
    for (auto it = local.begin(),
              end = hit_lower_bound(local, sh.owned_elements());
         it != end; ++it)
      merged.push_back(Hit{it->position + sh.owned_begin, it->score});
  }
  return merged;
}

DevicePipelineStats ShardedBackend::pipeline_stats() const noexcept {
  DevicePipelineStats out;
  for (const auto& sh : shards_) {
    const DevicePipelineStats part = sh->primary->pipeline_stats();
    out.invocations += part.invocations;
    // Every routed request reaches every card: "tasks served by the
    // fleet" is the busiest card's count, not the N-fold sum — so
    // modeled_qps() stays requests/second, not shard-requests/second.
    out.tasks = std::max(out.tasks, part.tasks);
    out.retried_invocations += part.retried_invocations;
    out.pe_count += part.pe_count;
    out.buffer_depth = std::max(out.buffer_depth, part.buffer_depth);
    out.largest_invocation =
        std::max(out.largest_invocation, part.largest_invocation);
    // The cards transfer and compute in parallel: busy totals sum, the
    // system makespan is the slowest card's, and the serial baseline is
    // the one-card sum (what a single buffer-depth-1 card would take).
    out.transfer_s += part.transfer_s;
    out.compute_s = std::max(out.compute_s, part.compute_s);
    out.serial_s += part.serial_s;
    out.pipelined_s = std::max(out.pipelined_s, part.pipelined_s);
    out.pe_busy_s += part.pe_busy_s;
  }
  return out;
}

std::vector<ShardStatus> ShardedBackend::shard_status() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    ShardStatus status;
    status.index = sh->index;
    status.owned_begin = sh->owned_begin;
    status.owned_end = sh->owned_end;
    status.slice_elements = sh->slice_elements();
    status.health = sh->primary->health();
    status.routed_to_fallback = sh->routed_to_fallback;
    {
      std::lock_guard lock{sh->mutex};
      status.queue_depth = sh->jobs.size();
      status.peak_queue_depth = sh->peak_queue_depth;
    }
    status.batches_executed = sh->batches_executed;
    status.fallback_batches = sh->fallback_batches;
    status.fault_events = sh->primary->fault_log().size();
    status.recovery = sh->recovery;
    status.pipeline = sh->primary->pipeline_stats();
    out.push_back(std::move(status));
  }
  return out;
}

std::unique_ptr<ShardedBackend> make_sharded_backend(
    BackendKind kind, const HostConfig& config, const ReferenceStore& store,
    const ShardConfig& shard) {
  return std::make_unique<ShardedBackend>(kind, config, store, shard);
}

}  // namespace fabp::core
