// AVX2 scan kernel: the vertical-counter block loop at 256 lanes.  This TU
// is compiled with -mavx2 (see src/fabp/CMakeLists.txt) and must therefore
// contain nothing the baseline build could link to accidentally — only the
// Traits instantiation (TU-local via the unique Traits type) and the
// registration function, which is reached solely through the runtime
// dispatcher after util::cpu_has_avx2() proves the host can execute it.

#include "bitscan_kernel_impl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace fabp::core::detail {

namespace {

struct Avx2Traits {
  using Vec = __m256i;
  static constexpr unsigned kWords = 4;
  static Vec zero() noexcept { return _mm256_setzero_si256(); }
  static Vec broadcast(std::uint64_t x) noexcept {
    return _mm256_set1_epi64x(static_cast<long long>(x));
  }
  static Vec load_bits(const std::uint64_t* plane, std::size_t w,
                       unsigned s) noexcept {
    // lane k = (plane[w+k] >> s) | (plane[w+k+1] << (64-s)); VPSLLQ with a
    // count >= 64 yields 0, so s == 0 needs no branch (unlike the C++
    // shift in the SWAR kernel).
    const Vec lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(plane + w));
    const Vec hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(plane + w + 1));
    return _mm256_or_si256(
        _mm256_srli_epi64(lo, static_cast<int>(s)),
        _mm256_slli_epi64(hi, static_cast<int>(64 - s)));
  }
  static Vec and_(Vec a, Vec b) noexcept { return _mm256_and_si256(a, b); }
  static Vec or_(Vec a, Vec b) noexcept { return _mm256_or_si256(a, b); }
  static Vec xor_(Vec a, Vec b) noexcept { return _mm256_xor_si256(a, b); }
  static Vec andnot(Vec a, Vec b) noexcept {
    return _mm256_andnot_si256(a, b);  // (~a) & b
  }
  static Vec not_(Vec a) noexcept {
    return _mm256_xor_si256(a, _mm256_set1_epi64x(-1));
  }
  static bool any(Vec a) noexcept { return !_mm256_testz_si256(a, a); }
  static void store(std::uint64_t* dst, Vec v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
};

void avx2_range(const BitScanQuery& query, const PlaneView& reference,
                std::uint32_t threshold, std::size_t begin, std::size_t end,
                std::vector<Hit>& out) {
  scan_range_t<Avx2Traits>(query, reference, threshold, begin, end, out);
}

void avx2_batch(const BitScanQuery* queries, const std::uint32_t* thresholds,
                std::size_t count, const PlaneView& reference,
                std::size_t begin, std::size_t end, std::vector<Hit>* outs) {
  scan_batch_t<Avx2Traits>(queries, thresholds, count, reference, begin, end,
                           outs);
}

}  // namespace

const ScanKernel* avx2_kernel() noexcept {
  static constexpr ScanKernel kernel{ScanIsa::Avx2, "avx2", 256, &avx2_range,
                                     &avx2_batch};
  return &kernel;
}

}  // namespace fabp::core::detail

#else  // !__AVX2__ — compiler or target cannot emit AVX2: register nothing.

namespace fabp::core::detail {

const ScanKernel* avx2_kernel() noexcept { return nullptr; }

}  // namespace fabp::core::detail

#endif
