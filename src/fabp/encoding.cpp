#include "fabp/core/encoding.hpp"

#include <stdexcept>

namespace fabp::core {

namespace {

ConfigSel config_for(Function f) noexcept {
  switch (f) {
    case Function::Stop3: return ConfigSel::RefIm1Msb;
    case Function::Leu3: return ConfigSel::RefIm2Msb;
    case Function::Arg3: return ConfigSel::RefIm2Lsb;
    case Function::AnyD: return ConfigSel::None;
  }
  return ConfigSel::None;
}

}  // namespace

Instruction Instruction::encode(const BackElement& element) noexcept {
  std::uint8_t bits = 0;
  switch (element.type) {
    case ElementType::ExactI:
      bits = static_cast<std::uint8_t>(0b00'00'00 |
                                       (bio::code(element.exact) << 2));
      break;
    case ElementType::ConditionalII:
      bits = static_cast<std::uint8_t>(
          0b01'00'00 | (static_cast<std::uint8_t>(element.cond) << 2));
      break;
    case ElementType::DependentIII:
      bits = static_cast<std::uint8_t>(
          0b10'00'00 | (static_cast<std::uint8_t>(element.func) << 3) |
          static_cast<std::uint8_t>(config_for(element.func)));
      break;
  }
  return Instruction{bits};
}

BackElement Instruction::decode() const {
  if (is_dependent()) {
    if (bit(2))
      throw std::invalid_argument{"Instruction: Type III with b2 set"};
    const auto func = static_cast<Function>(payload());
    if (config() != config_for(func))
      throw std::invalid_argument{
          "Instruction: config does not match the Type III function"};
    return BackElement::make_dependent(func);
  }
  if (config() != ConfigSel::None)
    throw std::invalid_argument{"Instruction: Type I/II with nonzero config"};
  if (is_exact())
    return BackElement::make_exact(bio::nucleotide_from_code(payload()));
  return BackElement::make_conditional(static_cast<Condition>(payload()));
}

std::string Instruction::to_binary_string() const {
  std::string text(6, '0');
  for (unsigned i = 0; i < 6; ++i)
    if (bit(5 - i)) text[i] = '1';
  return text;
}

EncodedQuery encode_query(const bio::ProteinSequence& protein) {
  return encode_elements(back_translate(protein));
}

EncodedQuery encode_elements(const std::vector<BackElement>& elements) {
  EncodedQuery query;
  query.reserve(elements.size());
  for (const BackElement& e : elements)
    query.push_back(Instruction::encode(e));
  return query;
}

std::size_t encoded_query_bits(const EncodedQuery& query) noexcept {
  return query.size() * 6;
}

}  // namespace fabp::core
