#include "fabp/core/comparator.hpp"

namespace fabp::core {

namespace {

// Mux LUT index assignment: i0=cfg0 i1=cfg1 i2=q2 i3=im1_msb i4=im2_msb
// i5=im2_lsb.
bool mux_spec(std::uint8_t idx) {
  const bool cfg0 = (idx >> 0) & 1;
  const bool cfg1 = (idx >> 1) & 1;
  const bool q2 = (idx >> 2) & 1;
  const bool im1_msb = (idx >> 3) & 1;
  const bool im2_msb = (idx >> 4) & 1;
  const bool im2_lsb = (idx >> 5) & 1;
  const unsigned sel = (cfg1 ? 2u : 0u) | (cfg0 ? 1u : 0u);
  switch (sel) {
    case 0b00: return q2;        // Types I/II and D: pass the payload bit
    case 0b01: return im2_lsb;   // Arg  (F:10)
    case 0b10: return im1_msb;   // Stop (F:00)
    default: return im2_msb;     // Leu  (F:01)
  }
}

// Cmp LUT index assignment: i0=ref0 i1=ref1 i2=X i3=q3 i4=q4 i5=q5.
// This is the Fig. 5(b) table, generated from the element semantics.
bool cmp_spec(std::uint8_t idx) {
  const bool ref0 = (idx >> 0) & 1;
  const bool ref1 = (idx >> 1) & 1;
  const bool x = (idx >> 2) & 1;
  const bool q3 = (idx >> 3) & 1;
  const bool q4 = (idx >> 4) & 1;
  const bool q5 = (idx >> 5) & 1;
  const std::uint8_t ref = static_cast<std::uint8_t>((ref1 ? 2 : 0) |
                                                     (ref0 ? 1 : 0));
  if (!q5) {
    if (!q4) {
      // Type I: exact match of (q3, X) against the reference element.
      const std::uint8_t nt =
          static_cast<std::uint8_t>((q3 ? 2 : 0) | (x ? 1 : 0));
      return ref == nt;
    }
    // Type II conditions.
    const unsigned cond = (q3 ? 2u : 0u) | (x ? 1u : 0u);
    switch (cond) {
      case 0b00: return ref0;          // U/C (pyrimidine: LSB set)
      case 0b01: return !ref0;         // A/G (purine: LSB clear)
      case 0b10: return ref != 0b10;   // G-bar
      default: return !ref1;           // A/C (MSB clear)
    }
  }
  // Type III functions; X carries the distilled history bit S.
  const unsigned f = (q4 ? 2u : 0u) | (q3 ? 1u : 0u);
  switch (f) {
    case 0b00: return x ? ref == 0b00 : !ref0;  // Stop3
    case 0b01: return x ? !ref0 : true;         // Leu3
    case 0b10: return x ? true : !ref0;         // Arg3
    default: return true;                       // D
  }
}

}  // namespace

hw::Lut6 comparator_mux_lut() {
  static const hw::Lut6 lut = hw::Lut6::from_function(mux_spec);
  return lut;
}

hw::Lut6 comparator_cmp_lut() {
  static const hw::Lut6 lut = hw::Lut6::from_function(cmp_spec);
  return lut;
}

bool comparator_eval(Instruction q, std::uint8_t ref_code, bool ref_im1_msb,
                     bool ref_im2_msb, bool ref_im2_lsb) {
  const bool x = comparator_mux_lut().eval(
      q.bit(0), q.bit(1), q.bit(2), ref_im1_msb, ref_im2_msb, ref_im2_lsb);
  return comparator_cmp_lut().eval((ref_code & 1) != 0, (ref_code & 2) != 0,
                                   x, q.bit(3), q.bit(4), q.bit(5));
}

bool comparator_eval(Instruction q, bio::Nucleotide ref,
                     bio::Nucleotide ref_im1, bio::Nucleotide ref_im2) {
  return comparator_eval(q, bio::code(ref), (bio::code(ref_im1) & 2) != 0,
                         (bio::code(ref_im2) & 2) != 0,
                         (bio::code(ref_im2) & 1) != 0);
}

ComparatorPorts build_comparator(hw::Netlist& netlist) {
  ComparatorPorts ports{};
  for (auto& net : ports.q) net = netlist.add_input();
  ports.ref0 = netlist.add_input();
  ports.ref1 = netlist.add_input();
  ports.ref_im1_msb = netlist.add_input();
  ports.ref_im2_msb = netlist.add_input();
  ports.ref_im2_lsb = netlist.add_input();
  ports.match = build_comparator_on(netlist, ports.q, ports.ref0, ports.ref1,
                                    ports.ref_im1_msb, ports.ref_im2_msb,
                                    ports.ref_im2_lsb);
  return ports;
}

hw::NetId build_comparator_on(hw::Netlist& netlist,
                              std::span<const hw::NetId> q_bits,
                              hw::NetId ref0, hw::NetId ref1,
                              hw::NetId ref_im1_msb, hw::NetId ref_im2_msb,
                              hw::NetId ref_im2_lsb) {
  const hw::NetId x = netlist.add_lut(
      comparator_mux_lut(),
      {q_bits[0], q_bits[1], q_bits[2], ref_im1_msb, ref_im2_msb,
       ref_im2_lsb});
  return netlist.add_lut(comparator_cmp_lut(),
                         {ref0, ref1, x, q_bits[3], q_bits[4], q_bits[5]});
}

hw::VerilogModule emit_comparator_module() {
  hw::Netlist nl;
  const ComparatorPorts ports = build_comparator(nl);
  std::vector<hw::VerilogPort> inputs;
  for (unsigned b = 0; b < 6; ++b)
    inputs.push_back(hw::VerilogPort{"q" + std::to_string(b), ports.q[b]});
  inputs.push_back(hw::VerilogPort{"ref0", ports.ref0});
  inputs.push_back(hw::VerilogPort{"ref1", ports.ref1});
  inputs.push_back(hw::VerilogPort{"ref_im1_msb", ports.ref_im1_msb});
  inputs.push_back(hw::VerilogPort{"ref_im2_msb", ports.ref_im2_msb});
  inputs.push_back(hw::VerilogPort{"ref_im2_lsb", ports.ref_im2_lsb});
  return hw::emit_verilog(nl, "fabp_comparator", inputs,
                          {hw::VerilogPort{"match", ports.match}});
}

}  // namespace fabp::core
