// AVX-512F scan kernel: the vertical-counter block loop at 512 lanes.
// Compiled with -mavx512f (see src/fabp/CMakeLists.txt); same TU-isolation
// rules as the AVX2 kernel — reached only through the runtime dispatcher
// after util::cpu_has_avx512f() proves CPU + OS support (zmm state).

#include "bitscan_kernel_impl.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace fabp::core::detail {

namespace {

struct Avx512Traits {
  using Vec = __m512i;
  static constexpr unsigned kWords = 8;
  static Vec zero() noexcept { return _mm512_setzero_si512(); }
  static Vec broadcast(std::uint64_t x) noexcept {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }
  static Vec load_bits(const std::uint64_t* plane, std::size_t w,
                       unsigned s) noexcept {
    // lane k = (plane[w+k] >> s) | (plane[w+k+1] << (64-s)); shift counts
    // >= 64 yield 0, so s == 0 needs no branch.
    const Vec lo = _mm512_loadu_si512(plane + w);
    const Vec hi = _mm512_loadu_si512(plane + w + 1);
    return _mm512_or_si512(
        _mm512_srli_epi64(lo, static_cast<unsigned>(s)),
        _mm512_slli_epi64(hi, static_cast<unsigned>(64 - s)));
  }
  static Vec and_(Vec a, Vec b) noexcept { return _mm512_and_si512(a, b); }
  static Vec or_(Vec a, Vec b) noexcept { return _mm512_or_si512(a, b); }
  static Vec xor_(Vec a, Vec b) noexcept { return _mm512_xor_si512(a, b); }
  static Vec andnot(Vec a, Vec b) noexcept {
    return _mm512_andnot_si512(a, b);  // (~a) & b
  }
  static Vec not_(Vec a) noexcept {
    return _mm512_xor_si512(a, _mm512_set1_epi64(-1));
  }
  static bool any(Vec a) noexcept {
    return _mm512_test_epi64_mask(a, a) != 0;
  }
  static void store(std::uint64_t* dst, Vec v) noexcept {
    _mm512_storeu_si512(dst, v);
  }
};

void avx512_range(const BitScanQuery& query, const PlaneView& reference,
                  std::uint32_t threshold, std::size_t begin, std::size_t end,
                  std::vector<Hit>& out) {
  scan_range_t<Avx512Traits>(query, reference, threshold, begin, end, out);
}

void avx512_batch(const BitScanQuery* queries,
                  const std::uint32_t* thresholds, std::size_t count,
                  const PlaneView& reference, std::size_t begin,
                  std::size_t end, std::vector<Hit>* outs) {
  scan_batch_t<Avx512Traits>(queries, thresholds, count, reference, begin,
                             end, outs);
}

}  // namespace

const ScanKernel* avx512_kernel() noexcept {
  static constexpr ScanKernel kernel{ScanIsa::Avx512, "avx512", 512,
                                     &avx512_range, &avx512_batch};
  return &kernel;
}

}  // namespace fabp::core::detail

#else  // !__AVX512F__ — compiler or target cannot emit it: register nothing.

namespace fabp::core::detail {

const ScanKernel* avx512_kernel() noexcept { return nullptr; }

}  // namespace fabp::core::detail

#endif
