#include "fabp/core/query_compiler.hpp"

#include <utility>

#include "fabp/core/querypack.hpp"

namespace fabp::core {

std::uint32_t CompiledQuery::threshold_for_expected_hits(
    std::size_t reference_elements, double expected_hits) const {
  return core::threshold_for_expected_hits(elements, reference_elements,
                                           expected_hits);
}

CompiledQueryPtr compile_query(const bio::ProteinSequence& protein) {
  auto compiled = std::make_shared<CompiledQuery>();
  compiled->protein = protein;
  compiled->elements = back_translate(protein);
  compiled->encoded = encode_elements(compiled->elements);
  compiled->scan = BitScanQuery{compiled->elements};
  compiled->packed_bytes = PackedQuery{compiled->encoded}.byte_size();
  compiled->statistics = score_statistics(compiled->elements);
  return compiled;
}

QueryCompiler::QueryCompiler(std::size_t capacity)
    : capacity_{std::max<std::size_t>(1, capacity)} {}

CompiledQueryPtr QueryCompiler::compile(const bio::ProteinSequence& protein) {
  std::string key = protein.to_string();
  {
    std::lock_guard lock{mutex_};
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      ++stats_.hits;
      return it->second->second;
    }
  }

  // Compile outside the lock: concurrent misses may compile the same query
  // twice, but never block each other behind a long back-translation.
  CompiledQueryPtr compiled = compile_query(protein);

  std::lock_guard lock{mutex_};
  if (const auto it = index_.find(key); it != index_.end()) {
    // Lost the race: keep the first entry (shared_ptr equality of results
    // does not matter, the contents are identical).
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->second;
  }
  ++stats_.misses;
  lru_.emplace_front(key, compiled);
  index_.emplace(std::move(key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  return compiled;
}

QueryCompilerStats QueryCompiler::stats() const {
  std::lock_guard lock{mutex_};
  QueryCompilerStats out = stats_;
  out.entries = lru_.size();
  return out;
}

void QueryCompiler::clear() {
  std::lock_guard lock{mutex_};
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

}  // namespace fabp::core
