#include "fabp/core/array.hpp"

#include <stdexcept>

#include "fabp/core/comparator.hpp"
#include "fabp/util/bitops.hpp"

namespace fabp::core {

ArrayPorts build_instance_array(hw::Netlist& netlist,
                                const ArrayConfig& config) {
  if (config.elements == 0 || config.instances == 0)
    throw std::invalid_argument{"instance array: zero dimensions"};

  ArrayPorts ports;
  ports.query.resize(config.elements);
  for (auto& q : ports.query)
    for (auto& bit : q) bit = netlist.add_input();

  const std::size_t window_elements =
      2 + config.elements + config.instances - 1;
  ports.window.resize(window_elements);
  for (auto& w : ports.window)
    for (auto& bit : w) bit = netlist.add_input();

  for (std::size_t k = 0; k < config.instances; ++k) {
    // Instance k's comparator column over shared window nets.
    std::vector<hw::NetId> matches;
    matches.reserve(config.elements);
    for (std::size_t i = 0; i < config.elements; ++i) {
      const auto& r = ports.window[k + i + 2];
      const auto& r1 = ports.window[k + i + 1];
      const auto& r2 = ports.window[k + i];
      matches.push_back(build_comparator_on(
          netlist, ports.query[i], r[0], r[1], r1[1], r2[1], r2[0]));
    }
    if (config.pipelined)
      for (auto& net : matches) net = netlist.add_ff(net);

    hw::Bus score = hw::build_popcounter_handcrafted(netlist, matches);
    if (config.pipelined)
      for (auto& net : score) net = netlist.add_ff(net);

    // Threshold compare (carry chain), as in the single instance.
    const std::size_t n = score.size();
    const std::uint64_t max_score = std::uint64_t{1} << n;
    hw::NetId hit;
    if (config.threshold == 0) {
      hit = netlist.add_const(true);
    } else if (config.threshold >= max_score) {
      hit = netlist.add_const(false);
    } else {
      const std::uint64_t constant = max_score - config.threshold;
      hw::Bus const_bus;
      for (std::size_t b = 0; b < n; ++b)
        const_bus.push_back(netlist.add_const(((constant >> b) & 1) != 0));
      const hw::Bus sum = hw::add_buses(netlist, const_bus, score);
      hit = sum[n];
    }
    ports.scores.push_back(std::move(score));
    ports.hits.push_back(hit);
  }
  return ports;
}

std::vector<std::uint32_t> simulate_array(
    hw::Netlist& netlist, const ArrayPorts& ports, const ArrayConfig& config,
    const EncodedQuery& query, std::span<const bio::Nucleotide> window) {
  if (query.size() != config.elements ||
      window.size() != ports.window.size())
    throw std::invalid_argument{"simulate_array: size mismatch"};

  for (std::size_t i = 0; i < query.size(); ++i)
    for (unsigned b = 0; b < 6; ++b)
      netlist.set_input(ports.query[i][b], query[i].bit(b));
  for (std::size_t i = 0; i < window.size(); ++i) {
    const std::uint8_t code = bio::code(window[i]);
    netlist.set_input(ports.window[i][0], (code & 1) != 0);
    netlist.set_input(ports.window[i][1], (code & 2) != 0);
  }
  netlist.settle();
  if (config.pipelined) {
    netlist.clock();
    netlist.clock();
  }
  std::vector<std::uint32_t> scores;
  scores.reserve(ports.scores.size());
  for (const hw::Bus& score : ports.scores)
    scores.push_back(
        static_cast<std::uint32_t>(hw::read_bus(netlist, score)));
  return scores;
}

}  // namespace fabp::core
