#include "fabp/core/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fabp::core {

using detail::RequestPhase;
using detail::RequestState;

bool Ticket::cancel() {
  if (!state_) return false;
  if (!state_->claim(RequestPhase::Cancelled)) return false;
  // Counters are bumped before the promise is fulfilled, so a waiter that
  // unblocks always observes its own request in stats().
  state_->counters->cancelled.fetch_add(1, std::memory_order_relaxed);
  state_->promise.set_value(
      Error{ErrorCode::Cancelled, "request cancelled while queued"});
  return true;
}

namespace detail {

void drop_expired(std::vector<std::shared_ptr<RequestState>>& batch,
                  std::chrono::steady_clock::time_point now) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    RequestState& state = *batch[i];
    if (state.has_deadline && now >= state.deadline) {
      state.counters->expired.fetch_add(1, std::memory_order_relaxed);
      state.promise.set_value(
          Error{ErrorCode::DeadlineExceeded,
                "request deadline passed before device dispatch"});
      continue;
    }
    if (keep != i) batch[keep] = std::move(batch[i]);
    ++keep;
  }
  batch.resize(keep);
}

}  // namespace detail

Error validate_engine_config(const EngineConfig& config) noexcept {
  if (config.workers == 0)
    return Error{ErrorCode::InvalidConfig, "engine.workers must be positive"};
  if (config.workers > 1024)
    return Error{ErrorCode::InvalidConfig,
                 "engine.workers above 1024 is absurd"};
  if (config.queue_capacity == 0)
    return Error{ErrorCode::InvalidConfig,
                 "engine.queue_capacity must be positive"};
  if (config.max_coalesce == 0)
    return Error{ErrorCode::InvalidConfig,
                 "engine.max_coalesce must be positive"};
  if (config.compiler_capacity == 0)
    return Error{ErrorCode::InvalidConfig,
                 "engine.compiler_capacity must be positive"};
  if (config.backend == BackendKind::HwSim) {
    // A coalesced claim wider than the device's in-flight window
    // (invocation capacity x ping/pong buffers) would stall the pipeline
    // on the card: reject the shape instead of silently queueing.
    const hw::DeviceBatchConfig& batch = config.host.device_batch;
    if (batch.invocation_tasks != 0 && batch.buffer_depth != 0 &&
        config.max_coalesce > batch.invocation_tasks * batch.buffer_depth)
      return Error{ErrorCode::InvalidConfig,
                   "engine.max_coalesce exceeds the device batch window "
                   "(device_batch.invocation_tasks * buffer_depth)"};
  }
  if (Error error = validate_shard_config(config.shard);
      error.code != ErrorCode::None)
    return error;
  return validate_host_config(config.host);
}

Engine::Engine(EngineConfig config)
    : config_{std::move(config)},
      compiler_{config_.compiler_capacity},
      counters_{std::make_shared<detail::EngineCounters>()} {
  if (Error error = validate_engine_config(config_);
      error.code != ErrorCode::None)
    throw FaultError{std::move(error)};
  if (config_.shard.shard_count > 1) {
    // Multi-card scale-out: the router presents N per-slice backends as
    // one ScanBackend, so every path below this point stays unchanged.
    auto sharded = make_sharded_backend(config_.backend, config_.host, store_,
                                        config_.shard);
    sharded_ = sharded.get();
    backend_ = std::move(sharded);
  } else {
    backend_ = make_backend(config_.backend, config_.host, store_);
  }
}

Engine::~Engine() {
  {
    std::lock_guard lock{queue_mutex_};
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Whatever is still queued never ran: fail it with a typed outcome so
  // every Ticket::wait() unblocks.
  for (const StatePtr& state : queue_) {
    if (!state->claim(RequestPhase::Cancelled)) continue;
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    state->promise.set_value(Error{ErrorCode::ShuttingDown,
                                   "engine destroyed before the request ran"});
  }
  queue_.clear();
}

void Engine::upload_reference(const bio::NucleotideSequence& reference) {
  upload_reference(bio::PackedNucleotides{reference});
}

void Engine::upload_reference(bio::PackedNucleotides reference) {
  std::lock_guard lock{exec_mutex_};
  store_.upload(std::move(reference), config_.host.search_both_strands);
  // A scan after re-upload must never read stale derived artifacts
  // (planes, tile checksums) — regression-tested in host_test.cpp.
  backend_->invalidate();
}

void Engine::ensure_workers() {
  // Callers hold queue_mutex_.
  if (workers_started_) return;
  workers_started_ = true;
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Engine::start() {
  std::lock_guard lock{queue_mutex_};
  if (!stopping_) ensure_workers();
}

Ticket Engine::submit(const bio::ProteinSequence& query,
                      std::uint32_t threshold, RequestOptions options) {
  auto state = std::make_shared<RequestState>();
  state->threshold = threshold;
  state->counters = counters_;
  Ticket ticket{state};

  try {
    state->query = compiler_.compile(query);
  } catch (const std::exception& e) {
    state->phase.store(static_cast<int>(RequestPhase::Claimed));
    state->promise.set_value(Error{ErrorCode::BadArgument, e.what()});
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    return ticket;
  }
  if (options.timeout_s > 0.0) {
    state->has_deadline = true;
    state->deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>{options.timeout_s});
  }

  {
    std::lock_guard lock{queue_mutex_};
    if (stopping_) {
      state->phase.store(static_cast<int>(RequestPhase::Claimed));
      state->promise.set_value(
          Error{ErrorCode::ShuttingDown, "engine is shutting down"});
      counters_->failed.fetch_add(1, std::memory_order_relaxed);
      return ticket;
    }
    if (queue_.size() >= config_.queue_capacity) {
      state->phase.store(static_cast<int>(RequestPhase::Claimed));
      state->promise.set_value(
          Error{ErrorCode::QueueFull, "engine admission queue is full"});
      counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      return ticket;
    }
    if (config_.autostart) ensure_workers();
    queue_.push_back(state);
    counters_->submitted.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return ticket;
}

void Engine::worker_loop() {
  for (;;) {
    std::vector<StatePtr> batch;
    {
      std::unique_lock lock{queue_mutex_};
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // destructor fails whatever is left
      // Opportunistic coalescing: claim everything already waiting, up to
      // the batch cap.  Under load the queue refills while the backend
      // runs, so batches form without any artificial delay.
      const std::size_t take =
          std::min(queue_.size(), config_.max_coalesce);
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < take; ++i) {
        StatePtr state = std::move(queue_.front());
        queue_.pop_front();
        if (!state->claim(RequestPhase::Claimed)) continue;  // cancelled
        if (state->has_deadline && now >= state->deadline) {
          counters_->expired.fetch_add(1, std::memory_order_relaxed);
          state->promise.set_value(
              Error{ErrorCode::DeadlineExceeded,
                    "request deadline passed while queued"});
          continue;
        }
        batch.push_back(std::move(state));
      }
    }
    if (!batch.empty()) execute_batch(std::move(batch));
  }
}

void Engine::execute_batch(std::vector<StatePtr> batch) {
  const auto fulfil = [this](RequestState& state,
                             Expected<HostRunReport> outcome) {
    auto& counter = outcome ? counters_->completed : counters_->failed;
    counter.fetch_add(1, std::memory_order_relaxed);
    state.promise.set_value(std::move(outcome));
  };

  std::lock_guard exec_lock{exec_mutex_};

  // Second deadline checkpoint: the claim-time check above ran before
  // this batch won the execution lock, and a long-running predecessor
  // batch may have burned a claimed request's whole budget in between.
  // Fail those now instead of letting a dead request widen the device
  // invocation and inflate latency for the live ones.
  detail::drop_expired(batch, std::chrono::steady_clock::now());
  if (batch.empty()) return;

  // Coalesced path: one multi-query scan of each strand produces every
  // request's hit list, and the per-request backend runs reduce to
  // accounting — the same precompute contract align_batch_sync uses, so
  // the results are bit-identical to sequential align_sync calls.
  std::vector<std::vector<Hit>> forward, reverse;
  bool precomputed = false;
  if (batch.size() >= 2 && store_.uploaded &&
      backend_->supports_precomputed_hits()) {
    std::vector<CompiledQueryPtr> queries;
    std::vector<std::uint32_t> thresholds;
    queries.reserve(batch.size());
    thresholds.reserve(batch.size());
    for (const StatePtr& state : batch) {
      queries.push_back(state->query);
      thresholds.push_back(state->threshold);
    }
    try {
      forward = backend_->scan_batch(queries, thresholds, false, nullptr);
      if (config_.host.search_both_strands)
        reverse = backend_->scan_batch(queries, thresholds, true, nullptr);
      precomputed = true;
      counters_->coalesced_batches.fetch_add(1, std::memory_order_relaxed);
      counters_->coalesced_requests.fetch_add(batch.size(),
                                              std::memory_order_relaxed);
      std::size_t prev =
          counters_->largest_batch.load(std::memory_order_relaxed);
      while (prev < batch.size() &&
             !counters_->largest_batch.compare_exchange_weak(
                 prev, batch.size(), std::memory_order_relaxed)) {
      }
    } catch (const std::exception&) {
      precomputed = false;  // fall back to per-request scans
    }
  }

  // The whole claimed batch goes to the backend as one run_many call: the
  // hw-sim backend packs it into device invocations and pipelines them
  // (double-buffered DMA + multi-PE, DESIGN.md §4d); software backends
  // keep the serial default.  Outcomes stay per request.
  std::vector<BackendRequest> requests;
  requests.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    BackendRequest request;
    request.query = batch[i]->query.get();
    request.threshold = batch[i]->threshold;
    request.forward_hits = precomputed ? &forward[i] : nullptr;
    request.reverse_hits = precomputed && config_.host.search_both_strands
                               ? &reverse[i]
                               : nullptr;
    requests.push_back(request);
  }

  std::vector<Expected<BackendRun>> runs;
  try {
    runs = backend_->run_many(requests);
  } catch (const std::exception& e) {
    const Error error{ErrorCode::BadArgument, e.what()};
    for (const StatePtr& state : batch) fulfil(*state, error);
    return;
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    RequestState& state = *batch[i];
    if (i >= runs.size()) {
      fulfil(state, Error{ErrorCode::BadArgument,
                          "backend returned a short batch"});
      continue;
    }
    if (!runs[i]) {
      fulfil(state, runs[i].error());
      continue;
    }
    try {
      fulfil(state,
             finalize_run(config_.host, *state.query,
                          std::move(runs[i]).value(),
                          store_.forward.byte_size()));
    } catch (const std::exception& e) {
      fulfil(state, Error{ErrorCode::BadArgument, e.what()});
    }
  }
}

Expected<HostRunReport> Engine::align_sync(
    const bio::ProteinSequence& query, std::uint32_t threshold,
    const std::vector<Hit>* forward_hits,
    const std::vector<Hit>* reverse_hits) {
  // Compile failures (unencodable residues) propagate as the exceptions
  // the pre-refactor Session::align threw.
  CompiledQueryPtr compiled = compiler_.compile(query);
  std::lock_guard lock{exec_mutex_};
  BackendRequest request;
  request.query = compiled.get();
  request.threshold = threshold;
  request.forward_hits = forward_hits;
  request.reverse_hits = reverse_hits;
  Expected<BackendRun> run = backend_->run(request);
  if (!run) return run.error();
  return finalize_run(config_.host, *compiled, std::move(run).value(),
                      store_.forward.byte_size());
}

Expected<BatchReport> Engine::align_batch_sync(
    std::span<const bio::ProteinSequence> queries, double threshold_fraction,
    util::ThreadPool* pool) {
  BatchReport batch;
  batch.per_query.reserve(queries.size());
  if (queries.empty()) return batch;
  if (!store_.uploaded)
    return Error{ErrorCode::NoReference, "Session: no reference uploaded"};

  std::vector<CompiledQueryPtr> compiled;
  std::vector<std::uint32_t> thresholds;
  compiled.reserve(queries.size());
  thresholds.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries) {
    compiled.push_back(compiler_.compile(query));
    thresholds.push_back(
        compiled.back()->threshold_for_fraction(threshold_fraction));
  }

  std::lock_guard lock{exec_mutex_};

  // One multi-query pass over the reference produces every hit list up
  // front — on the default tiled path each freshly compiled tile is
  // scored against the whole batch while hot in cache; the Planes escape
  // hatch streams the cached whole-reference plane words instead.  The
  // per-query runs below then reduce to cycle/energy accounting.  The LUT
  // oracle path keeps its own evaluation.
  std::vector<std::vector<Hit>> forward, reverse;
  const bool precompute = backend_->supports_precomputed_hits();
  if (precompute) {
    forward = backend_->scan_batch(compiled, thresholds, false, pool);
    if (config_.host.search_both_strands)
      reverse = backend_->scan_batch(compiled, thresholds, true, pool);
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    BackendRequest request;
    request.query = compiled[i].get();
    request.threshold = thresholds[i];
    request.forward_hits = precompute ? &forward[i] : nullptr;
    request.reverse_hits =
        precompute && config_.host.search_both_strands ? &reverse[i] : nullptr;
    request.pool = pool;
    Expected<BackendRun> run = backend_->run(request);
    if (!run) return run.error();
    HostRunReport report = finalize_run(
        config_.host, *compiled[i], std::move(run).value(),
        store_.forward.byte_size());
    batch.total_s += report.total_s;
    batch.total_joules += report.joules;
    batch.total_hits += report.hits.size();
    batch.recovery.merge(report.recovery);
    batch.per_query.push_back(std::move(report));
  }
  batch.queries_per_second =
      batch.total_s > 0.0
          ? static_cast<double>(queries.size()) / batch.total_s
          : 0.0;
  return batch;
}

HostRunReport Engine::estimate(const bio::ProteinSequence& query,
                               std::uint32_t threshold,
                               std::size_t bytes) const {
  return estimate_run(config_.host, *compile_query(query), threshold, bytes);
}

std::vector<Hit> Engine::software_hits(const bio::ProteinSequence& query,
                                       std::uint32_t threshold,
                                       util::ThreadPool* pool) {
  CompiledQueryPtr compiled = compiler_.compile(query);
  std::lock_guard lock{exec_mutex_};
  return backend_->scan_one(*compiled, threshold, pool);
}

std::vector<std::vector<Hit>> Engine::software_hits_batch(
    std::span<const bio::ProteinSequence> queries,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) {
  std::vector<CompiledQueryPtr> compiled;
  compiled.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries)
    compiled.push_back(compiler_.compile(query));
  std::lock_guard lock{exec_mutex_};
  return backend_->scan_batch(compiled, thresholds, false, pool);
}

EngineStats Engine::stats() const noexcept {
  EngineStats out;
  out.submitted = counters_->submitted.load(std::memory_order_relaxed);
  out.completed = counters_->completed.load(std::memory_order_relaxed);
  out.failed = counters_->failed.load(std::memory_order_relaxed);
  out.rejected = counters_->rejected.load(std::memory_order_relaxed);
  out.cancelled = counters_->cancelled.load(std::memory_order_relaxed);
  out.expired = counters_->expired.load(std::memory_order_relaxed);
  out.coalesced_batches =
      counters_->coalesced_batches.load(std::memory_order_relaxed);
  out.coalesced_requests =
      counters_->coalesced_requests.load(std::memory_order_relaxed);
  out.largest_batch = counters_->largest_batch.load(std::memory_order_relaxed);
  return out;
}

}  // namespace fabp::core
