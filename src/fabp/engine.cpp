#include "fabp/core/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fabp/util/stats.hpp"

namespace fabp::core {

using detail::Database;
using detail::Generation;
using detail::RequestPhase;
using detail::RequestState;
using detail::TenantQueue;

bool Ticket::cancel() {
  if (!state_) return false;
  if (!state_->claim(RequestPhase::Cancelled)) return false;
  // Counters are bumped before the promise is fulfilled, so a waiter that
  // unblocks always observes its own request in stats().
  state_->counters->cancelled.fetch_add(1, std::memory_order_relaxed);
  state_->promise.set_value(
      Error{ErrorCode::Cancelled, "request cancelled while queued"});
  return true;
}

namespace detail {

void drop_expired(std::vector<std::shared_ptr<RequestState>>& batch,
                  std::chrono::steady_clock::time_point now) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    RequestState& state = *batch[i];
    if (state.has_deadline && now >= state.deadline) {
      state.counters->expired.fetch_add(1, std::memory_order_relaxed);
      state.promise.set_value(
          Error{ErrorCode::DeadlineExceeded,
                "request deadline passed before device dispatch"});
      state.generation.reset();  // settled: release the epoch pin
      continue;
    }
    if (keep != i) batch[keep] = std::move(batch[i]);
    ++keep;
  }
  batch.resize(keep);
}

void LatencyRing::record(double value_ms) {
  std::lock_guard lock{mutex_};
  if (ms_.empty()) ms_.resize(kCapacity, 0.0);
  ms_[next_] = value_ms;
  next_ = (next_ + 1) % kCapacity;
  count_ = std::min(count_ + 1, kCapacity);
}

std::vector<double> LatencyRing::snapshot() const {
  std::lock_guard lock{mutex_};
  return {ms_.begin(), ms_.begin() + static_cast<std::ptrdiff_t>(count_)};
}

}  // namespace detail

Error validate_engine_config(const EngineConfig& config) noexcept {
  if (config.workers == 0)
    return Error{ErrorCode::InvalidConfig, "engine.workers must be positive"};
  if (config.workers > 1024)
    return Error{ErrorCode::InvalidConfig,
                 "engine.workers above 1024 is absurd"};
  if (config.queue_capacity == 0)
    return Error{ErrorCode::InvalidConfig,
                 "engine.queue_capacity must be positive"};
  if (config.max_coalesce == 0)
    return Error{ErrorCode::InvalidConfig,
                 "engine.max_coalesce must be positive"};
  if (config.compiler_capacity == 0)
    return Error{ErrorCode::InvalidConfig,
                 "engine.compiler_capacity must be positive"};
  if (!(config.default_tenant_weight > 0.0))
    return Error{ErrorCode::InvalidConfig,
                 "engine.default_tenant_weight must be positive"};
  for (const TenantConfig& tenant : config.tenants) {
    if (tenant.name.empty())
      return Error{ErrorCode::InvalidConfig,
                   "engine.tenants entries need non-empty names"};
    if (!(tenant.weight > 0.0))
      return Error{ErrorCode::InvalidConfig,
                   "tenant '" + tenant.name + "' weight must be positive"};
  }
  if (config.backend == BackendKind::HwSim) {
    // A coalesced claim wider than the device's in-flight window
    // (invocation capacity x ping/pong buffers) would stall the pipeline
    // on the card: reject the shape instead of silently queueing.
    const hw::DeviceBatchConfig& batch = config.host.device_batch;
    if (batch.invocation_tasks != 0 && batch.buffer_depth != 0 &&
        config.max_coalesce > batch.invocation_tasks * batch.buffer_depth)
      return Error{ErrorCode::InvalidConfig,
                   "engine.max_coalesce exceeds the device batch window "
                   "(device_batch.invocation_tasks * buffer_depth)"};
  }
  if (Error error = validate_shard_config(config.shard);
      error.code != ErrorCode::None)
    return error;
  return validate_host_config(config.host);
}

Engine::Engine(EngineConfig config)
    : config_{std::move(config)},
      compiler_{config_.compiler_capacity},
      counters_{std::make_shared<detail::EngineCounters>()},
      start_time_{std::chrono::steady_clock::now()} {
  if (Error error = validate_engine_config(config_);
      error.code != ErrorCode::None)
    throw FaultError{std::move(error)};
  default_db_ = &ensure_database(kDefaultDatabase);
  // Pre-register configured tenants so the stats surface shows them (and
  // their weights) before their first request arrives.
  std::lock_guard lock{queue_mutex_};
  tenant_queue_locked(kDefaultTenant);
  for (const TenantConfig& tenant : config_.tenants)
    tenant_queue_locked(tenant.name);
}

Engine::~Engine() {
  {
    std::lock_guard lock{queue_mutex_};
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Whatever is still queued never ran: fail it with a typed outcome so
  // every Ticket::wait() unblocks.
  for (auto& [name, tenant] : tenants_) {
    for (const StatePtr& state : tenant->waiting) {
      if (state->claim(RequestPhase::Cancelled)) {
        counters_->failed.fetch_add(1, std::memory_order_relaxed);
        state->promise.set_value(
            Error{ErrorCode::ShuttingDown,
                  "engine destroyed before the request ran"});
      }
      state->generation.reset();  // workers joined; no scheduler reads
    }
    tenant->waiting.clear();
  }
}

void Engine::build_backends(Generation& gen) const {
  if (config_.shard.shard_count > 1) {
    // Multi-card scale-out: the router presents N per-slice backends as
    // one ScanBackend.  Constructing it over the new snapshot reslices
    // immediately — the per-generation shard plan rebuild.
    auto sharded = make_sharded_backend(config_.backend, config_.host,
                                        gen.store, config_.shard);
    gen.sharded = sharded.get();
    gen.backend = std::move(sharded);
  } else {
    gen.backend = make_backend(config_.backend, config_.host, gen.store);
  }
}

Database* Engine::find_database(const std::string& name) const {
  std::lock_guard lock{db_mutex_};
  auto it = databases_.find(name);
  return it != databases_.end() ? it->second.get() : nullptr;
}

Database& Engine::ensure_database(const std::string& name) {
  std::lock_guard lock{db_mutex_};
  auto it = databases_.find(name);
  if (it != databases_.end()) return *it->second;
  auto db = std::make_unique<Database>();
  db->name = name;
  // Generation 0: an empty store behind a live backend set, so pre-upload
  // behavior (NoReference from scans, Healthy health) matches the
  // single-store engine of old.
  auto gen0 = std::make_shared<Generation>();
  gen0->generation = 0;
  build_backends(*gen0);
  db->active = gen0;
  db->versions.publish(gen0);
  auto [pos, inserted] = databases_.emplace(name, std::move(db));
  return *pos->second;
}

std::shared_ptr<Generation> Engine::pin_active(Database& db) {
  std::lock_guard lock{db.swap_mutex};
  return db.active;
}

void Engine::upload_reference(const bio::NucleotideSequence& reference) {
  upload_reference(bio::PackedNucleotides{reference});
}

void Engine::upload_reference(bio::PackedNucleotides reference) {
  upload_database(kDefaultDatabase, std::move(reference));
}

std::uint64_t Engine::upload_database(const std::string& name,
                                      const bio::NucleotideSequence& reference) {
  return upload_database(name, bio::PackedNucleotides{reference});
}

std::uint64_t Engine::upload_database(const std::string& name,
                                      bio::PackedNucleotides reference) {
  if (name.empty())
    throw FaultError{
        Error{ErrorCode::BadArgument, "database name must be non-empty"}};
  Database& db = ensure_database(name);
  // Build the entire new generation off-lock: packing the RC strand,
  // constructing the backend set and recutting shard slices can be
  // expensive, and in-flight scans keep serving the old snapshot the
  // whole time.  A scan after the swap can never read stale derived
  // artifacts (planes, tile checksums) because the new generation's
  // backends were built over the new store — the invalidate-on-upload
  // contract regression-tested in host_test.cpp, now by construction.
  auto gen = std::make_shared<Generation>();
  gen->generation = db.versions.next_generation();
  const std::uint64_t published = gen->generation;
  gen->store.upload(std::move(reference), config_.host.search_both_strands);
  build_backends(*gen);
  {
    std::lock_guard swap_lock{db.swap_mutex};
    db.active = gen;
    db.versions.publish(std::move(gen));
  }
  db.swaps.fetch_add(1, std::memory_order_relaxed);
  return published;
}

bool Engine::has_database(const std::string& name) const {
  return find_database(name) != nullptr;
}

std::vector<std::string> Engine::database_names() const {
  std::lock_guard lock{db_mutex_};
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, db] : databases_) names.push_back(name);
  return names;
}

bool Engine::has_reference() const {
  return pin_active(*default_db_)->store.uploaded;
}

const bio::PackedNucleotides& Engine::reference() const {
  return pin_active(*default_db_)->store.forward;
}

void Engine::ensure_workers() {
  // Callers hold queue_mutex_.
  if (workers_started_) return;
  workers_started_ = true;
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Engine::start() {
  std::lock_guard lock{queue_mutex_};
  if (!stopping_) ensure_workers();
}

TenantQueue& Engine::tenant_queue_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;
  auto tenant = std::make_unique<TenantQueue>();
  tenant->name = name;
  tenant->weight = config_.default_tenant_weight;
  tenant->quota = config_.default_tenant_quota;
  for (const TenantConfig& configured : config_.tenants) {
    if (configured.name != name) continue;
    tenant->weight = configured.weight;
    tenant->quota = configured.queue_quota;
    break;
  }
  tenant->pass = virtual_time_;
  auto [pos, inserted] = tenants_.emplace(name, std::move(tenant));
  return *pos->second;
}

Ticket Engine::submit(const bio::ProteinSequence& query,
                      std::uint32_t threshold, RequestOptions options) {
  auto state = std::make_shared<RequestState>();
  state->threshold = threshold;
  state->counters = counters_;
  Ticket ticket{state};

  const auto fail = [&](ErrorCode code, std::string message,
                        bool as_rejected) {
    state->phase.store(static_cast<int>(RequestPhase::Claimed));
    state->promise.set_value(Error{code, std::move(message)});
    state->generation.reset();  // settled: release the epoch pin
    auto& counter = as_rejected ? counters_->rejected : counters_->failed;
    counter.fetch_add(1, std::memory_order_relaxed);
  };

  const std::string& db_name =
      options.database.empty() ? kDefaultDatabase : options.database;
  Database* db = find_database(db_name);
  if (db == nullptr) {
    fail(ErrorCode::UnknownDatabase,
         "no database named '" + db_name + "' is resident", false);
    return ticket;
  }

  try {
    state->query = compiler_.compile(query);
  } catch (const std::exception& e) {
    fail(ErrorCode::BadArgument, e.what(), false);
    return ticket;
  }
  if (options.timeout_s > 0.0) {
    state->has_deadline = true;
    state->deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>{options.timeout_s});
  }

  // Pin the generation *at admission*: a swap between here and execution
  // must not move the request — hit-for-hit results belong to the
  // snapshot the caller was admitted under.
  state->database = db;
  state->generation = pin_active(*db);

  const std::string& tenant_name =
      options.tenant.empty() ? kDefaultTenant : options.tenant;
  {
    std::lock_guard lock{queue_mutex_};
    if (stopping_) {
      fail(ErrorCode::ShuttingDown, "engine is shutting down", false);
      return ticket;
    }
    if (queued_total_ >= config_.queue_capacity) {
      fail(ErrorCode::QueueFull, "engine admission queue is full", true);
      return ticket;
    }
    TenantQueue& tenant = tenant_queue_locked(tenant_name);
    if (tenant.quota > 0 && tenant.waiting.size() >= tenant.quota) {
      ++tenant.quota_rejections;
      fail(ErrorCode::TenantQuotaExceeded,
           "tenant '" + tenant_name + "' queue quota exhausted", true);
      return ticket;
    }
    if (config_.autostart) ensure_workers();
    // A tenant going idle must not bank stride credit: on reactivation it
    // rejoins at the scheduler's current virtual time.
    if (tenant.waiting.empty()) tenant.pass = std::max(tenant.pass, virtual_time_);
    state->tenant = &tenant;
    state->enqueued = std::chrono::steady_clock::now();
    tenant.waiting.push_back(state);
    ++tenant.submitted;
    tenant.peak_depth = std::max(tenant.peak_depth, tenant.waiting.size());
    ++queued_total_;
    counters_->submitted.fetch_add(1, std::memory_order_relaxed);
    db->submitted.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return ticket;
}

TenantQueue* Engine::pick_tenant_locked(const Generation* match) {
  TenantQueue* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant->waiting.empty()) continue;
    // Coalescing constraint: one batch = one generation (one backend, one
    // snapshot).  Cross-tenant coalescing is fine as long as the head
    // requests agree on the generation.
    if (match != nullptr && tenant->waiting.front()->generation.get() != match)
      continue;
    if (best == nullptr || tenant->pass < best->pass) best = tenant.get();
  }
  return best;
}

void Engine::worker_loop() {
  for (;;) {
    std::vector<StatePtr> batch;
    {
      std::unique_lock lock{queue_mutex_};
      queue_cv_.wait(lock, [this] { return stopping_ || queued_total_ > 0; });
      if (stopping_) return;  // destructor fails whatever is left
      // Opportunistic coalescing with weighted fair share: each pick
      // dequeues from the lowest-pass tenant (stride scheduling, rate ∝
      // weight) whose head request rides the batch's generation.  Under
      // load the queues refill while the backend runs, so batches form
      // without any artificial delay.
      const auto now = std::chrono::steady_clock::now();
      const Generation* match = nullptr;
      while (batch.size() < config_.max_coalesce) {
        TenantQueue* tenant = pick_tenant_locked(match);
        if (tenant == nullptr) break;
        StatePtr state = std::move(tenant->waiting.front());
        tenant->waiting.pop_front();
        --queued_total_;
        if (!state->claim(RequestPhase::Claimed)) {
          // Cancelled while queued: Ticket::cancel fulfilled the promise
          // but deliberately left the generation pin alone (the scheduler
          // reads it lock-free through waiting.front()); drop it here,
          // under the queue lock, now that the entry is off the deque.
          state->generation.reset();
          continue;
        }
        if (state->has_deadline && now >= state->deadline) {
          counters_->expired.fetch_add(1, std::memory_order_relaxed);
          state->promise.set_value(
              Error{ErrorCode::DeadlineExceeded,
                    "request deadline passed while queued"});
          state->generation.reset();  // settled: release the epoch pin
          continue;
        }
        // Only executed work advances a tenant's pass (cancelled/expired
        // entries are free), and the scheduler clock follows the winner.
        virtual_time_ = tenant->pass;
        tenant->pass += 1.0 / tenant->weight;
        ++tenant->dequeued;
        if (match == nullptr) match = state->generation.get();
        batch.push_back(std::move(state));
      }
    }
    if (!batch.empty()) execute_batch(std::move(batch));
  }
}

ScanBackend& Engine::route_backend(Database& db, Generation& gen) {
  // Whole-database fallback (DESIGN.md §4g): PR 8's router already sheds
  // a single Degraded card's slice onto its per-shard software fallback,
  // bit-identically.  Folding that up a level: when the primary as a
  // whole is beyond per-shard shedding — the unsharded card is lost, or
  // every card of the router is — route the database's batches to one
  // software backend over the same snapshot instead of paying per-run
  // recovery inside the dead primary.  Engaged only on the async serving
  // path; the synchronous facade keeps the backend-internal fallback
  // accounting byte-compatibly.
  if (!config_.host.recovery.allow_software_fallback) return *gen.backend;
  if (gen.fallback_engaged) {
    gen.fallback_batches.fetch_add(1, std::memory_order_relaxed);
    return *gen.fallback;
  }
  if (gen.backend->health() != HealthState::Degraded) return *gen.backend;
  if (gen.sharded != nullptr) {
    for (const ShardStatus& shard : gen.sharded->shard_status())
      if (shard.health != HealthState::Degraded) return *gen.backend;
  }
  if (gen.fallback == nullptr)
    gen.fallback = make_backend(
        software_backend_kind(config_.host.scan_path), config_.host,
        gen.store);
  gen.fallback_engaged = true;
  db.degraded.store(true, std::memory_order_relaxed);
  gen.fallback_batches.fetch_add(1, std::memory_order_relaxed);
  return *gen.fallback;
}

void Engine::execute_batch(std::vector<StatePtr> batch) {
  // The claim loop pinned every entry to the same generation; the batch
  // holds the epoch pin until the last promise is fulfilled, so a
  // concurrent swap cannot reclaim the snapshot under this scan.
  Database& db = *batch.front()->database;
  const std::shared_ptr<Generation> gen = batch.front()->generation;

  const auto fulfil = [&](RequestState& state,
                          Expected<HostRunReport> outcome) {
    const bool ok = outcome.has_value();
    auto& counter = ok ? counters_->completed : counters_->failed;
    counter.fetch_add(1, std::memory_order_relaxed);
    (ok ? db.completed : db.failed).fetch_add(1, std::memory_order_relaxed);
    if (state.tenant != nullptr) {
      (ok ? state.tenant->completed : state.tenant->failed)
          .fetch_add(1, std::memory_order_relaxed);
      const double latency_ms =
          std::chrono::duration<double, std::milli>{
              std::chrono::steady_clock::now() - state.enqueued}
              .count();
      state.tenant->latency.record(latency_ms);
      db.latency.record(latency_ms);
    }
    state.promise.set_value(std::move(outcome));
    // Settle = unpin.  The batch-local `gen` keeps the snapshot alive for
    // the remainder of this run; releasing the request's own pin here
    // makes a retired generation reclaimable once its last ticket
    // settles, rather than when the caller destroys the Ticket.
    state.generation.reset();
  };

  std::lock_guard exec_lock{db.exec_mutex};

  // Second deadline checkpoint: the claim-time check above ran before
  // this batch won the execution lock, and a long-running predecessor
  // batch may have burned a claimed request's whole budget in between.
  // Fail those now instead of letting a dead request widen the device
  // invocation and inflate latency for the live ones.
  detail::drop_expired(batch, std::chrono::steady_clock::now());
  if (batch.empty()) return;

  ScanBackend& backend = route_backend(db, *gen);

  // Coalesced path: one multi-query scan of each strand produces every
  // request's hit list, and the per-request backend runs reduce to
  // accounting — the same precompute contract align_batch_sync uses, so
  // the results are bit-identical to sequential align_sync calls.
  std::vector<std::vector<Hit>> forward, reverse;
  bool precomputed = false;
  if (batch.size() >= 2 && gen->store.uploaded &&
      backend.supports_precomputed_hits()) {
    std::vector<CompiledQueryPtr> queries;
    std::vector<std::uint32_t> thresholds;
    queries.reserve(batch.size());
    thresholds.reserve(batch.size());
    for (const StatePtr& state : batch) {
      queries.push_back(state->query);
      thresholds.push_back(state->threshold);
    }
    try {
      forward = backend.scan_batch(queries, thresholds, false, nullptr);
      if (config_.host.search_both_strands)
        reverse = backend.scan_batch(queries, thresholds, true, nullptr);
      precomputed = true;
      counters_->coalesced_batches.fetch_add(1, std::memory_order_relaxed);
      counters_->coalesced_requests.fetch_add(batch.size(),
                                              std::memory_order_relaxed);
      std::size_t prev =
          counters_->largest_batch.load(std::memory_order_relaxed);
      while (prev < batch.size() &&
             !counters_->largest_batch.compare_exchange_weak(
                 prev, batch.size(), std::memory_order_relaxed)) {
      }
    } catch (const std::exception&) {
      precomputed = false;  // fall back to per-request scans
    }
  }

  // The whole claimed batch goes to the backend as one run_many call: the
  // hw-sim backend packs it into device invocations and pipelines them
  // (double-buffered DMA + multi-PE, DESIGN.md §4d); software backends
  // keep the serial default.  Outcomes stay per request.
  std::vector<BackendRequest> requests;
  requests.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    BackendRequest request;
    request.query = batch[i]->query.get();
    request.threshold = batch[i]->threshold;
    request.forward_hits = precomputed ? &forward[i] : nullptr;
    request.reverse_hits = precomputed && config_.host.search_both_strands
                               ? &reverse[i]
                               : nullptr;
    requests.push_back(request);
  }

  std::vector<Expected<BackendRun>> runs;
  try {
    runs = backend.run_many(requests);
  } catch (const std::exception& e) {
    const Error error{ErrorCode::BadArgument, e.what()};
    for (const StatePtr& state : batch) fulfil(*state, error);
    return;
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    RequestState& state = *batch[i];
    if (i >= runs.size()) {
      fulfil(state, Error{ErrorCode::BadArgument,
                          "backend returned a short batch"});
      continue;
    }
    if (!runs[i]) {
      fulfil(state, runs[i].error());
      continue;
    }
    try {
      HostRunReport report =
          finalize_run(config_.host, *state.query, std::move(runs[i]).value(),
                       gen->store.forward.byte_size());
      report.generation = gen->generation;
      fulfil(state, std::move(report));
    } catch (const std::exception& e) {
      fulfil(state, Error{ErrorCode::BadArgument, e.what()});
    }
  }
}

Expected<HostRunReport> Engine::align_sync(
    const bio::ProteinSequence& query, std::uint32_t threshold,
    const std::vector<Hit>* forward_hits,
    const std::vector<Hit>* reverse_hits) {
  // Compile failures (unencodable residues) propagate as the exceptions
  // the pre-refactor Session::align threw.
  CompiledQueryPtr compiled = compiler_.compile(query);
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  std::lock_guard lock{db.exec_mutex};
  BackendRequest request;
  request.query = compiled.get();
  request.threshold = threshold;
  request.forward_hits = forward_hits;
  request.reverse_hits = reverse_hits;
  Expected<BackendRun> run = gen->backend->run(request);
  if (!run) return run.error();
  HostRunReport report =
      finalize_run(config_.host, *compiled, std::move(run).value(),
                   gen->store.forward.byte_size());
  report.generation = gen->generation;
  return report;
}

Expected<BatchReport> Engine::align_batch_sync(
    std::span<const bio::ProteinSequence> queries, double threshold_fraction,
    util::ThreadPool* pool) {
  BatchReport batch;
  batch.per_query.reserve(queries.size());
  if (queries.empty()) return batch;
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  if (!gen->store.uploaded)
    return Error{ErrorCode::NoReference, "Session: no reference uploaded"};

  std::vector<CompiledQueryPtr> compiled;
  std::vector<std::uint32_t> thresholds;
  compiled.reserve(queries.size());
  thresholds.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries) {
    compiled.push_back(compiler_.compile(query));
    thresholds.push_back(
        compiled.back()->threshold_for_fraction(threshold_fraction));
  }

  std::lock_guard lock{db.exec_mutex};

  // One multi-query pass over the reference produces every hit list up
  // front — on the default tiled path each freshly compiled tile is
  // scored against the whole batch while hot in cache; the Planes escape
  // hatch streams the cached whole-reference plane words instead.  The
  // per-query runs below then reduce to cycle/energy accounting.  The LUT
  // oracle path keeps its own evaluation.
  std::vector<std::vector<Hit>> forward, reverse;
  const bool precompute = gen->backend->supports_precomputed_hits();
  if (precompute) {
    forward = gen->backend->scan_batch(compiled, thresholds, false, pool);
    if (config_.host.search_both_strands)
      reverse = gen->backend->scan_batch(compiled, thresholds, true, pool);
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    BackendRequest request;
    request.query = compiled[i].get();
    request.threshold = thresholds[i];
    request.forward_hits = precompute ? &forward[i] : nullptr;
    request.reverse_hits =
        precompute && config_.host.search_both_strands ? &reverse[i] : nullptr;
    request.pool = pool;
    Expected<BackendRun> run = gen->backend->run(request);
    if (!run) return run.error();
    HostRunReport report = finalize_run(
        config_.host, *compiled[i], std::move(run).value(),
        gen->store.forward.byte_size());
    report.generation = gen->generation;
    batch.total_s += report.total_s;
    batch.total_joules += report.joules;
    batch.total_hits += report.hits.size();
    batch.recovery.merge(report.recovery);
    batch.per_query.push_back(std::move(report));
  }
  batch.queries_per_second =
      batch.total_s > 0.0
          ? static_cast<double>(queries.size()) / batch.total_s
          : 0.0;
  return batch;
}

HostRunReport Engine::estimate(const bio::ProteinSequence& query,
                               std::uint32_t threshold,
                               std::size_t bytes) const {
  return estimate_run(config_.host, *compile_query(query), threshold, bytes);
}

std::vector<Hit> Engine::software_hits(const bio::ProteinSequence& query,
                                       std::uint32_t threshold,
                                       util::ThreadPool* pool) {
  CompiledQueryPtr compiled = compiler_.compile(query);
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  std::lock_guard lock{db.exec_mutex};
  return gen->backend->scan_one(*compiled, threshold, pool);
}

std::vector<std::vector<Hit>> Engine::software_hits_batch(
    std::span<const bio::ProteinSequence> queries,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) {
  std::vector<CompiledQueryPtr> compiled;
  compiled.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries)
    compiled.push_back(compiler_.compile(query));
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  std::lock_guard lock{db.exec_mutex};
  return gen->backend->scan_batch(compiled, thresholds, false, pool);
}

EngineStats Engine::stats() const noexcept {
  EngineStats out;
  out.submitted = counters_->submitted.load(std::memory_order_relaxed);
  out.completed = counters_->completed.load(std::memory_order_relaxed);
  out.failed = counters_->failed.load(std::memory_order_relaxed);
  out.rejected = counters_->rejected.load(std::memory_order_relaxed);
  out.cancelled = counters_->cancelled.load(std::memory_order_relaxed);
  out.expired = counters_->expired.load(std::memory_order_relaxed);
  out.coalesced_batches =
      counters_->coalesced_batches.load(std::memory_order_relaxed);
  out.coalesced_requests =
      counters_->coalesced_requests.load(std::memory_order_relaxed);
  out.largest_batch = counters_->largest_batch.load(std::memory_order_relaxed);
  return out;
}

double Engine::uptime_seconds() const {
  return std::chrono::duration<double>{std::chrono::steady_clock::now() -
                                       start_time_}
      .count();
}

std::vector<DatabaseStatus> Engine::database_status() const {
  const double uptime = std::max(uptime_seconds(), 1e-9);
  std::vector<DatabaseStatus> out;
  std::lock_guard lock{db_mutex_};
  out.reserve(databases_.size());
  for (const auto& [name, db] : databases_) {
    DatabaseStatus status;
    status.name = name;
    const std::shared_ptr<Generation> gen = pin_active(*db);
    status.active_generation = gen->generation;
    status.fallback_batches =
        gen->fallback_batches.load(std::memory_order_relaxed);
    status.swaps = db->swaps.load(std::memory_order_relaxed);
    status.submitted = db->submitted.load(std::memory_order_relaxed);
    status.completed = db->completed.load(std::memory_order_relaxed);
    status.failed = db->failed.load(std::memory_order_relaxed);
    status.qps = static_cast<double>(status.completed) / uptime;
    const std::vector<double> window = db->latency.snapshot();
    status.p50_ms = util::percentile(window, 50.0);
    status.p99_ms = util::percentile(window, 99.0);
    status.degraded = db->degraded.load(std::memory_order_relaxed);
    status.reclaimed_generations = db->versions.reclaimed();
    status.generations = db->versions.status();
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<TenantStatus> Engine::tenant_status() const {
  const double uptime = std::max(uptime_seconds(), 1e-9);
  std::vector<TenantStatus> out;
  std::lock_guard lock{queue_mutex_};
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStatus status;
    status.name = name;
    status.weight = tenant->weight;
    status.quota = tenant->quota;
    status.queue_depth = tenant->waiting.size();
    status.peak_depth = tenant->peak_depth;
    status.submitted = tenant->submitted;
    status.dequeued = tenant->dequeued;
    status.completed = tenant->completed.load(std::memory_order_relaxed);
    status.failed = tenant->failed.load(std::memory_order_relaxed);
    status.quota_rejections = tenant->quota_rejections;
    status.qps = static_cast<double>(status.completed) / uptime;
    const std::vector<double> window = tenant->latency.snapshot();
    status.p50_ms = util::percentile(window, 50.0);
    status.p99_ms = util::percentile(window, 99.0);
    out.push_back(std::move(status));
  }
  return out;
}

HealthState Engine::health() const {
  return pin_active(*default_db_)->backend->health();
}

const std::vector<hw::FaultEvent>& Engine::fault_log() const {
  // Stable until the next upload to the default database: the active
  // generation (and its backend) is pinned by the database itself.
  return pin_active(*default_db_)->backend->fault_log();
}

DevicePipelineStats Engine::pipeline_stats() const {
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  std::lock_guard lock{db.exec_mutex};
  return gen->backend->pipeline_stats();
}

std::vector<ShardStatus> Engine::shard_status() const {
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  std::lock_guard lock{db.exec_mutex};
  return gen->sharded != nullptr ? gen->sharded->shard_status()
                                 : std::vector<ShardStatus>{};
}

double Engine::shard_overhead_seconds() const {
  Database& db = *default_db_;
  const std::shared_ptr<Generation> gen = pin_active(db);
  std::lock_guard lock{db.exec_mutex};
  return gen->sharded != nullptr
             ? gen->sharded->scatter_seconds() + gen->sharded->gather_seconds()
             : 0.0;
}

}  // namespace fabp::core
