#include "fabp/core/mapper.hpp"

#include <algorithm>
#include <cmath>

#include "fabp/hw/popcount.hpp"
#include "fabp/util/bitops.hpp"

namespace fabp::core {

namespace {

hw::ResourceBudget estimate(const MapperConstants& c,
                            std::size_t query_elements, std::size_t segments,
                            std::size_t channels, FabpMapping& breakdown) {
  const std::size_t seg =
      util::ceil_div(query_elements, std::max<std::size_t>(1, segments));
  const bool segmented = segments > 1;
  const std::size_t n = c.instances_per_beat * channels;

  const std::size_t comp = n * seg * c.comparator_luts_per_element;
  const std::size_t pop = n * hw::popcounter_luts_handcrafted(seg);
  const std::size_t mux =
      segmented ? static_cast<std::size_t>(
                      std::llround(static_cast<double>(n * seg) *
                                   c.segment_mux_luts_per_element))
                : 0;
  const std::size_t datapath = static_cast<std::size_t>(std::llround(
      static_cast<double>(n * seg) * c.datapath_luts_per_element));
  const std::size_t accum = segmented ? n * c.score_bits : 0;

  // §IV-B ablation: BRAM-resident buffers need fanout replication logic
  // at every instance (the congestion cost the paper's FF choice avoids).
  const std::size_t bram_fanout =
      c.buffers_in_bram
          ? static_cast<std::size_t>(std::llround(
                static_cast<double>(n * seg) *
                c.bram_fanout_luts_per_element))
          : 0;

  const double raw =
      static_cast<double>(comp + pop + mux + datapath + accum + bram_fanout);
  const std::size_t luts = static_cast<std::size_t>(
      std::llround(raw * c.lut_overhead)) + c.fixed_luts * channels;

  // FFs: match-bit pipeline registers (double-buffered when segmented),
  // pop-counter internal pipeline, score + partial accumulator, shared
  // query/stream storage ("FabP uses distributed memory resources (FFs)
  // for the query sequence and the reference stream buffer", §IV-B).
  const std::size_t match_regs = seg * (segmented ? 2 : 1);
  const std::size_t pop_ffs = static_cast<std::size_t>(std::llround(
      static_cast<double>(hw::popcounter_luts_handcrafted(seg)) *
      c.pop_ff_per_lut));
  const std::size_t per_instance_ffs =
      match_regs + pop_ffs + c.score_bits + (segmented ? c.score_bits : 0);
  const std::size_t buffer_bits =
      6 * query_elements + 2 * (query_elements + 256);
  const std::size_t shared_ffs =
      ((c.buffers_in_bram ? 0 : buffer_bits) + c.fixed_ffs) * channels;
  const std::size_t ffs = n * per_instance_ffs + shared_ffs;

  const std::size_t dsps =
      n * (segmented ? 2 : 1) + c.fixed_dsps * channels;

  std::size_t bram_bits = static_cast<std::size_t>(std::llround(
      (c.bram_base_bits +
       c.bram_stream_bits / static_cast<double>(segments)) *
      static_cast<double>(channels)));
  if (c.buffers_in_bram) {
    // 18Kb block granularity: each buffer rounds up to whole blocks.
    constexpr std::size_t kBlockBits = 18 * 1024;
    bram_bits += util::ceil_div(buffer_bits, kBlockBits) * kBlockBits *
                 channels;
  }

  breakdown.comparator_luts = comp;
  breakdown.popcounter_luts = pop;
  breakdown.mux_luts = mux + datapath;
  breakdown.accumulator_luts = accum;
  breakdown.fixed_luts = c.fixed_luts * channels;
  breakdown.segment_elements = seg;

  return hw::ResourceBudget{luts, ffs, bram_bits, dsps};
}

/// Smallest segment count that fits `channels` beat-groups on the device,
/// or 0 when even full segmentation does not fit.
std::size_t min_segments(const hw::FpgaDevice& device,
                         const MapperConstants& constants,
                         std::size_t query_elements, std::size_t channels) {
  const std::size_t max_segments = std::max<std::size_t>(1, query_elements);
  for (std::size_t s = 1; s <= max_segments; ++s) {
    FabpMapping scratch;
    if (estimate(constants, query_elements, s, channels, scratch)
            .fits_in(device.capacity))
      return s;
  }
  return 0;
}

}  // namespace

FabpMapping map_design(const hw::FpgaDevice& device,
                       std::size_t query_elements,
                       const MapperConstants& constants,
                       const hw::AxiTimingConfig& axi) {
  FabpMapping mapping;
  mapping.query_elements = query_elements;
  mapping.capacity = device.capacity;
  mapping.axi_efficiency = hw::AxiReadStream::steady_state_efficiency(axi);

  // Pick the channel count maximizing effective bandwidth
  // channels * channel_bw * min(efficiency, 1/S(channels)); prefer fewer
  // channels on ties (less power, less BRAM).
  std::size_t best_channels = 1;
  std::size_t best_segments = 0;
  double best_bw = -1.0;
  const std::size_t max_channels =
      std::max<std::size_t>(1, device.memory_channels);
  for (std::size_t ch = 1; ch <= max_channels; ++ch) {
    const std::size_t s = min_segments(device, constants, query_elements, ch);
    if (s == 0) continue;
    const double bw =
        static_cast<double>(ch) * device.channel_bandwidth_bps *
        std::min(mapping.axi_efficiency, 1.0 / static_cast<double>(s));
    if (bw > best_bw + 0.5) {  // strict improvement beyond rounding noise
      best_bw = bw;
      best_channels = ch;
      best_segments = s;
    }
  }

  if (best_segments == 0) {
    // Nothing fits: report the single-channel, fully-segmented attempt.
    mapping.feasible = false;
    mapping.channels = 1;
    mapping.segments = std::max<std::size_t>(1, query_elements);
    mapping.used = estimate(constants, query_elements, mapping.segments, 1,
                            mapping);
  } else {
    mapping.feasible = true;
    mapping.channels = best_channels;
    mapping.segments = best_segments;
    mapping.used = estimate(constants, query_elements, best_segments,
                            best_channels, mapping);
  }

  const auto util = [](std::size_t used, std::size_t cap) {
    return cap == 0 ? 0.0
                    : static_cast<double>(used) / static_cast<double>(cap);
  };
  mapping.lut_util = util(mapping.used.luts, device.capacity.luts);
  mapping.ff_util = util(mapping.used.ffs, device.capacity.ffs);
  mapping.bram_util = util(mapping.used.bram_bits, device.capacity.bram_bits);
  mapping.dsp_util = util(mapping.used.dsps, device.capacity.dsps);

  mapping.effective_bandwidth_bps =
      static_cast<double>(mapping.channels) * device.channel_bandwidth_bps *
      std::min(mapping.axi_efficiency,
               1.0 / static_cast<double>(mapping.segments));
  mapping.bottleneck =
      (mapping.segments > 1 ||
       mapping.lut_util >= constants.resource_bound_utilization)
          ? Bottleneck::Resources
          : Bottleneck::Bandwidth;
  return mapping;
}

}  // namespace fabp::core
