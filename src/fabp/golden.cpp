#include "fabp/core/golden.hpp"

#include "fabp/core/bitscan.hpp"
#include "fabp/core/comparator.hpp"
#include "fabp/core/hitmerge.hpp"

namespace fabp::core {

using bio::Nucleotide;

std::uint32_t golden_score_at(const std::vector<BackElement>& query,
                              const bio::NucleotideSequence& ref,
                              std::size_t position) {
  std::uint32_t score = 0;
  for (std::size_t i = 0; i < query.size(); ++i) {
    // Type III elements only occur at codon position 2 (i % 3 == 2), so
    // the i-1 / i-2 accesses never underflow for well-formed queries.
    const Nucleotide r = ref[position + i];
    const Nucleotide im1 = i >= 1 ? ref[position + i - 1] : Nucleotide::A;
    const Nucleotide im2 = i >= 2 ? ref[position + i - 2] : Nucleotide::A;
    if (query[i].matches(r, im1, im2)) ++score;
  }
  return score;
}

std::vector<Hit> golden_hits(const std::vector<BackElement>& query,
                             const bio::NucleotideSequence& ref,
                             std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || ref.size() < query.size()) return hits;
  const std::size_t positions = ref.size() - query.size() + 1;
  for (std::size_t p = 0; p < positions; ++p) {
    const std::uint32_t score = golden_score_at(query, ref, p);
    if (score >= threshold) hits.push_back(Hit{p, score});
  }
  return hits;
}

std::vector<Hit> golden_hits_encoded(const EncodedQuery& query,
                                     const bio::NucleotideSequence& ref,
                                     std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || ref.size() < query.size()) return hits;
  const std::size_t positions = ref.size() - query.size() + 1;
  for (std::size_t p = 0; p < positions; ++p) {
    std::uint32_t score = 0;
    for (std::size_t i = 0; i < query.size(); ++i) {
      const Nucleotide r = ref[p + i];
      const Nucleotide im1 = i >= 1 ? ref[p + i - 1] : Nucleotide::A;
      const Nucleotide im2 = i >= 2 ? ref[p + i - 2] : Nucleotide::A;
      if (comparator_eval(query[i], r, im1, im2)) ++score;
    }
    if (score >= threshold) hits.push_back(Hit{p, score});
  }
  return hits;
}

std::vector<Hit> golden_hits_parallel(const std::vector<BackElement>& query,
                                      const bio::NucleotideSequence& ref,
                                      std::uint32_t threshold,
                                      util::ThreadPool& pool) {
  if (query.empty() || ref.size() < query.size()) return {};
  const std::size_t positions = ref.size() - query.size() + 1;

  // Per-chunk slots concatenated in chunk order (merge_hit_chunks): the
  // merged output is structurally identical (contents *and* ordering) to
  // the serial scan, independent of worker scheduling.
  std::vector<std::vector<Hit>> chunks(pool.chunk_count(positions));
  pool.parallel_indexed_chunks(
      0, positions, [&](std::size_t c, std::size_t lo, std::size_t hi) {
        std::vector<Hit>& local = chunks[c];
        for (std::size_t p = lo; p < hi; ++p) {
          const std::uint32_t score = golden_score_at(query, ref, p);
          if (score >= threshold) local.push_back(Hit{p, score});
        }
      });
  return merge_hit_chunks(chunks);
}

std::vector<Hit> align_protein(const bio::ProteinSequence& protein,
                               const bio::NucleotideSequence& ref,
                               std::uint32_t threshold) {
  // Default software path: the bit-sliced engine (differentially pinned to
  // the scalar golden_hits oracle above).
  return bitscan_hits(back_translate(protein), ref, threshold);
}

}  // namespace fabp::core
