#include "fabp/core/backend.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <utility>

#include "fabp/core/hitmerge.hpp"
#include "fabp/hw/scheduler.hpp"
#include "fabp/util/bitops.hpp"
#include "fabp/util/crc32.hpp"
#include "fabp/util/thread_pool.hpp"
#include "fabp/util/timer.hpp"

namespace fabp::core {

namespace {

/// Half-open position range touched by corruption / a spot-check window.
struct Interval {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  std::vector<Interval> out;
  for (const Interval& r : v) {
    if (!out.empty() && r.begin <= out.back().end)
      out.back().end = std::max(out.back().end, r.end);
    else
      out.push_back(r);
  }
  return out;
}

/// Replaces the hits falling in each range with a fresh range scan of
/// `scanner`'s store.  Ranges must be sorted and disjoint; `hits` must be
/// position-sorted (the scan order), and stays so.
void splice_ranges(std::vector<Hit>& hits, const TileScanner& scanner,
                   const BitScanQuery& compiled, std::uint32_t threshold,
                   std::span<const Interval> ranges) {
  std::vector<Hit> result;
  result.reserve(hits.size());
  std::size_t i = 0;
  for (const Interval& r : ranges) {
    while (i < hits.size() && hits[i].position < r.begin)
      result.push_back(hits[i++]);
    while (i < hits.size() && hits[i].position < r.end) ++i;  // replaced
    scanner.range(compiled, threshold, r.begin, r.end, result);
  }
  while (i < hits.size()) result.push_back(hits[i++]);
  hits = std::move(result);
}

bool data_fault(hw::FaultKind kind) noexcept {
  return kind == hw::FaultKind::BitFlip || kind == hw::FaultKind::DropBeat ||
         kind == hw::FaultKind::DupBeat;
}

/// Maps raw RC-strand hits to forward coordinates of the window start and
/// sorts them (the reverse_hits convention of HostRunReport).
std::vector<Hit> map_reverse_hits(const std::vector<Hit>& raw,
                                  std::size_t reference_size,
                                  std::size_t query_elements) {
  std::vector<Hit> mapped;
  mapped.reserve(raw.size());
  for (const Hit& hit : raw)
    mapped.push_back(
        Hit{reference_size - hit.position - query_elements, hit.score});
  std::sort(mapped.begin(), mapped.end());
  return mapped;
}

// ---------------------------------------------------------------------------
// Device batch scheduler timing (DESIGN.md §4d).

/// Invocation kernel timing of one strand: the reference splits into
/// `pe_count` contiguous slices — each PE array streams its slice through
/// the same FIFO-overlapped cycle model as a serial Accelerator::run, with
/// an L_q-1 element halo appended to every slice but the last so alignment
/// windows spanning a boundary are covered — and the invocation retires
/// when the slowest PE drains, plus write-back and pipeline fill.  With
/// pe_count == 1 this is cycle-identical to Accelerator::finalize_timing.
struct InvocationStrandTiming {
  std::size_t cycles = 0;         ///< makespan: slowest PE + wb + fill
  std::size_t pe_busy_cycles = 0; ///< sum of per-PE busy cycles
  double seconds = 0.0;
};

InvocationStrandTiming invocation_strand_timing(
    const AcceleratorConfig& acc, hw::FaultInjector* injector,
    std::size_t total_beats, std::size_t channels, std::size_t segments,
    std::size_t pe_count, std::size_t halo_beats, std::size_t total_hits) {
  InvocationStrandTiming out;
  const std::size_t pes = std::max<std::size_t>(1, pe_count);
  const std::size_t ch = std::max<std::size_t>(1, channels);
  std::size_t slowest = 0;
  for (std::size_t p = 0; p < pes; ++p) {
    std::size_t beats = (p + 1) * total_beats / pes - p * total_beats / pes;
    if (p + 1 < pes) beats += halo_beats;
    if (beats == 0) continue;
    const StreamBeatTiming t =
        stream_beat_timing(acc.axi, injector, beats, ch, segments);
    const std::size_t cycles =
        util::ceil_div(t.beats, ch) + t.stall_cycles + t.compute_cycles;
    out.pe_busy_cycles += cycles;
    slowest = std::max(slowest, cycles);
  }
  const std::size_t wb = util::ceil_div(total_hits * acc.wb_bytes_per_hit, 64);
  out.cycles = slowest + wb + acc.pipeline_depth;
  out.seconds = static_cast<double>(out.cycles) / acc.device.clock_hz;
  return out;
}

// ---------------------------------------------------------------------------
// Software backends: tile-fused and precompiled-plane scans share the run()
// shape (scan both strands, map the reverse list, report wall time); only
// the strand-scan primitive differs.

class SoftwareBackendBase : public ScanBackend {
 public:
  SoftwareBackendBase(const HostConfig& config, const ReferenceStore& store)
      : config_{config}, store_{store} {}

  Expected<BackendRun> run(const BackendRequest& request) override {
    if (!store_.uploaded)
      return Error{ErrorCode::NoReference, "Session: no reference uploaded"};
    const CompiledQuery& query = *request.query;
    BackendRun out;
    util::Timer timer;
    out.hits = request.forward_hits
                   ? *request.forward_hits
                   : strand_hits(query, request.threshold, false,
                                 request.pool);
    if (config_.search_both_strands) {
      const std::vector<Hit> raw =
          request.reverse_hits
              ? *request.reverse_hits
              : strand_hits(query, request.threshold, true, request.pool);
      out.reverse_hits =
          map_reverse_hits(raw, store_.forward.size(), query.size());
    }
    out.kernel_seconds = timer.seconds();
    out.recovery.attempts = config_.search_both_strands ? 2 : 1;
    return out;
  }

  std::vector<Hit> scan_one(const CompiledQuery& query,
                            std::uint32_t threshold,
                            util::ThreadPool* pool) override {
    return strand_hits(query, threshold, false, pool);
  }

 protected:
  /// Raw hits of one strand's store (RC coordinates for the reverse one).
  virtual std::vector<Hit> strand_hits(const CompiledQuery& query,
                                       std::uint32_t threshold,
                                       bool reverse_strand,
                                       util::ThreadPool* pool) = 0;

  const HostConfig& config_;
  const ReferenceStore& store_;
};

class TiledSoftwareBackend final : public SoftwareBackendBase {
 public:
  using SoftwareBackendBase::SoftwareBackendBase;

  BackendKind kind() const noexcept override { return BackendKind::Tiled; }

  void invalidate() override {}  // nothing cached: the scan streams packed words

  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override {
    std::vector<BitScanQuery> scans;
    scans.reserve(queries.size());
    for (const CompiledQueryPtr& query : queries) scans.push_back(query->scan);
    return TileScanner{store_.strand(reverse_strand), config_.tile}.hits_batch(
        scans, thresholds, pool);
  }

 private:
  std::vector<Hit> strand_hits(const CompiledQuery& query,
                               std::uint32_t threshold, bool reverse_strand,
                               util::ThreadPool* pool) override {
    return TileScanner{store_.strand(reverse_strand), config_.tile}.hits(
        query.scan, threshold, pool);
  }
};

class PlanesSoftwareBackend final : public SoftwareBackendBase {
 public:
  using SoftwareBackendBase::SoftwareBackendBase;

  BackendKind kind() const noexcept override { return BackendKind::Planes; }

  void invalidate() override {
    forward_ready_ = reverse_ready_ = false;
    forward_ = BitScanReference{};
    reverse_ = BitScanReference{};
  }

  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override {
    // Compiling both strands up front lets the reverse compile overlap the
    // forward one on the pool (see ensure_planes) — the engine's forward
    // batch pass pays the whole compile, the reverse pass finds it cached.
    ensure_planes(config_.search_both_strands, pool);
    std::vector<BitScanQuery> scans;
    scans.reserve(queries.size());
    for (const CompiledQueryPtr& query : queries) scans.push_back(query->scan);
    return bitscan_hits_batch(scans, planes(reverse_strand), thresholds, pool);
  }

 private:
  std::vector<Hit> strand_hits(const CompiledQuery& query,
                               std::uint32_t threshold, bool reverse_strand,
                               util::ThreadPool* pool) override {
    const BitScanReference& reference = planes(reverse_strand);
    return pool ? bitscan_hits_parallel(query.scan, reference, threshold,
                                        *pool)
                : bitscan_hits(query.scan, reference, threshold);
  }

  /// Lazily compiled planes of one strand's resident store.
  const BitScanReference& planes(bool reverse_strand) {
    auto& planes = reverse_strand ? reverse_ : forward_;
    bool& ready = reverse_strand ? reverse_ready_ : forward_ready_;
    if (!ready) {
      planes = BitScanReference{store_.strand(reverse_strand)};
      ready = true;
    }
    return planes;
  }

  /// Overlap the strand compiles: the reverse planes build on a pool
  /// worker while the caller builds the forward planes — with both strands
  /// the compile wall-time halves.
  void ensure_planes(bool both_strands, util::ThreadPool* pool) {
    std::future<void> reverse_done;
    if (both_strands && !reverse_ready_ && pool)
      reverse_done =
          pool->submit([this] { reverse_ = BitScanReference{store_.reverse}; });
    planes(false);
    if (reverse_done.valid()) {
      reverse_done.get();
      reverse_ready_ = true;
    } else if (both_strands) {
      planes(true);
    }
  }

  BitScanReference forward_;
  BitScanReference reverse_;
  bool forward_ready_ = false;
  bool reverse_ready_ = false;
};

// ---------------------------------------------------------------------------
// Hardware-simulation backend: the Accelerator cycle model wrapped in the
// fault-detection / bounded-retry / degradation machinery (moved here from
// the pre-refactor Session — the behavior, stream seeding and accounting
// are unchanged and still pinned by tests/core/chaos_test.cpp).

class HwSimBackend final : public ScanBackend {
 public:
  HwSimBackend(const HostConfig& config, const ReferenceStore& store)
      : config_{config},
        store_{store},
        software_{make_backend(software_backend_kind(config.scan_path), config,
                               store)} {}

  BackendKind kind() const noexcept override { return BackendKind::HwSim; }

  void invalidate() override {
    ref_crcs_ready_ = rev_crcs_ready_ = false;
    software_->invalidate();
  }

  bool supports_precomputed_hits() const noexcept override {
    // The LUT oracle path always evaluates element by element.
    return !config_.accelerator.use_lut_path;
  }

  HealthState health() const noexcept override { return health_; }

  const std::vector<hw::FaultEvent>& fault_log() const noexcept override {
    return fault_log_;
  }

  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override {
    // Precompute through the configured software path (scan_path picks
    // tiled or cached planes), exactly as the pre-refactor align_batch.
    return software_->scan_batch(queries, thresholds, reverse_strand, pool);
  }

  std::vector<Hit> scan_one(const CompiledQuery& query,
                            std::uint32_t threshold,
                            util::ThreadPool* pool) override {
    return software_->scan_one(query, threshold, pool);
  }

  Expected<BackendRun> run(const BackendRequest& request) override;

  /// Device batch scheduler (DESIGN.md §4d): packs the coalesced requests
  /// into fixed-capacity device invocations, stages the next invocations'
  /// clean hit lists concurrently (the ping/pong DMA buffers), commits in
  /// order with invocation-granular fault machinery, and deschedules
  /// per-PE hit streams back per request — bit-identical to serial run().
  std::vector<Expected<BackendRun>> run_many(
      std::span<const BackendRequest> requests) override;

  DevicePipelineStats pipeline_stats() const noexcept override {
    return pipeline_;
  }

 private:
  /// Clean per-task strand hit lists of one packed invocation, built from
  /// per-PE reference slices and descheduled by chunk-ordered
  /// concatenation.  Safe to build concurrently with an earlier
  /// invocation's commit: only the const store and compiled queries are
  /// touched, never the injector or any mutable backend state.
  struct PreparedTask {
    std::vector<Hit> forward;  ///< position order
    std::vector<Hit> reverse;  ///< raw RC coordinates
  };

  std::vector<Hit> prepared_strand(const BackendRequest& request,
                                   bool reverse_strand) const;
  std::vector<PreparedTask> prepare_invocation(
      std::span<const BackendRequest> requests,
      const hw::DeviceInvocation& invocation) const;
  bool faulty_invocation_run(std::span<const hw::ControlRecord> records,
                             std::span<const BackendRequest> requests,
                             bool reverse_strand, std::size_t channels,
                             std::size_t segments, std::size_t lq_max,
                             std::vector<std::vector<Hit>>& hits,
                             RecoveryStats& stats, Error& error,
                             InvocationStrandTiming& timing);
  void commit_invocation(std::span<const BackendRequest> requests,
                         const hw::DeviceInvocation& invocation,
                         std::vector<PreparedTask> prepared,
                         std::vector<Expected<BackendRun>>& results,
                         std::vector<hw::PipelineStage>& stages);

  bool faulty_strand_run(const CompiledQuery& query, std::uint32_t threshold,
                         const bio::PackedNucleotides& store,
                         bool reverse_strand,
                         const std::vector<Hit>* precomputed,
                         RecoveryStats& stats, Error& error,
                         AcceleratorRun& out);

  /// Packed words per integrity tile (the PR 3 tile geometry).
  std::size_t tile_words() const noexcept {
    const std::size_t positions = std::max<std::size_t>(
        64, (config_.tile.tile_positions + 63) / 64 * 64);
    return positions / bio::kElementsPerWord;
  }

  /// Per-tile CRC32 of the resident store (forward or RC), computed once
  /// per upload on first use (fault paths only) and cached.
  const std::vector<std::uint32_t>& tile_crcs(bool reverse_strand) {
    auto& crcs = reverse_strand ? rev_crcs_ : ref_crcs_;
    bool& ready = reverse_strand ? rev_crcs_ready_ : ref_crcs_ready_;
    if (!ready) {
      const std::span<const std::uint64_t> words =
          store_.strand(reverse_strand).words();
      const std::size_t tw = tile_words();
      crcs.clear();
      for (std::size_t wb = 0; wb < words.size(); wb += tw)
        crcs.push_back(util::crc32_words(
            words.subspan(wb, std::min(tw, words.size() - wb))));
      ready = true;
    }
    return crcs;
  }

  const HostConfig& config_;
  const ReferenceStore& store_;
  std::unique_ptr<ScanBackend> software_;  // precompute + software_hits path

  // Fault-tolerance state: upload-time tile checksums (lazy, fault paths
  // only), the health machine, and the backend-lifetime fault schedule.
  std::vector<std::uint32_t> ref_crcs_;
  std::vector<std::uint32_t> rev_crcs_;
  bool ref_crcs_ready_ = false;
  bool rev_crcs_ready_ = false;
  HealthState health_ = HealthState::Healthy;
  std::size_t consecutive_failures_ = 0;
  /// Device invocations issued: serial run() calls and packed batches
  /// share the counter, and it seeds the fault streams — so a replay with
  /// the same request sequence draws the same schedules at any batch
  /// capacity or buffer depth.
  std::uint64_t invocation_ = 0;
  std::vector<hw::FaultEvent> fault_log_;
  DevicePipelineStats pipeline_;  ///< lifetime scheduler accounting
};

bool HwSimBackend::faulty_strand_run(const CompiledQuery& query,
                                     std::uint32_t threshold,
                                     const bio::PackedNucleotides& store,
                                     bool reverse_strand,
                                     const std::vector<Hit>* precomputed,
                                     RecoveryStats& stats, Error& error,
                                     AcceleratorRun& out) {
  const RecoveryConfig& rec = config_.recovery;
  const std::size_t lq = query.encoded.size();
  const std::size_t valid_positions =
      store.size() >= lq ? store.size() - lq + 1 : 0;
  const BitScanQuery& compiled = query.scan;
  const std::size_t max_attempts = std::max<std::size_t>(1, rec.max_attempts);

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats.attempts;
    // Stream index is a pure function of (invocation, attempt, strand):
    // retries draw independent schedules, replays draw identical ones.
    const std::uint64_t stream =
        (invocation_ << 8) | (attempt << 1) | (reverse_strand ? 1u : 0u);
    hw::FaultInjector injector{config_.fault, stream};

    ErrorCode failure = ErrorCode::None;
    AcceleratorRun run;
    if (injector.transfer_fails()) {
      failure = ErrorCode::TransferFailure;
      ++stats.transfer_faults;
    } else {
      AcceleratorConfig acc_config = config_.accelerator;
      acc_config.threshold = threshold;
      acc_config.fault_injector = &injector;  // stall storms inflate time
      Accelerator accelerator{acc_config};
      accelerator.load_encoded(query.encoded);
      run = accelerator.run(store, precomputed);
      if (rec.watchdog_s > 0.0 && run.kernel_seconds > rec.watchdog_s) {
        failure = ErrorCode::Timeout;
        ++stats.timeouts;
      }
    }

    if (failure != ErrorCode::None) {
      const auto& log = injector.log();
      fault_log_.insert(fault_log_.end(), log.begin(), log.end());
      if (attempt + 1 < max_attempts) {
        ++stats.retries;
        stats.recovery_s += rec.backoff_base_s *
                            static_cast<double>(std::uint64_t{1} << attempt);
        continue;
      }
      error = Error{failure,
                    failure == ErrorCode::Timeout
                        ? "kernel watchdog deadline exceeded on every attempt"
                        : "PCIe transfer failed on every attempt",
                    stats.attempts};
      return false;
    }

    // --- data-path corruption over the streamed reference -------------
    // The schedule says which beats were hit; corruption lands on a copy
    // of the packed store, per-tile CRCs against the upload-time
    // checksums localise it, and detected tiles are repaired by
    // re-scanning only the positions whose window can read a corrupted
    // element.  With verify_integrity off the corrupted hits are
    // delivered as-is — that is what the chaos divergence test observes.
    const std::vector<hw::FaultEvent> events =
        injector.data_events(store.beat_count());
    if (!events.empty() && valid_positions > 0) {
      const std::span<const std::uint64_t> words = store.words();
      const std::size_t tw = tile_words();
      std::vector<std::uint64_t> corrupted =
          hw::corrupt_words(words, events, tw);

      std::vector<std::size_t> tiles;
      for (const hw::FaultEvent& event : events) {
        const std::size_t w = event.beat * (hw::kAxiDataBits / 64);
        if (data_fault(event.kind) && w < words.size())
          tiles.push_back(w / tw);
      }
      std::sort(tiles.begin(), tiles.end());
      tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());

      std::vector<Interval> corrupt_ranges, repair_ranges;
      for (std::size_t t : tiles) {
        const std::size_t wb = t * tw;
        const std::size_t we = std::min(words.size(), wb + tw);
        // A fault can be a data no-op (e.g. a duplicated beat identical
        // to its successor): only tiles whose words actually changed
        // affect the scan.
        if (std::equal(words.begin() + static_cast<std::ptrdiff_t>(wb),
                       words.begin() + static_cast<std::ptrdiff_t>(we),
                       corrupted.begin() + static_cast<std::ptrdiff_t>(wb)))
          continue;
        const std::size_t el_begin = wb * bio::kElementsPerWord;
        const std::size_t el_end =
            std::min(store.size(), we * bio::kElementsPerWord);
        const Interval range{el_begin > lq - 1 ? el_begin - (lq - 1) : 0,
                             std::min(el_end, valid_positions)};
        if (range.begin >= range.end) continue;
        corrupt_ranges.push_back(range);
        if (rec.verify_integrity) {
          // Detection: the streamed tile's CRC vs the upload checksum.
          const std::uint32_t got =
              util::crc32_words(std::span{corrupted}.subspan(wb, we - wb));
          if (got != tile_crcs(reverse_strand)[t]) {
            ++stats.crc_faults;
            ++stats.rescanned_tiles;
            repair_ranges.push_back(range);
            // Re-streaming the affected fraction of the reference.
            stats.recovery_s += run.kernel_seconds *
                                static_cast<double>(range.end - range.begin) /
                                static_cast<double>(store.size());
          }
        }
      }
      corrupt_ranges = merge_intervals(std::move(corrupt_ranges));
      repair_ranges = merge_intervals(std::move(repair_ranges));

      if (!corrupt_ranges.empty()) {
        // What the card actually delivered: hits scanned from the
        // corrupted stream over every affected range.
        const bio::PackedNucleotides corrupted_store =
            bio::PackedNucleotides::from_words(std::move(corrupted),
                                               store.size());
        splice_ranges(run.hits, TileScanner{corrupted_store, config_.tile},
                      compiled, threshold, corrupt_ranges);
      }
      if (!repair_ranges.empty()) {
        // Chunk-granular repair: re-scan only the detected ranges from
        // the resident (true) store.
        splice_ranges(run.hits, TileScanner{store, config_.tile}, compiled,
                      threshold, repair_ranges);
      }
    }

    // --- readback integrity -------------------------------------------
    std::uint32_t bit = 0;
    if (injector.readback_corrupts(bit)) {
      if (rec.verify_integrity) {
        // The hit buffer's CRC fails on arrival; the DRAM copy is intact,
        // so one re-read recovers it.
        ++stats.readback_faults;
        stats.recovery_s +=
            (static_cast<double>(run.hits.size()) * 8.0 + 64.0) /
            config_.pcie_bandwidth_bps;
      } else if (!run.hits.empty()) {
        Hit& victim = run.hits[bit % run.hits.size()];
        victim.score ^= 1u << (bit % 8);
      } else {
        run.hits.push_back(Hit{0, threshold});  // spurious record
      }
    }

    // --- golden spot-check sampler ------------------------------------
    if (rec.spot_check_samples > 0 && valid_positions > 0) {
      util::Xoshiro256 rng{
          util::SplitMix64{config_.fault.seed ^ (0xfabc0de5ULL + stream)}
              .next()};
      const TileScanner scanner{store, config_.tile};
      for (std::size_t k = 0; k < rec.spot_check_samples; ++k) {
        ++stats.spot_checks;
        const std::size_t begin = rng.bounded(valid_positions);
        const std::size_t end = std::min(begin + 256, valid_positions);
        std::vector<Hit> expected;
        scanner.range(compiled, threshold, begin, end, expected);
        const auto lo = std::lower_bound(
            run.hits.begin(), run.hits.end(), begin,
            [](const Hit& h, std::size_t p) { return h.position < p; });
        const auto hi = std::lower_bound(
            lo, run.hits.end(), end,
            [](const Hit& h, std::size_t p) { return h.position < p; });
        if (!std::equal(lo, hi, expected.begin(), expected.end())) {
          ++stats.spot_check_faults;
          const Interval window{begin, end};
          splice_ranges(run.hits, scanner, compiled, threshold,
                        std::span{&window, 1});
        }
      }
    }

    const auto& log = injector.log();
    fault_log_.insert(fault_log_.end(), log.begin(), log.end());
    out = std::move(run);
    return true;
  }
  return false;  // unreachable: the loop returns on its last attempt
}

Expected<BackendRun> HwSimBackend::run(const BackendRequest& request) {
  if (!store_.uploaded)
    return Error{ErrorCode::NoReference, "Session: no reference uploaded"};
  ++invocation_;
  const CompiledQuery& query = *request.query;
  const std::uint32_t threshold = request.threshold;

  AcceleratorConfig acc_config = config_.accelerator;
  acc_config.threshold = threshold;

  const bool chaos = config_.fault.enabled() ||
                     config_.recovery.spot_check_samples > 0 ||
                     health_ != HealthState::Healthy;
  if (!chaos) {
    // Clean fast path: exactly the pre-fault pipeline (one branch above is
    // the entire zero-fault overhead of this layer).
    Accelerator accelerator{acc_config};
    accelerator.load_encoded(query.encoded);
    BackendRun out;
    AcceleratorRun run = accelerator.run(store_.forward, request.forward_hits);
    out.recovery.attempts = 1;

    if (config_.search_both_strands) {
      ++out.recovery.attempts;
      AcceleratorRun rc_run =
          accelerator.run(store_.reverse, request.reverse_hits);
      out.reverse_hits = map_reverse_hits(
          rc_run.hits, store_.forward.size(), query.encoded.size());
      // Account the second pass in the kernel time.
      run.cycles += rc_run.cycles;
      run.kernel_seconds += rc_run.kernel_seconds;
      run.joules += rc_run.joules;
    }
    out.hits = std::move(run.hits);
    out.mapping = run.mapping;
    out.cycles = run.cycles;
    out.kernel_seconds = run.kernel_seconds;
    out.watts = run.watts;
    return out;
  }

  // Fault-tolerant path.
  RecoveryStats stats;
  Accelerator probe{acc_config};  // mapping + validation, no run
  probe.load_encoded(query.encoded);
  const FabpMapping mapping = probe.mapping();
  const std::size_t lq = query.encoded.size();

  // Degraded (or exhausted) strand runs are served by the pure-software
  // tiled path against the resident store: zero card time, golden hits.
  const auto fallback_strand = [&](const bio::PackedNucleotides& store,
                                   const std::vector<Hit>* precomputed) {
    AcceleratorRun run;
    run.mapping = mapping;
    run.hits = precomputed ? *precomputed
                           : TileScanner{store, config_.tile}.hits(query.scan,
                                                                   threshold);
    ++stats.fallbacks;
    return run;
  };

  const auto run_strand = [&](const bio::PackedNucleotides& store,
                              bool reverse_strand,
                              const std::vector<Hit>* precomputed,
                              AcceleratorRun& out, Error& err) -> bool {
    if (health_ == HealthState::Degraded) {
      if (!config_.recovery.allow_software_fallback) {
        err = Error{ErrorCode::DeviceLost,
                    "session degraded and software fallback disabled", 0};
        return false;
      }
      out = fallback_strand(store, precomputed);
      return true;
    }
    Error strand_error;
    if (faulty_strand_run(query, threshold, store, reverse_strand,
                          precomputed, stats, strand_error, out)) {
      consecutive_failures_ = 0;
      return true;
    }
    ++consecutive_failures_;
    if (consecutive_failures_ >=
        std::max<std::size_t>(1, config_.recovery.degrade_after))
      health_ = HealthState::Degraded;
    if (config_.recovery.allow_software_fallback) {
      out = fallback_strand(store, precomputed);
      return true;
    }
    err = std::move(strand_error);
    return false;
  };

  AcceleratorRun run;
  Error error;
  if (!run_strand(store_.forward, false, request.forward_hits, run, error))
    return error;

  std::vector<Hit> reverse_hits;
  if (config_.search_both_strands) {
    AcceleratorRun rc_run;
    if (!run_strand(store_.reverse, true, request.reverse_hits, rc_run,
                    error))
      return error;
    reverse_hits = map_reverse_hits(rc_run.hits, store_.forward.size(), lq);
    run.cycles += rc_run.cycles;
    run.kernel_seconds += rc_run.kernel_seconds;
    run.joules += rc_run.joules;
  }

  stats.degraded = health_ == HealthState::Degraded;
  BackendRun out;
  out.hits = std::move(run.hits);
  out.reverse_hits = std::move(reverse_hits);
  out.mapping = run.mapping;
  out.cycles = run.cycles;
  out.kernel_seconds = run.kernel_seconds;
  out.watts = run.watts;
  out.recovery = stats;
  return out;
}

// --- device batch scheduler (DESIGN.md §4d) --------------------------------

std::vector<Hit> HwSimBackend::prepared_strand(const BackendRequest& request,
                                               bool reverse_strand) const {
  const CompiledQuery& query = *request.query;
  const bio::PackedNucleotides& store = store_.strand(reverse_strand);
  const std::size_t lq = query.encoded.size();
  const std::size_t valid = store.size() >= lq ? store.size() - lq + 1 : 0;
  const std::size_t pes =
      std::max<std::size_t>(1, config_.device_batch.pe_count);
  const std::vector<Hit>* precomputed =
      reverse_strand ? request.reverse_hits : request.forward_hits;

  // PE p evaluates the alignment windows starting in its contiguous slice
  // of the position range (the slice's element stream carries the L_q-1
  // halo; see invocation_strand_timing).  Because the slices partition the
  // range in ascending order, chunk-ordered concatenation of the per-PE
  // hit streams — the descheduler — is structurally identical to the
  // serial scan.
  std::vector<std::vector<Hit>> chunks(pes);
  const TileScanner scanner{store, config_.tile};
  for (std::size_t p = 0; p < pes; ++p) {
    const std::size_t begin = p * valid / pes;
    const std::size_t end = (p + 1) * valid / pes;
    if (begin >= end) continue;
    if (precomputed) {
      const auto lo = std::lower_bound(
          precomputed->begin(), precomputed->end(), begin,
          [](const Hit& h, std::size_t pos) { return h.position < pos; });
      const auto hi = std::lower_bound(
          lo, precomputed->end(), end,
          [](const Hit& h, std::size_t pos) { return h.position < pos; });
      chunks[p].assign(lo, hi);
    } else {
      scanner.range(query.scan, request.threshold, begin, end, chunks[p]);
    }
  }
  return merge_hit_chunks(chunks);
}

std::vector<HwSimBackend::PreparedTask> HwSimBackend::prepare_invocation(
    std::span<const BackendRequest> requests,
    const hw::DeviceInvocation& invocation) const {
  std::vector<PreparedTask> prepared;
  prepared.reserve(invocation.records.size());
  for (const hw::ControlRecord& record : invocation.records) {
    const BackendRequest& request = requests[record.task];
    PreparedTask task;
    task.forward = prepared_strand(request, false);
    if (config_.search_both_strands)
      task.reverse = prepared_strand(request, true);
    prepared.push_back(std::move(task));
  }
  return prepared;
}

bool HwSimBackend::faulty_invocation_run(
    std::span<const hw::ControlRecord> records,
    std::span<const BackendRequest> requests, bool reverse_strand,
    std::size_t channels, std::size_t segments, std::size_t lq_max,
    std::vector<std::vector<Hit>>& hits, RecoveryStats& stats, Error& error,
    InvocationStrandTiming& timing) {
  const RecoveryConfig& rec = config_.recovery;
  const bio::PackedNucleotides& store = store_.strand(reverse_strand);
  const std::size_t max_attempts = std::max<std::size_t>(1, rec.max_attempts);
  const std::size_t halo_beats =
      util::ceil_div(lq_max > 0 ? lq_max - 1 : 0, bio::kElementsPerBeat);
  std::size_t clean_hits = 0;
  for (const std::vector<Hit>& h : hits) clean_hits += h.size();

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats.attempts;
    // Same stream keying as the serial path — the invocation counter makes
    // a packed batch draw exactly the schedule a serial run in the same
    // device-call position would (the depth-1 == depth-8 replay contract).
    const std::uint64_t stream =
        (invocation_ << 8) | (attempt << 1) | (reverse_strand ? 1u : 0u);
    hw::FaultInjector injector{config_.fault, stream};

    ErrorCode failure = ErrorCode::None;
    InvocationStrandTiming run{};
    if (injector.transfer_fails()) {
      failure = ErrorCode::TransferFailure;
      ++stats.transfer_faults;
    } else {
      run = invocation_strand_timing(
          config_.accelerator, &injector, store.beat_count(), channels,
          segments, config_.device_batch.pe_count, halo_beats, clean_hits);
      if (rec.watchdog_s > 0.0 && run.seconds > rec.watchdog_s) {
        failure = ErrorCode::Timeout;
        ++stats.timeouts;
      }
    }

    if (failure != ErrorCode::None) {
      const auto& log = injector.log();
      fault_log_.insert(fault_log_.end(), log.begin(), log.end());
      if (attempt + 1 < max_attempts) {
        ++stats.retries;
        stats.recovery_s += rec.backoff_base_s *
                            static_cast<double>(std::uint64_t{1} << attempt);
        continue;
      }
      error = Error{failure,
                    failure == ErrorCode::Timeout
                        ? "kernel watchdog deadline exceeded on every attempt"
                        : "PCIe transfer failed on every attempt",
                    stats.attempts};
      return false;
    }

    // --- data-path corruption over the streamed reference -------------
    // The invocation streams the reference once, shared by every packed
    // task: the event schedule, the changed-tile set and the CRC verdicts
    // are per invocation (detection and the repair charge happen once),
    // while the affected position ranges — and the corrupt/repair splices
    // — are per task, since each query's window width L_q differs.
    const std::vector<hw::FaultEvent> events =
        injector.data_events(store.beat_count());
    if (!events.empty() && store.size() > 0) {
      const std::span<const std::uint64_t> words = store.words();
      const std::size_t tw = tile_words();
      std::vector<std::uint64_t> corrupted =
          hw::corrupt_words(words, events, tw);

      std::vector<std::size_t> tiles;
      for (const hw::FaultEvent& event : events) {
        const std::size_t w = event.beat * (hw::kAxiDataBits / 64);
        if (data_fault(event.kind) && w < words.size())
          tiles.push_back(w / tw);
      }
      std::sort(tiles.begin(), tiles.end());
      tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());

      std::vector<std::size_t> changed;
      std::vector<bool> repair_tile;
      for (std::size_t t : tiles) {
        const std::size_t wb = t * tw;
        const std::size_t we = std::min(words.size(), wb + tw);
        if (std::equal(words.begin() + static_cast<std::ptrdiff_t>(wb),
                       words.begin() + static_cast<std::ptrdiff_t>(we),
                       corrupted.begin() + static_cast<std::ptrdiff_t>(wb)))
          continue;
        changed.push_back(t);
        bool repair = false;
        if (rec.verify_integrity) {
          const std::uint32_t got =
              util::crc32_words(std::span{corrupted}.subspan(wb, we - wb));
          if (got != tile_crcs(reverse_strand)[t]) {
            ++stats.crc_faults;
            ++stats.rescanned_tiles;
            repair = true;
            // Re-streaming the affected fraction once covers every packed
            // task; charge the widest window's range.
            const std::size_t el_begin = wb * bio::kElementsPerWord;
            const std::size_t el_end =
                std::min(store.size(), we * bio::kElementsPerWord);
            const std::size_t r_begin =
                el_begin > lq_max - 1 ? el_begin - (lq_max - 1) : 0;
            stats.recovery_s += run.seconds *
                                static_cast<double>(el_end - r_begin) /
                                static_cast<double>(store.size());
          }
        }
        repair_tile.push_back(repair);
      }

      if (!changed.empty()) {
        const bio::PackedNucleotides corrupted_store =
            bio::PackedNucleotides::from_words(std::move(corrupted),
                                               store.size());
        const TileScanner corrupt_scanner{corrupted_store, config_.tile};
        const TileScanner clean_scanner{store, config_.tile};
        for (std::size_t i = 0; i < records.size(); ++i) {
          const CompiledQuery& query = *requests[records[i].task].query;
          const std::size_t lq = query.encoded.size();
          const std::size_t valid =
              store.size() >= lq ? store.size() - lq + 1 : 0;
          if (valid == 0) continue;
          std::vector<Interval> corrupt_ranges, repair_ranges;
          for (std::size_t k = 0; k < changed.size(); ++k) {
            const std::size_t wb = changed[k] * tw;
            const std::size_t we = std::min(words.size(), wb + tw);
            const std::size_t el_begin = wb * bio::kElementsPerWord;
            const std::size_t el_end =
                std::min(store.size(), we * bio::kElementsPerWord);
            const Interval range{el_begin > lq - 1 ? el_begin - (lq - 1) : 0,
                                 std::min(el_end, valid)};
            if (range.begin >= range.end) continue;
            corrupt_ranges.push_back(range);
            if (repair_tile[k]) repair_ranges.push_back(range);
          }
          corrupt_ranges = merge_intervals(std::move(corrupt_ranges));
          repair_ranges = merge_intervals(std::move(repair_ranges));
          if (!corrupt_ranges.empty())
            splice_ranges(hits[i], corrupt_scanner, query.scan,
                          records[i].threshold, corrupt_ranges);
          if (!repair_ranges.empty())
            splice_ranges(hits[i], clean_scanner, query.scan,
                          records[i].threshold, repair_ranges);
        }
      }
    }

    // --- readback integrity (one packed hit buffer per invocation) ----
    std::uint32_t bit = 0;
    if (injector.readback_corrupts(bit)) {
      std::size_t delivered = 0;
      for (const std::vector<Hit>& h : hits) delivered += h.size();
      if (rec.verify_integrity) {
        ++stats.readback_faults;
        stats.recovery_s +=
            (static_cast<double>(delivered) * 8.0 + 64.0) /
            config_.pcie_bandwidth_bps;
      } else if (delivered > 0) {
        // The victim record indexes the packed readback buffer: walk the
        // per-task streams in control-record order.
        std::size_t index = bit % delivered;
        for (std::vector<Hit>& h : hits) {
          if (index < h.size()) {
            h[index].score ^= 1u << (bit % 8);
            break;
          }
          index -= h.size();
        }
      } else {
        const std::size_t victim = bit % hits.size();
        hits[victim].push_back(Hit{0, records[victim].threshold});
      }
    }

    // --- golden spot-check sampler (shared rng, task order) ------------
    if (rec.spot_check_samples > 0) {
      util::Xoshiro256 rng{
          util::SplitMix64{config_.fault.seed ^ (0xfabc0de5ULL + stream)}
              .next()};
      const TileScanner scanner{store, config_.tile};
      for (std::size_t i = 0; i < records.size(); ++i) {
        const CompiledQuery& query = *requests[records[i].task].query;
        const std::size_t lq = query.encoded.size();
        const std::size_t valid =
            store.size() >= lq ? store.size() - lq + 1 : 0;
        if (valid == 0) continue;
        for (std::size_t k = 0; k < rec.spot_check_samples; ++k) {
          ++stats.spot_checks;
          const std::size_t begin = rng.bounded(valid);
          const std::size_t end = std::min(begin + 256, valid);
          std::vector<Hit> expected;
          scanner.range(query.scan, records[i].threshold, begin, end,
                        expected);
          const auto lo = std::lower_bound(
              hits[i].begin(), hits[i].end(), begin,
              [](const Hit& h, std::size_t p) { return h.position < p; });
          const auto hi = std::lower_bound(
              lo, hits[i].end(), end,
              [](const Hit& h, std::size_t p) { return h.position < p; });
          if (!std::equal(lo, hi, expected.begin(), expected.end())) {
            ++stats.spot_check_faults;
            const Interval window{begin, end};
            splice_ranges(hits[i], scanner, query.scan, records[i].threshold,
                          std::span{&window, 1});
          }
        }
      }
    }

    const auto& log = injector.log();
    fault_log_.insert(fault_log_.end(), log.begin(), log.end());
    timing = run;
    return true;
  }
  return false;  // unreachable: the loop returns on its last attempt
}

void HwSimBackend::commit_invocation(
    std::span<const BackendRequest> requests,
    const hw::DeviceInvocation& invocation,
    std::vector<PreparedTask> prepared,
    std::vector<Expected<BackendRun>>& results,
    std::vector<hw::PipelineStage>& stages) {
  ++invocation_;
  const std::size_t n = invocation.records.size();
  const double clock = config_.accelerator.device.clock_hz;

  // Per-task mapping probes, plus the representative stream shape: the
  // packed queries share each PE's reference stream, so the most segmented
  // query throttles the beat rate and the narrowest channel allocation
  // bounds the fetch width.
  std::vector<FabpMapping> mappings;
  mappings.reserve(n);
  std::size_t segments = 1;
  std::size_t channels = std::numeric_limits<std::size_t>::max();
  std::size_t lq_max = 1;
  for (const hw::ControlRecord& record : invocation.records) {
    const BackendRequest& request = requests[record.task];
    AcceleratorConfig acc = config_.accelerator;
    acc.threshold = record.threshold;
    Accelerator probe{acc};
    probe.load_encoded(request.query->encoded);
    mappings.push_back(probe.mapping());
    segments = std::max(segments, mappings.back().segments);
    channels = std::min(channels,
                        std::max<std::size_t>(1, mappings.back().channels));
    lq_max = std::max(lq_max, request.query->encoded.size());
  }

  std::vector<std::vector<Hit>> fwd(n), rev(n);
  std::size_t fwd_hits = 0, rev_hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fwd[i] = std::move(prepared[i].forward);
    rev[i] = std::move(prepared[i].reverse);
    fwd_hits += fwd[i].size();
    rev_hits += rev[i].size();
  }

  const std::size_t halo_beats = util::ceil_div(lq_max - 1,
                                                bio::kElementsPerBeat);
  const auto clean_timing = [&](const bio::PackedNucleotides& store,
                                std::size_t total_hits) {
    return invocation_strand_timing(
        config_.accelerator, nullptr, store.beat_count(), channels, segments,
        config_.device_batch.pe_count, halo_beats, total_hits);
  };

  RecoveryStats stats;
  InvocationStrandTiming fwd_timing{}, rev_timing{};
  Error error;
  bool failed = false;
  const bool chaos = config_.fault.enabled() ||
                     config_.recovery.spot_check_samples > 0 ||
                     health_ != HealthState::Healthy;

  if (!chaos) {
    // Clean fast path: prepared hits are the delivered hits; only the
    // cycle accounting runs.
    fwd_timing = clean_timing(store_.forward, fwd_hits);
    stats.attempts = 1;
    if (config_.search_both_strands) {
      rev_timing = clean_timing(store_.reverse, rev_hits);
      ++stats.attempts;
    }
  } else {
    // Fault-tolerant path: the retry unit is the whole invocation per
    // strand — a failed attempt re-enqueues exactly this invocation's
    // tasks, never the rest of the batch.
    const auto strand = [&](bool reverse_strand,
                            std::vector<std::vector<Hit>>& hits,
                            InvocationStrandTiming& timing) -> bool {
      if (health_ == HealthState::Degraded) {
        if (!config_.recovery.allow_software_fallback) {
          error = Error{ErrorCode::DeviceLost,
                        "session degraded and software fallback disabled", 0};
          return false;
        }
        ++stats.fallbacks;  // prepared clean hits served, zero card time
        return true;
      }
      Error strand_error;
      if (faulty_invocation_run(invocation.records, requests, reverse_strand,
                                channels, segments, lq_max, hits, stats,
                                strand_error, timing)) {
        consecutive_failures_ = 0;
        return true;
      }
      ++consecutive_failures_;
      if (consecutive_failures_ >=
          std::max<std::size_t>(1, config_.recovery.degrade_after))
        health_ = HealthState::Degraded;
      if (config_.recovery.allow_software_fallback) {
        // Failed attempts never touched the hit lists, so the prepared
        // clean hits — the software TileScanner scan — serve the fallback.
        ++stats.fallbacks;
        timing = InvocationStrandTiming{};
        return true;
      }
      error = std::move(strand_error);
      return false;
    };

    if (!strand(false, fwd, fwd_timing))
      failed = true;
    else if (config_.search_both_strands && !strand(true, rev, rev_timing))
      failed = true;
  }
  stats.degraded = health_ == HealthState::Degraded;

  // DMA leg of the invocation: control records + packed queries over PCIe,
  // then the on-card AXI burst that stages the ping/pong buffer.
  const std::size_t bytes = invocation.transfer_bytes(config_.device_batch);
  const double dma_s =
      static_cast<double>(bytes) / config_.pcie_bandwidth_bps +
      static_cast<double>(hw::AxiReadStream::cycles_for_beats(
          config_.accelerator.axi,
          util::ceil_div(bytes, hw::kAxiDataBits / 8))) /
          clock;

  if (failed) {
    for (std::size_t i = 0; i < n; ++i) results.push_back(error);
    stages.push_back(hw::PipelineStage{dma_s, 0.0});
    pipeline_.invocations += 1;
    pipeline_.tasks += n;
    pipeline_.largest_invocation = std::max(pipeline_.largest_invocation, n);
    if (stats.retries > 0) pipeline_.retried_invocations += 1;
    return;
  }

  const std::size_t total_cycles = fwd_timing.cycles + rev_timing.cycles;
  const double total_seconds = fwd_timing.seconds + rev_timing.seconds;
  const std::size_t base_cycles = total_cycles / n;
  const std::size_t cycle_rem = total_cycles % n;
  const hw::FpgaPowerModel power{config_.accelerator.power};

  for (std::size_t i = 0; i < n; ++i) {
    const BackendRequest& request = requests[invocation.records[i].task];
    BackendRun out;
    out.hits = std::move(fwd[i]);
    if (config_.search_both_strands)
      out.reverse_hits = map_reverse_hits(rev[i], store_.forward.size(),
                                          request.query->encoded.size());
    out.mapping = mappings[i];
    // The invocation's kernel time is shared: apportion it equally (the
    // remainder cycles land on the leading tasks so the sum stays exact).
    out.cycles = base_cycles + (i < cycle_rem ? 1 : 0);
    out.kernel_seconds = total_seconds / static_cast<double>(n);
    out.watts = power.watts(config_.accelerator.device, mappings[i].used,
                            mappings[i].channels);
    // Invocation-level recovery accounting rides on the first task, so
    // batch-merged stats count each invocation's work exactly once.
    if (i == 0)
      out.recovery = stats;
    else
      out.recovery.degraded = stats.degraded;
    results.push_back(std::move(out));
  }

  stages.push_back(hw::PipelineStage{dma_s, total_seconds});
  pipeline_.invocations += 1;
  pipeline_.tasks += n;
  pipeline_.largest_invocation = std::max(pipeline_.largest_invocation, n);
  if (stats.retries > 0) pipeline_.retried_invocations += 1;
  pipeline_.pe_busy_s +=
      static_cast<double>(fwd_timing.pe_busy_cycles +
                          rev_timing.pe_busy_cycles) /
      clock;
}

std::vector<Expected<BackendRun>> HwSimBackend::run_many(
    std::span<const BackendRequest> requests) {
  std::vector<Expected<BackendRun>> results;
  if (requests.empty()) return results;
  // The LUT oracle path evaluates element by element and cannot share one
  // reference stream between packed queries — keep the serial loop.
  if (config_.accelerator.use_lut_path) return ScanBackend::run_many(requests);
  if (!store_.uploaded) {
    results.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
      results.push_back(
          Error{ErrorCode::NoReference, "Session: no reference uploaded"});
    return results;
  }

  const hw::DeviceBatchConfig& batch = config_.device_batch;
  std::vector<hw::DeviceTaskDesc> descs;
  descs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    descs.push_back(hw::DeviceTaskDesc{
        static_cast<std::uint32_t>(i),
        static_cast<std::uint32_t>(requests[i].query->packed_bytes),
        requests[i].threshold});
  const std::vector<hw::DeviceInvocation> invocations =
      hw::pack_invocations(descs, batch);
  const std::size_t depth = std::max<std::size_t>(1, batch.buffer_depth);

  // Ping/pong staging: while invocation k commits on this thread (every
  // fault draw, every piece of mutable backend state), the clean hit
  // lists of the next depth-1 invocations build concurrently — the host
  // analogue of filling the idle DMA buffer during compute.  prepare
  // touches only the const store and compiled queries, so commit order
  // (and with it the fault stream sequence) is independent of depth.
  std::vector<std::future<std::vector<PreparedTask>>> staged(
      invocations.size());
  std::vector<hw::PipelineStage> stages;
  stages.reserve(invocations.size());
  results.reserve(requests.size());
  for (std::size_t k = 0; k < invocations.size(); ++k) {
    const std::size_t horizon = std::min(invocations.size(), k + depth);
    for (std::size_t j = k; j < horizon; ++j) {
      if (staged[j].valid()) continue;
      staged[j] = std::async(std::launch::async,
                             [this, requests, &invocations, j] {
                               return prepare_invocation(requests,
                                                         invocations[j]);
                             });
    }
    commit_invocation(requests, invocations[k], staged[k].get(), results,
                      stages);
  }

  // Modeled pipeline: the same invocations through the ping/pong timeline
  // at the configured depth, against the depth-1 single-buffer baseline.
  const hw::PipelineTimeline pipelined = hw::pipeline_timeline(stages, depth);
  const hw::PipelineTimeline serial = hw::pipeline_timeline(stages, 1);
  pipeline_.pe_count = std::max<std::size_t>(1, batch.pe_count);
  pipeline_.buffer_depth = depth;
  pipeline_.transfer_s += pipelined.transfer_busy_s;
  pipeline_.compute_s += pipelined.compute_busy_s;
  pipeline_.serial_s += serial.total_s;
  pipeline_.pipelined_s += pipelined.total_s;
  return results;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared pieces.

const char* to_string(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::HwSim: return "hwsim";
    case BackendKind::Tiled: return "tiled";
    case BackendKind::Planes: return "planes";
  }
  return "unknown";
}

BackendKind software_backend_kind(ScanPath path) noexcept {
  return use_tiled_scan(path) ? BackendKind::Tiled : BackendKind::Planes;
}

const std::vector<hw::FaultEvent>& ScanBackend::fault_log() const noexcept {
  static const std::vector<hw::FaultEvent> kEmpty;
  return kEmpty;
}

std::vector<Expected<BackendRun>> ScanBackend::run_many(
    std::span<const BackendRequest> requests) {
  std::vector<Expected<BackendRun>> results;
  results.reserve(requests.size());
  for (const BackendRequest& request : requests)
    results.push_back(run(request));
  return results;
}

void ReferenceStore::upload(bio::PackedNucleotides packed, bool both_strands) {
  forward = std::move(packed);
  uploaded = true;
  reverse = bio::PackedNucleotides{};
  if (both_strands) {
    // Host-side preparation: the reverse-complement copy the card streams
    // for the second pass.
    bio::NucleotideSequence rc =
        forward.unpack(bio::SeqKind::Dna).reverse_complement();
    reverse = bio::PackedNucleotides{rc};
  }
}

std::shared_ptr<const ReferenceSnapshot> VersionedStore::active() const {
  std::lock_guard lock{mutex_};
  return active_;
}

std::uint64_t VersionedStore::publish(
    std::shared_ptr<const ReferenceSnapshot> next) {
  std::lock_guard lock{mutex_};
  if (active_ != nullptr) retired_.push_back(active_);
  active_ = std::move(next);
  prune_locked();
  return active_->generation;
}

std::uint64_t VersionedStore::next_generation() {
  std::lock_guard lock{mutex_};
  return next_generation_++;
}

std::vector<VersionedStore::GenerationStatus> VersionedStore::status() const {
  std::lock_guard lock{mutex_};
  prune_locked();
  std::vector<GenerationStatus> out;
  for (const auto& weak : retired_) {
    if (auto pinned = weak.lock())
      out.push_back({pinned->generation,
                     static_cast<long>(pinned.use_count() - 1), false});
  }
  if (active_ != nullptr)
    out.push_back({active_->generation,
                   static_cast<long>(active_.use_count()), true});
  return out;
}

std::size_t VersionedStore::reclaimed() const {
  std::lock_guard lock{mutex_};
  prune_locked();
  return reclaimed_;
}

void VersionedStore::prune_locked() const {
  // Epoch sweep: a retired generation whose weak_ptr no longer locks has
  // had its last pin dropped — its strands/backends are already freed.
  std::erase_if(retired_, [this](const auto& weak) {
    const bool gone = weak.expired();
    if (gone) ++reclaimed_;
    return gone;
  });
}

std::unique_ptr<ScanBackend> make_backend(BackendKind kind,
                                          const HostConfig& config,
                                          const ReferenceStore& store) {
  switch (kind) {
    case BackendKind::HwSim:
      return std::make_unique<HwSimBackend>(config, store);
    case BackendKind::Tiled:
      return std::make_unique<TiledSoftwareBackend>(config, store);
    case BackendKind::Planes:
      return std::make_unique<PlanesSoftwareBackend>(config, store);
  }
  return std::make_unique<TiledSoftwareBackend>(config, store);
}

HostRunReport finalize_run(const HostConfig& config,
                           const CompiledQuery& query, BackendRun run,
                           std::size_t reference_bytes) {
  HostRunReport report;
  report.mapping = run.mapping;
  report.hits = std::move(run.hits);
  report.reverse_hits = std::move(run.reverse_hits);

  const double pcie = config.pcie_bandwidth_bps;
  const double ref_bytes = static_cast<double>(reference_bytes);
  report.reference_transfer_s =
      config.reference_resident ? 0.0 : ref_bytes / pcie;

  // Encoded query as transferred: 6-bit instructions packed into words.
  const auto query_bytes = static_cast<double>(query.packed_bytes);
  report.query_transfer_s = query_bytes / pcie + config.invoke_overhead_s;

  report.kernel_s = run.kernel_seconds;

  const double result_bytes =
      static_cast<double>(report.hits.size()) * 8.0 + 64.0;
  report.readback_s = result_bytes / pcie;

  report.total_s = report.reference_transfer_s + report.query_transfer_s +
                   report.kernel_s + report.readback_s;
  report.watts = run.watts;
  report.recovery = run.recovery;
  // Recovery time is part of the end-to-end latency (zero on clean runs,
  // so the clean fast path's accounting is bit-identical to pre-fault).
  report.total_s += run.recovery.recovery_s;
  report.joules = report.watts * report.total_s;
  return report;
}

HostRunReport estimate_run(const HostConfig& config,
                           const CompiledQuery& query, std::uint32_t threshold,
                           std::size_t bytes) {
  AcceleratorConfig acc_config = config.accelerator;
  acc_config.threshold = threshold;
  Accelerator accelerator{acc_config};
  accelerator.load_encoded(query.encoded);
  AcceleratorRun run = accelerator.estimate(bytes * 4 /* elements */);
  BackendRun backend_run;
  backend_run.hits = std::move(run.hits);
  backend_run.mapping = run.mapping;
  backend_run.cycles = run.cycles;
  backend_run.kernel_seconds = run.kernel_seconds;
  backend_run.watts = run.watts;
  return finalize_run(config, query, std::move(backend_run), bytes);
}

Error validate_host_config(const HostConfig& config) noexcept {
  const auto invalid = [](std::string message) {
    return Error{ErrorCode::InvalidConfig, std::move(message)};
  };
  const auto probability = [](double p) {
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
  };

  if (config.tile.tile_positions == 0)
    return invalid("tile.tile_positions must be positive");
  if (config.tile.tile_positions > (std::size_t{1} << 30))
    return invalid("tile.tile_positions larger than 2^30 is absurd");
  if (!std::isfinite(config.pcie_bandwidth_bps) ||
      config.pcie_bandwidth_bps <= 0.0)
    return invalid("pcie_bandwidth_bps must be positive and finite");
  if (!std::isfinite(config.invoke_overhead_s) ||
      config.invoke_overhead_s < 0.0)
    return invalid("invoke_overhead_s must be non-negative");

  const RecoveryConfig& rec = config.recovery;
  if (rec.max_attempts == 0)
    return invalid("recovery.max_attempts must be at least 1");
  if (rec.max_attempts > 64)
    return invalid("recovery.max_attempts above 64 is absurd");
  if (rec.degrade_after == 0)
    return invalid("recovery.degrade_after must be at least 1");
  if (!std::isfinite(rec.backoff_base_s) || rec.backoff_base_s < 0.0)
    return invalid("recovery.backoff_base_s must be non-negative");
  if (!std::isfinite(rec.watchdog_s) || rec.watchdog_s < 0.0)
    return invalid("recovery.watchdog_s must be non-negative");

  const hw::DeviceBatchConfig& batch = config.device_batch;
  if (batch.invocation_tasks == 0)
    return invalid("device_batch.invocation_tasks must be positive");
  if (batch.invocation_tasks > 4096)
    return invalid("device_batch.invocation_tasks above 4096 is absurd");
  if (batch.invocation_payload_bytes == 0)
    return invalid("device_batch.invocation_payload_bytes must be positive");
  if (batch.buffer_depth == 0)
    return invalid("device_batch.buffer_depth must be positive");
  if (batch.buffer_depth > 64)
    return invalid("device_batch.buffer_depth above 64 is absurd");
  if (batch.pe_count == 0)
    return invalid("device_batch.pe_count must be positive");
  if (batch.pe_count > 256)
    return invalid("device_batch.pe_count above 256 is absurd");
  if (batch.control_record_bytes < sizeof(hw::ControlRecord))
    return invalid(
        "device_batch.control_record_bytes smaller than the packed record");

  const hw::FaultConfig& fault = config.fault;
  if (!std::isfinite(fault.flip_rate) || fault.flip_rate < 0.0)
    return invalid("fault.flip_rate must be non-negative");
  if (!probability(fault.drop_rate) || !probability(fault.dup_rate) ||
      !probability(fault.stall_rate) ||
      !probability(fault.transfer_fail_rate) ||
      !probability(fault.readback_flip_rate))
    return invalid("fault rates must be probabilities in [0, 1]");

  return Error{};
}

}  // namespace fabp::core
