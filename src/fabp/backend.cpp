#include "fabp/core/backend.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <utility>

#include "fabp/util/crc32.hpp"
#include "fabp/util/thread_pool.hpp"
#include "fabp/util/timer.hpp"

namespace fabp::core {

namespace {

/// Half-open position range touched by corruption / a spot-check window.
struct Interval {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  std::vector<Interval> out;
  for (const Interval& r : v) {
    if (!out.empty() && r.begin <= out.back().end)
      out.back().end = std::max(out.back().end, r.end);
    else
      out.push_back(r);
  }
  return out;
}

/// Replaces the hits falling in each range with a fresh range scan of
/// `scanner`'s store.  Ranges must be sorted and disjoint; `hits` must be
/// position-sorted (the scan order), and stays so.
void splice_ranges(std::vector<Hit>& hits, const TileScanner& scanner,
                   const BitScanQuery& compiled, std::uint32_t threshold,
                   std::span<const Interval> ranges) {
  std::vector<Hit> result;
  result.reserve(hits.size());
  std::size_t i = 0;
  for (const Interval& r : ranges) {
    while (i < hits.size() && hits[i].position < r.begin)
      result.push_back(hits[i++]);
    while (i < hits.size() && hits[i].position < r.end) ++i;  // replaced
    scanner.range(compiled, threshold, r.begin, r.end, result);
  }
  while (i < hits.size()) result.push_back(hits[i++]);
  hits = std::move(result);
}

bool data_fault(hw::FaultKind kind) noexcept {
  return kind == hw::FaultKind::BitFlip || kind == hw::FaultKind::DropBeat ||
         kind == hw::FaultKind::DupBeat;
}

/// Maps raw RC-strand hits to forward coordinates of the window start and
/// sorts them (the reverse_hits convention of HostRunReport).
std::vector<Hit> map_reverse_hits(const std::vector<Hit>& raw,
                                  std::size_t reference_size,
                                  std::size_t query_elements) {
  std::vector<Hit> mapped;
  mapped.reserve(raw.size());
  for (const Hit& hit : raw)
    mapped.push_back(
        Hit{reference_size - hit.position - query_elements, hit.score});
  std::sort(mapped.begin(), mapped.end());
  return mapped;
}

// ---------------------------------------------------------------------------
// Software backends: tile-fused and precompiled-plane scans share the run()
// shape (scan both strands, map the reverse list, report wall time); only
// the strand-scan primitive differs.

class SoftwareBackendBase : public ScanBackend {
 public:
  SoftwareBackendBase(const HostConfig& config, const ReferenceStore& store)
      : config_{config}, store_{store} {}

  Expected<BackendRun> run(const BackendRequest& request) override {
    if (!store_.uploaded)
      return Error{ErrorCode::NoReference, "Session: no reference uploaded"};
    const CompiledQuery& query = *request.query;
    BackendRun out;
    util::Timer timer;
    out.hits = request.forward_hits
                   ? *request.forward_hits
                   : strand_hits(query, request.threshold, false,
                                 request.pool);
    if (config_.search_both_strands) {
      const std::vector<Hit> raw =
          request.reverse_hits
              ? *request.reverse_hits
              : strand_hits(query, request.threshold, true, request.pool);
      out.reverse_hits =
          map_reverse_hits(raw, store_.forward.size(), query.size());
    }
    out.kernel_seconds = timer.seconds();
    out.recovery.attempts = config_.search_both_strands ? 2 : 1;
    return out;
  }

  std::vector<Hit> scan_one(const CompiledQuery& query,
                            std::uint32_t threshold,
                            util::ThreadPool* pool) override {
    return strand_hits(query, threshold, false, pool);
  }

 protected:
  /// Raw hits of one strand's store (RC coordinates for the reverse one).
  virtual std::vector<Hit> strand_hits(const CompiledQuery& query,
                                       std::uint32_t threshold,
                                       bool reverse_strand,
                                       util::ThreadPool* pool) = 0;

  const HostConfig& config_;
  const ReferenceStore& store_;
};

class TiledSoftwareBackend final : public SoftwareBackendBase {
 public:
  using SoftwareBackendBase::SoftwareBackendBase;

  BackendKind kind() const noexcept override { return BackendKind::Tiled; }

  void invalidate() override {}  // nothing cached: the scan streams packed words

  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override {
    std::vector<BitScanQuery> scans;
    scans.reserve(queries.size());
    for (const CompiledQueryPtr& query : queries) scans.push_back(query->scan);
    return TileScanner{store_.strand(reverse_strand), config_.tile}.hits_batch(
        scans, thresholds, pool);
  }

 private:
  std::vector<Hit> strand_hits(const CompiledQuery& query,
                               std::uint32_t threshold, bool reverse_strand,
                               util::ThreadPool* pool) override {
    return TileScanner{store_.strand(reverse_strand), config_.tile}.hits(
        query.scan, threshold, pool);
  }
};

class PlanesSoftwareBackend final : public SoftwareBackendBase {
 public:
  using SoftwareBackendBase::SoftwareBackendBase;

  BackendKind kind() const noexcept override { return BackendKind::Planes; }

  void invalidate() override {
    forward_ready_ = reverse_ready_ = false;
    forward_ = BitScanReference{};
    reverse_ = BitScanReference{};
  }

  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override {
    // Compiling both strands up front lets the reverse compile overlap the
    // forward one on the pool (see ensure_planes) — the engine's forward
    // batch pass pays the whole compile, the reverse pass finds it cached.
    ensure_planes(config_.search_both_strands, pool);
    std::vector<BitScanQuery> scans;
    scans.reserve(queries.size());
    for (const CompiledQueryPtr& query : queries) scans.push_back(query->scan);
    return bitscan_hits_batch(scans, planes(reverse_strand), thresholds, pool);
  }

 private:
  std::vector<Hit> strand_hits(const CompiledQuery& query,
                               std::uint32_t threshold, bool reverse_strand,
                               util::ThreadPool* pool) override {
    const BitScanReference& reference = planes(reverse_strand);
    return pool ? bitscan_hits_parallel(query.scan, reference, threshold,
                                        *pool)
                : bitscan_hits(query.scan, reference, threshold);
  }

  /// Lazily compiled planes of one strand's resident store.
  const BitScanReference& planes(bool reverse_strand) {
    auto& planes = reverse_strand ? reverse_ : forward_;
    bool& ready = reverse_strand ? reverse_ready_ : forward_ready_;
    if (!ready) {
      planes = BitScanReference{store_.strand(reverse_strand)};
      ready = true;
    }
    return planes;
  }

  /// Overlap the strand compiles: the reverse planes build on a pool
  /// worker while the caller builds the forward planes — with both strands
  /// the compile wall-time halves.
  void ensure_planes(bool both_strands, util::ThreadPool* pool) {
    std::future<void> reverse_done;
    if (both_strands && !reverse_ready_ && pool)
      reverse_done =
          pool->submit([this] { reverse_ = BitScanReference{store_.reverse}; });
    planes(false);
    if (reverse_done.valid()) {
      reverse_done.get();
      reverse_ready_ = true;
    } else if (both_strands) {
      planes(true);
    }
  }

  BitScanReference forward_;
  BitScanReference reverse_;
  bool forward_ready_ = false;
  bool reverse_ready_ = false;
};

// ---------------------------------------------------------------------------
// Hardware-simulation backend: the Accelerator cycle model wrapped in the
// fault-detection / bounded-retry / degradation machinery (moved here from
// the pre-refactor Session — the behavior, stream seeding and accounting
// are unchanged and still pinned by tests/core/chaos_test.cpp).

class HwSimBackend final : public ScanBackend {
 public:
  HwSimBackend(const HostConfig& config, const ReferenceStore& store)
      : config_{config},
        store_{store},
        software_{make_backend(software_backend_kind(config.scan_path), config,
                               store)} {}

  BackendKind kind() const noexcept override { return BackendKind::HwSim; }

  void invalidate() override {
    ref_crcs_ready_ = rev_crcs_ready_ = false;
    software_->invalidate();
  }

  bool supports_precomputed_hits() const noexcept override {
    // The LUT oracle path always evaluates element by element.
    return !config_.accelerator.use_lut_path;
  }

  HealthState health() const noexcept override { return health_; }

  const std::vector<hw::FaultEvent>& fault_log() const noexcept override {
    return fault_log_;
  }

  std::vector<std::vector<Hit>> scan_batch(
      std::span<const CompiledQueryPtr> queries,
      std::span<const std::uint32_t> thresholds, bool reverse_strand,
      util::ThreadPool* pool) override {
    // Precompute through the configured software path (scan_path picks
    // tiled or cached planes), exactly as the pre-refactor align_batch.
    return software_->scan_batch(queries, thresholds, reverse_strand, pool);
  }

  std::vector<Hit> scan_one(const CompiledQuery& query,
                            std::uint32_t threshold,
                            util::ThreadPool* pool) override {
    return software_->scan_one(query, threshold, pool);
  }

  Expected<BackendRun> run(const BackendRequest& request) override;

 private:
  bool faulty_strand_run(const CompiledQuery& query, std::uint32_t threshold,
                         const bio::PackedNucleotides& store,
                         bool reverse_strand,
                         const std::vector<Hit>* precomputed,
                         RecoveryStats& stats, Error& error,
                         AcceleratorRun& out);

  /// Packed words per integrity tile (the PR 3 tile geometry).
  std::size_t tile_words() const noexcept {
    const std::size_t positions = std::max<std::size_t>(
        64, (config_.tile.tile_positions + 63) / 64 * 64);
    return positions / bio::kElementsPerWord;
  }

  /// Per-tile CRC32 of the resident store (forward or RC), computed once
  /// per upload on first use (fault paths only) and cached.
  const std::vector<std::uint32_t>& tile_crcs(bool reverse_strand) {
    auto& crcs = reverse_strand ? rev_crcs_ : ref_crcs_;
    bool& ready = reverse_strand ? rev_crcs_ready_ : ref_crcs_ready_;
    if (!ready) {
      const std::span<const std::uint64_t> words =
          store_.strand(reverse_strand).words();
      const std::size_t tw = tile_words();
      crcs.clear();
      for (std::size_t wb = 0; wb < words.size(); wb += tw)
        crcs.push_back(util::crc32_words(
            words.subspan(wb, std::min(tw, words.size() - wb))));
      ready = true;
    }
    return crcs;
  }

  const HostConfig& config_;
  const ReferenceStore& store_;
  std::unique_ptr<ScanBackend> software_;  // precompute + software_hits path

  // Fault-tolerance state: upload-time tile checksums (lazy, fault paths
  // only), the health machine, and the backend-lifetime fault schedule.
  std::vector<std::uint32_t> ref_crcs_;
  std::vector<std::uint32_t> rev_crcs_;
  bool ref_crcs_ready_ = false;
  bool rev_crcs_ready_ = false;
  HealthState health_ = HealthState::Healthy;
  std::size_t consecutive_failures_ = 0;
  std::uint64_t invocation_ = 0;  // run() calls; seeds fault streams
  std::vector<hw::FaultEvent> fault_log_;
};

bool HwSimBackend::faulty_strand_run(const CompiledQuery& query,
                                     std::uint32_t threshold,
                                     const bio::PackedNucleotides& store,
                                     bool reverse_strand,
                                     const std::vector<Hit>* precomputed,
                                     RecoveryStats& stats, Error& error,
                                     AcceleratorRun& out) {
  const RecoveryConfig& rec = config_.recovery;
  const std::size_t lq = query.encoded.size();
  const std::size_t valid_positions =
      store.size() >= lq ? store.size() - lq + 1 : 0;
  const BitScanQuery& compiled = query.scan;
  const std::size_t max_attempts = std::max<std::size_t>(1, rec.max_attempts);

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats.attempts;
    // Stream index is a pure function of (invocation, attempt, strand):
    // retries draw independent schedules, replays draw identical ones.
    const std::uint64_t stream =
        (invocation_ << 8) | (attempt << 1) | (reverse_strand ? 1u : 0u);
    hw::FaultInjector injector{config_.fault, stream};

    ErrorCode failure = ErrorCode::None;
    AcceleratorRun run;
    if (injector.transfer_fails()) {
      failure = ErrorCode::TransferFailure;
      ++stats.transfer_faults;
    } else {
      AcceleratorConfig acc_config = config_.accelerator;
      acc_config.threshold = threshold;
      acc_config.fault_injector = &injector;  // stall storms inflate time
      Accelerator accelerator{acc_config};
      accelerator.load_encoded(query.encoded);
      run = accelerator.run(store, precomputed);
      if (rec.watchdog_s > 0.0 && run.kernel_seconds > rec.watchdog_s) {
        failure = ErrorCode::Timeout;
        ++stats.timeouts;
      }
    }

    if (failure != ErrorCode::None) {
      const auto& log = injector.log();
      fault_log_.insert(fault_log_.end(), log.begin(), log.end());
      if (attempt + 1 < max_attempts) {
        ++stats.retries;
        stats.recovery_s += rec.backoff_base_s *
                            static_cast<double>(std::uint64_t{1} << attempt);
        continue;
      }
      error = Error{failure,
                    failure == ErrorCode::Timeout
                        ? "kernel watchdog deadline exceeded on every attempt"
                        : "PCIe transfer failed on every attempt",
                    stats.attempts};
      return false;
    }

    // --- data-path corruption over the streamed reference -------------
    // The schedule says which beats were hit; corruption lands on a copy
    // of the packed store, per-tile CRCs against the upload-time
    // checksums localise it, and detected tiles are repaired by
    // re-scanning only the positions whose window can read a corrupted
    // element.  With verify_integrity off the corrupted hits are
    // delivered as-is — that is what the chaos divergence test observes.
    const std::vector<hw::FaultEvent> events =
        injector.data_events(store.beat_count());
    if (!events.empty() && valid_positions > 0) {
      const std::span<const std::uint64_t> words = store.words();
      const std::size_t tw = tile_words();
      std::vector<std::uint64_t> corrupted =
          hw::corrupt_words(words, events, tw);

      std::vector<std::size_t> tiles;
      for (const hw::FaultEvent& event : events) {
        const std::size_t w = event.beat * (hw::kAxiDataBits / 64);
        if (data_fault(event.kind) && w < words.size())
          tiles.push_back(w / tw);
      }
      std::sort(tiles.begin(), tiles.end());
      tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());

      std::vector<Interval> corrupt_ranges, repair_ranges;
      for (std::size_t t : tiles) {
        const std::size_t wb = t * tw;
        const std::size_t we = std::min(words.size(), wb + tw);
        // A fault can be a data no-op (e.g. a duplicated beat identical
        // to its successor): only tiles whose words actually changed
        // affect the scan.
        if (std::equal(words.begin() + static_cast<std::ptrdiff_t>(wb),
                       words.begin() + static_cast<std::ptrdiff_t>(we),
                       corrupted.begin() + static_cast<std::ptrdiff_t>(wb)))
          continue;
        const std::size_t el_begin = wb * bio::kElementsPerWord;
        const std::size_t el_end =
            std::min(store.size(), we * bio::kElementsPerWord);
        const Interval range{el_begin > lq - 1 ? el_begin - (lq - 1) : 0,
                             std::min(el_end, valid_positions)};
        if (range.begin >= range.end) continue;
        corrupt_ranges.push_back(range);
        if (rec.verify_integrity) {
          // Detection: the streamed tile's CRC vs the upload checksum.
          const std::uint32_t got =
              util::crc32_words(std::span{corrupted}.subspan(wb, we - wb));
          if (got != tile_crcs(reverse_strand)[t]) {
            ++stats.crc_faults;
            ++stats.rescanned_tiles;
            repair_ranges.push_back(range);
            // Re-streaming the affected fraction of the reference.
            stats.recovery_s += run.kernel_seconds *
                                static_cast<double>(range.end - range.begin) /
                                static_cast<double>(store.size());
          }
        }
      }
      corrupt_ranges = merge_intervals(std::move(corrupt_ranges));
      repair_ranges = merge_intervals(std::move(repair_ranges));

      if (!corrupt_ranges.empty()) {
        // What the card actually delivered: hits scanned from the
        // corrupted stream over every affected range.
        const bio::PackedNucleotides corrupted_store =
            bio::PackedNucleotides::from_words(std::move(corrupted),
                                               store.size());
        splice_ranges(run.hits, TileScanner{corrupted_store, config_.tile},
                      compiled, threshold, corrupt_ranges);
      }
      if (!repair_ranges.empty()) {
        // Chunk-granular repair: re-scan only the detected ranges from
        // the resident (true) store.
        splice_ranges(run.hits, TileScanner{store, config_.tile}, compiled,
                      threshold, repair_ranges);
      }
    }

    // --- readback integrity -------------------------------------------
    std::uint32_t bit = 0;
    if (injector.readback_corrupts(bit)) {
      if (rec.verify_integrity) {
        // The hit buffer's CRC fails on arrival; the DRAM copy is intact,
        // so one re-read recovers it.
        ++stats.readback_faults;
        stats.recovery_s +=
            (static_cast<double>(run.hits.size()) * 8.0 + 64.0) /
            config_.pcie_bandwidth_bps;
      } else if (!run.hits.empty()) {
        Hit& victim = run.hits[bit % run.hits.size()];
        victim.score ^= 1u << (bit % 8);
      } else {
        run.hits.push_back(Hit{0, threshold});  // spurious record
      }
    }

    // --- golden spot-check sampler ------------------------------------
    if (rec.spot_check_samples > 0 && valid_positions > 0) {
      util::Xoshiro256 rng{
          util::SplitMix64{config_.fault.seed ^ (0xfabc0de5ULL + stream)}
              .next()};
      const TileScanner scanner{store, config_.tile};
      for (std::size_t k = 0; k < rec.spot_check_samples; ++k) {
        ++stats.spot_checks;
        const std::size_t begin = rng.bounded(valid_positions);
        const std::size_t end = std::min(begin + 256, valid_positions);
        std::vector<Hit> expected;
        scanner.range(compiled, threshold, begin, end, expected);
        const auto lo = std::lower_bound(
            run.hits.begin(), run.hits.end(), begin,
            [](const Hit& h, std::size_t p) { return h.position < p; });
        const auto hi = std::lower_bound(
            lo, run.hits.end(), end,
            [](const Hit& h, std::size_t p) { return h.position < p; });
        if (!std::equal(lo, hi, expected.begin(), expected.end())) {
          ++stats.spot_check_faults;
          const Interval window{begin, end};
          splice_ranges(run.hits, scanner, compiled, threshold,
                        std::span{&window, 1});
        }
      }
    }

    const auto& log = injector.log();
    fault_log_.insert(fault_log_.end(), log.begin(), log.end());
    out = std::move(run);
    return true;
  }
  return false;  // unreachable: the loop returns on its last attempt
}

Expected<BackendRun> HwSimBackend::run(const BackendRequest& request) {
  if (!store_.uploaded)
    return Error{ErrorCode::NoReference, "Session: no reference uploaded"};
  ++invocation_;
  const CompiledQuery& query = *request.query;
  const std::uint32_t threshold = request.threshold;

  AcceleratorConfig acc_config = config_.accelerator;
  acc_config.threshold = threshold;

  const bool chaos = config_.fault.enabled() ||
                     config_.recovery.spot_check_samples > 0 ||
                     health_ != HealthState::Healthy;
  if (!chaos) {
    // Clean fast path: exactly the pre-fault pipeline (one branch above is
    // the entire zero-fault overhead of this layer).
    Accelerator accelerator{acc_config};
    accelerator.load_encoded(query.encoded);
    BackendRun out;
    AcceleratorRun run = accelerator.run(store_.forward, request.forward_hits);
    out.recovery.attempts = 1;

    if (config_.search_both_strands) {
      ++out.recovery.attempts;
      AcceleratorRun rc_run =
          accelerator.run(store_.reverse, request.reverse_hits);
      out.reverse_hits = map_reverse_hits(
          rc_run.hits, store_.forward.size(), query.encoded.size());
      // Account the second pass in the kernel time.
      run.cycles += rc_run.cycles;
      run.kernel_seconds += rc_run.kernel_seconds;
      run.joules += rc_run.joules;
    }
    out.hits = std::move(run.hits);
    out.mapping = run.mapping;
    out.cycles = run.cycles;
    out.kernel_seconds = run.kernel_seconds;
    out.watts = run.watts;
    return out;
  }

  // Fault-tolerant path.
  RecoveryStats stats;
  Accelerator probe{acc_config};  // mapping + validation, no run
  probe.load_encoded(query.encoded);
  const FabpMapping mapping = probe.mapping();
  const std::size_t lq = query.encoded.size();

  // Degraded (or exhausted) strand runs are served by the pure-software
  // tiled path against the resident store: zero card time, golden hits.
  const auto fallback_strand = [&](const bio::PackedNucleotides& store,
                                   const std::vector<Hit>* precomputed) {
    AcceleratorRun run;
    run.mapping = mapping;
    run.hits = precomputed ? *precomputed
                           : TileScanner{store, config_.tile}.hits(query.scan,
                                                                   threshold);
    ++stats.fallbacks;
    return run;
  };

  const auto run_strand = [&](const bio::PackedNucleotides& store,
                              bool reverse_strand,
                              const std::vector<Hit>* precomputed,
                              AcceleratorRun& out, Error& err) -> bool {
    if (health_ == HealthState::Degraded) {
      if (!config_.recovery.allow_software_fallback) {
        err = Error{ErrorCode::DeviceLost,
                    "session degraded and software fallback disabled", 0};
        return false;
      }
      out = fallback_strand(store, precomputed);
      return true;
    }
    Error strand_error;
    if (faulty_strand_run(query, threshold, store, reverse_strand,
                          precomputed, stats, strand_error, out)) {
      consecutive_failures_ = 0;
      return true;
    }
    ++consecutive_failures_;
    if (consecutive_failures_ >=
        std::max<std::size_t>(1, config_.recovery.degrade_after))
      health_ = HealthState::Degraded;
    if (config_.recovery.allow_software_fallback) {
      out = fallback_strand(store, precomputed);
      return true;
    }
    err = std::move(strand_error);
    return false;
  };

  AcceleratorRun run;
  Error error;
  if (!run_strand(store_.forward, false, request.forward_hits, run, error))
    return error;

  std::vector<Hit> reverse_hits;
  if (config_.search_both_strands) {
    AcceleratorRun rc_run;
    if (!run_strand(store_.reverse, true, request.reverse_hits, rc_run,
                    error))
      return error;
    reverse_hits = map_reverse_hits(rc_run.hits, store_.forward.size(), lq);
    run.cycles += rc_run.cycles;
    run.kernel_seconds += rc_run.kernel_seconds;
    run.joules += rc_run.joules;
  }

  stats.degraded = health_ == HealthState::Degraded;
  BackendRun out;
  out.hits = std::move(run.hits);
  out.reverse_hits = std::move(reverse_hits);
  out.mapping = run.mapping;
  out.cycles = run.cycles;
  out.kernel_seconds = run.kernel_seconds;
  out.watts = run.watts;
  out.recovery = stats;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared pieces.

const char* to_string(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::HwSim: return "hwsim";
    case BackendKind::Tiled: return "tiled";
    case BackendKind::Planes: return "planes";
  }
  return "unknown";
}

BackendKind software_backend_kind(ScanPath path) noexcept {
  return use_tiled_scan(path) ? BackendKind::Tiled : BackendKind::Planes;
}

const std::vector<hw::FaultEvent>& ScanBackend::fault_log() const noexcept {
  static const std::vector<hw::FaultEvent> kEmpty;
  return kEmpty;
}

void ReferenceStore::upload(bio::PackedNucleotides packed, bool both_strands) {
  forward = std::move(packed);
  uploaded = true;
  reverse = bio::PackedNucleotides{};
  if (both_strands) {
    // Host-side preparation: the reverse-complement copy the card streams
    // for the second pass.
    bio::NucleotideSequence rc =
        forward.unpack(bio::SeqKind::Dna).reverse_complement();
    reverse = bio::PackedNucleotides{rc};
  }
}

std::unique_ptr<ScanBackend> make_backend(BackendKind kind,
                                          const HostConfig& config,
                                          const ReferenceStore& store) {
  switch (kind) {
    case BackendKind::HwSim:
      return std::make_unique<HwSimBackend>(config, store);
    case BackendKind::Tiled:
      return std::make_unique<TiledSoftwareBackend>(config, store);
    case BackendKind::Planes:
      return std::make_unique<PlanesSoftwareBackend>(config, store);
  }
  return std::make_unique<TiledSoftwareBackend>(config, store);
}

HostRunReport finalize_run(const HostConfig& config,
                           const CompiledQuery& query, BackendRun run,
                           std::size_t reference_bytes) {
  HostRunReport report;
  report.mapping = run.mapping;
  report.hits = std::move(run.hits);
  report.reverse_hits = std::move(run.reverse_hits);

  const double pcie = config.pcie_bandwidth_bps;
  const double ref_bytes = static_cast<double>(reference_bytes);
  report.reference_transfer_s =
      config.reference_resident ? 0.0 : ref_bytes / pcie;

  // Encoded query as transferred: 6-bit instructions packed into words.
  const auto query_bytes = static_cast<double>(query.packed_bytes);
  report.query_transfer_s = query_bytes / pcie + config.invoke_overhead_s;

  report.kernel_s = run.kernel_seconds;

  const double result_bytes =
      static_cast<double>(report.hits.size()) * 8.0 + 64.0;
  report.readback_s = result_bytes / pcie;

  report.total_s = report.reference_transfer_s + report.query_transfer_s +
                   report.kernel_s + report.readback_s;
  report.watts = run.watts;
  report.recovery = run.recovery;
  // Recovery time is part of the end-to-end latency (zero on clean runs,
  // so the clean fast path's accounting is bit-identical to pre-fault).
  report.total_s += run.recovery.recovery_s;
  report.joules = report.watts * report.total_s;
  return report;
}

HostRunReport estimate_run(const HostConfig& config,
                           const CompiledQuery& query, std::uint32_t threshold,
                           std::size_t bytes) {
  AcceleratorConfig acc_config = config.accelerator;
  acc_config.threshold = threshold;
  Accelerator accelerator{acc_config};
  accelerator.load_encoded(query.encoded);
  AcceleratorRun run = accelerator.estimate(bytes * 4 /* elements */);
  BackendRun backend_run;
  backend_run.hits = std::move(run.hits);
  backend_run.mapping = run.mapping;
  backend_run.cycles = run.cycles;
  backend_run.kernel_seconds = run.kernel_seconds;
  backend_run.watts = run.watts;
  return finalize_run(config, query, std::move(backend_run), bytes);
}

Error validate_host_config(const HostConfig& config) noexcept {
  const auto invalid = [](std::string message) {
    return Error{ErrorCode::InvalidConfig, std::move(message)};
  };
  const auto probability = [](double p) {
    return std::isfinite(p) && p >= 0.0 && p <= 1.0;
  };

  if (config.tile.tile_positions == 0)
    return invalid("tile.tile_positions must be positive");
  if (config.tile.tile_positions > (std::size_t{1} << 30))
    return invalid("tile.tile_positions larger than 2^30 is absurd");
  if (!std::isfinite(config.pcie_bandwidth_bps) ||
      config.pcie_bandwidth_bps <= 0.0)
    return invalid("pcie_bandwidth_bps must be positive and finite");
  if (!std::isfinite(config.invoke_overhead_s) ||
      config.invoke_overhead_s < 0.0)
    return invalid("invoke_overhead_s must be non-negative");

  const RecoveryConfig& rec = config.recovery;
  if (rec.max_attempts == 0)
    return invalid("recovery.max_attempts must be at least 1");
  if (rec.max_attempts > 64)
    return invalid("recovery.max_attempts above 64 is absurd");
  if (rec.degrade_after == 0)
    return invalid("recovery.degrade_after must be at least 1");
  if (!std::isfinite(rec.backoff_base_s) || rec.backoff_base_s < 0.0)
    return invalid("recovery.backoff_base_s must be non-negative");
  if (!std::isfinite(rec.watchdog_s) || rec.watchdog_s < 0.0)
    return invalid("recovery.watchdog_s must be non-negative");

  const hw::FaultConfig& fault = config.fault;
  if (!std::isfinite(fault.flip_rate) || fault.flip_rate < 0.0)
    return invalid("fault.flip_rate must be non-negative");
  if (!probability(fault.drop_rate) || !probability(fault.dup_rate) ||
      !probability(fault.stall_rate) ||
      !probability(fault.transfer_fail_rate) ||
      !probability(fault.readback_flip_rate))
    return invalid("fault rates must be probabilities in [0, 1]");

  return Error{};
}

}  // namespace fabp::core
