// Portable scan kernels: the 64-lane uint64_t SWAR baseline (always
// available, and the reference the SIMD TUs must match bit for bit) plus
// the per-position scalar loop kept reachable for differential testing.

#include "bitscan_kernel_impl.hpp"

namespace fabp::core::detail {

namespace {

struct Swar64Traits {
  using Vec = std::uint64_t;
  static constexpr unsigned kWords = 1;
  static Vec zero() noexcept { return 0; }
  static Vec broadcast(std::uint64_t x) noexcept { return x; }
  static Vec load_bits(const std::uint64_t* plane, std::size_t w,
                       unsigned s) noexcept {
    std::uint64_t match = plane[w] >> s;
    if (s != 0) match |= plane[w + 1] << (64 - s);
    return match;
  }
  static Vec and_(Vec a, Vec b) noexcept { return a & b; }
  static Vec or_(Vec a, Vec b) noexcept { return a | b; }
  static Vec xor_(Vec a, Vec b) noexcept { return a ^ b; }
  static Vec andnot(Vec a, Vec b) noexcept { return ~a & b; }
  static Vec not_(Vec a) noexcept { return ~a; }
  static bool any(Vec a) noexcept { return a != 0; }
  static void store(std::uint64_t* dst, Vec v) noexcept { dst[0] = v; }
};

void swar64_range(const BitScanQuery& query, const PlaneView& reference,
                  std::uint32_t threshold, std::size_t begin, std::size_t end,
                  std::vector<Hit>& out) {
  scan_range_t<Swar64Traits>(query, reference, threshold, begin, end, out);
}

void swar64_batch(const BitScanQuery* queries, const std::uint32_t* thresholds,
                  std::size_t count, const PlaneView& reference,
                  std::size_t begin, std::size_t end, std::vector<Hit>* outs) {
  scan_batch_t<Swar64Traits>(queries, thresholds, count, reference, begin,
                             end, outs);
}

// Scalar reference path: one position at a time, one plane-bit test per
// query element — no vertical counters, no block structure.  Exists so
// FABP_FORCE_ISA=scalar exercises the dispatch plumbing against the
// simplest possible evaluation of the same planes.
void scalar_position_range(const PreparedQuery& p, std::size_t begin,
                           std::vector<Hit>& out) {
  for (std::size_t pos = begin; pos < p.end; ++pos) {
    std::uint32_t score = 0;
    for (std::size_t i = 0; i < p.qlen; ++i) {
      const std::size_t offset = pos + i;
      score += static_cast<std::uint32_t>(
          (p.planes[i][offset >> 6] >> (offset & 63)) & 1u);
    }
    if (score >= p.threshold) out.push_back(Hit{pos, score});
  }
}

void scalar_range(const BitScanQuery& query, const PlaneView& reference,
                  std::uint32_t threshold, std::size_t begin, std::size_t end,
                  std::vector<Hit>& out) {
  scalar_position_range(prepare_query(query, reference, threshold, begin, end),
                        begin, out);
}

void scalar_batch(const BitScanQuery* queries, const std::uint32_t* thresholds,
                  std::size_t count, const PlaneView& reference,
                  std::size_t begin, std::size_t end, std::vector<Hit>* outs) {
  for (std::size_t q = 0; q < count; ++q)
    scalar_range(queries[q], reference, thresholds[q], begin, end, outs[q]);
}

}  // namespace

const ScanKernel* swar64_kernel() noexcept {
  static constexpr ScanKernel kernel{ScanIsa::Swar64, "swar64", 64,
                                     &swar64_range, &swar64_batch};
  return &kernel;
}

const ScanKernel* scalar_kernel() noexcept {
  static constexpr ScanKernel kernel{ScanIsa::Scalar, "scalar", 1,
                                     &scalar_range, &scalar_batch};
  return &kernel;
}

}  // namespace fabp::core::detail
