#include "fabp/core/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fabp/core/bitscan.hpp"
#include "fabp/core/bitscan_tiled.hpp"
#include "fabp/core/comparator.hpp"
#include "fabp/util/bitops.hpp"

namespace fabp::core {

using bio::Nucleotide;

StreamBeatTiming stream_beat_timing(const hw::AxiTimingConfig& axi_config,
                                    hw::FaultInjector* injector,
                                    std::size_t total_beats,
                                    std::size_t channels,
                                    std::size_t segments) {
  StreamBeatTiming out;
  hw::FaultyAxiStream axi{axi_config, injector};
  constexpr std::size_t kFifoDepth = 8;  // AXI read FIFO, in beat groups
  const std::size_t ch = std::max<std::size_t>(1, channels);
  const std::size_t total_groups = util::ceil_div(total_beats, ch);
  std::size_t fetched_groups = 0, fifo = 0, busy = 0;

  for (std::size_t beat = 0; beat < total_beats; ++beat) {
    // Beats arrive in lockstep groups of `channels` per cycle; the AXI
    // side refills the FIFO every cycle it can, so when the datapath is
    // segmented (busy cycles) DRAM stalls hide behind compute.  Cycle
    // accounting happens once per group; one iteration of the inner loop
    // = one cycle.
    if (beat % ch == 0) {
      for (;;) {
        if (fetched_groups < total_groups && fifo < kFifoDepth &&
            axi.advance()) {
          ++fifo;
          ++fetched_groups;
        }
        if (busy > 0) {
          --busy;
          ++out.compute_cycles;
          continue;
        }
        if (fifo == 0) {
          ++out.stall_cycles;
          continue;
        }
        break;  // a group is ready and the datapath is free: consume it
      }
      --fifo;
      busy = segments - 1;
    }
    ++out.beats;
  }
  out.compute_cycles += busy;  // drain the last beat's segment cycles
  return out;
}

Accelerator::Accelerator(AcceleratorConfig config)
    : config_{std::move(config)} {}

const FabpMapping& Accelerator::load_query(
    const bio::ProteinSequence& protein) {
  return load_encoded(encode_query(protein));
}

const FabpMapping& Accelerator::load_encoded(EncodedQuery query) {
  if (query.empty())
    throw std::invalid_argument{"Accelerator: empty query"};
  query_ = std::move(query);
  elements_.clear();
  elements_.reserve(query_.size());
  for (const Instruction& instr : query_)
    elements_.push_back(instr.decode());

  mapping_ =
      map_design(config_.device, query_.size(), config_.mapper, config_.axi);
  if (!mapping_.feasible)
    throw std::invalid_argument{
        "Accelerator: query does not fit the device even fully segmented"};
  return mapping_;
}

AcceleratorRun Accelerator::run(
    const bio::PackedNucleotides& reference,
    const std::vector<Hit>* precomputed_hits) const {
  if (query_.empty())
    throw std::logic_error{"Accelerator: no query loaded"};

  AcceleratorRun out;
  out.mapping = mapping_;
  const std::size_t lq = query_.size();
  const std::size_t lr = reference.size();
  if (lr < lq) {
    finalize_timing(out, lr);
    return out;
  }

  const std::size_t elements_per_beat = bio::kElementsPerBeat;
  const std::size_t total_beats = reference.beat_count();
  const std::size_t last_position = lr - lq;  // inclusive

  // Default functional path: the bit-sliced scan engine produces the hit
  // list up front (bit-exact with the per-position behavioral evaluation —
  // see tests/core/bitscan_test.cpp), and the beat loop degenerates to
  // pure cycle accounting — shared with the device batch scheduler as
  // stream_beat_timing().  The LUT path keeps the element-by-element
  // evaluation through the generated comparator LUTs as the oracle.
  if (!config_.use_lut_path) {
    if (precomputed_hits) {
      out.hits = *precomputed_hits;
    } else if (use_tiled_scan()) {
      // Tile-fused default: stream the 2-bit packed reference directly —
      // no whole-reference plane compile before the first hit, and the
      // run's working set beyond the packed store is one scan tile.
      out.hits = TileScanner{reference}.hits(BitScanQuery{elements_},
                                             config_.threshold);
    } else {
      out.hits = bitscan_hits(BitScanQuery{elements_},
                              BitScanReference{reference},
                              config_.threshold);
    }
    const StreamBeatTiming timing =
        stream_beat_timing(config_.axi, config_.fault_injector, total_beats,
                           mapping_.channels, mapping_.segments);
    out.beats = timing.beats;
    out.stall_cycles = timing.stall_cycles;
    out.compute_cycles = timing.compute_cycles;
    finalize_timing(out, lr);
    return out;
  }

  // Reference Stream buffer: previous L_q tail + the incoming 256 elements
  // (§III-C: L_ref_stream = L_q + 256).  Front-padded with A for beat 0.
  std::vector<Nucleotide> window(lq + elements_per_beat, Nucleotide::A);

  hw::FaultyAxiStream axi{config_.axi, config_.fault_injector};
  constexpr std::size_t kFifoDepth = 8;  // AXI read FIFO, in beat groups
  const std::size_t channels = std::max<std::size_t>(1, mapping_.channels);
  const std::size_t total_groups = util::ceil_div(total_beats, channels);
  std::size_t fetched_groups = 0, fifo = 0, busy = 0;

  for (std::size_t beat = 0; beat < total_beats; ++beat) {
    // Beats arrive in lockstep groups of `channels` per cycle; the AXI
    // side refills the FIFO every cycle it can, so when the datapath is
    // segmented (busy cycles) DRAM stalls hide behind compute.  Cycle
    // accounting happens once per group; one iteration of the inner loop
    // = one cycle.
    if (beat % channels == 0) {
      for (;;) {
        if (fetched_groups < total_groups && fifo < kFifoDepth &&
            axi.advance()) {
          ++fifo;
          ++fetched_groups;
        }
        if (busy > 0) {
          --busy;
          ++out.compute_cycles;
          continue;
        }
        if (fifo == 0) {
          ++out.stall_cycles;
          continue;
        }
        break;  // a group is ready and the datapath is free: consume it
      }
      --fifo;
      busy = mapping_.segments - 1;
    }
    ++out.beats;

    // Shift the tail and load the 256 new elements from the beat words.
    std::copy(window.end() - static_cast<std::ptrdiff_t>(lq), window.end(),
              window.begin());
    const auto words = reference.beat(beat);
    for (std::size_t k = 0; k < elements_per_beat; ++k) {
      const std::uint64_t word = words[k / 32];
      const unsigned shift = 2 * static_cast<unsigned>(k % 32);
      window[lq + k] = bio::nucleotide_from_code(
          static_cast<std::uint8_t>((word >> shift) & 3));
    }

    // Alignment positions completed by this beat: p needs elements
    // [p, p+lq) and those must all have arrived (p + lq <= end) with the
    // last one arriving in *this* beat (p + lq > end - 256).
    const std::size_t window_start_abs = beat * elements_per_beat;
    const auto end = static_cast<std::ptrdiff_t>(window_start_abs +
                                                 elements_per_beat);
    const auto slq = static_cast<std::ptrdiff_t>(lq);
    const std::ptrdiff_t first_abs = std::max<std::ptrdiff_t>(
        0, end - static_cast<std::ptrdiff_t>(elements_per_beat) - slq + 1);
    const std::ptrdiff_t last_abs = std::min<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(last_position), end - slq);

    if (first_abs <= last_abs) {
      for (std::size_t p = static_cast<std::size_t>(first_abs);
           p <= static_cast<std::size_t>(last_abs); ++p) {
        // Window index of absolute element a: a - (window_start_abs - lq).
        const std::size_t base = p + lq - window_start_abs;
        std::uint32_t score = 0;
        for (std::size_t i = 0; i < lq; ++i) {
          const Nucleotide r = window[base + i];
          const Nucleotide im1 =
              base + i >= 1 ? window[base + i - 1] : Nucleotide::A;
          const Nucleotide im2 =
              base + i >= 2 ? window[base + i - 2] : Nucleotide::A;
          if (comparator_eval(query_[i], r, im1, im2)) ++score;
        }
        if (score >= config_.threshold) out.hits.push_back(Hit{p, score});
      }
    }

  }
  out.compute_cycles += busy;  // drain the last beat's segment cycles

  finalize_timing(out, lr);
  return out;
}

AcceleratorRun Accelerator::estimate(std::size_t reference_elements,
                                     double expected_hit_density) const {
  if (query_.empty())
    throw std::logic_error{"Accelerator: no query loaded"};
  AcceleratorRun out;
  out.mapping = mapping_;
  out.beats = util::ceil_div(reference_elements, bio::kElementsPerBeat);
  // Steady state of the FIFO-overlapped pipeline: beats arrive in groups
  // of `channels` per cycle; cycles per group = max(1/efficiency,
  // segments); stalls only surface when the AXI side is slower than the
  // segmented datapath.
  const std::size_t groups =
      util::ceil_div(out.beats, std::max<std::size_t>(1, mapping_.channels));
  const double axi_eff = mapping_.axi_efficiency;
  const double segs = static_cast<double>(mapping_.segments);
  const double per_group = std::max(1.0 / axi_eff, segs);
  out.compute_cycles = groups * (mapping_.segments - 1);
  out.stall_cycles = static_cast<std::size_t>(std::llround(
      static_cast<double>(groups) * (per_group - segs)));
  const double hits = expected_hit_density *
                      static_cast<double>(reference_elements);
  out.hits.clear();
  out.wb_cycles = static_cast<std::size_t>(std::llround(
      hits * static_cast<double>(config_.wb_bytes_per_hit) / 64.0));
  out.cycles = groups + out.stall_cycles + out.compute_cycles +
               out.wb_cycles + config_.pipeline_depth;
  const double freq = config_.device.clock_hz;
  out.kernel_seconds = static_cast<double>(out.cycles) / freq;
  out.effective_bandwidth_bps =
      (static_cast<double>(reference_elements) / 4.0) / out.kernel_seconds;
  const hw::FpgaPowerModel power{config_.power};
  out.watts = power.watts(config_.device, mapping_.used, mapping_.channels);
  out.joules = out.watts * out.kernel_seconds;
  return out;
}

void Accelerator::finalize_timing(AcceleratorRun& out,
                                  std::size_t reference_elements) const {
  out.wb_cycles = util::ceil_div(
      out.hits.size() * config_.wb_bytes_per_hit, 64);
  const std::size_t groups =
      util::ceil_div(out.beats, std::max<std::size_t>(1, mapping_.channels));
  out.cycles = groups + out.stall_cycles + out.compute_cycles +
               out.wb_cycles + config_.pipeline_depth;
  out.kernel_seconds =
      static_cast<double>(out.cycles) / config_.device.clock_hz;
  out.effective_bandwidth_bps =
      out.kernel_seconds == 0.0
          ? 0.0
          : (static_cast<double>(reference_elements) / 4.0) /
                out.kernel_seconds;
  const hw::FpgaPowerModel power{config_.power};
  out.watts = power.watts(config_.device, mapping_.used, mapping_.channels);
  out.joules = out.watts * out.kernel_seconds;
}

}  // namespace fabp::core
