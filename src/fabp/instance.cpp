#include "fabp/core/instance.hpp"

#include <stdexcept>

#include "fabp/core/comparator.hpp"
#include "fabp/util/bitops.hpp"

namespace fabp::core {

InstancePorts build_alignment_instance(hw::Netlist& netlist,
                                       const InstanceConfig& config) {
  if (config.elements == 0)
    throw std::invalid_argument{"alignment instance: zero elements"};

  if (config.fixed_query && config.fixed_query->size() != config.elements)
    throw std::invalid_argument{
        "alignment instance: fixed query length mismatch"};

  InstancePorts ports;
  ports.query.resize(config.elements);
  ports.ref.resize(config.elements + 2);

  for (std::size_t i = 0; i < config.elements; ++i) {
    for (unsigned b = 0; b < 6; ++b) {
      ports.query[i][b] =
          config.fixed_query
              ? netlist.add_const((*config.fixed_query)[i].bit(b))
              : netlist.add_input();
    }
  }
  for (auto& r : ports.ref)
    for (auto& bit : r) bit = netlist.add_input();

  // Comparator column: element i aligns ref[i+2]; its history elements are
  // ref[i+1] (i-1) and ref[i] (i-2).
  for (std::size_t i = 0; i < config.elements; ++i) {
    const auto& q = ports.query[i];
    const auto& r = ports.ref[i + 2];
    const auto& r1 = ports.ref[i + 1];
    const auto& r2 = ports.ref[i];
    ports.matches.push_back(build_comparator_on(
        netlist, q, r[0], r[1], /*ref_im1_msb=*/r1[1],
        /*ref_im2_msb=*/r2[1], /*ref_im2_lsb=*/r2[0]));
  }

  // Optional pipeline register after the comparator stage.
  std::vector<hw::NetId> staged = ports.matches;
  if (config.pipelined)
    for (auto& net : staged) net = netlist.add_ff(net);

  if (!config.pipelined) {
    ports.score = hw::build_popcounter_handcrafted(netlist, staged);
  } else {
    // Pipelined Pop-Counter (§III-C/III-D): Pop36 blocks, a register
    // stage on their 6-bit outputs, then the reduction tree and the score
    // register.  Three-stage latency, each stage short enough for the
    // 200 MHz kernel clock.
    std::vector<hw::Bus> blocks;
    const std::span<const hw::NetId> staged_span{staged};
    for (std::size_t pos = 0; pos < staged.size(); pos += 36) {
      const std::size_t len =
          staged.size() - pos < 36 ? staged.size() - pos : 36;
      hw::Bus block =
          hw::build_pop36(netlist, staged_span.subspan(pos, len));
      for (auto& net : block) net = netlist.add_ff(net);
      blocks.push_back(std::move(block));
    }
    while (blocks.size() > 1) {
      std::vector<hw::Bus> next;
      for (std::size_t i = 0; i + 1 < blocks.size(); i += 2)
        next.push_back(hw::add_buses(netlist, blocks[i], blocks[i + 1]));
      if (blocks.size() % 2 != 0) next.push_back(std::move(blocks.back()));
      blocks = std::move(next);
    }
    ports.score = std::move(blocks.front());
    for (auto& net : ports.score) net = netlist.add_ff(net);
  }

  // Threshold compare: hit = score >= T via carry-out of
  // score + (2^n - T); the paper maps this compare onto a DSP slice.
  const std::size_t n = ports.score.size();
  const std::uint64_t max_score = std::uint64_t{1} << n;
  if (config.threshold >= max_score) {
    // Unreachable threshold: hit is constant false.
    ports.hit = netlist.add_const(false);
    return ports;
  }
  const std::uint64_t constant = max_score - config.threshold;
  hw::Bus const_bus;
  for (std::size_t b = 0; b < n; ++b)
    const_bus.push_back(netlist.add_const(((constant >> b) & 1) != 0));
  // threshold == 0 makes constant == 2^n whose bit n we dropped; the hit
  // is then constant true.
  if (config.threshold == 0) {
    ports.hit = netlist.add_const(true);
    return ports;
  }
  const hw::Bus sum = hw::add_buses(netlist, const_bus, ports.score);
  ports.hit = sum[n];  // carry out <=> score >= threshold
  return ports;
}

std::uint32_t simulate_instance(hw::Netlist& netlist,
                                const InstancePorts& ports,
                                const InstanceConfig& config,
                                const EncodedQuery& query,
                                std::span<const bio::Nucleotide> window) {
  if (query.size() != config.elements ||
      window.size() != config.elements + 2)
    throw std::invalid_argument{"simulate_instance: size mismatch"};

  for (std::size_t i = 0; i < query.size(); ++i)
    for (unsigned b = 0; b < 6; ++b)
      netlist.set_input(ports.query[i][b], query[i].bit(b));
  for (std::size_t i = 0; i < window.size(); ++i) {
    const std::uint8_t code = bio::code(window[i]);
    netlist.set_input(ports.ref[i][0], (code & 1) != 0);
    netlist.set_input(ports.ref[i][1], (code & 2) != 0);
  }
  netlist.settle();
  if (config.pipelined) {
    netlist.clock();  // match bits into stage 1
    netlist.clock();  // Pop36 block counts into stage 2
    netlist.clock();  // reduced score into stage 3
  }
  return static_cast<std::uint32_t>(
      hw::read_bus(netlist, ports.score));
}

hw::VerilogModule emit_instance_module(const InstanceConfig& config) {
  hw::Netlist nl;
  const InstancePorts ports = build_alignment_instance(nl, config);
  std::vector<hw::VerilogPort> inputs;
  for (std::size_t i = 0; i < ports.query.size(); ++i)
    for (unsigned b = 0; b < 6; ++b)
      inputs.push_back(hw::VerilogPort{
          "q" + std::to_string(i) + "_" + std::to_string(b),
          ports.query[i][b]});
  for (std::size_t i = 0; i < ports.ref.size(); ++i)
    for (unsigned b = 0; b < 2; ++b)
      inputs.push_back(hw::VerilogPort{
          "r" + std::to_string(i) + "_" + std::to_string(b),
          ports.ref[i][b]});
  std::vector<hw::VerilogPort> outputs;
  for (std::size_t b = 0; b < ports.score.size(); ++b)
    outputs.push_back(
        hw::VerilogPort{"score" + std::to_string(b), ports.score[b]});
  outputs.push_back(hw::VerilogPort{"hit", ports.hit});
  return hw::emit_verilog(nl, "fabp_instance", inputs, outputs);
}

}  // namespace fabp::core
