#include "fabp/core/report.hpp"

#include <algorithm>
#include <sstream>

#include "fabp/bio/translation.hpp"

namespace fabp::core {

std::vector<AnnotatedHit> annotate_hits(const std::vector<Hit>& hits,
                                        const bio::ReferenceDatabase& db,
                                        const bio::ProteinSequence& query,
                                        const AnnotateOptions& options) {
  std::vector<AnnotatedHit> out;
  const std::size_t elements = query.size() * 3;
  if (elements == 0) return out;

  const int self_score = [&] {
    const auto& m = align::SubstitutionMatrix::blosum62();
    int s = 0;
    for (bio::AminoAcid aa : query) s += m.score(aa, aa);
    return s;
  }();

  for (const Hit& hit : hits) {
    if (!db.window_within_record(hit.position, elements)) continue;
    const auto loc = db.locate(hit.position);

    AnnotatedHit annotated;
    annotated.raw = hit;
    annotated.record = loc->record;
    annotated.record_offset = loc->offset;
    annotated.identity =
        static_cast<double>(hit.score) / static_cast<double>(elements);

    // In-frame translation of the matched window (the back-translated
    // query aligns codon-for-codon by construction).
    bio::NucleotideSequence window{bio::SeqKind::Rna};
    for (std::size_t i = 0; i < elements; ++i)
      window.push_back(db.packed().get(hit.position + i));
    annotated.peptide = bio::translate(window);

    if (options.confirm_with_sw) {
      annotated.blosum_score = align::smith_waterman_score(
          query, annotated.peptide, align::SubstitutionMatrix::blosum62());
      annotated.confirmed = true;
      if (options.min_sw_fraction > 0.0 &&
          annotated.blosum_score <
              options.min_sw_fraction * static_cast<double>(self_score))
        continue;
    }
    out.push_back(std::move(annotated));
  }

  // Deduplicate near-identical offsets: keep the best-scoring hit within
  // each dedup window on the same record.
  if (options.dedup_window > 0 && !out.empty()) {
    std::sort(out.begin(), out.end(),
              [](const AnnotatedHit& a, const AnnotatedHit& b) {
                return std::tie(a.record, a.record_offset) <
                       std::tie(b.record, b.record_offset);
              });
    std::vector<AnnotatedHit> deduped;
    for (AnnotatedHit& hit : out) {
      if (!deduped.empty() && deduped.back().record == hit.record &&
          hit.record_offset - deduped.back().record_offset <
              options.dedup_window) {
        if (hit.raw.score > deduped.back().raw.score)
          deduped.back() = std::move(hit);
        continue;
      }
      deduped.push_back(std::move(hit));
    }
    out = std::move(deduped);
  }

  std::sort(out.begin(), out.end(),
            [](const AnnotatedHit& a, const AnnotatedHit& b) {
              if (a.identity != b.identity) return a.identity > b.identity;
              return std::tie(a.record, a.record_offset) <
                     std::tie(b.record, b.record_offset);
            });
  return out;
}

std::string to_string(const AnnotatedHit& hit,
                      const bio::ReferenceDatabase& db) {
  std::ostringstream os;
  os << "rec=" << db.name(hit.record) << " off=" << hit.record_offset
     << " id=" << static_cast<int>(hit.identity * 1000) / 10.0 << "%";
  if (hit.confirmed) os << " sw=" << hit.blosum_score;
  return os.str();
}

}  // namespace fabp::core
