#include "fabp/core/maskonly.hpp"

namespace fabp::core {

std::uint8_t position_mask(bio::AminoAcid aa, std::size_t position) noexcept {
  std::uint8_t mask = 0;
  for (const bio::Codon& c : bio::codons_for(aa))
    mask |= static_cast<std::uint8_t>(1u << bio::code(c[position]));
  return mask;
}

MaskQuery mask_encode(const bio::ProteinSequence& protein) {
  MaskQuery query;
  query.reserve(protein.size() * 3);
  for (bio::AminoAcid aa : protein)
    for (std::size_t p = 0; p < 3; ++p)
      query.push_back(position_mask(aa, p));
  return query;
}

std::uint32_t mask_score_at(const MaskQuery& query,
                            const bio::NucleotideSequence& ref,
                            std::size_t position) {
  std::uint32_t score = 0;
  for (std::size_t i = 0; i < query.size(); ++i)
    if (query[i] & (1u << bio::code(ref[position + i]))) ++score;
  return score;
}

std::vector<Hit> mask_hits(const MaskQuery& query,
                           const bio::NucleotideSequence& ref,
                           std::uint32_t threshold) {
  std::vector<Hit> hits;
  if (query.empty() || ref.size() < query.size()) return hits;
  for (std::size_t p = 0; p + query.size() <= ref.size(); ++p) {
    const std::uint32_t score = mask_score_at(query, ref, p);
    if (score >= threshold) hits.push_back(Hit{p, score});
  }
  return hits;
}

std::size_t mask_accepted_codons(bio::AminoAcid aa) {
  std::size_t accepted = 0;
  for (std::uint8_t i = 0; i < bio::kCodonCount; ++i) {
    const bio::Codon c = bio::Codon::from_dense_index(i);
    bool all = true;
    for (std::size_t p = 0; p < 3; ++p)
      if ((position_mask(aa, p) & (1u << bio::code(c[p]))) == 0) all = false;
    if (all) ++accepted;
  }
  return accepted;
}

std::size_t template_accepted_codons(bio::AminoAcid aa) {
  std::size_t accepted = 0;
  for (std::uint8_t i = 0; i < bio::kCodonCount; ++i)
    if (template_accepts(aa, bio::Codon::from_dense_index(i))) ++accepted;
  return accepted;
}

}  // namespace fabp::core
