// AVX-512 VPOPCNTDQ scan kernel: the carry-save scorer at 512 lanes.
//
// Same vector substrate as the AVX-512F kernel, but the per-element
// ripple-add is replaced by score_block_csa's compressor step — a single
// VPTERNLOGQ full adder (imm 0x96 = XOR3 for the sum, 0xE8 = MAJ for the
// carry) folds two query elements and counter bit 0 at once, the software
// shape of FabP's hardware popcount/adder tree — and VPOPCNTDQ powers the
// lane census behind the feasibility early exit (abandon a 512-position
// block as soon as no lane can still reach the threshold; a real win at
// the high thresholds tblastn-style scans run at).
//
// Compiled with -mavx512f -mavx512vpopcntdq (see src/fabp/CMakeLists.txt);
// same TU-isolation rules as the other wide kernels — reached only through
// the runtime dispatcher after util::cpu_has_avx512vpopcntdq() proves CPU
// + OS support.

#include "bitscan_kernel_impl.hpp"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace fabp::core::detail {

namespace {

struct Avx512VpopcntTraits {
  using Vec = __m512i;
  static constexpr unsigned kWords = 8;
  static Vec zero() noexcept { return _mm512_setzero_si512(); }
  static Vec broadcast(std::uint64_t x) noexcept {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }
  static Vec load_bits(const std::uint64_t* plane, std::size_t w,
                       unsigned s) noexcept {
    // lane k = (plane[w+k] >> s) | (plane[w+k+1] << (64-s)); shift counts
    // >= 64 yield 0, so s == 0 needs no branch.
    const Vec lo = _mm512_loadu_si512(plane + w);
    const Vec hi = _mm512_loadu_si512(plane + w + 1);
    return _mm512_or_si512(
        _mm512_srli_epi64(lo, static_cast<unsigned>(s)),
        _mm512_slli_epi64(hi, static_cast<unsigned>(64 - s)));
  }
  static Vec and_(Vec a, Vec b) noexcept { return _mm512_and_si512(a, b); }
  static Vec or_(Vec a, Vec b) noexcept { return _mm512_or_si512(a, b); }
  static Vec xor_(Vec a, Vec b) noexcept { return _mm512_xor_si512(a, b); }
  static Vec andnot(Vec a, Vec b) noexcept {
    return _mm512_andnot_si512(a, b);  // (~a) & b
  }
  static Vec not_(Vec a) noexcept {
    return _mm512_ternarylogic_epi64(a, a, a, 0x55);  // ~a
  }
  static bool any(Vec a) noexcept {
    return _mm512_test_epi64_mask(a, a) != 0;
  }
  static void store(std::uint64_t* dst, Vec v) noexcept {
    _mm512_storeu_si512(dst, v);
  }
  static void csa(Vec& high, Vec& low, Vec a, Vec b, Vec c) noexcept {
    // One VPTERNLOGQ each: 0x96 = a^b^c, 0xE8 = majority(a, b, c).
    low = _mm512_ternarylogic_epi64(a, b, c, 0x96);
    high = _mm512_ternarylogic_epi64(a, b, c, 0xE8);
  }
  static unsigned popcount_total(Vec v) noexcept {
    return static_cast<unsigned>(
        _mm512_reduce_add_epi64(_mm512_popcnt_epi64(v)));
  }
};

void avx512vpopcnt_range(const BitScanQuery& query,
                         const PlaneView& reference, std::uint32_t threshold,
                         std::size_t begin, std::size_t end,
                         std::vector<Hit>& out) {
  scan_range_t<Avx512VpopcntTraits, true>(query, reference, threshold, begin,
                                          end, out);
}

void avx512vpopcnt_batch(const BitScanQuery* queries,
                         const std::uint32_t* thresholds, std::size_t count,
                         const PlaneView& reference, std::size_t begin,
                         std::size_t end, std::vector<Hit>* outs) {
  scan_batch_t<Avx512VpopcntTraits, true>(queries, thresholds, count,
                                          reference, begin, end, outs);
}

}  // namespace

const ScanKernel* avx512vpopcnt_kernel() noexcept {
  static constexpr ScanKernel kernel{ScanIsa::Avx512Vpopcnt, "avx512vpopcnt",
                                     512, &avx512vpopcnt_range,
                                     &avx512vpopcnt_batch};
  return &kernel;
}

}  // namespace fabp::core::detail

#else  // compiler or target cannot emit VPOPCNTDQ: register nothing.

namespace fabp::core::detail {

const ScanKernel* avx512vpopcnt_kernel() noexcept { return nullptr; }

}  // namespace fabp::core::detail

#endif
