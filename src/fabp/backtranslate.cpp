#include "fabp/core/backtranslate.hpp"

#include <stdexcept>
#include <string>

namespace fabp::core {

using bio::AminoAcid;
using bio::Nucleotide;

bool BackElement::matches(Nucleotide ref, Nucleotide ref_im1,
                          Nucleotide ref_im2) const noexcept {
  switch (type) {
    case ElementType::ExactI:
      return ref == exact;
    case ElementType::ConditionalII:
      switch (cond) {
        // With the paper's 2-bit codes (A=00,C=01,G=10,U=11) the pyrimidine
        // set {C,U} is exactly "LSB set" and the purine set {A,G} "LSB
        // clear"; {A,C} is "MSB clear".
        case Condition::UorC: return (bio::code(ref) & 0b01) != 0;
        case Condition::AorG: return (bio::code(ref) & 0b01) == 0;
        case Condition::NotG: return ref != Nucleotide::G;
        case Condition::AorC: return (bio::code(ref) & 0b10) == 0;
      }
      return false;
    case ElementType::DependentIII: {
      const bool im1_msb = (bio::code(ref_im1) & 0b10) != 0;
      const bool im2_msb = (bio::code(ref_im2) & 0b10) != 0;
      const bool im2_lsb = (bio::code(ref_im2) & 0b01) != 0;
      switch (func) {
        case Function::Stop3:
          // ref[i-1] == A (MSB 0): third may be A or G; == G (MSB 1): A only.
          return im1_msb ? ref == Nucleotide::A
                         : (bio::code(ref) & 0b01) == 0;
        case Function::Leu3:
          // ref[i-2] == C (MSB 0): any; == U (MSB 1): A or G.
          return im2_msb ? (bio::code(ref) & 0b01) == 0 : true;
        case Function::Arg3:
          // ref[i-2] == A (LSB 0): A or G; == C (LSB 1): any.
          return im2_lsb ? true : (bio::code(ref) & 0b01) == 0;
        case Function::AnyD:
          return true;
      }
      return false;
    }
  }
  return false;
}

namespace {

constexpr Nucleotide A = Nucleotide::A;
constexpr Nucleotide C = Nucleotide::C;
constexpr Nucleotide G = Nucleotide::G;
constexpr Nucleotide U = Nucleotide::U;

CodonTemplate exact3(Nucleotide a, Nucleotide b, Nucleotide c) {
  return CodonTemplate{{BackElement::make_exact(a),
                        BackElement::make_exact(b),
                        BackElement::make_exact(c)}};
}

CodonTemplate exact2_cond(Nucleotide a, Nucleotide b, Condition c) {
  return CodonTemplate{{BackElement::make_exact(a),
                        BackElement::make_exact(b),
                        BackElement::make_conditional(c)}};
}

CodonTemplate exact2_any(Nucleotide a, Nucleotide b) {
  return CodonTemplate{{BackElement::make_exact(a),
                        BackElement::make_exact(b),
                        BackElement::make_dependent(Function::AnyD)}};
}

struct TemplateTable {
  std::array<CodonTemplate, bio::kAminoAcidCount> table;

  TemplateTable() {
    auto set = [&](AminoAcid aa, CodonTemplate t) {
      table[bio::index(aa)] = t;
    };
    // Four-codon boxes: XY + D.
    set(AminoAcid::Ala, exact2_any(G, C));
    set(AminoAcid::Gly, exact2_any(G, G));
    set(AminoAcid::Pro, exact2_any(C, C));
    set(AminoAcid::Thr, exact2_any(A, C));
    set(AminoAcid::Val, exact2_any(G, U));
    set(AminoAcid::Ser, exact2_any(U, C));  // UCD only; AGY dropped (paper)
    // Two-codon boxes: XY + U/C or A/G.
    set(AminoAcid::Phe, exact2_cond(U, U, Condition::UorC));
    set(AminoAcid::Tyr, exact2_cond(U, A, Condition::UorC));
    set(AminoAcid::Cys, exact2_cond(U, G, Condition::UorC));
    set(AminoAcid::His, exact2_cond(C, A, Condition::UorC));
    set(AminoAcid::Asn, exact2_cond(A, A, Condition::UorC));
    set(AminoAcid::Asp, exact2_cond(G, A, Condition::UorC));
    set(AminoAcid::Gln, exact2_cond(C, A, Condition::AorG));
    set(AminoAcid::Lys, exact2_cond(A, A, Condition::AorG));
    set(AminoAcid::Glu, exact2_cond(G, A, Condition::AorG));
    // Ile: AU + anything-but-G.
    set(AminoAcid::Ile, exact2_cond(A, U, Condition::NotG));
    // Met / Trp: unique codons.
    set(AminoAcid::Met, exact3(A, U, G));
    set(AminoAcid::Trp, exact3(U, G, G));
    // Leu: (U/C) U (F:01)  — covers CUN plus UUR.
    set(AminoAcid::Leu,
        CodonTemplate{{BackElement::make_conditional(Condition::UorC),
                       BackElement::make_exact(U),
                       BackElement::make_dependent(Function::Leu3)}});
    // Arg: (A/C) G (F:10)  — covers CGN plus AGR.
    set(AminoAcid::Arg,
        CodonTemplate{{BackElement::make_conditional(Condition::AorC),
                       BackElement::make_exact(G),
                       BackElement::make_dependent(Function::Arg3)}});
    // Stop: U (A/G) (F:00)  — covers UAA/UAG/UGA.
    set(AminoAcid::Stop,
        CodonTemplate{{BackElement::make_exact(U),
                       BackElement::make_conditional(Condition::AorG),
                       BackElement::make_dependent(Function::Stop3)}});
  }
};

const TemplateTable& templates() {
  static const TemplateTable instance;
  return instance;
}

}  // namespace

const CodonTemplate& codon_template(AminoAcid aa) noexcept {
  return templates().table[bio::index(aa)];
}

bool template_accepts(AminoAcid aa, const bio::Codon& codon) noexcept {
  const CodonTemplate& t = codon_template(aa);
  // Element i aligns with codon base i; dependencies look back within the
  // same codon (Type III only occurs at position 2).
  for (std::size_t i = 0; i < 3; ++i) {
    const Nucleotide im1 = i >= 1 ? codon[i - 1] : Nucleotide::A;
    const Nucleotide im2 = i >= 2 ? codon[i - 2] : Nucleotide::A;
    if (!t[i].matches(codon[i], im1, im2)) return false;
  }
  return true;
}

std::vector<BackElement> back_translate(const bio::ProteinSequence& protein) {
  std::vector<BackElement> elements;
  elements.reserve(protein.size() * 3);
  for (AminoAcid aa : protein) {
    const CodonTemplate& t = codon_template(aa);
    elements.push_back(t[0]);
    elements.push_back(t[1]);
    elements.push_back(t[2]);
  }
  return elements;
}

bio::NucleotideSequence random_template_coding(
    const bio::ProteinSequence& protein, util::Xoshiro256& rng) {
  bio::NucleotideSequence rna{bio::SeqKind::Rna};
  rna.bases().reserve(protein.size() * 3);
  for (AminoAcid aa : protein) {
    std::vector<bio::Codon> accepted;
    for (const bio::Codon& c : bio::codons_for(aa))
      if (template_accepts(aa, c)) accepted.push_back(c);
    const bio::Codon codon = accepted[rng.bounded(accepted.size())];
    rna.push_back(codon.first);
    rna.push_back(codon.second);
    rna.push_back(codon.third);
  }
  return rna;
}

std::string to_string(const BackElement& element) {
  switch (element.type) {
    case ElementType::ExactI:
      return std::string(1, bio::to_char_rna(element.exact));
    case ElementType::ConditionalII:
      switch (element.cond) {
        case Condition::UorC: return "U/C";
        case Condition::AorG: return "A/G";
        case Condition::NotG: return "G-bar";
        case Condition::AorC: return "A/C";
      }
      return "?";
    case ElementType::DependentIII:
      switch (element.func) {
        case Function::Stop3: return "F:00";
        case Function::Leu3: return "F:01";
        case Function::Arg3: return "F:10";
        case Function::AnyD: return "D";
      }
      return "?";
  }
  return "?";
}

}  // namespace fabp::core
