#include "fabp/core/host.hpp"

#include <algorithm>
#include <stdexcept>

#include "fabp/core/querypack.hpp"

namespace fabp::core {

Session::Session(HostConfig config) : config_{std::move(config)} {}

void Session::upload_reference(const bio::NucleotideSequence& reference) {
  upload_reference(bio::PackedNucleotides{reference});
}

void Session::upload_reference(bio::PackedNucleotides reference) {
  reference_ = std::move(reference);
  reference_uploaded_ = true;
  // Drop the compiled bit-planes of the previous reference: a scan after
  // re-upload must never read stale planes (regression-tested in
  // tests/core/host_test.cpp).
  bitscan_ready_ = false;
  bitscan_reverse_ready_ = false;
  reverse_ = bio::PackedNucleotides{};
  if (config_.search_both_strands) {
    // Host-side preparation: the reverse-complement copy the card streams
    // for the second pass.
    bio::NucleotideSequence rc =
        reference_.unpack(bio::SeqKind::Dna).reverse_complement();
    reverse_ = bio::PackedNucleotides{rc};
  }
}

HostRunReport Session::align(const bio::ProteinSequence& query,
                             std::uint32_t threshold) {
  return align_impl(query, threshold, nullptr, nullptr);
}

HostRunReport Session::align_impl(const bio::ProteinSequence& query,
                                  std::uint32_t threshold,
                                  const std::vector<Hit>* forward_hits,
                                  const std::vector<Hit>* reverse_hits_in) {
  if (!reference_uploaded_)
    throw std::logic_error{"Session: no reference uploaded"};

  AcceleratorConfig acc_config = config_.accelerator;
  acc_config.threshold = threshold;
  Accelerator accelerator{acc_config};
  accelerator.load_query(query);
  AcceleratorRun run = accelerator.run(reference_, forward_hits);

  std::vector<Hit> reverse_hits;
  if (config_.search_both_strands) {
    AcceleratorRun rc_run = accelerator.run(reverse_, reverse_hits_in);
    // Map RC positions back to forward coordinates of the window start.
    const std::size_t lr = reference_.size();
    const std::size_t lq = accelerator.encoded_query().size();
    for (const Hit& hit : rc_run.hits)
      reverse_hits.push_back(Hit{lr - hit.position - lq, hit.score});
    std::sort(reverse_hits.begin(), reverse_hits.end());
    // Account the second pass in the kernel time.
    run.cycles += rc_run.cycles;
    run.kernel_seconds += rc_run.kernel_seconds;
    run.joules += rc_run.joules;
  }

  HostRunReport report =
      finish(query, std::move(run), reference_.byte_size());
  report.reverse_hits = std::move(reverse_hits);
  return report;
}

HostRunReport Session::estimate(const bio::ProteinSequence& query,
                                std::uint32_t threshold,
                                std::size_t bytes) const {
  AcceleratorConfig acc_config = config_.accelerator;
  acc_config.threshold = threshold;
  Accelerator accelerator{acc_config};
  accelerator.load_query(query);
  AcceleratorRun run = accelerator.estimate(bytes * 4 /* elements */);
  return finish(query, std::move(run), bytes);
}

Session::BatchReport Session::align_batch(
    std::span<const bio::ProteinSequence> queries,
    double threshold_fraction, util::ThreadPool* pool) {
  BatchReport batch;
  batch.per_query.reserve(queries.size());
  if (queries.empty()) return batch;
  if (!reference_uploaded_)
    throw std::logic_error{"Session: no reference uploaded"};

  std::vector<std::uint32_t> thresholds;
  thresholds.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries)
    thresholds.push_back(static_cast<std::uint32_t>(
        threshold_fraction * static_cast<double>(query.size() * 3)));

  // One multi-query pass over the reference produces every hit list up
  // front — on the default tiled path each freshly compiled tile is
  // scored against the whole batch while hot in cache; the Planes escape
  // hatch streams the cached whole-reference plane words instead.  The
  // per-query runs below then reduce to cycle/energy accounting.  The
  // queries are compiled from their *encoded* form so the hits match what
  // Accelerator::run would compute bit for bit.  The LUT oracle path
  // keeps its own evaluation.
  std::vector<std::vector<Hit>> forward, reverse;
  const bool precompute = !config_.accelerator.use_lut_path;
  if (precompute) {
    std::vector<BitScanQuery> compiled;
    compiled.reserve(queries.size());
    for (const bio::ProteinSequence& query : queries)
      compiled.emplace_back(encode_query(query));
    if (tiled()) {
      forward = TileScanner{reference_, config_.tile}.hits_batch(
          compiled, thresholds, pool);
      if (config_.search_both_strands)
        reverse = TileScanner{reverse_, config_.tile}.hits_batch(
            compiled, thresholds, pool);
    } else {
      ensure_planes(config_.search_both_strands, pool);
      forward = bitscan_hits_batch(compiled, forward_planes(), thresholds,
                                   pool);
      if (config_.search_both_strands)
        reverse = bitscan_hits_batch(compiled, reverse_planes(), thresholds,
                                     pool);
    }
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    HostRunReport report = align_impl(
        queries[i], thresholds[i], precompute ? &forward[i] : nullptr,
        precompute && config_.search_both_strands ? &reverse[i] : nullptr);
    batch.total_s += report.total_s;
    batch.total_joules += report.joules;
    batch.total_hits += report.hits.size();
    batch.per_query.push_back(std::move(report));
  }
  batch.queries_per_second =
      batch.total_s > 0.0
          ? static_cast<double>(queries.size()) / batch.total_s
          : 0.0;
  return batch;
}

std::vector<Hit> Session::software_hits(const bio::ProteinSequence& query,
                                        std::uint32_t threshold,
                                        util::ThreadPool* pool) {
  if (!reference_uploaded_)
    throw std::logic_error{"Session: no reference uploaded"};
  const BitScanQuery compiled{back_translate(query)};
  if (tiled())
    return TileScanner{reference_, config_.tile}.hits(compiled, threshold,
                                                      pool);
  const BitScanReference& planes = forward_planes();
  return pool ? bitscan_hits_parallel(compiled, planes, threshold, *pool)
              : bitscan_hits(compiled, planes, threshold);
}

std::vector<std::vector<Hit>> Session::software_hits_batch(
    std::span<const bio::ProteinSequence> queries,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) {
  if (!reference_uploaded_)
    throw std::logic_error{"Session: no reference uploaded"};
  std::vector<BitScanQuery> compiled;
  compiled.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries)
    compiled.emplace_back(back_translate(query));
  if (tiled())
    return TileScanner{reference_, config_.tile}.hits_batch(
        compiled, thresholds, pool);
  return bitscan_hits_batch(compiled, forward_planes(), thresholds, pool);
}

void Session::ensure_planes(bool both_strands, util::ThreadPool* pool) {
  // Overlap the strand compiles: the reverse planes build on a pool
  // worker while the caller builds the forward planes — with both strands
  // the compile wall-time halves (it vanishes entirely on the tiled path,
  // which never calls this).
  std::future<void> reverse_done;
  if (both_strands && !bitscan_reverse_ready_ && pool)
    reverse_done = pool->submit(
        [this] { bitscan_reverse_ = BitScanReference{reverse_}; });
  forward_planes();
  if (reverse_done.valid()) {
    reverse_done.get();
    bitscan_reverse_ready_ = true;
  } else if (both_strands) {
    reverse_planes();
  }
}

const BitScanReference& Session::forward_planes() {
  if (!bitscan_ready_) {
    bitscan_reference_ = BitScanReference{reference_};
    bitscan_ready_ = true;
  }
  return bitscan_reference_;
}

const BitScanReference& Session::reverse_planes() {
  if (!bitscan_reverse_ready_) {
    bitscan_reverse_ = BitScanReference{reverse_};
    bitscan_reverse_ready_ = true;
  }
  return bitscan_reverse_;
}

HostRunReport Session::finish(const bio::ProteinSequence& query,
                              AcceleratorRun run,
                              std::size_t reference_bytes) const {
  HostRunReport report;
  report.mapping = run.mapping;
  report.hits = std::move(run.hits);

  const double pcie = config_.pcie_bandwidth_bps;
  const double ref_bytes = static_cast<double>(reference_bytes);
  report.reference_transfer_s =
      config_.reference_resident ? 0.0 : ref_bytes / pcie;

  // Encoded query as transferred: 6-bit instructions packed into words.
  const PackedQuery packed{encode_query(query)};
  const auto query_bytes = static_cast<double>(packed.byte_size());
  report.query_transfer_s = query_bytes / pcie + config_.invoke_overhead_s;

  report.kernel_s = run.kernel_seconds;

  const double result_bytes =
      static_cast<double>(report.hits.size()) * 8.0 + 64.0;
  report.readback_s = result_bytes / pcie;

  report.total_s = report.reference_transfer_s + report.query_transfer_s +
                   report.kernel_s + report.readback_s;
  report.watts = run.watts;
  report.joules = run.watts * report.total_s;
  return report;
}

}  // namespace fabp::core
