#include "fabp/core/host.hpp"

#include <stdexcept>
#include <utility>

#include "fabp/core/engine.hpp"

namespace fabp::core {

void RecoveryStats::merge(const RecoveryStats& other) noexcept {
  attempts += other.attempts;
  retries += other.retries;
  transfer_faults += other.transfer_faults;
  timeouts += other.timeouts;
  crc_faults += other.crc_faults;
  readback_faults += other.readback_faults;
  rescanned_tiles += other.rescanned_tiles;
  spot_checks += other.spot_checks;
  spot_check_faults += other.spot_check_faults;
  fallbacks += other.fallbacks;
  degraded = degraded || other.degraded;
  recovery_s += other.recovery_s;
}

// The facade: every call delegates to one Engine configured with the
// hw-sim backend, executing synchronously on the caller's thread (the
// Engine spawns workers only on its asynchronous submit() surface, which
// this facade never touches).  Uploads route through the versioned
// snapshot path — each upload publishes a fresh generation with its own
// backend set, which preserves the strand-plane-cache invalidation
// semantics (the PR-2 regression) by construction.

namespace {
EngineConfig facade_engine_config(HostConfig config) {
  EngineConfig engine;
  engine.host = std::move(config);
  return engine;
}
}  // namespace

Session::Session(HostConfig config)
    : engine_{std::make_unique<Engine>(
          facade_engine_config(std::move(config)))} {}

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

void Session::upload_reference(const bio::NucleotideSequence& reference) {
  engine_->upload_reference(reference);
}

void Session::upload_reference(bio::PackedNucleotides reference) {
  engine_->upload_reference(std::move(reference));
}

HostRunReport Session::align(const bio::ProteinSequence& query,
                             std::uint32_t threshold) {
  return try_align(query, threshold).value_or_throw();
}

Expected<HostRunReport> Session::try_align(const bio::ProteinSequence& query,
                                           std::uint32_t threshold) {
  return engine_->align_sync(query, threshold);
}

HostRunReport Session::estimate(const bio::ProteinSequence& query,
                                std::uint32_t threshold,
                                std::size_t bytes) const {
  return engine_->estimate(query, threshold, bytes);
}

Session::BatchReport Session::align_batch(
    std::span<const bio::ProteinSequence> queries, double threshold_fraction,
    util::ThreadPool* pool) {
  return try_align_batch(queries, threshold_fraction, pool).value_or_throw();
}

Expected<Session::BatchReport> Session::try_align_batch(
    std::span<const bio::ProteinSequence> queries, double threshold_fraction,
    util::ThreadPool* pool) {
  return engine_->align_batch_sync(queries, threshold_fraction, pool);
}

std::vector<Hit> Session::software_hits(const bio::ProteinSequence& query,
                                        std::uint32_t threshold,
                                        util::ThreadPool* pool) {
  if (!engine_->has_reference())
    throw std::logic_error{"Session: no reference uploaded"};
  return engine_->software_hits(query, threshold, pool);
}

std::vector<std::vector<Hit>> Session::software_hits_batch(
    std::span<const bio::ProteinSequence> queries,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) {
  if (!engine_->has_reference())
    throw std::logic_error{"Session: no reference uploaded"};
  if (thresholds.size() != queries.size())
    throw std::invalid_argument{
        "Session::software_hits_batch: thresholds.size() must equal "
        "queries.size()"};
  return engine_->software_hits_batch(queries, thresholds, pool);
}

const bio::PackedNucleotides& Session::reference() const noexcept {
  return engine_->reference();
}

const HostConfig& Session::config() const noexcept {
  return engine_->host_config();
}

bool Session::tiled() const noexcept {
  return use_tiled_scan(engine_->host_config().scan_path);
}

HealthState Session::health() const noexcept { return engine_->health(); }

const std::vector<hw::FaultEvent>& Session::fault_log() const noexcept {
  return engine_->fault_log();
}

}  // namespace fabp::core
