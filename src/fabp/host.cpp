#include "fabp/core/host.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fabp/core/querypack.hpp"
#include "fabp/util/crc32.hpp"

namespace fabp::core {

namespace {

/// Half-open position range touched by corruption / a spot-check window.
struct Interval {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<Interval> merge_intervals(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  std::vector<Interval> out;
  for (const Interval& r : v) {
    if (!out.empty() && r.begin <= out.back().end)
      out.back().end = std::max(out.back().end, r.end);
    else
      out.push_back(r);
  }
  return out;
}

/// Replaces the hits falling in each range with a fresh range scan of
/// `scanner`'s store.  Ranges must be sorted and disjoint; `hits` must be
/// position-sorted (the scan order), and stays so.
void splice_ranges(std::vector<Hit>& hits, const TileScanner& scanner,
                   const BitScanQuery& compiled, std::uint32_t threshold,
                   std::span<const Interval> ranges) {
  std::vector<Hit> result;
  result.reserve(hits.size());
  std::size_t i = 0;
  for (const Interval& r : ranges) {
    while (i < hits.size() && hits[i].position < r.begin)
      result.push_back(hits[i++]);
    while (i < hits.size() && hits[i].position < r.end) ++i;  // replaced
    scanner.range(compiled, threshold, r.begin, r.end, result);
  }
  while (i < hits.size()) result.push_back(hits[i++]);
  hits = std::move(result);
}

bool data_fault(hw::FaultKind kind) noexcept {
  return kind == hw::FaultKind::BitFlip || kind == hw::FaultKind::DropBeat ||
         kind == hw::FaultKind::DupBeat;
}

}  // namespace

void RecoveryStats::merge(const RecoveryStats& other) noexcept {
  attempts += other.attempts;
  retries += other.retries;
  transfer_faults += other.transfer_faults;
  timeouts += other.timeouts;
  crc_faults += other.crc_faults;
  readback_faults += other.readback_faults;
  rescanned_tiles += other.rescanned_tiles;
  spot_checks += other.spot_checks;
  spot_check_faults += other.spot_check_faults;
  fallbacks += other.fallbacks;
  degraded = degraded || other.degraded;
  recovery_s += other.recovery_s;
}

Session::Session(HostConfig config) : config_{std::move(config)} {}

void Session::upload_reference(const bio::NucleotideSequence& reference) {
  upload_reference(bio::PackedNucleotides{reference});
}

void Session::upload_reference(bio::PackedNucleotides reference) {
  reference_ = std::move(reference);
  reference_uploaded_ = true;
  // Drop the compiled bit-planes of the previous reference: a scan after
  // re-upload must never read stale planes (regression-tested in
  // tests/core/host_test.cpp).  Same for the upload-time tile checksums.
  bitscan_ready_ = false;
  bitscan_reverse_ready_ = false;
  ref_crcs_ready_ = false;
  rev_crcs_ready_ = false;
  reverse_ = bio::PackedNucleotides{};
  if (config_.search_both_strands) {
    // Host-side preparation: the reverse-complement copy the card streams
    // for the second pass.
    bio::NucleotideSequence rc =
        reference_.unpack(bio::SeqKind::Dna).reverse_complement();
    reverse_ = bio::PackedNucleotides{rc};
  }
}

std::size_t Session::tile_words() const noexcept {
  // Same rounding as TileScanner: whole 64-position words, minimum one.
  const std::size_t positions = std::max<std::size_t>(
      64, (config_.tile.tile_positions + 63) / 64 * 64);
  return positions / bio::kElementsPerWord;
}

const std::vector<std::uint32_t>& Session::tile_crcs(bool reverse_strand) {
  auto& crcs = reverse_strand ? rev_crcs_ : ref_crcs_;
  bool& ready = reverse_strand ? rev_crcs_ready_ : ref_crcs_ready_;
  if (!ready) {
    const std::span<const std::uint64_t> words =
        (reverse_strand ? reverse_ : reference_).words();
    const std::size_t tw = tile_words();
    crcs.clear();
    for (std::size_t wb = 0; wb < words.size(); wb += tw)
      crcs.push_back(
          util::crc32_words(words.subspan(wb, std::min(tw, words.size() - wb))));
    ready = true;
  }
  return crcs;
}

HostRunReport Session::align(const bio::ProteinSequence& query,
                             std::uint32_t threshold) {
  return try_align(query, threshold).value_or_throw();
}

Expected<HostRunReport> Session::try_align(const bio::ProteinSequence& query,
                                           std::uint32_t threshold) {
  return align_impl(query, threshold, nullptr, nullptr);
}

bool Session::faulty_strand_run(const EncodedQuery& encoded,
                                std::uint32_t threshold,
                                const bio::PackedNucleotides& store,
                                bool reverse_strand,
                                const std::vector<Hit>* precomputed,
                                RecoveryStats& stats, Error& error,
                                AcceleratorRun& out) {
  const RecoveryConfig& rec = config_.recovery;
  const std::size_t lq = encoded.size();
  const std::size_t valid_positions =
      store.size() >= lq ? store.size() - lq + 1 : 0;
  const BitScanQuery compiled{encoded};
  const std::size_t max_attempts = std::max<std::size_t>(1, rec.max_attempts);

  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats.attempts;
    // Stream index is a pure function of (invocation, attempt, strand):
    // retries draw independent schedules, replays draw identical ones.
    const std::uint64_t stream =
        (invocation_ << 8) | (attempt << 1) | (reverse_strand ? 1u : 0u);
    hw::FaultInjector injector{config_.fault, stream};

    ErrorCode failure = ErrorCode::None;
    AcceleratorRun run;
    if (injector.transfer_fails()) {
      failure = ErrorCode::TransferFailure;
      ++stats.transfer_faults;
    } else {
      AcceleratorConfig acc_config = config_.accelerator;
      acc_config.threshold = threshold;
      acc_config.fault_injector = &injector;  // stall storms inflate time
      Accelerator accelerator{acc_config};
      accelerator.load_encoded(encoded);
      run = accelerator.run(store, precomputed);
      if (rec.watchdog_s > 0.0 && run.kernel_seconds > rec.watchdog_s) {
        failure = ErrorCode::Timeout;
        ++stats.timeouts;
      }
    }

    if (failure != ErrorCode::None) {
      const auto& log = injector.log();
      fault_log_.insert(fault_log_.end(), log.begin(), log.end());
      if (attempt + 1 < max_attempts) {
        ++stats.retries;
        stats.recovery_s +=
            rec.backoff_base_s * static_cast<double>(std::uint64_t{1} << attempt);
        continue;
      }
      error = Error{failure,
                    failure == ErrorCode::Timeout
                        ? "kernel watchdog deadline exceeded on every attempt"
                        : "PCIe transfer failed on every attempt",
                    stats.attempts};
      return false;
    }

    // --- data-path corruption over the streamed reference -------------
    // The schedule says which beats were hit; corruption lands on a copy
    // of the packed store, per-tile CRCs against the upload-time
    // checksums localise it, and detected tiles are repaired by
    // re-scanning only the positions whose window can read a corrupted
    // element.  With verify_integrity off the corrupted hits are
    // delivered as-is — that is what the chaos divergence test observes.
    const std::vector<hw::FaultEvent> events =
        injector.data_events(store.beat_count());
    if (!events.empty() && valid_positions > 0) {
      const std::span<const std::uint64_t> words = store.words();
      const std::size_t tw = tile_words();
      std::vector<std::uint64_t> corrupted =
          hw::corrupt_words(words, events, tw);

      std::vector<std::size_t> tiles;
      for (const hw::FaultEvent& event : events) {
        const std::size_t w = event.beat * (hw::kAxiDataBits / 64);
        if (data_fault(event.kind) && w < words.size())
          tiles.push_back(w / tw);
      }
      std::sort(tiles.begin(), tiles.end());
      tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());

      std::vector<Interval> corrupt_ranges, repair_ranges;
      for (std::size_t t : tiles) {
        const std::size_t wb = t * tw;
        const std::size_t we = std::min(words.size(), wb + tw);
        // A fault can be a data no-op (e.g. a duplicated beat identical
        // to its successor): only tiles whose words actually changed
        // affect the scan.
        if (std::equal(words.begin() + static_cast<std::ptrdiff_t>(wb),
                       words.begin() + static_cast<std::ptrdiff_t>(we),
                       corrupted.begin() + static_cast<std::ptrdiff_t>(wb)))
          continue;
        const std::size_t el_begin = wb * bio::kElementsPerWord;
        const std::size_t el_end =
            std::min(store.size(), we * bio::kElementsPerWord);
        const Interval range{el_begin > lq - 1 ? el_begin - (lq - 1) : 0,
                             std::min(el_end, valid_positions)};
        if (range.begin >= range.end) continue;
        corrupt_ranges.push_back(range);
        if (rec.verify_integrity) {
          // Detection: the streamed tile's CRC vs the upload checksum.
          const std::uint32_t got = util::crc32_words(
              std::span{corrupted}.subspan(wb, we - wb));
          if (got != tile_crcs(reverse_strand)[t]) {
            ++stats.crc_faults;
            ++stats.rescanned_tiles;
            repair_ranges.push_back(range);
            // Re-streaming the affected fraction of the reference.
            stats.recovery_s += run.kernel_seconds *
                                static_cast<double>(range.end - range.begin) /
                                static_cast<double>(store.size());
          }
        }
      }
      corrupt_ranges = merge_intervals(std::move(corrupt_ranges));
      repair_ranges = merge_intervals(std::move(repair_ranges));

      if (!corrupt_ranges.empty()) {
        // What the card actually delivered: hits scanned from the
        // corrupted stream over every affected range.
        const bio::PackedNucleotides corrupted_store =
            bio::PackedNucleotides::from_words(std::move(corrupted),
                                               store.size());
        splice_ranges(run.hits, TileScanner{corrupted_store, config_.tile},
                      compiled, threshold, corrupt_ranges);
      }
      if (!repair_ranges.empty()) {
        // Chunk-granular repair: re-scan only the detected ranges from
        // the resident (true) store.
        splice_ranges(run.hits, TileScanner{store, config_.tile}, compiled,
                      threshold, repair_ranges);
      }
    }

    // --- readback integrity -------------------------------------------
    std::uint32_t bit = 0;
    if (injector.readback_corrupts(bit)) {
      if (rec.verify_integrity) {
        // The hit buffer's CRC fails on arrival; the DRAM copy is intact,
        // so one re-read recovers it.
        ++stats.readback_faults;
        stats.recovery_s +=
            (static_cast<double>(run.hits.size()) * 8.0 + 64.0) /
            config_.pcie_bandwidth_bps;
      } else if (!run.hits.empty()) {
        Hit& victim = run.hits[bit % run.hits.size()];
        victim.score ^= 1u << (bit % 8);
      } else {
        run.hits.push_back(Hit{0, threshold});  // spurious record
      }
    }

    // --- golden spot-check sampler ------------------------------------
    if (rec.spot_check_samples > 0 && valid_positions > 0) {
      util::Xoshiro256 rng{
          util::SplitMix64{config_.fault.seed ^ (0xfabc0de5ULL + stream)}
              .next()};
      const TileScanner scanner{store, config_.tile};
      for (std::size_t k = 0; k < rec.spot_check_samples; ++k) {
        ++stats.spot_checks;
        const std::size_t begin = rng.bounded(valid_positions);
        const std::size_t end = std::min(begin + 256, valid_positions);
        std::vector<Hit> expected;
        scanner.range(compiled, threshold, begin, end, expected);
        const auto lo = std::lower_bound(
            run.hits.begin(), run.hits.end(), begin,
            [](const Hit& h, std::size_t p) { return h.position < p; });
        const auto hi = std::lower_bound(
            lo, run.hits.end(), end,
            [](const Hit& h, std::size_t p) { return h.position < p; });
        if (!std::equal(lo, hi, expected.begin(), expected.end())) {
          ++stats.spot_check_faults;
          const Interval window{begin, end};
          splice_ranges(run.hits, scanner, compiled, threshold,
                        std::span{&window, 1});
        }
      }
    }

    const auto& log = injector.log();
    fault_log_.insert(fault_log_.end(), log.begin(), log.end());
    out = std::move(run);
    return true;
  }
  return false;  // unreachable: the loop returns on its last attempt
}

Expected<HostRunReport> Session::align_impl(
    const bio::ProteinSequence& query, std::uint32_t threshold,
    const std::vector<Hit>* forward_hits,
    const std::vector<Hit>* reverse_hits_in) {
  if (!reference_uploaded_)
    return Error{ErrorCode::NoReference, "Session: no reference uploaded"};
  ++invocation_;

  AcceleratorConfig acc_config = config_.accelerator;
  acc_config.threshold = threshold;

  const bool chaos = config_.fault.enabled() ||
                     config_.recovery.spot_check_samples > 0 ||
                     health_ != HealthState::Healthy;
  if (!chaos) {
    // Clean fast path: exactly the pre-fault pipeline (one branch above is
    // the entire zero-fault overhead of this layer).
    Accelerator accelerator{acc_config};
    accelerator.load_query(query);
    AcceleratorRun run = accelerator.run(reference_, forward_hits);
    RecoveryStats stats;
    stats.attempts = 1;

    std::vector<Hit> reverse_hits;
    if (config_.search_both_strands) {
      ++stats.attempts;
      AcceleratorRun rc_run = accelerator.run(reverse_, reverse_hits_in);
      // Map RC positions back to forward coordinates of the window start.
      const std::size_t lr = reference_.size();
      const std::size_t lq = accelerator.encoded_query().size();
      for (const Hit& hit : rc_run.hits)
        reverse_hits.push_back(Hit{lr - hit.position - lq, hit.score});
      std::sort(reverse_hits.begin(), reverse_hits.end());
      // Account the second pass in the kernel time.
      run.cycles += rc_run.cycles;
      run.kernel_seconds += rc_run.kernel_seconds;
      run.joules += rc_run.joules;
    }

    HostRunReport report =
        finish(query, std::move(run), reference_.byte_size());
    report.reverse_hits = std::move(reverse_hits);
    report.recovery = stats;
    return report;
  }

  // Fault-tolerant path.
  RecoveryStats stats;
  const EncodedQuery encoded = encode_query(query);
  Accelerator probe{acc_config};  // mapping + validation, no run
  probe.load_encoded(encoded);
  const FabpMapping mapping = probe.mapping();
  const std::size_t lq = encoded.size();

  // Degraded (or exhausted) strand runs are served by the pure-software
  // tiled path against the resident store: zero card time, golden hits.
  const auto fallback_strand = [&](const bio::PackedNucleotides& store,
                                   const std::vector<Hit>* precomputed) {
    AcceleratorRun run;
    run.mapping = mapping;
    run.hits = precomputed ? *precomputed
                           : TileScanner{store, config_.tile}.hits(
                                 BitScanQuery{encoded}, threshold);
    ++stats.fallbacks;
    return run;
  };

  const auto run_strand = [&](const bio::PackedNucleotides& store,
                              bool reverse_strand,
                              const std::vector<Hit>* precomputed,
                              AcceleratorRun& out, Error& err) -> bool {
    if (health_ == HealthState::Degraded) {
      if (!config_.recovery.allow_software_fallback) {
        err = Error{ErrorCode::DeviceLost,
                    "session degraded and software fallback disabled", 0};
        return false;
      }
      out = fallback_strand(store, precomputed);
      return true;
    }
    Error strand_error;
    if (faulty_strand_run(encoded, threshold, store, reverse_strand,
                          precomputed, stats, strand_error, out)) {
      consecutive_failures_ = 0;
      return true;
    }
    ++consecutive_failures_;
    if (consecutive_failures_ >=
        std::max<std::size_t>(1, config_.recovery.degrade_after))
      health_ = HealthState::Degraded;
    if (config_.recovery.allow_software_fallback) {
      out = fallback_strand(store, precomputed);
      return true;
    }
    err = std::move(strand_error);
    return false;
  };

  AcceleratorRun run;
  Error error;
  if (!run_strand(reference_, false, forward_hits, run, error))
    return error;

  std::vector<Hit> reverse_hits;
  if (config_.search_both_strands) {
    AcceleratorRun rc_run;
    if (!run_strand(reverse_, true, reverse_hits_in, rc_run, error))
      return error;
    const std::size_t lr = reference_.size();
    for (const Hit& hit : rc_run.hits)
      reverse_hits.push_back(Hit{lr - hit.position - lq, hit.score});
    std::sort(reverse_hits.begin(), reverse_hits.end());
    run.cycles += rc_run.cycles;
    run.kernel_seconds += rc_run.kernel_seconds;
    run.joules += rc_run.joules;
  }

  stats.degraded = health_ == HealthState::Degraded;
  HostRunReport report = finish(query, std::move(run), reference_.byte_size());
  report.reverse_hits = std::move(reverse_hits);
  report.recovery = stats;
  report.total_s += stats.recovery_s;
  report.joules = report.watts * report.total_s;
  return report;
}

HostRunReport Session::estimate(const bio::ProteinSequence& query,
                                std::uint32_t threshold,
                                std::size_t bytes) const {
  AcceleratorConfig acc_config = config_.accelerator;
  acc_config.threshold = threshold;
  Accelerator accelerator{acc_config};
  accelerator.load_query(query);
  AcceleratorRun run = accelerator.estimate(bytes * 4 /* elements */);
  return finish(query, std::move(run), bytes);
}

Session::BatchReport Session::align_batch(
    std::span<const bio::ProteinSequence> queries,
    double threshold_fraction, util::ThreadPool* pool) {
  return try_align_batch(queries, threshold_fraction, pool).value_or_throw();
}

Expected<Session::BatchReport> Session::try_align_batch(
    std::span<const bio::ProteinSequence> queries,
    double threshold_fraction, util::ThreadPool* pool) {
  BatchReport batch;
  batch.per_query.reserve(queries.size());
  if (queries.empty()) return batch;
  if (!reference_uploaded_)
    return Error{ErrorCode::NoReference, "Session: no reference uploaded"};

  std::vector<std::uint32_t> thresholds;
  thresholds.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries)
    thresholds.push_back(static_cast<std::uint32_t>(
        threshold_fraction * static_cast<double>(query.size() * 3)));

  // One multi-query pass over the reference produces every hit list up
  // front — on the default tiled path each freshly compiled tile is
  // scored against the whole batch while hot in cache; the Planes escape
  // hatch streams the cached whole-reference plane words instead.  The
  // per-query runs below then reduce to cycle/energy accounting.  The
  // queries are compiled from their *encoded* form so the hits match what
  // Accelerator::run would compute bit for bit.  The LUT oracle path
  // keeps its own evaluation.
  std::vector<std::vector<Hit>> forward, reverse;
  const bool precompute = !config_.accelerator.use_lut_path;
  if (precompute) {
    std::vector<BitScanQuery> compiled;
    compiled.reserve(queries.size());
    for (const bio::ProteinSequence& query : queries)
      compiled.emplace_back(encode_query(query));
    if (tiled()) {
      forward = TileScanner{reference_, config_.tile}.hits_batch(
          compiled, thresholds, pool);
      if (config_.search_both_strands)
        reverse = TileScanner{reverse_, config_.tile}.hits_batch(
            compiled, thresholds, pool);
    } else {
      ensure_planes(config_.search_both_strands, pool);
      forward = bitscan_hits_batch(compiled, forward_planes(), thresholds,
                                   pool);
      if (config_.search_both_strands)
        reverse = bitscan_hits_batch(compiled, reverse_planes(), thresholds,
                                     pool);
    }
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    Expected<HostRunReport> result = align_impl(
        queries[i], thresholds[i], precompute ? &forward[i] : nullptr,
        precompute && config_.search_both_strands ? &reverse[i] : nullptr);
    if (!result) return result.error();
    HostRunReport report = std::move(result).value();
    batch.total_s += report.total_s;
    batch.total_joules += report.joules;
    batch.total_hits += report.hits.size();
    batch.recovery.merge(report.recovery);
    batch.per_query.push_back(std::move(report));
  }
  batch.queries_per_second =
      batch.total_s > 0.0
          ? static_cast<double>(queries.size()) / batch.total_s
          : 0.0;
  return batch;
}

std::vector<Hit> Session::software_hits(const bio::ProteinSequence& query,
                                        std::uint32_t threshold,
                                        util::ThreadPool* pool) {
  if (!reference_uploaded_)
    throw std::logic_error{"Session: no reference uploaded"};
  const BitScanQuery compiled{back_translate(query)};
  if (tiled())
    return TileScanner{reference_, config_.tile}.hits(compiled, threshold,
                                                      pool);
  const BitScanReference& planes = forward_planes();
  return pool ? bitscan_hits_parallel(compiled, planes, threshold, *pool)
              : bitscan_hits(compiled, planes, threshold);
}

std::vector<std::vector<Hit>> Session::software_hits_batch(
    std::span<const bio::ProteinSequence> queries,
    std::span<const std::uint32_t> thresholds, util::ThreadPool* pool) {
  if (!reference_uploaded_)
    throw std::logic_error{"Session: no reference uploaded"};
  if (thresholds.size() != queries.size())
    throw std::invalid_argument{
        "Session::software_hits_batch: thresholds.size() must equal "
        "queries.size()"};
  std::vector<BitScanQuery> compiled;
  compiled.reserve(queries.size());
  for (const bio::ProteinSequence& query : queries)
    compiled.emplace_back(back_translate(query));
  if (tiled())
    return TileScanner{reference_, config_.tile}.hits_batch(
        compiled, thresholds, pool);
  return bitscan_hits_batch(compiled, forward_planes(), thresholds, pool);
}

void Session::ensure_planes(bool both_strands, util::ThreadPool* pool) {
  // Overlap the strand compiles: the reverse planes build on a pool
  // worker while the caller builds the forward planes — with both strands
  // the compile wall-time halves (it vanishes entirely on the tiled path,
  // which never calls this).
  std::future<void> reverse_done;
  if (both_strands && !bitscan_reverse_ready_ && pool)
    reverse_done = pool->submit(
        [this] { bitscan_reverse_ = BitScanReference{reverse_}; });
  forward_planes();
  if (reverse_done.valid()) {
    reverse_done.get();
    bitscan_reverse_ready_ = true;
  } else if (both_strands) {
    reverse_planes();
  }
}

const BitScanReference& Session::forward_planes() {
  if (!bitscan_ready_) {
    bitscan_reference_ = BitScanReference{reference_};
    bitscan_ready_ = true;
  }
  return bitscan_reference_;
}

const BitScanReference& Session::reverse_planes() {
  if (!bitscan_reverse_ready_) {
    bitscan_reverse_ = BitScanReference{reverse_};
    bitscan_reverse_ready_ = true;
  }
  return bitscan_reverse_;
}

HostRunReport Session::finish(const bio::ProteinSequence& query,
                              AcceleratorRun run,
                              std::size_t reference_bytes) const {
  HostRunReport report;
  report.mapping = run.mapping;
  report.hits = std::move(run.hits);

  const double pcie = config_.pcie_bandwidth_bps;
  const double ref_bytes = static_cast<double>(reference_bytes);
  report.reference_transfer_s =
      config_.reference_resident ? 0.0 : ref_bytes / pcie;

  // Encoded query as transferred: 6-bit instructions packed into words.
  const PackedQuery packed{encode_query(query)};
  const auto query_bytes = static_cast<double>(packed.byte_size());
  report.query_transfer_s = query_bytes / pcie + config_.invoke_overhead_s;

  report.kernel_s = run.kernel_seconds;

  const double result_bytes =
      static_cast<double>(report.hits.size()) * 8.0 + 64.0;
  report.readback_s = result_bytes / pcie;

  report.total_s = report.reference_transfer_s + report.query_transfer_s +
                   report.kernel_s + report.readback_s;
  report.watts = run.watts;
  report.joules = run.watts * report.total_s;
  return report;
}

}  // namespace fabp::core
