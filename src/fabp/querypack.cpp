#include "fabp/core/querypack.hpp"

#include "fabp/util/bitops.hpp"

namespace fabp::core {

PackedQuery::PackedQuery(const EncodedQuery& query) : size_{query.size()} {
  words_.assign(util::ceil_div(size_ * 6, 64), 0);
  for (std::size_t i = 0; i < query.size(); ++i) {
    const std::size_t bit = i * 6;
    const std::size_t word = bit / 64;
    const unsigned shift = static_cast<unsigned>(bit % 64);
    const auto value = static_cast<std::uint64_t>(query[i].bits());
    words_[word] |= value << shift;
    if (shift > 58)  // instruction straddles a word boundary
      words_[word + 1] |= value >> (64 - shift);
  }
}

Instruction PackedQuery::get(std::size_t i) const noexcept {
  const std::size_t bit = i * 6;
  const std::size_t word = bit / 64;
  const unsigned shift = static_cast<unsigned>(bit % 64);
  std::uint64_t value = words_[word] >> shift;
  if (shift > 58 && word + 1 < words_.size())
    value |= words_[word + 1] << (64 - shift);
  return Instruction{static_cast<std::uint8_t>(value & 0b111111)};
}

EncodedQuery PackedQuery::unpack() const {
  EncodedQuery query;
  query.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) query.push_back(get(i));
  return query;
}

}  // namespace fabp::core
