#include "fabp/bio/fasta.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace fabp::bio {

std::vector<FastaRecord> read_fasta(std::istream& in,
                                    const FastaReadOptions& options) {
  std::vector<FastaRecord> records;
  std::string line;
  bool have_record = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      FastaRecord record;
      const std::size_t ws = line.find_first_of(" \t", 1);
      if (ws == std::string::npos) {
        record.id = line.substr(1);
      } else {
        record.id = line.substr(1, ws - 1);
        const std::size_t desc = line.find_first_not_of(" \t", ws);
        if (desc != std::string::npos) record.description = line.substr(desc);
      }
      records.push_back(std::move(record));
      have_record = true;
      continue;
    }
    if (!have_record)
      throw std::runtime_error{"FASTA: sequence data before first header"};
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (options.reject_control &&
          !std::isprint(static_cast<unsigned char>(c)))
        throw std::runtime_error{
            "FASTA: non-printable byte in sequence data at line " +
            std::to_string(line_no)};
      if (options.fold_case)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      records.back().sequence.push_back(c);
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta(std::istream& in) {
  return read_fasta(in, FastaReadOptions{});
}

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         const FastaReadOptions& options) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"cannot open FASTA file: " + path};
  return read_fasta(in, options);
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  return read_fasta_file(path, FastaReadOptions{});
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 std::size_t width) {
  if (width == 0) width = 70;
  for (const auto& record : records) {
    out << '>' << record.id;
    if (!record.description.empty()) out << ' ' << record.description;
    out << '\n';
    for (std::size_t pos = 0; pos < record.sequence.size(); pos += width)
      out << record.sequence.substr(pos, width) << '\n';
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t width) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error{"cannot write FASTA file: " + path};
  write_fasta(out, records, width);
}

}  // namespace fabp::bio
