#include "fabp/bio/bitplanes.hpp"

#include "fabp/util/bitops.hpp"

namespace fabp::bio {

namespace {

using util::compress_even_bits;

// Shifts a plane towards higher positions by `by` bits: out[j] = in[j-by],
// zero-filled at the bottom.  Operates over `words` logical words.
std::vector<std::uint64_t> shift_up(const std::vector<std::uint64_t>& in,
                                    std::size_t words, unsigned by) {
  std::vector<std::uint64_t> out(in.size(), 0);
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t v = in[w] << by;
    if (w > 0) v |= in[w - 1] >> (64 - by);
    out[w] = v;
  }
  return out;
}

}  // namespace

NucleotideBitplanes::NucleotideBitplanes(const PackedNucleotides& packed) {
  size_ = packed.size();
  word_count_ = util::ceil_div(size_, 64);
  const std::size_t padded = padded_word_count();
  for (Plane* p : {&lsb_, &msb_, &valid_})
    p->assign(padded, 0);
  for (Plane& p : occurrence_) p.assign(padded, 0);

  const std::span<const std::uint64_t> words = packed.words();
  for (std::size_t w = 0; w < word_count_; ++w) {
    const std::uint64_t lo = 2 * w < words.size() ? words[2 * w] : 0;
    const std::uint64_t hi =
        2 * w + 1 < words.size() ? words[2 * w + 1] : 0;
    lsb_[w] = compress_even_bits(lo) | (compress_even_bits(hi) << 32);
    msb_[w] =
        compress_even_bits(lo >> 1) | (compress_even_bits(hi >> 1) << 32);
  }

  // Tail mask, then occurrence planes.  The packed store pads with code 00
  // (A), so lsb/msb are already zero past size(); occurrence(A) is the one
  // plane that must be masked explicitly.
  for (std::size_t w = 0; w < word_count_; ++w) valid_[w] = ~0ULL;
  const unsigned tail = static_cast<unsigned>(size_ & 63);
  if (tail != 0) valid_[word_count_ - 1] = (1ULL << tail) - 1;
  for (std::size_t w = 0; w < word_count_; ++w) {
    occurrence_[code(Nucleotide::A)][w] = ~(lsb_[w] | msb_[w]) & valid_[w];
    occurrence_[code(Nucleotide::C)][w] = lsb_[w] & ~msb_[w];
    occurrence_[code(Nucleotide::G)][w] = msb_[w] & ~lsb_[w];
    occurrence_[code(Nucleotide::U)][w] = lsb_[w] & msb_[w];
  }

  prev1_msb_ = shift_up(msb_, word_count_, 1);
  prev2_msb_ = shift_up(msb_, word_count_, 2);
  prev2_lsb_ = shift_up(lsb_, word_count_, 2);
  // History bits shifted past the end describe real predecessors of
  // positions that do not exist; mask them for a clean invariant (every
  // plane is zero at bit j >= size()).
  for (Plane* p : {&prev1_msb_, &prev2_msb_, &prev2_lsb_})
    for (std::size_t w = 0; w < word_count_; ++w) (*p)[w] &= valid_[w];
}

NucleotideBitplanes::NucleotideBitplanes(const NucleotideSequence& seq)
    : NucleotideBitplanes{PackedNucleotides{seq}} {}

}  // namespace fabp::bio
