#include "fabp/bio/packed.hpp"

#include <stdexcept>

#include "fabp/util/bitops.hpp"

namespace fabp::bio {

PackedNucleotides::PackedNucleotides(const NucleotideSequence& seq)
    : PackedNucleotides{std::span<const Nucleotide>{seq.bases()}} {}

PackedNucleotides::PackedNucleotides(std::span<const Nucleotide> bases) {
  words_.assign(util::ceil_div(bases.size(), kElementsPerWord), 0);
  size_ = bases.size();
  for (std::size_t i = 0; i < bases.size(); ++i) {
    const unsigned shift = 2 * static_cast<unsigned>(i % kElementsPerWord);
    words_[i / kElementsPerWord] |=
        static_cast<std::uint64_t>(code(bases[i])) << shift;
  }
}

PackedNucleotides PackedNucleotides::from_words(
    std::vector<std::uint64_t> words, std::size_t elements) {
  PackedNucleotides packed;
  words.resize(util::ceil_div(elements, kElementsPerWord));
  packed.words_ = std::move(words);
  packed.size_ = elements;
  return packed;
}

void PackedNucleotides::set(std::size_t i, Nucleotide n) noexcept {
  const unsigned shift = 2 * static_cast<unsigned>(i % kElementsPerWord);
  std::uint64_t& word = words_[i / kElementsPerWord];
  word = (word & ~(0b11ULL << shift)) |
         (static_cast<std::uint64_t>(code(n)) << shift);
}

void PackedNucleotides::push_back(Nucleotide n) {
  if (size_ % kElementsPerWord == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, n);
}

std::size_t PackedNucleotides::beat_count() const noexcept {
  return util::ceil_div(size_, kElementsPerBeat);
}

std::array<std::uint64_t, 8> PackedNucleotides::beat(
    std::size_t beat) const noexcept {
  std::array<std::uint64_t, 8> out{};
  const std::size_t base = beat * 8;
  for (std::size_t w = 0; w < 8; ++w)
    if (base + w < words_.size()) out[w] = words_[base + w];
  return out;
}

std::size_t PackedNucleotides::beat_elements(std::size_t beat) const noexcept {
  const std::size_t begin = beat * kElementsPerBeat;
  if (begin >= size_) return 0;
  const std::size_t remaining = size_ - begin;
  return remaining < kElementsPerBeat ? remaining : kElementsPerBeat;
}

PackedNucleotides PackedNucleotides::slice(std::size_t begin,
                                           std::size_t count) const {
  if (begin > size_ || count > size_ - begin)
    throw std::out_of_range{"PackedNucleotides::slice: range exceeds size()"};
  PackedNucleotides out;
  out.size_ = count;
  out.words_.assign(util::ceil_div(count, kElementsPerWord), 0);
  const std::size_t first = begin / kElementsPerWord;
  const unsigned shift = 2 * static_cast<unsigned>(begin % kElementsPerWord);
  for (std::size_t w = 0; w < out.words_.size(); ++w) {
    std::uint64_t word = words_[first + w] >> shift;
    if (shift != 0 && first + w + 1 < words_.size())
      word |= words_[first + w + 1] << (64 - shift);
    out.words_[w] = word;
  }
  // Zero the tail so equal slices compare equal regardless of what
  // neighboured them in the source store.
  const unsigned tail = 2 * static_cast<unsigned>(count % kElementsPerWord);
  if (tail != 0) out.words_.back() &= (std::uint64_t{1} << tail) - 1;
  return out;
}

NucleotideSequence PackedNucleotides::unpack(SeqKind kind) const {
  NucleotideSequence seq{kind};
  seq.bases().reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) seq.push_back(get(i));
  return seq;
}

}  // namespace fabp::bio
