#include "fabp/bio/codon.hpp"

#include <stdexcept>

namespace fabp::bio {

std::string Codon::to_string() const {
  return {to_char_rna(first), to_char_rna(second), to_char_rna(third)};
}

namespace {

// The canonical assignment, written as (RNA codon text, one-letter AA).
// Source: NCBI standard genetic code (translation table 1), as depicted in
// Fig. 2 of the paper.
struct Assignment {
  const char* codon;
  char aa;
};

constexpr std::array<Assignment, 64> kStandardCode{{
    {"UUU", 'F'}, {"UUC", 'F'}, {"UUA", 'L'}, {"UUG", 'L'},
    {"CUU", 'L'}, {"CUC", 'L'}, {"CUA", 'L'}, {"CUG", 'L'},
    {"AUU", 'I'}, {"AUC", 'I'}, {"AUA", 'I'}, {"AUG", 'M'},
    {"GUU", 'V'}, {"GUC", 'V'}, {"GUA", 'V'}, {"GUG", 'V'},
    {"UCU", 'S'}, {"UCC", 'S'}, {"UCA", 'S'}, {"UCG", 'S'},
    {"CCU", 'P'}, {"CCC", 'P'}, {"CCA", 'P'}, {"CCG", 'P'},
    {"ACU", 'T'}, {"ACC", 'T'}, {"ACA", 'T'}, {"ACG", 'T'},
    {"GCU", 'A'}, {"GCC", 'A'}, {"GCA", 'A'}, {"GCG", 'A'},
    {"UAU", 'Y'}, {"UAC", 'Y'}, {"UAA", '*'}, {"UAG", '*'},
    {"CAU", 'H'}, {"CAC", 'H'}, {"CAA", 'Q'}, {"CAG", 'Q'},
    {"AAU", 'N'}, {"AAC", 'N'}, {"AAA", 'K'}, {"AAG", 'K'},
    {"GAU", 'D'}, {"GAC", 'D'}, {"GAA", 'E'}, {"GAG", 'E'},
    {"UGU", 'C'}, {"UGC", 'C'}, {"UGA", '*'}, {"UGG", 'W'},
    {"CGU", 'R'}, {"CGC", 'R'}, {"CGA", 'R'}, {"CGG", 'R'},
    {"AGU", 'S'}, {"AGC", 'S'}, {"AGA", 'R'}, {"AGG", 'R'},
    {"GGU", 'G'}, {"GGC", 'G'}, {"GGA", 'G'}, {"GGG", 'G'},
}};

struct CodeTables {
  std::array<AminoAcid, kCodonCount> codon_to_aa{};
  std::array<std::vector<Codon>, kAminoAcidCount> aa_to_codons{};

  CodeTables() {
    for (const auto& [text, letter] : kStandardCode) {
      Codon codon{*nucleotide_from_char(text[0]),
                  *nucleotide_from_char(text[1]),
                  *nucleotide_from_char(text[2])};
      const auto aa = amino_acid_from_char(letter);
      if (!aa) throw std::logic_error{"bad genetic code table entry"};
      codon_to_aa[codon.dense_index()] = *aa;
    }
    // Fill the reverse table in dense-index order for determinism.
    for (std::uint8_t i = 0; i < kCodonCount; ++i) {
      const Codon codon = Codon::from_dense_index(i);
      aa_to_codons[index(codon_to_aa[i])].push_back(codon);
    }
  }
};

const CodeTables& tables() {
  static const CodeTables instance;
  return instance;
}

}  // namespace

AminoAcid translate(const Codon& codon) noexcept {
  return tables().codon_to_aa[codon.dense_index()];
}

std::span<const Codon> codons_for(AminoAcid aa) noexcept {
  return tables().aa_to_codons[index(aa)];
}

std::size_t degeneracy(AminoAcid aa) noexcept { return codons_for(aa).size(); }

bool is_stop(const Codon& codon) noexcept {
  return translate(codon) == AminoAcid::Stop;
}

bool is_start(const Codon& codon) noexcept {
  return codon == Codon{Nucleotide::A, Nucleotide::U, Nucleotide::G};
}

}  // namespace fabp::bio
