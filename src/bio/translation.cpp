#include "fabp/bio/translation.hpp"

#include "fabp/bio/codon.hpp"

namespace fabp::bio {

ProteinSequence translate(const NucleotideSequence& nucleotides,
                          std::size_t offset) {
  ProteinSequence protein;
  if (offset >= nucleotides.size()) return protein;
  const std::size_t usable = nucleotides.size() - offset;
  protein = ProteinSequence{std::vector<AminoAcid>{}};
  std::vector<AminoAcid> residues;
  residues.reserve(usable / 3);
  for (std::size_t i = offset; i + 3 <= nucleotides.size(); i += 3) {
    residues.push_back(bio::translate(
        Codon{nucleotides[i], nucleotides[i + 1], nucleotides[i + 2]}));
  }
  return ProteinSequence{std::move(residues)};
}

std::size_t TranslatedFrame::nucleotide_position(
    std::size_t protein_pos, std::size_t dna_length) const noexcept {
  const std::size_t codon_start = id.offset() + 3 * protein_pos;
  if (!id.reverse()) return codon_start;
  // Reverse strand: position `codon_start` on the reverse-complement maps to
  // forward-strand position (len - 1 - codon_start), and the codon occupies
  // the two bases *before* it on the forward strand; report its 5' end.
  return dna_length - codon_start - 3;
}

std::array<TranslatedFrame, 6> six_frame_translate(
    const NucleotideSequence& dna) {
  std::array<TranslatedFrame, 6> frames;
  const NucleotideSequence rc = dna.reverse_complement();
  for (int f = 0; f < 6; ++f) {
    const bool rev = f >= 3;
    frames[static_cast<std::size_t>(f)] = TranslatedFrame{
        FrameId{f},
        translate(rev ? rc : dna, static_cast<std::size_t>(f % 3))};
  }
  return frames;
}

std::vector<OpenReadingFrame> find_orfs(const NucleotideSequence& rna,
                                        std::size_t min_codons) {
  std::vector<OpenReadingFrame> orfs;
  for (std::size_t frame = 0; frame < 3; ++frame) {
    std::size_t start = rna.size();  // sentinel: no open start
    ProteinSequence pending;
    for (std::size_t i = frame; i + 3 <= rna.size(); i += 3) {
      const Codon codon{rna[i], rna[i + 1], rna[i + 2]};
      if (start == rna.size()) {
        if (is_start(codon)) {
          start = i;
          pending = ProteinSequence{};
          pending.push_back(AminoAcid::Met);
        }
        continue;
      }
      if (is_stop(codon)) {
        if (pending.size() >= min_codons)
          orfs.push_back(OpenReadingFrame{start, i + 3, pending});
        start = rna.size();
        pending = ProteinSequence{};
        continue;
      }
      pending.push_back(translate(codon));
    }
  }
  return orfs;
}

}  // namespace fabp::bio
