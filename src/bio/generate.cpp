#include "fabp/bio/generate.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "fabp/bio/codon.hpp"

namespace fabp::bio {

NucleotideSequence random_dna(std::size_t length, util::Xoshiro256& rng,
                              double gc_content) {
  NucleotideSequence seq{SeqKind::Dna};
  seq.bases().reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const bool gc = rng.chance(gc_content);
    if (gc)
      seq.push_back(rng.chance(0.5) ? Nucleotide::G : Nucleotide::C);
    else
      seq.push_back(rng.chance(0.5) ? Nucleotide::A : Nucleotide::U);
  }
  return seq;
}

namespace {

// Approximate Swiss-Prot amino-acid composition (percent); order matches
// the AminoAcid enum (Ala..Val); Stop is excluded from random proteins.
constexpr std::array<double, 20> kAaFrequency{
    8.25, 5.53, 4.06, 5.45, 1.37, 3.93, 6.75, 7.07, 2.27, 5.96,
    9.66, 5.84, 2.42, 3.86, 4.74, 6.56, 5.34, 1.08, 2.92, 6.87};

}  // namespace

ProteinSequence random_protein(std::size_t length, util::Xoshiro256& rng) {
  ProteinSequence protein;
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t pick = rng.weighted(kAaFrequency);
    protein.push_back(static_cast<AminoAcid>(pick));
  }
  return protein;
}

NucleotideSequence random_coding_sequence(const ProteinSequence& protein,
                                          util::Xoshiro256& rng) {
  NucleotideSequence rna{SeqKind::Rna};
  rna.bases().reserve(protein.size() * 3);
  for (AminoAcid aa : protein) {
    const auto options = codons_for(aa);
    const Codon codon = options[rng.bounded(options.size())];
    rna.push_back(codon.first);
    rna.push_back(codon.second);
    rna.push_back(codon.third);
  }
  return rna;
}

SyntheticDatabase SyntheticDatabase::build(const DatabaseSpec& spec) {
  util::Xoshiro256 rng{spec.seed};
  SyntheticDatabase db;
  db.dna = random_dna(spec.total_bases, rng, spec.gc_content);

  const std::size_t gene_bases = spec.gene_length * 3;
  if (spec.gene_count * gene_bases > spec.total_bases)
    throw std::invalid_argument{
        "SyntheticDatabase: planted genes exceed database size"};

  // Place genes in equal-width slots with a random offset inside each slot,
  // guaranteeing non-overlap without rejection sampling.
  const std::size_t slot = spec.total_bases / std::max<std::size_t>(
                                                  1, spec.gene_count);
  for (std::size_t g = 0; g < spec.gene_count; ++g) {
    const std::size_t slack = slot - gene_bases;
    const std::size_t offset = slack == 0 ? 0 : rng.bounded(slack);
    const std::size_t pos = g * slot + offset;

    PlantedGene gene;
    gene.dna_position = pos;
    gene.protein = random_protein(spec.gene_length, rng);
    const NucleotideSequence coding = random_coding_sequence(gene.protein, rng);
    for (std::size_t i = 0; i < coding.size(); ++i)
      db.dna[pos + i] = coding[i];
    db.genes.push_back(std::move(gene));
  }
  return db;
}

QuerySet sample_queries(const SyntheticDatabase& db, std::size_t count,
                        const QuerySpec& spec, double planted_fraction) {
  util::Xoshiro256 rng{spec.seed};
  QuerySet set;
  set.queries.reserve(count);
  set.source_gene.reserve(count);

  for (std::size_t q = 0; q < count; ++q) {
    const bool planted = !db.genes.empty() && rng.chance(planted_fraction);
    if (!planted) {
      set.queries.push_back(random_protein(spec.length, rng));
      set.source_gene.push_back(-1);
      continue;
    }
    const std::size_t gene_idx = rng.bounded(db.genes.size());
    const PlantedGene& gene = db.genes[gene_idx];
    const std::size_t max_len = gene.protein.size();
    const std::size_t len = std::min(spec.length, max_len);
    const std::size_t start =
        len == max_len ? 0 : rng.bounded(max_len - len + 1);
    ProteinSequence query = gene.protein.subsequence(start, len);
    if (spec.substitution_rate > 0.0)
      query = mutate_protein(query, spec.substitution_rate, rng);
    set.queries.push_back(std::move(query));
    set.source_gene.push_back(static_cast<int>(gene_idx));
  }
  return set;
}

}  // namespace fabp::bio
