#include "fabp/bio/codon_usage.hpp"

#include <stdexcept>
#include <vector>

namespace fabp::bio {

namespace {

// Approximate fractions from the Kazusa codon-usage database.
constexpr std::array<CodonUsage::Fraction, 64> kHuman{{
    {"GCU", .27}, {"GCC", .40}, {"GCA", .23}, {"GCG", .11},
    {"CGU", .08}, {"CGC", .18}, {"CGA", .11}, {"CGG", .20},
    {"AGA", .21}, {"AGG", .21}, {"AAU", .47}, {"AAC", .53},
    {"GAU", .46}, {"GAC", .54}, {"UGU", .46}, {"UGC", .54},
    {"CAA", .27}, {"CAG", .73}, {"GAA", .42}, {"GAG", .58},
    {"GGU", .16}, {"GGC", .34}, {"GGA", .25}, {"GGG", .25},
    {"CAU", .42}, {"CAC", .58}, {"AUU", .36}, {"AUC", .47},
    {"AUA", .17}, {"UUA", .08}, {"UUG", .13}, {"CUU", .13},
    {"CUC", .20}, {"CUA", .07}, {"CUG", .40}, {"AAA", .43},
    {"AAG", .57}, {"AUG", 1.0}, {"UUU", .46}, {"UUC", .54},
    {"CCU", .29}, {"CCC", .32}, {"CCA", .28}, {"CCG", .11},
    {"UCU", .19}, {"UCC", .22}, {"UCA", .15}, {"UCG", .05},
    {"AGU", .15}, {"AGC", .24}, {"ACU", .25}, {"ACC", .36},
    {"ACA", .28}, {"ACG", .11}, {"UGG", 1.0}, {"UAU", .44},
    {"UAC", .56}, {"GUU", .18}, {"GUC", .24}, {"GUA", .12},
    {"GUG", .46}, {"UAA", .30}, {"UAG", .24}, {"UGA", .47},
}};

constexpr std::array<CodonUsage::Fraction, 64> kEcoli{{
    {"GCU", .16}, {"GCC", .27}, {"GCA", .21}, {"GCG", .36},
    {"CGU", .38}, {"CGC", .40}, {"CGA", .06}, {"CGG", .10},
    {"AGA", .04}, {"AGG", .02}, {"AAU", .45}, {"AAC", .55},
    {"GAU", .63}, {"GAC", .37}, {"UGU", .45}, {"UGC", .55},
    {"CAA", .35}, {"CAG", .65}, {"GAA", .69}, {"GAG", .31},
    {"GGU", .34}, {"GGC", .40}, {"GGA", .11}, {"GGG", .15},
    {"CAU", .57}, {"CAC", .43}, {"AUU", .51}, {"AUC", .42},
    {"AUA", .07}, {"UUA", .13}, {"UUG", .13}, {"CUU", .10},
    {"CUC", .10}, {"CUA", .04}, {"CUG", .50}, {"AAA", .77},
    {"AAG", .23}, {"AUG", 1.0}, {"UUU", .57}, {"UUC", .43},
    {"CCU", .16}, {"CCC", .12}, {"CCA", .19}, {"CCG", .53},
    {"UCU", .15}, {"UCC", .15}, {"UCA", .12}, {"UCG", .15},
    {"AGU", .15}, {"AGC", .28}, {"ACU", .17}, {"ACC", .44},
    {"ACA", .13}, {"ACG", .27}, {"UGG", 1.0}, {"UAU", .57},
    {"UAC", .43}, {"GUU", .26}, {"GUC", .22}, {"GUA", .15},
    {"GUG", .37}, {"UAA", .64}, {"UAG", .07}, {"UGA", .29},
}};

}  // namespace

CodonUsage CodonUsage::uniform() {
  CodonUsage usage;
  for (AminoAcid aa : kAllAminoAcids) {
    const auto codons = codons_for(aa);
    for (const Codon& c : codons)
      usage.weights_[c.dense_index()] =
          1.0 / static_cast<double>(codons.size());
  }
  return usage;
}

CodonUsage CodonUsage::from_fractions(std::span<const Fraction> fractions) {
  CodonUsage usage;  // all-zero weights; listed codons fill in
  for (const Fraction& f : fractions) {
    if (f.codon.size() != 3)
      throw std::invalid_argument{"CodonUsage: codon text must be 3 bases"};
    const auto a = nucleotide_from_char(f.codon[0]);
    const auto b = nucleotide_from_char(f.codon[1]);
    const auto c = nucleotide_from_char(f.codon[2]);
    if (!a || !b || !c)
      throw std::invalid_argument{"CodonUsage: bad codon text"};
    usage.weights_[Codon{*a, *b, *c}.dense_index()] = f.fraction;
  }
  return usage;
}

const CodonUsage& CodonUsage::human() {
  static const CodonUsage instance = from_fractions(kHuman);
  return instance;
}

const CodonUsage& CodonUsage::ecoli() {
  static const CodonUsage instance = from_fractions(kEcoli);
  return instance;
}

Codon CodonUsage::sample(AminoAcid aa, util::Xoshiro256& rng) const {
  const auto codons = codons_for(aa);
  std::vector<double> weights;
  weights.reserve(codons.size());
  for (const Codon& c : codons) weights.push_back(weight(c));
  return codons[rng.weighted(weights)];
}

double CodonUsage::rscu(const Codon& codon) const {
  const AminoAcid aa = translate(codon);
  const auto codons = codons_for(aa);
  double total = 0.0;
  for (const Codon& c : codons) total += weight(c);
  if (total == 0.0) return 0.0;
  return weight(codon) / (total / static_cast<double>(codons.size()));
}

NucleotideSequence biased_coding_sequence(const ProteinSequence& protein,
                                          const CodonUsage& usage,
                                          util::Xoshiro256& rng) {
  NucleotideSequence rna{SeqKind::Rna};
  rna.bases().reserve(protein.size() * 3);
  for (AminoAcid aa : protein) {
    const Codon codon = usage.sample(aa, rng);
    rna.push_back(codon.first);
    rna.push_back(codon.second);
    rna.push_back(codon.third);
  }
  return rna;
}

}  // namespace fabp::bio
