#include "fabp/bio/sequence.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace fabp::bio {

NucleotideSequence NucleotideSequence::parse(SeqKind kind,
                                             std::string_view text) {
  NucleotideSequence seq{kind};
  seq.bases_.reserve(text.size());
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const auto n = nucleotide_from_char(c);
    if (!n)
      throw std::invalid_argument{std::string{"invalid nucleotide letter: "} +
                                  c};
    seq.bases_.push_back(*n);
  }
  return seq;
}

LenientParseResult NucleotideSequence::parse_lenient(
    SeqKind kind, std::string_view text) {
  // First compatible base per IUPAC ambiguity letter.
  static constexpr struct {
    char letter;
    Nucleotide base;
  } kIupac[] = {
      {'N', Nucleotide::A}, {'R', Nucleotide::A}, {'Y', Nucleotide::C},
      {'S', Nucleotide::C}, {'W', Nucleotide::A}, {'K', Nucleotide::G},
      {'M', Nucleotide::A}, {'B', Nucleotide::C}, {'D', Nucleotide::A},
      {'H', Nucleotide::A}, {'V', Nucleotide::A},
  };

  LenientParseResult result;
  result.sequence = NucleotideSequence{kind};
  result.sequence.bases_.reserve(text.size());
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (const auto n = nucleotide_from_char(c)) {
      result.sequence.bases_.push_back(*n);
      continue;
    }
    const char upper =
        static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    bool handled = false;
    for (const auto& entry : kIupac) {
      if (entry.letter == upper) {
        result.sequence.bases_.push_back(entry.base);
        ++result.ambiguous;
        handled = true;
        break;
      }
    }
    if (!handled)
      throw std::invalid_argument{
          std::string{"invalid nucleotide letter: "} + c};
  }
  return result;
}

void NucleotideSequence::append(const NucleotideSequence& other) {
  bases_.insert(bases_.end(), other.bases_.begin(), other.bases_.end());
}

NucleotideSequence NucleotideSequence::subsequence(std::size_t pos,
                                                   std::size_t len) const {
  NucleotideSequence out{kind_};
  if (pos >= bases_.size()) return out;
  const std::size_t end = std::min(bases_.size(), pos + len);
  out.bases_.assign(bases_.begin() + static_cast<std::ptrdiff_t>(pos),
                    bases_.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

std::string NucleotideSequence::to_string() const {
  std::string text;
  text.reserve(bases_.size());
  const bool rna = kind_ == SeqKind::Rna;
  for (Nucleotide n : bases_)
    text.push_back(rna ? to_char_rna(n) : to_char_dna(n));
  return text;
}

NucleotideSequence NucleotideSequence::transcribed() const {
  return NucleotideSequence{SeqKind::Rna, bases_};
}

NucleotideSequence NucleotideSequence::reverse_complement() const {
  NucleotideSequence out{kind_};
  out.bases_.reserve(bases_.size());
  for (auto it = bases_.rbegin(); it != bases_.rend(); ++it)
    out.bases_.push_back(complement(*it));
  return out;
}

ProteinSequence ProteinSequence::parse(std::string_view text) {
  ProteinSequence seq;
  seq.residues_.reserve(text.size());
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const auto aa = amino_acid_from_char(c);
    if (!aa)
      throw std::invalid_argument{std::string{"invalid amino acid letter: "} +
                                  c};
    seq.residues_.push_back(*aa);
  }
  return seq;
}

ProteinSequence ProteinSequence::subsequence(std::size_t pos,
                                             std::size_t len) const {
  ProteinSequence out;
  if (pos >= residues_.size()) return out;
  const std::size_t end = std::min(residues_.size(), pos + len);
  out.residues_.assign(residues_.begin() + static_cast<std::ptrdiff_t>(pos),
                       residues_.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

std::string ProteinSequence::to_string() const {
  std::string text;
  text.reserve(residues_.size());
  for (AminoAcid aa : residues_) text.push_back(to_char(aa));
  return text;
}

}  // namespace fabp::bio
