#include "fabp/bio/alphabet.hpp"

#include <cctype>

namespace fabp::bio {

char to_char_rna(Nucleotide n) noexcept {
  constexpr std::array<char, 4> letters{'A', 'C', 'G', 'U'};
  return letters[code(n)];
}

char to_char_dna(Nucleotide n) noexcept {
  constexpr std::array<char, 4> letters{'A', 'C', 'G', 'T'};
  return letters[code(n)];
}

std::optional<Nucleotide> nucleotide_from_char(char c) noexcept {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return Nucleotide::A;
    case 'C': return Nucleotide::C;
    case 'G': return Nucleotide::G;
    case 'U':
    case 'T': return Nucleotide::U;
    default: return std::nullopt;
  }
}

namespace {
constexpr std::array<char, kAminoAcidCount> kOneLetter{
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I',
    'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y', 'V', '*'};

constexpr std::array<std::string_view, kAminoAcidCount> kThreeLetter{
    "Ala", "Arg", "Asn", "Asp", "Cys", "Gln", "Glu", "Gly", "His", "Ile",
    "Leu", "Lys", "Met", "Phe", "Pro", "Ser", "Thr", "Trp", "Tyr", "Val",
    "Ter"};
}  // namespace

char to_char(AminoAcid aa) noexcept { return kOneLetter[index(aa)]; }

std::string_view to_three_letter(AminoAcid aa) noexcept {
  return kThreeLetter[index(aa)];
}

std::optional<AminoAcid> amino_acid_from_char(char c) noexcept {
  const char upper =
      static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  for (AminoAcid aa : kAllAminoAcids)
    if (kOneLetter[index(aa)] == upper) return aa;
  return std::nullopt;
}

}  // namespace fabp::bio
