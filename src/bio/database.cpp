#include "fabp/bio/database.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace fabp::bio {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'B', 'P', 'D', 'B', '1', '\n'};

void write_u64(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  out.write(bytes, 8);
}

std::uint64_t read_u64(std::istream& in) {
  char bytes[8];
  in.read(bytes, 8);
  if (!in) throw std::runtime_error{"ReferenceDatabase: truncated stream"};
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  return value;
}

void write_string(std::ostream& out, const std::string& text) {
  write_u64(out, text.size());
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string read_string(std::istream& in) {
  const std::uint64_t size = read_u64(in);
  if (size > (1u << 20))
    throw std::runtime_error{"ReferenceDatabase: implausible name length"};
  std::string text(size, '\0');
  in.read(text.data(), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error{"ReferenceDatabase: truncated stream"};
  return text;
}

}  // namespace

std::size_t ReferenceDatabase::add(std::string name,
                                   const NucleotideSequence& sequence) {
  Record record;
  record.name = std::move(name);
  record.begin = packed_.size();
  record.length = sequence.size();
  for (Nucleotide n : sequence) packed_.push_back(n);
  for (std::size_t i = 0; i < kGuardElements; ++i)
    packed_.push_back(Nucleotide::A);
  total_bases_ += sequence.size();
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

ReferenceDatabase ReferenceDatabase::from_fasta(
    const std::vector<FastaRecord>& records, bool lenient) {
  ReferenceDatabase db;
  for (const FastaRecord& record : records) {
    if (lenient) {
      auto parsed =
          NucleotideSequence::parse_lenient(SeqKind::Dna, record.sequence);
      db.ambiguous_ += parsed.ambiguous;
      db.add(record.id, parsed.sequence);
    } else {
      db.add(record.id,
             NucleotideSequence::parse(SeqKind::Dna, record.sequence));
    }
  }
  return db;
}

std::optional<ReferenceDatabase::Location> ReferenceDatabase::locate(
    std::size_t global_position) const {
  // Binary search the last record with begin <= position.
  const auto it = std::upper_bound(
      records_.begin(), records_.end(), global_position,
      [](std::size_t pos, const Record& r) { return pos < r.begin; });
  if (it == records_.begin()) return std::nullopt;
  const Record& record = *(it - 1);
  const std::size_t offset = global_position - record.begin;
  if (offset >= record.length) return std::nullopt;  // inside the guard
  return Location{static_cast<std::size_t>(&record - records_.data()),
                  offset};
}

bool ReferenceDatabase::window_within_record(std::size_t pos,
                                             std::size_t len) const {
  if (len == 0) return false;
  const auto begin = locate(pos);
  if (!begin) return false;
  const Record& record = records_[begin->record];
  return begin->offset + len <= record.length;
}

void ReferenceDatabase::save(std::ostream& out) const {
  out.write(kMagic, sizeof kMagic);
  write_u64(out, records_.size());
  for (const Record& record : records_) {
    write_string(out, record.name);
    write_u64(out, record.begin);
    write_u64(out, record.length);
  }
  write_u64(out, packed_.size());
  const auto words = packed_.words();
  for (std::uint64_t word : words) write_u64(out, word);
  if (!out) throw std::runtime_error{"ReferenceDatabase: write failed"};
}

void ReferenceDatabase::save_file(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error{"cannot write " + path};
  save(out);
}

ReferenceDatabase ReferenceDatabase::load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error{"ReferenceDatabase: bad magic"};

  ReferenceDatabase db;
  const std::uint64_t n_records = read_u64(in);
  db.records_.reserve(n_records);
  for (std::uint64_t r = 0; r < n_records; ++r) {
    Record record;
    record.name = read_string(in);
    record.begin = read_u64(in);
    record.length = read_u64(in);
    db.total_bases_ += record.length;
    db.records_.push_back(std::move(record));
  }
  const std::uint64_t elements = read_u64(in);
  PackedNucleotides packed;
  // Rebuild the packed store word-by-word.
  const std::uint64_t n_words = (elements + kElementsPerWord - 1) /
                                kElementsPerWord;
  std::vector<Nucleotide> bases;
  bases.reserve(elements);
  for (std::uint64_t w = 0; w < n_words; ++w) {
    const std::uint64_t word = read_u64(in);
    for (std::size_t k = 0; k < kElementsPerWord; ++k) {
      const std::uint64_t i = w * kElementsPerWord + k;
      if (i >= elements) break;
      bases.push_back(nucleotide_from_code(
          static_cast<std::uint8_t>((word >> (2 * k)) & 3)));
    }
  }
  db.packed_ = PackedNucleotides{bases};

  // Structural validation.
  for (const Record& record : db.records_)
    if (record.begin + record.length > db.packed_.size())
      throw std::runtime_error{"ReferenceDatabase: record out of bounds"};
  return db;
}

ReferenceDatabase ReferenceDatabase::load_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error{"cannot open " + path};
  return load(in);
}

}  // namespace fabp::bio
