#include "fabp/bio/mutation.hpp"

#include <algorithm>

namespace fabp::bio {

namespace {

Nucleotide different_base(Nucleotide original, util::Xoshiro256& rng) {
  // Draw from the three other codes by offsetting 1..3 in code space.
  const auto offset = static_cast<std::uint8_t>(1 + rng.bounded(3));
  return nucleotide_from_code(
      static_cast<std::uint8_t>((code(original) + offset) & 0b11));
}

Nucleotide random_base(util::Xoshiro256& rng) {
  return nucleotide_from_code(static_cast<std::uint8_t>(rng.bounded(4)));
}

}  // namespace

MutationResult mutate(const NucleotideSequence& seq, const MutationParams& p,
                      util::Xoshiro256& rng) {
  MutationResult result;
  result.sequence = NucleotideSequence{seq.kind()};

  // Draw indel events first so their placement does not depend on how many
  // substitutions happened (keeps the two processes independent, as in the
  // underlying biology).
  const double lambda =
      p.indel_events_per_kb * static_cast<double>(seq.size()) / 1000.0;
  const std::uint64_t events = rng.poisson(lambda);

  // Event descriptor: position (pre-mutation index), insert?, length.
  struct Event {
    std::size_t pos;
    bool insertion;
    std::size_t length;
  };
  std::vector<Event> indels;
  indels.reserve(events);
  for (std::uint64_t e = 0; e < events; ++e) {
    const std::size_t pos = seq.empty() ? 0 : rng.bounded(seq.size());
    const bool ins = rng.chance(p.insertion_fraction);
    const std::size_t len = 1 + rng.geometric(std::clamp(p.indel_length_p,
                                                         0.01, 1.0));
    indels.push_back(Event{pos, ins, len});
  }
  std::sort(indels.begin(), indels.end(),
            [](const Event& a, const Event& b) { return a.pos < b.pos; });
  result.summary.indel_events = indels.size();

  std::size_t next_event = 0;
  std::size_t skip_remaining = 0;  // active deletion run
  for (std::size_t i = 0; i < seq.size(); ++i) {
    while (next_event < indels.size() && indels[next_event].pos == i) {
      const Event& ev = indels[next_event++];
      if (ev.insertion) {
        for (std::size_t k = 0; k < ev.length; ++k)
          result.sequence.push_back(random_base(rng));
        result.summary.inserted_bases += ev.length;
      } else {
        skip_remaining += ev.length;
      }
    }
    if (skip_remaining > 0) {
      --skip_remaining;
      ++result.summary.deleted_bases;
      continue;
    }
    Nucleotide base = seq[i];
    if (rng.chance(p.substitution_rate)) {
      base = different_base(base, rng);
      ++result.summary.substitutions;
    }
    result.sequence.push_back(base);
  }
  return result;
}

ProteinSequence mutate_protein(const ProteinSequence& seq,
                               double substitution_rate,
                               util::Xoshiro256& rng) {
  ProteinSequence out;
  for (AminoAcid aa : seq) {
    if (aa != AminoAcid::Stop && rng.chance(substitution_rate)) {
      AminoAcid replacement = aa;
      while (replacement == aa) {
        // 20 standard residues; never substitute *into* Stop.
        replacement = kAllAminoAcids[rng.bounded(kAminoAcidCount - 1)];
      }
      aa = replacement;
    }
    out.push_back(aa);
  }
  return out;
}

}  // namespace fabp::bio
