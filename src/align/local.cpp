#include "fabp/align/local.hpp"

#include <sstream>

namespace fabp::align {

std::string Alignment::cigar() const {
  std::ostringstream os;
  std::size_t run = 0;
  char current = 0;
  for (EditOp op : ops) {
    const char c = static_cast<char>(op);
    if (c == current) {
      ++run;
      continue;
    }
    if (run != 0) os << run << current;
    current = c;
    run = 1;
  }
  if (run != 0) os << run << current;
  return os.str();
}

Alignment smith_waterman(const bio::ProteinSequence& query,
                         const bio::ProteinSequence& ref,
                         const SubstitutionMatrix& matrix, GapPenalties gaps) {
  return detail::smith_waterman_impl<bio::AminoAcid>(
      query.residues(), ref.residues(), matrix, gaps);
}

int smith_waterman_score(const bio::ProteinSequence& query,
                         const bio::ProteinSequence& ref,
                         const SubstitutionMatrix& matrix, GapPenalties gaps) {
  return detail::smith_waterman_score_impl<bio::AminoAcid>(
      query.residues(), ref.residues(), matrix, gaps);
}

int needleman_wunsch_score(const bio::ProteinSequence& query,
                           const bio::ProteinSequence& ref,
                           const SubstitutionMatrix& matrix,
                           GapPenalties gaps) {
  return detail::needleman_wunsch_score_impl<bio::AminoAcid>(
      query.residues(), ref.residues(), matrix, gaps);
}

Alignment smith_waterman(const bio::NucleotideSequence& query,
                         const bio::NucleotideSequence& ref,
                         NucleotideScoring scoring, GapPenalties gaps) {
  return detail::smith_waterman_impl<bio::Nucleotide>(
      query.bases(), ref.bases(), scoring, gaps);
}

int smith_waterman_score(const bio::NucleotideSequence& query,
                         const bio::NucleotideSequence& ref,
                         NucleotideScoring scoring, GapPenalties gaps) {
  return detail::smith_waterman_score_impl<bio::Nucleotide>(
      query.bases(), ref.bases(), scoring, gaps);
}

int needleman_wunsch_score(const bio::NucleotideSequence& query,
                           const bio::NucleotideSequence& ref,
                           NucleotideScoring scoring, GapPenalties gaps) {
  return detail::needleman_wunsch_score_impl<bio::Nucleotide>(
      query.bases(), ref.bases(), scoring, gaps);
}

}  // namespace fabp::align
