#include "fabp/align/sliding.hpp"

#include <algorithm>
#include <mutex>

namespace fabp::align {

std::uint32_t sliding_score_at(const bio::NucleotideSequence& query,
                               const bio::NucleotideSequence& ref,
                               std::size_t position) {
  std::uint32_t score = 0;
  for (std::size_t i = 0; i < query.size(); ++i)
    if (query[i] == ref[position + i]) ++score;
  return score;
}

std::vector<SlidingHit> sliding_hits(const bio::NucleotideSequence& query,
                                     const bio::NucleotideSequence& ref,
                                     std::uint32_t threshold) {
  std::vector<SlidingHit> hits;
  if (query.empty() || ref.size() < query.size()) return hits;
  const std::size_t positions = ref.size() - query.size() + 1;
  for (std::size_t p = 0; p < positions; ++p) {
    const std::uint32_t score = sliding_score_at(query, ref, p);
    if (score >= threshold) hits.push_back(SlidingHit{p, score});
  }
  return hits;
}

std::vector<SlidingHit> sliding_hits_parallel(
    const bio::NucleotideSequence& query, const bio::NucleotideSequence& ref,
    std::uint32_t threshold, util::ThreadPool& pool) {
  std::vector<SlidingHit> hits;
  if (query.empty() || ref.size() < query.size()) return hits;
  const std::size_t positions = ref.size() - query.size() + 1;

  std::mutex merge_mutex;
  pool.parallel_chunks(0, positions, [&](std::size_t lo, std::size_t hi) {
    std::vector<SlidingHit> local;
    for (std::size_t p = lo; p < hi; ++p) {
      const std::uint32_t score = sliding_score_at(query, ref, p);
      if (score >= threshold) local.push_back(SlidingHit{p, score});
    }
    const std::lock_guard lock{merge_mutex};
    hits.insert(hits.end(), local.begin(), local.end());
  });
  std::sort(hits.begin(), hits.end());
  return hits;
}

}  // namespace fabp::align
