#include "fabp/align/scoring.hpp"

#include <algorithm>
#include <string_view>

namespace fabp::align {

namespace {

// BLOSUM62 in the canonical publication order A R N D C Q E G H I L K M F P
// S T W Y V; remapped below onto the AminoAcid enum order.
constexpr std::string_view kBlosumOrder = "ARNDCQEGHILKMFPSTWYV";

constexpr std::array<std::array<std::int8_t, 20>, 20> kBlosum62{{
    {{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0}},
    {{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3}},
    {{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3}},
    {{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3}},
    {{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1}},
    {{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2}},
    {{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2}},
    {{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3}},
    {{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3}},
    {{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3}},
    {{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1}},
    {{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2}},
    {{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1}},
    {{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1}},
    {{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2}},
    {{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2}},
    {{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0}},
    {{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3}},
    {{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1}},
    {{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4}},
}};

}  // namespace

const SubstitutionMatrix& SubstitutionMatrix::blosum62() {
  static const SubstitutionMatrix instance = [] {
    SubstitutionMatrix m;
    std::array<bio::AminoAcid, 20> order{};
    for (std::size_t i = 0; i < 20; ++i)
      order[i] = *bio::amino_acid_from_char(kBlosumOrder[i]);

    // Default everything to the Stop convention first.
    for (auto& row : m.table_) row.fill(-4);
    m.table_[bio::index(bio::AminoAcid::Stop)]
            [bio::index(bio::AminoAcid::Stop)] = 1;

    for (std::size_t i = 0; i < 20; ++i)
      for (std::size_t j = 0; j < 20; ++j)
        m.table_[bio::index(order[i])][bio::index(order[j])] =
            kBlosum62[i][j];
    return m;
  }();
  return instance;
}

int SubstitutionMatrix::max_score() const noexcept {
  int best = table_[0][0];
  for (const auto& row : table_)
    for (std::int8_t v : row) best = std::max(best, static_cast<int>(v));
  return best;
}

}  // namespace fabp::align
