#include "fabp/align/extension.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace fabp::align {

UngappedExtension ungapped_extend(const bio::ProteinSequence& query,
                                  const bio::ProteinSequence& ref,
                                  std::size_t query_pos, std::size_t ref_pos,
                                  std::size_t seed_len,
                                  const SubstitutionMatrix& matrix,
                                  int x_drop) {
  UngappedExtension out;
  seed_len = std::min({seed_len, query.size() - query_pos,
                       ref.size() - ref_pos});

  int score = 0;
  for (std::size_t k = 0; k < seed_len; ++k)
    score += matrix(query[query_pos + k], ref[ref_pos + k]);

  // Extend right from the end of the seed.
  int best = score;
  std::size_t best_right = seed_len;
  {
    int running = score;
    std::size_t k = seed_len;
    while (query_pos + k < query.size() && ref_pos + k < ref.size()) {
      running += matrix(query[query_pos + k], ref[ref_pos + k]);
      ++k;
      if (running > best) {
        best = running;
        best_right = k;
      } else if (best - running > x_drop) {
        break;
      }
    }
  }

  // Extend left from the start of the seed.
  std::size_t best_left = 0;
  {
    int running = best;
    int best_with_left = best;
    std::size_t k = 0;
    while (k < query_pos && k < ref_pos) {
      ++k;
      running += matrix(query[query_pos - k], ref[ref_pos - k]);
      if (running > best_with_left) {
        best_with_left = running;
        best_left = k;
      } else if (best_with_left - running > x_drop) {
        break;
      }
    }
    best = best_with_left;
  }

  out.score = best;
  out.query_begin = query_pos - best_left;
  out.ref_begin = ref_pos - best_left;
  out.query_end = query_pos + best_right;
  out.ref_end = ref_pos + best_right;
  return out;
}

int banded_local_score(const bio::ProteinSequence& query,
                       const bio::ProteinSequence& ref,
                       std::size_t query_pos, std::size_t ref_pos,
                       std::size_t bandwidth, const SubstitutionMatrix& matrix,
                       GapPenalties gaps) {
  const std::size_t q = query.size();
  const std::size_t r = ref.size();
  if (q == 0 || r == 0) return 0;
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

  // Restrict the DP to the reference window the band can actually touch:
  // columns j-1 in [d0 - band, q + d0 + band).  Without this, every
  // extension pays O(|ref|) row initialization, which turns a database
  // scan quadratic.
  {
    const std::ptrdiff_t d0_full = static_cast<std::ptrdiff_t>(ref_pos) -
                                   static_cast<std::ptrdiff_t>(query_pos);
    const auto bandp = static_cast<std::ptrdiff_t>(bandwidth);
    const std::size_t w_begin = static_cast<std::size_t>(
        std::max<std::ptrdiff_t>(0, d0_full - bandp));
    const std::size_t w_end = static_cast<std::size_t>(std::clamp<
        std::ptrdiff_t>(static_cast<std::ptrdiff_t>(q) + d0_full + bandp + 1,
                        0, static_cast<std::ptrdiff_t>(r)));
    if (w_begin > 0 || w_end < r) {
      if (w_begin >= w_end) return 0;  // band entirely outside the ref
      const bio::ProteinSequence window =
          ref.subsequence(w_begin, w_end - w_begin);
      return banded_local_score(query, window, query_pos,
                                ref_pos - w_begin, bandwidth, matrix, gaps);
    }
  }

  // Center diagonal d0 = ref_pos - query_pos; allowed j-i in
  // [d0 - bandwidth, d0 + bandwidth].  DP over the full row extent but cells
  // outside the band stay at -inf (local zero-floor applies inside only).
  const std::ptrdiff_t d0 = static_cast<std::ptrdiff_t>(ref_pos) -
                            static_cast<std::ptrdiff_t>(query_pos);
  const auto band = static_cast<std::ptrdiff_t>(bandwidth);

  std::vector<int> h(r + 1, kNegInf), e(r + 1, kNegInf);
  // Row 0: only cells within the band of i=0 are reachable local starts.
  for (std::size_t j = 0; j <= r; ++j) {
    const std::ptrdiff_t d = static_cast<std::ptrdiff_t>(j);
    if (d >= d0 - band && d <= d0 + band) h[j] = 0;
  }

  int best = 0;
  for (std::size_t i = 1; i <= q; ++i) {
    const std::ptrdiff_t lo_d = d0 - band;
    const std::ptrdiff_t hi_d = d0 + band;
    const std::ptrdiff_t si = static_cast<std::ptrdiff_t>(i);
    const std::ptrdiff_t j_lo_s = std::max<std::ptrdiff_t>(1, si + lo_d);
    const std::ptrdiff_t j_hi_s =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(r), si + hi_d);
    if (j_hi_s < j_lo_s) {
      // Band entirely outside this row's columns: left of column 1 means
      // later rows may re-enter (the band drifts right with i); right of
      // column r means no row will.
      if (si + lo_d > static_cast<std::ptrdiff_t>(r)) break;
      // Keep column 0 current for the next row's diagonal predecessor:
      // it is a zero local start iff its own diagonal is in band.
      h[0] = (-si >= lo_d && -si <= hi_d) ? 0 : kNegInf;
      continue;
    }
    const auto j_lo = static_cast<std::size_t>(j_lo_s);
    const auto j_hi = static_cast<std::size_t>(j_hi_s);

    int h_diag_prev = (j_lo >= 1) ? h[j_lo - 1] : kNegInf;
    int f = kNegInf;
    // The cell left of the band start belongs to this row: it is a valid
    // zero-scoring local start if its own diagonal is inside the band
    // (only possible at column 0 after clamping), unreachable otherwise.
    {
      const std::ptrdiff_t d_left =
          static_cast<std::ptrdiff_t>(j_lo) - 1 - si;
      h[j_lo - 1] = (d_left >= lo_d && d_left <= hi_d) ? 0 : kNegInf;
    }
    int h_left = h[j_lo - 1];

    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      e[j] = std::max(h[j] == kNegInf ? kNegInf
                                      : h[j] - gaps.open - gaps.extend,
                      e[j] == kNegInf ? kNegInf : e[j] - gaps.extend);
      f = std::max(h_left == kNegInf ? kNegInf
                                     : h_left - gaps.open - gaps.extend,
                   f == kNegInf ? kNegInf : f - gaps.extend);
      const int diag = h_diag_prev == kNegInf
                           ? kNegInf
                           : h_diag_prev + matrix(query[i - 1], ref[j - 1]);
      int v = 0;  // local alignment floor inside the band
      v = std::max({v, diag, e[j], f});
      h_diag_prev = h[j];
      h[j] = v;
      h_left = v;
      best = std::max(best, v);
    }
    // Invalidate the cell right of the band so next row's diag is correct.
    if (j_hi + 1 <= r) {
      h[j_hi + 1] = kNegInf;
      e[j_hi + 1] = kNegInf;
    }
  }
  return best;
}

}  // namespace fabp::align
