#include "fabp/hw/scheduler.hpp"

#include <algorithm>

namespace fabp::hw {

std::vector<DeviceInvocation> pack_invocations(
    std::span<const DeviceTaskDesc> tasks, const DeviceBatchConfig& config) {
  const std::size_t slots = std::max<std::size_t>(1, config.invocation_tasks);
  const std::size_t payload_cap =
      std::max<std::size_t>(1, config.invocation_payload_bytes);

  std::vector<DeviceInvocation> out;
  for (const DeviceTaskDesc& task : tasks) {
    const bool oversized = task.payload_bytes > payload_cap;
    const bool open =
        !out.empty() && out.back().records.size() < slots &&
        out.back().payload_bytes + task.payload_bytes <= payload_cap;
    if (!open || oversized) out.emplace_back();
    DeviceInvocation& inv = out.back();
    inv.records.push_back(ControlRecord{
        task.task, static_cast<std::uint32_t>(inv.payload_bytes),
        task.payload_bytes, task.threshold});
    inv.payload_bytes += task.payload_bytes;
    // An oversized task streams through the buffer alone: its payload
    // already exceeds the cap, so the next task cannot join it.
  }
  return out;
}

PipelineTimeline pipeline_timeline(std::span<const PipelineStage> stages,
                                   std::size_t buffer_depth) {
  PipelineTimeline out;
  const std::size_t depth = std::max<std::size_t>(1, buffer_depth);
  std::vector<double> transfer_end(stages.size(), 0.0);
  std::vector<double> compute_end(stages.size(), 0.0);

  for (std::size_t k = 0; k < stages.size(); ++k) {
    const PipelineStage& stage = stages[k];
    out.serial_s += stage.transfer_s + stage.compute_s;
    out.transfer_busy_s += stage.transfer_s;
    out.compute_busy_s += stage.compute_s;

    // The DMA engine is serial and needs a free buffer: the one invocation
    // k reuses is released when compute of k-depth retires.
    double t_start = k > 0 ? transfer_end[k - 1] : 0.0;
    if (k >= depth) t_start = std::max(t_start, compute_end[k - depth]);
    transfer_end[k] = t_start + stage.transfer_s;

    const double ready = k > 0 ? compute_end[k - 1] : 0.0;
    const double c_start = std::max(transfer_end[k], ready);
    out.compute_stall_s += c_start - ready;
    compute_end[k] = c_start + stage.compute_s;
  }
  out.total_s = stages.empty() ? 0.0 : compute_end.back();
  return out;
}

}  // namespace fabp::hw
