#include "fabp/hw/optimize.hpp"

#include <algorithm>
#include <optional>

namespace fabp::hw {

namespace {

/// Value lattice entry for an old net during the rebuild.
struct Binding {
  std::optional<bool> constant;  // known constant value
  NetId net = kInvalidNet;       // otherwise: the new netlist's net
};

}  // namespace

OptimizeResult optimize(const Netlist& input, std::span<const NetId> keep) {
  OptimizeResult result;
  result.stats.luts_before = input.stats().luts;
  result.stats.ffs_before = input.stats().ffs;

  // ---- Phase 1: liveness (backward over creation order). -----------------
  std::vector<bool> net_live(input.net_count(), false);
  for (NetId net : keep) net_live.at(net) = true;
  for (std::size_t i = input.cell_count(); i-- > 0;) {
    const auto cell = input.cell(i);
    if (!net_live[cell.output]) continue;
    for (NetId in : cell.inputs) net_live[in] = true;
  }

  // ---- Phase 2: forward rebuild with constant folding. -------------------
  std::vector<Binding> bindings(input.net_count());
  Netlist& out = result.netlist;

  // Lazily materialized constant nets in the new netlist.
  NetId const_nets[2] = {kInvalidNet, kInvalidNet};
  const auto const_net = [&](bool value) {
    NetId& slot = const_nets[value ? 1 : 0];
    if (slot == kInvalidNet) slot = out.add_const(value);
    return slot;
  };
  const auto as_net = [&](const Binding& b) {
    return b.constant ? const_net(*b.constant) : b.net;
  };

  for (std::size_t i = 0; i < input.cell_count(); ++i) {
    const auto cell = input.cell(i);
    Binding& bound = bindings[cell.output];

    switch (cell.kind) {
      case CellKind::Input:
        // Inputs are always re-emitted so caller-side input ordering (and
        // therefore set_input via net_map) is preserved.
        bound.net = out.add_input();
        break;

      case CellKind::Const:
        bound.constant = cell.const_value;
        break;

      case CellKind::Lut: {
        if (!net_live[cell.output]) {
          ++result.stats.dead_cells;
          break;
        }
        // Partition inputs into known constants and live signals.
        std::vector<std::size_t> unknown;  // positions into cell.inputs
        for (std::size_t k = 0; k < cell.inputs.size(); ++k)
          if (!bindings[cell.inputs[k]].constant) unknown.push_back(k);

        // Specialize the INIT over the unknown inputs only.
        const std::size_t r = unknown.size();
        std::uint64_t init = 0;
        for (std::uint64_t assign = 0; assign < (1ULL << r); ++assign) {
          std::uint8_t index = 0;
          for (std::size_t k = 0; k < cell.inputs.size(); ++k) {
            const Binding& b = bindings[cell.inputs[k]];
            bool bit;
            if (b.constant) {
              bit = *b.constant;
            } else {
              const std::size_t pos = static_cast<std::size_t>(
                  std::find(unknown.begin(), unknown.end(), k) -
                  unknown.begin());
              bit = (assign >> pos) & 1;
            }
            if (bit) index |= static_cast<std::uint8_t>(1u << k);
          }
          if (cell.lut.eval(index)) init |= 1ULL << assign;
        }

        const std::uint64_t full = (r >= 6) ? ~0ULL : ((1ULL << (1ULL << r)) - 1);
        if ((init & full) == 0) {
          bound.constant = false;
          ++result.stats.folded_constants;
          break;
        }
        if ((init & full) == full) {
          bound.constant = true;
          ++result.stats.folded_constants;
          break;
        }
        // Identity of a single remaining input? (init pattern of
        // projection onto variable p: bit set iff assign has bit p.)
        bool aliased = false;
        for (std::size_t p = 0; p < r && !aliased; ++p) {
          std::uint64_t projection = 0;
          for (std::uint64_t assign = 0; assign < (1ULL << r); ++assign)
            if ((assign >> p) & 1) projection |= 1ULL << assign;
          if ((init & full) == projection) {
            bound.net = bindings[cell.inputs[unknown[p]]].net;
            ++result.stats.collapsed_aliases;
            aliased = true;
          }
        }
        if (aliased) break;

        std::vector<NetId> new_inputs;
        new_inputs.reserve(r);
        for (std::size_t p = 0; p < r; ++p)
          new_inputs.push_back(bindings[cell.inputs[unknown[p]]].net);
        bound.net = out.add_lut(Lut6{init}, new_inputs);
        break;
      }

      case CellKind::Carry: {
        if (!net_live[cell.output]) {
          ++result.stats.dead_cells;
          break;
        }
        // majority(a, b, cin) with known legs simplifies; symmetric, so
        // sort the bindings into constants and signals.
        std::vector<bool> consts;
        std::vector<NetId> signals;
        for (NetId in : cell.inputs) {
          const Binding& b = bindings[in];
          if (b.constant)
            consts.push_back(*b.constant);
          else
            signals.push_back(b.net);
        }
        const std::size_t ones = static_cast<std::size_t>(
            std::count(consts.begin(), consts.end(), true));
        if (signals.empty()) {
          bound.constant = ones >= 2;
          ++result.stats.folded_constants;
        } else if (signals.size() == 1) {
          if (ones == 2) {
            bound.constant = true;
            ++result.stats.folded_constants;
          } else if (ones == 0) {
            bound.constant = false;
            ++result.stats.folded_constants;
          } else {  // maj(a, 1, 0) == a
            bound.net = signals[0];
            ++result.stats.collapsed_aliases;
          }
        } else if (signals.size() == 2) {
          // maj(a, b, 0) = a&b ; maj(a, b, 1) = a|b — one small LUT.
          const Lut6 lut = ones == 0
                               ? Lut6::from_function([](std::uint8_t idx) {
                                   return (idx & 3) == 3;
                                 })
                               : Lut6::from_function([](std::uint8_t idx) {
                                   return (idx & 3) != 0;
                                 });
          bound.net = out.add_lut(lut, {signals[0], signals[1]});
        } else {
          bound.net = out.add_carry(signals[0], signals[1], signals[2]);
        }
        break;
      }

      case CellKind::Ff: {
        if (!net_live[cell.output]) {
          ++result.stats.dead_cells;
          break;
        }
        const Binding& d = bindings[cell.inputs[0]];
        if (d.constant && *d.constant == cell.const_value) {
          // Register of a constant matching its reset value: constant.
          bound.constant = *d.constant;
          ++result.stats.folded_constants;
        } else {
          bound.net = out.add_ff(as_net(d), cell.const_value);
        }
        break;
      }
    }
  }

  // ---- net_map: every old net to a usable new net. -----------------------
  result.net_map.assign(input.net_count(), kInvalidNet);
  for (std::size_t n = 0; n < input.net_count(); ++n) {
    const Binding& b = bindings[n];
    if (b.constant)
      result.net_map[n] = const_net(*b.constant);
    else
      result.net_map[n] = b.net;  // may stay invalid for dead nets
  }

  result.stats.luts_after = out.stats().luts;
  result.stats.ffs_after = out.stats().ffs;
  return result;
}

}  // namespace fabp::hw
