#include "fabp/hw/lut.hpp"

#include <iomanip>
#include <sstream>

namespace fabp::hw {

std::string Lut6::init_string() const {
  std::ostringstream os;
  os << "64'h" << std::hex << std::uppercase << std::setfill('0')
     << std::setw(16) << init_;
  return os.str();
}

}  // namespace fabp::hw
