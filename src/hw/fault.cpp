#include "fabp/hw/fault.hpp"

#include <algorithm>

namespace fabp::hw {

namespace {

constexpr std::size_t kWordsPerBeat = kAxiDataBits / 64;  // 8

// Beat index of the next event for a per-beat Bernoulli(p), starting the
// search at `from`: geometric skip-sampling, O(1) per event.
std::size_t next_event_beat(util::Xoshiro256& rng, double p,
                            std::size_t from) {
  if (p <= 0.0) return ~std::size_t{0};
  if (p >= 1.0) return from;
  return from + rng.geometric(p);
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::DropBeat: return "drop-beat";
    case FaultKind::DupBeat: return "dup-beat";
    case FaultKind::StallStorm: return "stall-storm";
    case FaultKind::TransferFail: return "transfer-fail";
    case FaultKind::ReadbackFlip: return "readback-flip";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig& config, std::uint64_t stream)
    : config_{config},
      transfer_rng_{util::SplitMix64{config.seed ^ (stream * 4 + 0)}.next()},
      data_rng_{util::SplitMix64{config.seed ^ (stream * 4 + 1)}.next()},
      stall_rng_{util::SplitMix64{config.seed ^ (stream * 4 + 2)}.next()},
      readback_rng_{util::SplitMix64{config.seed ^ (stream * 4 + 3)}.next()} {}

bool FaultInjector::transfer_fails() {
  if (!transfer_rng_.chance(config_.transfer_fail_rate)) return false;
  log_.push_back(FaultEvent{FaultKind::TransferFail, 0, 0, 0});
  return true;
}

bool FaultInjector::readback_corrupts(std::uint32_t& bit) {
  if (!readback_rng_.chance(config_.readback_flip_rate)) return false;
  bit = static_cast<std::uint32_t>(readback_rng_.next() & 0xFFFFFFFFu);
  log_.push_back(FaultEvent{FaultKind::ReadbackFlip, 0, bit, 0});
  return true;
}

std::vector<FaultEvent> FaultInjector::data_events(std::size_t beats) {
  std::vector<FaultEvent> events;
  const double flip_per_beat =
      std::min(1.0, config_.flip_rate * static_cast<double>(kAxiDataBits));
  struct Lane {
    FaultKind kind;
    double rate;
    std::size_t next;
  };
  Lane lanes[3] = {
      {FaultKind::BitFlip, flip_per_beat, 0},
      {FaultKind::DropBeat, config_.drop_rate, 0},
      {FaultKind::DupBeat, config_.dup_rate, 0},
  };
  for (Lane& lane : lanes)
    lane.next = next_event_beat(data_rng_, lane.rate, 0);

  // Merge the three lanes in beat order so the schedule (and therefore the
  // RNG consumption) is a deterministic function of the seed alone.
  for (;;) {
    Lane* first = nullptr;
    for (Lane& lane : lanes)
      if (lane.next < beats && (first == nullptr || lane.next < first->next))
        first = &lane;
    if (first == nullptr) break;
    FaultEvent event{first->kind, first->next, 0, 0};
    if (first->kind == FaultKind::BitFlip)
      event.bit = static_cast<std::uint32_t>(
          data_rng_.bounded(kAxiDataBits));
    events.push_back(event);
    first->next = next_event_beat(data_rng_, first->rate, first->next + 1);
  }
  log_.insert(log_.end(), events.begin(), events.end());
  return events;
}

std::size_t FaultInjector::storm_cycles(std::size_t beat) {
  if (!stall_rng_.chance(config_.stall_rate)) return 0;
  const std::size_t cycles = std::max<std::size_t>(1, config_.stall_cycles);
  log_.push_back(FaultEvent{FaultKind::StallStorm, beat, 0, cycles});
  return cycles;
}

bool FaultyAxiStream::advance() {
  if (pending_ > 0) {
    --pending_;
    ++injected_;
    return false;
  }
  const bool valid = inner_.advance();
  if (valid && injector_ != nullptr)
    pending_ = injector_->storm_cycles(inner_.beats_delivered() - 1);
  return valid;
}

void FaultyAxiStream::reset() noexcept {
  inner_.reset();
  pending_ = 0;
  injected_ = 0;
}

std::vector<std::uint64_t> corrupt_words(std::span<const std::uint64_t> words,
                                         std::span<const FaultEvent> events,
                                         std::size_t tile_words) {
  std::vector<std::uint64_t> out{words.begin(), words.end()};
  if (tile_words == 0) tile_words = out.size();
  for (const FaultEvent& event : events) {
    const std::size_t word0 = event.beat * kWordsPerBeat;
    if (word0 >= out.size()) continue;
    const std::size_t tile_begin = (word0 / tile_words) * tile_words;
    const std::size_t tile_end = std::min(out.size(), tile_begin + tile_words);
    switch (event.kind) {
      case FaultKind::BitFlip: {
        const std::size_t word = word0 + event.bit / 64;
        if (word < out.size()) out[word] ^= 1ULL << (event.bit % 64);
        break;
      }
      case FaultKind::DropBeat: {
        // The beat vanishes: everything after it in the tile arrives one
        // beat early, and the tile tail reads as zeros (decodes as 'A').
        for (std::size_t w = word0; w < tile_end; ++w)
          out[w] = w + kWordsPerBeat < tile_end ? out[w + kWordsPerBeat] : 0;
        break;
      }
      case FaultKind::DupBeat: {
        // The beat lands twice: the tile tail shifts one beat late and the
        // last beat of the tile falls off the end of the window.
        for (std::size_t w = tile_end; w-- > word0 + kWordsPerBeat;)
          out[w] = out[w - kWordsPerBeat];
        break;
      }
      default:
        break;  // timing / transfer faults do not touch data
    }
  }
  return out;
}

}  // namespace fabp::hw
