#include "fabp/hw/netlist.hpp"

namespace fabp::hw {

NetId Netlist::new_net(bool initial) {
  values_.push_back(initial ? 1 : 0);
  return static_cast<NetId>(values_.size() - 1);
}

void Netlist::check_net(NetId net) const {
  if (net >= values_.size())
    throw std::invalid_argument{"netlist: use of undefined net"};
}

NetId Netlist::add_input(bool initial) {
  const NetId out = new_net(initial);
  cells_.push_back(Cell{CellKind::Input, out, Lut6{}, {}, false});
  return out;
}

NetId Netlist::add_const(bool value) {
  const NetId out = new_net(value);
  cells_.push_back(Cell{CellKind::Const, out, Lut6{}, {}, value});
  return out;
}

NetId Netlist::add_lut(const Lut6& lut, std::span<const NetId> inputs) {
  if (inputs.size() > 6)
    throw std::invalid_argument{"netlist: LUT with more than 6 inputs"};
  for (NetId in : inputs) check_net(in);
  const NetId out = new_net(false);
  cells_.push_back(Cell{CellKind::Lut, out, lut,
                        std::vector<NetId>{inputs.begin(), inputs.end()},
                        false});
  return out;
}

NetId Netlist::add_lut(const Lut6& lut, std::initializer_list<NetId> inputs) {
  return add_lut(lut, std::span<const NetId>{inputs.begin(), inputs.size()});
}

NetId Netlist::add_ff(NetId d, bool reset_value) {
  check_net(d);
  const NetId out = new_net(reset_value);
  cells_.push_back(
      Cell{CellKind::Ff, out, Lut6{}, std::vector<NetId>{d}, reset_value});
  ff_cells_.push_back(cells_.size() - 1);
  return out;
}

NetId Netlist::add_carry(NetId a, NetId b, NetId cin) {
  check_net(a);
  check_net(b);
  check_net(cin);
  const NetId out = new_net(false);
  cells_.push_back(Cell{CellKind::Carry, out, Lut6{},
                        std::vector<NetId>{a, b, cin}, false});
  return out;
}

void Netlist::set_input(NetId net, bool value) {
  check_net(net);
  values_[net] = value ? 1 : 0;
}

void Netlist::settle() {
  // Cells were created bottom-up, so one in-order pass fully settles the
  // combinational logic.  FF outputs hold their registered value.
  for (const Cell& cell : cells_) {
    if (cell.kind == CellKind::Lut) {
      std::uint8_t index = 0;
      for (std::size_t i = 0; i < cell.inputs.size(); ++i)
        if (values_[cell.inputs[i]])
          index |= static_cast<std::uint8_t>(1u << i);
      values_[cell.output] = cell.lut.eval(index) ? 1 : 0;
    } else if (cell.kind == CellKind::Carry) {
      const int ones = values_[cell.inputs[0]] + values_[cell.inputs[1]] +
                       values_[cell.inputs[2]];
      values_[cell.output] = ones >= 2 ? 1 : 0;
    }
  }
}

void Netlist::clock() {
  // Phase 1: capture D pins; phase 2: drive Qs; then re-settle.
  std::vector<std::uint8_t> captured(ff_cells_.size());
  for (std::size_t i = 0; i < ff_cells_.size(); ++i)
    captured[i] = values_[cells_[ff_cells_[i]].inputs[0]];
  for (std::size_t i = 0; i < ff_cells_.size(); ++i)
    values_[cells_[ff_cells_[i]].output] = captured[i];
  settle();
}

void Netlist::reset() {
  for (std::size_t idx : ff_cells_)
    values_[cells_[idx].output] = cells_[idx].reset_value ? 1 : 0;
  settle();
}

NetlistStats Netlist::stats() const noexcept {
  NetlistStats s;
  s.cells = cells_.size();
  for (const Cell& cell : cells_) {
    switch (cell.kind) {
      case CellKind::Lut: ++s.luts; break;
      case CellKind::Ff: ++s.ffs; break;
      case CellKind::Carry: ++s.carries; break;
      case CellKind::Input: ++s.inputs; break;
      case CellKind::Const: break;
    }
  }
  return s;
}

}  // namespace fabp::hw
