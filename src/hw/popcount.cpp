#include "fabp/hw/popcount.hpp"

#include <array>
#include <bit>

#include "fabp/util/bitops.hpp"

namespace fabp::hw {

std::uint64_t read_bus(const Netlist& netlist, std::span<const NetId> bus) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    if (netlist.value(bus[i])) value |= 1ULL << i;
  return value;
}

void drive_bus(Netlist& netlist, std::span<const NetId> bus,
               std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    netlist.set_input(bus[i], ((value >> i) & 1ULL) != 0);
}

Bus add_buses(Netlist& netlist, std::span<const NetId> a,
              std::span<const NetId> b) {
  if (a.size() < b.size()) return add_buses(netlist, b, a);
  // a is the wider operand; ripple from LSB with free carry cells.
  static const Lut6 kXor3 = Lut6::from_function([](std::uint8_t idx) {
    return (std::popcount(static_cast<unsigned>(idx & 0b111)) & 1) != 0;
  });

  Bus result;
  result.reserve(a.size() + 1);
  NetId carry = netlist.add_const(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId bi = i < b.size() ? b[i] : netlist.add_const(false);
    result.push_back(netlist.add_lut(kXor3, {a[i], bi, carry}));
    carry = netlist.add_carry(a[i], bi, carry);
  }
  result.push_back(carry);  // carry out is the MSB, free via the chain
  return result;
}

Bus ones_count6(Netlist& netlist, std::span<const NetId> bits) {
  // Three LUT6s sharing the same inputs, producing bit k of the ones count.
  Bus out;
  const std::size_t n = bits.size() > 6 ? 6 : bits.size();
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << n) - 1);
  for (unsigned k = 0; k < 3; ++k) {
    const Lut6 lut = Lut6::from_function([k, mask](std::uint8_t idx) {
      const int ones = std::popcount(static_cast<unsigned>(idx & mask));
      return ((ones >> k) & 1) != 0;
    });
    out.push_back(netlist.add_lut(lut, bits.subspan(0, n)));
  }
  return out;
}

Bus build_pop36(Netlist& netlist, std::span<const NetId> bits) {
  if (bits.empty()) return Bus{netlist.add_const(false)};
  if (bits.size() <= 6) return ones_count6(netlist, bits);

  // Stage 1 (Fig. 4): groups of six shared-input LUT triples.
  std::vector<Bus> partials;
  for (std::size_t pos = 0; pos < bits.size(); pos += 6) {
    const std::size_t len = bits.size() - pos < 6 ? bits.size() - pos : 6;
    partials.push_back(ones_count6(netlist, bits.subspan(pos, len)));
  }

  // Stage 2: per-bit-position columns, re-counted with shared-input triples.
  std::array<Bus, 3> columns;
  for (unsigned k = 0; k < 3; ++k) {
    Bus column_bits;
    for (const Bus& p : partials) column_bits.push_back(p[k]);
    columns[k] = ones_count6(netlist, column_bits);
  }

  // Stage 3: total = col0 + (col1 << 1) + (col2 << 2).  The shifted adds
  // pass the low bits through for free.
  Bus t;
  t.push_back(columns[0][0]);
  {
    const std::span<const NetId> c0{columns[0]};
    const Bus upper = add_buses(netlist, c0.subspan(1), columns[1]);
    t.insert(t.end(), upper.begin(), upper.end());
  }
  Bus total;
  total.push_back(t[0]);
  total.push_back(t[1]);
  {
    const std::span<const NetId> ts{t};
    const Bus upper = add_buses(netlist, ts.subspan(2), columns[2]);
    total.insert(total.end(), upper.begin(), upper.end());
  }
  // Trim to 6 bits: 36 fits in 6 bits; upper adder bits beyond are zero.
  if (total.size() > 6) total.resize(6);
  return total;
}

namespace {

/// Balanced pairwise reduction of partial-sum buses.
Bus reduce_tree(Netlist& netlist, std::vector<Bus> nodes) {
  if (nodes.empty()) return Bus{netlist.add_const(false)};
  while (nodes.size() > 1) {
    std::vector<Bus> next;
    next.reserve((nodes.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < nodes.size(); i += 2)
      next.push_back(add_buses(netlist, nodes[i], nodes[i + 1]));
    if (nodes.size() % 2 != 0) next.push_back(std::move(nodes.back()));
    nodes = std::move(next);
  }
  return nodes.front();
}

}  // namespace

Bus build_popcounter_handcrafted(Netlist& netlist,
                                 std::span<const NetId> bits) {
  std::vector<Bus> blocks;
  for (std::size_t pos = 0; pos < bits.size(); pos += 36) {
    const std::size_t len = bits.size() - pos < 36 ? bits.size() - pos : 36;
    blocks.push_back(build_pop36(netlist, bits.subspan(pos, len)));
  }
  return reduce_tree(netlist, std::move(blocks));
}

Bus build_popcounter_tree(Netlist& netlist, std::span<const NetId> bits) {
  std::vector<Bus> leaves;
  leaves.reserve(bits.size());
  for (NetId bit : bits) leaves.push_back(Bus{bit});
  return reduce_tree(netlist, std::move(leaves));
}

namespace {

template <typename Builder>
std::size_t count_luts(std::size_t n_bits, Builder&& builder) {
  Netlist scratch;
  Bus inputs;
  inputs.reserve(n_bits);
  for (std::size_t i = 0; i < n_bits; ++i)
    inputs.push_back(scratch.add_input());
  builder(scratch, std::span<const NetId>{inputs});
  return scratch.stats().luts;
}

}  // namespace

std::size_t popcounter_luts_handcrafted(std::size_t n_bits) {
  return count_luts(n_bits, [](Netlist& nl, std::span<const NetId> in) {
    build_popcounter_handcrafted(nl, in);
  });
}

std::size_t popcounter_luts_tree(std::size_t n_bits) {
  return count_luts(n_bits, [](Netlist& nl, std::span<const NetId> in) {
    build_popcounter_tree(nl, in);
  });
}

}  // namespace fabp::hw
