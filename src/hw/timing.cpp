#include "fabp/hw/timing.hpp"

#include <algorithm>

namespace fabp::hw {

TimingReport analyze_timing(const Netlist& netlist, const TimingModel& model) {
  // Arrival time per net, in ns.  Inputs, constants and FF outputs launch
  // at t=0 (clk-to-q added at the end, once, for the register-to-register
  // figure).  Creation order is topological, so one pass suffices.
  std::vector<double> arrival(netlist.net_count(), 0.0);
  std::vector<std::size_t> levels(netlist.net_count(), 0);

  TimingReport report;
  const auto consider = [&](double t, std::size_t level, NetId net) {
    if (t > report.critical_path_ns) {
      report.critical_path_ns = t;
      report.logic_levels = level;
      report.critical_net = net;
    }
  };

  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto cell = netlist.cell(i);
    switch (cell.kind) {
      case CellKind::Input:
      case CellKind::Const:
        arrival[cell.output] = 0.0;
        break;
      case CellKind::Lut: {
        double worst = 0.0;
        std::size_t level = 0;
        for (NetId in : cell.inputs) {
          worst = std::max(worst, arrival[in]);
          level = std::max(level, levels[in]);
        }
        arrival[cell.output] = worst + model.lut_delay_ns +
                               model.net_delay_ns;
        levels[cell.output] = level + 1;
        consider(arrival[cell.output], levels[cell.output], cell.output);
        break;
      }
      case CellKind::Carry: {
        double worst = 0.0;
        std::size_t level = 0;
        for (NetId in : cell.inputs) {
          worst = std::max(worst, arrival[in]);
          level = std::max(level, levels[in]);
        }
        arrival[cell.output] = worst + model.carry_delay_ns;
        levels[cell.output] = level;  // carry chain adds no LUT level
        consider(arrival[cell.output], levels[cell.output], cell.output);
        break;
      }
      case CellKind::Ff:
        // D pin is a path endpoint; Q relaunches at 0.
        consider(arrival[cell.inputs[0]], levels[cell.inputs[0]],
                 cell.inputs[0]);
        arrival[cell.output] = 0.0;
        levels[cell.output] = 0;
        break;
    }
  }

  report.fmax_hz =
      1e9 / (model.clk_to_q_ns + report.critical_path_ns + model.setup_ns);
  return report;
}

std::vector<std::size_t> logic_depths(const Netlist& netlist) {
  std::vector<std::size_t> levels(netlist.net_count(), 0);
  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto cell = netlist.cell(i);
    if (cell.kind == CellKind::Lut || cell.kind == CellKind::Carry) {
      std::size_t level = 0;
      for (NetId in : cell.inputs) level = std::max(level, levels[in]);
      levels[cell.output] = level + (cell.kind == CellKind::Lut ? 1 : 0);
    } else if (cell.kind == CellKind::Ff) {
      levels[cell.output] = 0;
    }
  }
  return levels;
}

}  // namespace fabp::hw
