#include "fabp/hw/axi.hpp"

namespace fabp::hw {

bool AxiReadStream::advance() noexcept {
  ++cycles_;
  if (stall_left_ > 0) {
    --stall_left_;
    return false;
  }
  ++beats_;
  ++in_burst_;

  // Schedule stalls *after* this beat if it closed a burst or a page.
  if (config_.page_beats != 0 && beats_ % config_.page_beats == 0) {
    stall_left_ += config_.page_miss_penalty;
    in_burst_ = 0;
  } else if (config_.burst_beats != 0 && in_burst_ >= config_.burst_beats) {
    stall_left_ += config_.inter_burst_gap;
    in_burst_ = 0;
  }
  return true;
}

double AxiReadStream::steady_state_efficiency(
    const AxiTimingConfig& c) noexcept {
  if (c.burst_beats == 0) return 0.0;
  // Per page: page_beats data cycles, a gap after each full burst except
  // where the page penalty replaces it, plus the page penalty itself.
  const double beats = static_cast<double>(c.page_beats);
  const double bursts_per_page =
      c.page_beats == 0 ? 1.0
                        : static_cast<double>(c.page_beats) /
                              static_cast<double>(c.burst_beats);
  const double gap_cycles =
      (bursts_per_page - 1.0) * static_cast<double>(c.inter_burst_gap) +
      static_cast<double>(c.page_miss_penalty);
  return beats / (beats + gap_cycles);
}

void AxiReadStream::reset() noexcept {
  beats_ = 0;
  cycles_ = 0;
  in_burst_ = 0;
  stall_left_ = 0;
}

}  // namespace fabp::hw
