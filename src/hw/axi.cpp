#include "fabp/hw/axi.hpp"

namespace fabp::hw {

bool AxiReadStream::advance() noexcept {
  ++cycles_;
  if (stall_left_ > 0) {
    --stall_left_;
    return false;
  }
  ++beats_;
  ++in_burst_;

  // Schedule stalls *after* this beat if it closed a burst or a page.
  if (config_.page_beats != 0 && beats_ % config_.page_beats == 0) {
    stall_left_ += config_.page_miss_penalty;
    in_burst_ = 0;
  } else if (config_.burst_beats != 0 && in_burst_ >= config_.burst_beats) {
    stall_left_ += config_.inter_burst_gap;
    in_burst_ = 0;
  }
  return true;
}

double AxiReadStream::steady_state_efficiency(
    const AxiTimingConfig& c) noexcept {
  if (c.burst_beats == 0) return 0.0;
  // Per page: page_beats data cycles, a gap after each full burst except
  // where the page penalty replaces it, plus the page penalty itself.
  const double beats = static_cast<double>(c.page_beats);
  const double bursts_per_page =
      c.page_beats == 0 ? 1.0
                        : static_cast<double>(c.page_beats) /
                              static_cast<double>(c.burst_beats);
  const double gap_cycles =
      (bursts_per_page - 1.0) * static_cast<double>(c.inter_burst_gap) +
      static_cast<double>(c.page_miss_penalty);
  return beats / (beats + gap_cycles);
}

std::size_t AxiReadStream::cycles_for_beats(const AxiTimingConfig& c,
                                            std::size_t beats) noexcept {
  if (beats == 0) return 0;
  // Stalls are scheduled *after* the beat that closes a burst or a page
  // (see advance()), so only events after beats 1..N-1 delay beat N.  The
  // burst counter restarts after every stall event, which realigns bursts
  // at each page boundary: within a page of P beats there are (P-1)/B
  // inter-burst gaps (the page penalty replaces the gap when P | B aligns)
  // plus the page penalty itself.
  const std::size_t closed = beats - 1;
  std::size_t stalls = 0;
  if (c.page_beats != 0) {
    const std::size_t gaps_per_page =
        c.burst_beats != 0 ? (c.page_beats - 1) / c.burst_beats : 0;
    const std::size_t full_pages = closed / c.page_beats;
    stalls += full_pages *
              (gaps_per_page * c.inter_burst_gap + c.page_miss_penalty);
    const std::size_t rem = closed % c.page_beats;
    if (c.burst_beats != 0)
      stalls += (rem / c.burst_beats) * c.inter_burst_gap;
  } else if (c.burst_beats != 0) {
    stalls += (closed / c.burst_beats) * c.inter_burst_gap;
  }
  return beats + stalls;
}

void AxiReadStream::reset() noexcept {
  beats_ = 0;
  cycles_ = 0;
  in_burst_ = 0;
  stall_left_ = 0;
}

}  // namespace fabp::hw
