#include "fabp/hw/device.hpp"

namespace fabp::hw {

FpgaDevice kintex7() {
  FpgaDevice dev;
  dev.name = "kintex7";
  dev.capacity = ResourceBudget{
      /*luts=*/326'000,
      /*ffs=*/407'000,
      /*bram_bits=*/static_cast<std::size_t>(16) * 1024 * 1024,  // 16 Mb
      /*dsps=*/840};
  dev.memory_channels = 1;
  dev.axi_bits = 512;
  dev.clock_hz = 200e6;
  dev.channel_bandwidth_bps = 12.8e9;
  return dev;
}

FpgaDevice virtex_ultrascale_plus() {
  FpgaDevice dev;
  dev.name = "vu9p";
  dev.capacity = ResourceBudget{
      /*luts=*/1'182'000,
      /*ffs=*/2'364'000,
      /*bram_bits=*/static_cast<std::size_t>(75) * 1024 * 1024,
      /*dsps=*/6'840};
  dev.memory_channels = 4;
  dev.axi_bits = 512;
  dev.clock_hz = 250e6;
  dev.channel_bandwidth_bps = 16e9;
  return dev;
}

}  // namespace fabp::hw
