#include "fabp/hw/power.hpp"

namespace fabp::hw {

double FpgaPowerModel::watts(const FpgaDevice& device,
                             const ResourceBudget& used,
                             std::size_t active_channels) const noexcept {
  const double ghz = device.clock_hz / 1e9;
  const double toggle = config_.average_toggle_rate;
  const double lut_w = config_.watts_per_mega_lut_ghz *
                       (static_cast<double>(used.luts) / 1e6) * ghz * toggle /
                       0.25;  // constants are quoted at 25% toggle
  const double ff_w = config_.watts_per_mega_ff_ghz *
                      (static_cast<double>(used.ffs) / 1e6) * ghz * toggle /
                      0.25;
  const double dsp_w =
      config_.watts_per_dsp_ghz * static_cast<double>(used.dsps) * ghz;
  const double dram_w =
      config_.dram_watts * static_cast<double>(active_channels);
  return config_.static_watts + lut_w + ff_w + dsp_w + dram_w;
}

}  // namespace fabp::hw
