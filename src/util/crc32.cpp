#include "fabp/util/crc32.hpp"

#include <array>

namespace fabp::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t crc) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_words(std::span<const std::uint64_t> words,
                          std::uint32_t crc) noexcept {
  // Byte order must not depend on the host: hash each word's bytes
  // little-endian-first explicitly.
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint64_t word : words)
    for (int b = 0; b < 8; ++b)
      c = kTable[(c ^ ((word >> (8 * b)) & 0xFFu)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace fabp::util
