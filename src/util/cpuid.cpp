#include "fabp/util/cpuid.hpp"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace fabp::util {

namespace {

#if defined(__x86_64__) || defined(__i386__)

// XCR0 via xgetbv (no -mxsave needed for the raw encoding).  Only called
// after CPUID reports OSXSAVE, so the instruction is guaranteed present.
std::uint64_t xcr0() noexcept {
  std::uint32_t eax, edx;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

struct Features {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512vpopcntdq = false;
};

Features probe() noexcept {
  Features f;
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave) return f;  // OS never enabled extended state: stay baseline
  const std::uint64_t x = xcr0();
  const bool ymm_ok = (x & 0x06) == 0x06;          // XMM + YMM saved
  const bool zmm_ok = (x & 0xE6) == 0xE6;          // + opmask, zmm, hi16_zmm
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return f;
  f.avx2 = ymm_ok && (ebx & (1u << 5)) != 0;       // leaf 7.0 EBX.AVX2
  f.avx512f = zmm_ok && (ebx & (1u << 16)) != 0;   // leaf 7.0 EBX.AVX512F
  // Leaf 7.0 ECX.AVX512_VPOPCNTDQ; gated on AVX512F so the implication in
  // the header holds even on hypothetical CPUID combinations.
  f.avx512vpopcntdq = f.avx512f && (ecx & (1u << 14)) != 0;
  return f;
}

#else

struct Features {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512vpopcntdq = false;
};

Features probe() noexcept { return {}; }

#endif

const Features& features() noexcept {
  static const Features f = probe();
  return f;
}

}  // namespace

bool cpu_has_avx2() noexcept { return features().avx2; }

bool cpu_has_avx512f() noexcept { return features().avx512f; }

bool cpu_has_avx512vpopcntdq() noexcept {
  return features().avx512vpopcntdq;
}

const char* cpu_isa_summary() noexcept {
  const Features& f = features();
  if (f.avx512vpopcntdq) return "avx2+avx512f+vpopcntdq";
  if (f.avx512f) return "avx2+avx512f";
  if (f.avx2) return "avx2";
  return "baseline";
}

}  // namespace fabp::util
