#include "fabp/util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace fabp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged{std::move(task)};
  auto future = packaged.get_future();
  {
    std::lock_guard lock{mutex_};
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock{mutex_};
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_indexed_chunks(
      begin, end,
      [&fn](std::size_t, std::size_t lo, std::size_t hi) { fn(lo, hi); });
}

void ThreadPool::parallel_indexed_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t granule, std::size_t max_chunks) {
  if (begin >= end) return;
  if (granule == 0) granule = 1;
  const std::size_t total = end - begin;
  const std::size_t chunks = chunk_count(total, granule, max_chunks);
  if (chunks <= 1) {
    // A lone chunk gains nothing from the queue; run it in place so a
    // 1-wide pool (or a range under one granule) costs exactly a serial
    // call.
    fn(0, begin, end);
    return;
  }

  // Balanced granule split: the first `rem` chunks carry one extra
  // granule, so exactly `chunks` non-empty chunks are produced and no
  // chunk exceeds its siblings by more than one granule.
  const std::size_t grains = (total + granule - 1) / granule;
  const std::size_t base_grains = grains / chunks;
  const std::size_t rem = grains % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t grain = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t next = grain + base_grains + (c < rem ? 1 : 0);
    const std::size_t lo = begin + grain * granule;
    const std::size_t hi = std::min(begin + next * granule, end);
    futures.push_back(submit([&fn, c, lo, hi] { fn(c, lo, hi); }));
    grain = next;
  }
  // Drain *every* future before letting any exception out: rethrowing on
  // the first failed get() would unwind the caller while queued tasks
  // still hold a reference to `fn` on this stack frame.  The first
  // exception wins; later ones are dropped (their chunks still ran to
  // their own throw point).
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace fabp::util
