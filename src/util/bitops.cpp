#include "fabp/util/bitops.hpp"

namespace fabp::util {

std::size_t BitVector::count_range(std::size_t begin,
                                   std::size_t end) const noexcept {
  if (begin >= end || begin >= size_) return 0;
  if (end > size_) end = size_;

  std::size_t total = 0;
  std::size_t first_word = begin >> 6;
  std::size_t last_word = (end - 1) >> 6;

  if (first_word == last_word) {
    const unsigned lo = static_cast<unsigned>(begin & 63);
    const unsigned len = static_cast<unsigned>(end - begin);
    return static_cast<std::size_t>(
        std::popcount(bits(words_[first_word], lo, len)));
  }

  // Head word (partial), full middle words, tail word (partial).
  total += static_cast<std::size_t>(std::popcount(
      words_[first_word] >> (begin & 63)));
  for (std::size_t w = first_word + 1; w < last_word; ++w)
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  const unsigned tail_len = static_cast<unsigned>(((end - 1) & 63) + 1);
  total += static_cast<std::size_t>(
      std::popcount(bits(words_[last_word], 0, tail_len)));
  return total;
}

}  // namespace fabp::util
